#!/usr/bin/env bash
# Repo verification: tier-1 tests, lint hygiene (clippy + a `chls lint`
# sweep over the example corpus), a conformance smoke run through the
# CLI (sequential and parallel must agree), and the simulator benchmark
# harness (refreshes BENCH_sim.json at the repo root).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: build =="
cargo build --release

echo "== tier-1: tests =="
cargo test -q

echo "== clippy (warnings are errors) =="
cargo clippy --workspace -- -D warnings

echo "== chls lint sweep (examples must be race-free) =="
cargo build --release -p chls --bins
for f in examples/chl/*.chl; do
    echo "-- lint $f"
    ./target/release/chls lint "$f" main
done

echo "== chls check smoke (jobs=1 vs jobs=4 must match) =="
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
cat > "$tmp/gcd.chl" <<'EOF'
int gcd(int a, int b) {
    while (b != 0) { int t = b; b = a % b; a = t; }
    return a;
}
EOF
./target/release/chls check --jobs 1 "$tmp/gcd.chl" gcd 48 36 > "$tmp/seq.txt"
./target/release/chls check --jobs 4 "$tmp/gcd.chl" gcd 48 36 > "$tmp/par.txt"
diff "$tmp/seq.txt" "$tmp/par.txt"
echo "verdicts identical"

echo "== simulator benchmarks =="
cargo run --release -p chls-bench --bin bench_sim

echo "== verify OK =="
