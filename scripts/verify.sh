#!/usr/bin/env bash
# Repo verification: tier-1 tests, the CLI integration suite, lint
# hygiene (clippy + a `chls lint` sweep over the example corpus), a
# `chls flow` sweep (examples must be deadlock-free, and the seeded
# deadlock corpus must be proved stuck), a `chls rewrite` sweep (the
# software-shaped corpus must be repaired, certified, and lint-clean,
# with at least 4 previously-rejected programs unlocking >=3 backends), a
# conformance smoke run through the CLI (sequential and parallel must
# agree), a `chls report` QoR smoke over the example corpus (width
# narrowing and the AIG logic optimizer must both pay for themselves),
# a `chls equiv` smoke (two backends proven bounded-equivalent on real
# examples, and a seeded miscompile refuted with a counterexample), and
# a `chls explore` sweep (fir + crc8: non-empty certified frontiers,
# every emitted AIGER re-proved equivalent after re-reading), and the
# benchmark harnesses (refresh BENCH_sim.json / BENCH_serve.json /
# BENCH_explore.json at the repo root, failing on regressions).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: build =="
cargo build --release

echo "== tier-1: tests =="
cargo test -q

echo "== CLI integration suite =="
cargo test -q --test cli

echo "== clippy (warnings are errors) =="
cargo clippy --workspace -- -D warnings

echo "== chls lint sweep (examples must be race-free) =="
cargo build --release -p chls --bins
for f in examples/chl/*.chl; do
    echo "-- lint $f"
    ./target/release/chls lint "$f" main
done

echo "== chls flow sweep (examples must be deadlock-free) =="
for f in examples/chl/*.chl; do
    echo "-- flow $f"
    ./target/release/chls flow "$f" main
done

echo "== chls flow smoke (the seeded deadlock must be proved) =="
if ./target/release/chls flow examples/chl/flow/deadlock_order.chl main > /tmp/flow_dead.txt; then
    echo "FAIL: seeded ordering deadlock was not flagged" >&2
    cat /tmp/flow_dead.txt >&2
    exit 1
fi
grep -q "structural deadlock cycle" /tmp/flow_dead.txt
grep -q "needs capacity" /tmp/flow_dead.txt
./target/release/chls flow --json examples/chl/stream_multirate.chl main > /tmp/flow_clean.json
python3 - /tmp/flow_clean.json <<'EOF'
import json, sys
env = json.load(open(sys.argv[1]))
assert env["tool"] == "chls" and env["verb"] == "flow" and env["ok"] is True, env
data = env["data"]
assert all(n["deadlock"] is None for n in data["networks"]), data
assert all(c["balance"] == "balanced" for n in data["networks"] for c in n["channels"]), data
assert any(c["verdict"] == "met" for c in data["contracts"]), data
EOF
echo "flow verdicts valid"

echo "== chls rewrite sweep (software corpus repaired + certified) =="
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
# Each software-shaped program must be auto-rewritten into a certified
# synthesizable form; the acceptance table shows the before/after
# backend counts, and the gates below hold the repair to its claims.
: > "$tmp/rewrite_table.txt"
for f in examples/chl/software/*.chl; do
    entry="$(basename "$f" .chl)"
    echo "-- rewrite $f ($entry)"
    ./target/release/chls rewrite --json "$f" "$entry" > "$tmp/rewrite.json"
    python3 - "$tmp/rewrite.json" "$f" "$tmp/rewrite_table.txt" "$tmp" <<'EOF'
import json, sys
env = json.load(open(sys.argv[1]))
assert env["tool"] == "chls" and env["verb"] == "rewrite" and env["ok"] is True, env
d = env["data"]
assert d["certified"], (sys.argv[2], d["certification"])
assert d["changed"], (sys.argv[2], "rewriter left the program alone")
assert all(c["status"] != "FAIL" for c in d["certification"]), d["certification"]
with open(sys.argv[3], "a") as out:
    out.write(f'{sys.argv[2]} {d["accepted_before"]} {d["accepted_after"]} {d["backends_total"]}\n')
# Hand the rewritten source back to the shell so `chls lint` can vet it
# exactly as a user would.
open(f'{sys.argv[4]}/rewritten_{d["entry"]}.chl', "w").write(d["source"])
EOF
    ./target/release/chls lint "$tmp/rewritten_$entry.chl" "$entry"
done
echo "-- acceptance table (file accepted_before accepted_after total)"
column -t "$tmp/rewrite_table.txt" 2>/dev/null || cat "$tmp/rewrite_table.txt"
repaired=$(awk '$2 < $4 && $3 > $2 && $3 >= 3' "$tmp/rewrite_table.txt" | wc -l)
echo "rewriting unlocks backends on $repaired previously-rejected programs"
if [ "$repaired" -lt 4 ]; then
    echo "FAIL: at least 4 previously-rejected programs must synthesize on >=3 backends after rewriting" >&2
    exit 1
fi

echo "== chls check smoke (jobs=1 vs jobs=4 must match) =="
cat > "$tmp/gcd.chl" <<'EOF'
int gcd(int a, int b) {
    while (b != 0) { int t = b; b = a % b; a = t; }
    return a;
}
EOF
./target/release/chls check --jobs 1 "$tmp/gcd.chl" gcd 48 36 > "$tmp/seq.txt"
./target/release/chls check --jobs 4 "$tmp/gcd.chl" gcd 48 36 > "$tmp/par.txt"
diff "$tmp/seq.txt" "$tmp/par.txt"
echo "verdicts identical"

echo "== chls report smoke (QoR JSON over the example corpus) =="
: > "$tmp/narrowed.txt"
: > "$tmp/optimized.txt"
for f in examples/chl/*.chl; do
    echo "-- report $f"
    ./target/release/chls report --all --json "$f" main > "$tmp/report.json"
    python3 - "$tmp/report.json" "$tmp/narrowed.txt" "$f" "$tmp/optimized.txt" <<'EOF'
import json, sys
env = json.load(open(sys.argv[1]))
assert env["tool"] == "chls" and env["verb"] == "report", env
assert isinstance(env["ok"], bool) and "version" in env, env
rows = env["data"]["backends"]
assert rows, "report emitted no backends"
assert any(r["status"] == "ok" for r in rows), rows
# Width narrowing must never cost area, and its savings are recorded
# so the sweep can assert the optimization actually fires.
for r in rows:
    a, n = r.get("area"), r.get("narrowed_area")
    if a is not None:
        assert n is not None, (sys.argv[3], r["backend"], "narrowed_area missing")
        assert n <= a * 1.001, (sys.argv[3], r["backend"], a, n)
        if n < a * 0.999:
            with open(sys.argv[2], "a") as out:
                out.write(f"{sys.argv[3]} {r['backend']} {n/a:.2f}\n")
# The AIG optimizer's rewrites are all area-monotone, so the what-if
# column must never exceed the baseline; record strict reductions so
# the sweep can assert the pass actually pays for itself.
for r in rows:
    a, o = r.get("area"), r.get("opt_area")
    if a is not None:
        assert o is not None, (sys.argv[3], r["backend"], "opt_area missing")
        assert o <= a * 1.001, (sys.argv[3], r["backend"], a, o)
        if o < a * 0.999:
            with open(sys.argv[4], "a") as out:
                out.write(f"{sys.argv[3]} {r['backend']} {o/a:.2f}\n")
EOF
done
echo "report envelopes valid"
reduced=$(cut -d' ' -f1 "$tmp/narrowed.txt" | sort -u | wc -l)
echo "narrowing reduces area on $reduced example programs"
if [ "$reduced" -lt 3 ]; then
    echo "FAIL: width narrowing should shrink at least 3 example programs" >&2
    exit 1
fi
opt_reduced=$(cut -d' ' -f1 "$tmp/optimized.txt" | sort -u | wc -l)
echo "logic optimizer reduces area on $opt_reduced example programs"
if [ "$opt_reduced" -lt 3 ]; then
    echo "FAIL: the logic optimizer should shrink at least 3 example programs" >&2
    exit 1
fi

echo "== chls jit smoke (native execution must match the interpreter) =="
# `run --jit` and a plain `run` must print identical results on every
# scalar-only example, and `check --jit` must reproduce the interpreter
# sweep's verdicts verbatim. On hosts without x86-64 JIT support the
# flag silently degrades to the interpreter, so the diffs still hold.
./target/release/chls run examples/chl/gcd.chl main 1071 462 > "$tmp/run_interp.txt"
./target/release/chls run --jit examples/chl/gcd.chl main 1071 462 > "$tmp/run_jit.txt"
diff <(grep -v '^cycles' "$tmp/run_jit.txt") "$tmp/run_interp.txt"
row16="9,1,8,2,7,3,6,4,5,0,15,11,14,12,13,10"
while read -r name args; do
    f="examples/chl/$name.chl"
    echo "-- check --jit $f"
    # shellcheck disable=SC2086
    ./target/release/chls check "$f" main $args > "$tmp/check_interp.txt"
    # shellcheck disable=SC2086
    ./target/release/chls check --jit "$f" main $args > "$tmp/check_jit.txt"
    diff "$tmp/check_interp.txt" "$tmp/check_jit.txt"
done <<EOF
gcd 1071 462
checksum $row16
crc8 $row16
blend $row16 $row16 0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0
fir $row16 0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0
EOF
echo "jit verdicts identical to interpreter"

echo "== chls equiv smoke (backends proven equivalent; seeded bug refuted) =="
for spec in "blend 70" "checksum 60" "fir 190"; do
    set -- $spec
    echo "-- equiv examples/chl/$1.chl (bound $2)"
    ./target/release/chls equiv --backend handelc --backend transmogrifier \
        --bound "$2" "examples/chl/$1.chl" main
done
cat > "$tmp/bug.chl" <<'EOF'
int main(int a, int b) {
    int s = 0;
    for (int i = 0; i < 4; i++) {
        s = (s + a * 3 + b) & 4095;
    }
    return s;
}

int main_bug(int a, int b) {
    int s = 0;
    for (int i = 0; i < 4; i++) {
        s = (s + a * 3 + b) & 4095;
    }
    if (s == 2900) {
        s = s ^ 1;
    }
    return s;
}
EOF
if ./target/release/chls equiv --backend handelc --backend transmogrifier \
    --bound 24 "$tmp/bug.chl" main main_bug > "$tmp/equiv.txt"; then
    echo "FAIL: seeded miscompile was not refuted" >&2
    cat "$tmp/equiv.txt" >&2
    exit 1
fi
grep -q "DIFFER" "$tmp/equiv.txt"
grep -q "arg0" "$tmp/equiv.txt"
echo "seeded miscompile refuted with a counterexample"

echo "== chls serve smoke (daemon vs one-shot, warm cache, clean shutdown) =="
./target/release/chls serve --addr 127.0.0.1:0 > "$tmp/serve.log" 2>&1 &
serve_pid=$!
port=""
for _ in $(seq 1 50); do
    port=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$tmp/serve.log")
    [ -n "$port" ] && break
    sleep 0.1
done
if [ -z "$port" ]; then
    echo "FAIL: daemon never reported its port" >&2
    cat "$tmp/serve.log" >&2
    exit 1
fi
addr="127.0.0.1:$port"
# check: byte-identical through the daemon.
./target/release/chls check "$tmp/gcd.chl" gcd 48 36 > "$tmp/check_local.txt"
./target/release/chls --connect "$addr" check "$tmp/gcd.chl" gcd 48 36 > "$tmp/check_remote.txt"
diff "$tmp/check_local.txt" "$tmp/check_remote.txt"
# equiv: byte-identical through the daemon.
./target/release/chls equiv --backend handelc --backend transmogrifier \
    --bound 60 examples/chl/checksum.chl main > "$tmp/eq_local.txt"
./target/release/chls --connect "$addr" equiv --backend handelc --backend transmogrifier \
    --bound 60 examples/chl/checksum.chl main > "$tmp/eq_remote.txt"
diff "$tmp/eq_local.txt" "$tmp/eq_remote.txt"
# report: identical modulo wall-clock timings (the only floats in the
# rendering), and the repeat request must come from the warm cache.
./target/release/chls report examples/chl/gcd.chl main 48 36 > "$tmp/rep_local.txt"
./target/release/chls --connect "$addr" report examples/chl/gcd.chl main 48 36 > "$tmp/rep_remote.txt"
diff <(sed -E 's/[0-9]+\.[0-9]+/N/g' "$tmp/rep_local.txt") \
     <(sed -E 's/[0-9]+\.[0-9]+/N/g' "$tmp/rep_remote.txt")
./target/release/chls --connect "$addr" report --json examples/chl/gcd.chl main 48 36 \
    | grep -q '"cached":true'
# service metrics, then a graceful stop the daemon acknowledges.
./target/release/chls client --addr "$addr" stats | grep -q '"requests":'
./target/release/chls client --addr "$addr" shutdown | grep -q '"shutting_down":true'
wait "$serve_pid"
echo "serve smoke OK"

echo "== chls explore sweep (certified frontiers + AIGER round-trips) =="
for f in examples/chl/fir.chl examples/chl/crc8.chl; do
    echo "-- explore $f"
    emit_dir="$tmp/explore_$(basename "$f" .chl)"
    ./target/release/chls explore --all --emit-dir "$emit_dir" --json "$f" main \
        > "$tmp/explore.json"
    python3 - "$tmp/explore.json" "$emit_dir" <<'EOF'
import json, os, sys
env = json.load(open(sys.argv[1]))
assert env["tool"] == "chls" and env["verb"] == "explore" and env["ok"] is True, env
d = env["data"]
frontier = d["frontier"]
assert frontier, "empty Pareto frontier"
for p in frontier:
    cert = p["certification"]
    # The tier taxonomy is closed; `certified` means an Equivalent proof
    # with a named method, and nothing on a frontier may be refuted.
    assert cert["tier"] in ("certified", "sampled", "unchecked"), p
    if cert["tier"] == "certified":
        assert cert["method"] in ("strash", "bdd", "sat"), p
    em = p["emit"]
    assert em and "roundtrip" in em, ("frontier point not emitted", p)
    assert em["roundtrip"] in ("strash", "sat"), ("round-trip not re-proved", p)
    assert os.path.getsize(em["aiger"]) > 0 and os.path.getsize(em["blif"]) > 0, p
print(f"  frontier {len(frontier)} points, all emitted + round-trip re-proved")
EOF
done

echo "== simulator benchmarks (fail on >10% throughput regression) =="
cargo run --release -p chls-bench --bin bench_sim -- --check 10

echo "== serve benchmarks (gate warm-report speedup and requests/s) =="
cargo run --release -p chls-bench --bin bench_serve -- --check 40

echo "== explore benchmarks (gate jobs scaling, points/s, warm sweep) =="
cargo run --release -p chls-bench --bin bench_explore -- --check 40

echo "== verify OK =="
