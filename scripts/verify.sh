#!/usr/bin/env bash
# Repo verification: tier-1 tests, the CLI integration suite, lint
# hygiene (clippy + a `chls lint` sweep over the example corpus), a
# conformance smoke run through the CLI (sequential and parallel must
# agree), a `chls report` QoR smoke over the example corpus, and the
# simulator benchmark harness (refreshes BENCH_sim.json at the repo
# root, failing on a >10% throughput regression).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: build =="
cargo build --release

echo "== tier-1: tests =="
cargo test -q

echo "== CLI integration suite =="
cargo test -q --test cli

echo "== clippy (warnings are errors) =="
cargo clippy --workspace -- -D warnings

echo "== chls lint sweep (examples must be race-free) =="
cargo build --release -p chls --bins
for f in examples/chl/*.chl; do
    echo "-- lint $f"
    ./target/release/chls lint "$f" main
done

echo "== chls check smoke (jobs=1 vs jobs=4 must match) =="
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
cat > "$tmp/gcd.chl" <<'EOF'
int gcd(int a, int b) {
    while (b != 0) { int t = b; b = a % b; a = t; }
    return a;
}
EOF
./target/release/chls check --jobs 1 "$tmp/gcd.chl" gcd 48 36 > "$tmp/seq.txt"
./target/release/chls check --jobs 4 "$tmp/gcd.chl" gcd 48 36 > "$tmp/par.txt"
diff "$tmp/seq.txt" "$tmp/par.txt"
echo "verdicts identical"

echo "== chls report smoke (QoR JSON over the example corpus) =="
for f in examples/chl/*.chl; do
    echo "-- report $f"
    ./target/release/chls report --all --json "$f" main > "$tmp/report.json"
    python3 - "$tmp/report.json" <<'EOF'
import json, sys
env = json.load(open(sys.argv[1]))
assert env["tool"] == "chls" and env["verb"] == "report", env
assert isinstance(env["ok"], bool) and "version" in env, env
rows = env["data"]["backends"]
assert rows, "report emitted no backends"
assert any(r["status"] == "ok" for r in rows), rows
EOF
done
echo "report envelopes valid"

echo "== simulator benchmarks (fail on >10% throughput regression) =="
cargo run --release -p chls-bench --bin bench_sim -- --check 10

echo "== verify OK =="
