//! Umbrella crate for workspace-level examples and integration tests.
pub use chls;
