//! The paper's central timing argument, live: the *same* FIR filter under
//! the three cycle-insertion policies — Handel-C's one-cycle-per-
//! assignment rule, Transmogrifier's one-cycle-per-iteration rule, and
//! C2Verilog-style compiler scheduling — and what recoding (fusing
//! assignments, unrolling loops) buys under each.
//!
//! ```sh
//! cargo run --example timing_rules
//! ```

use chls::interp::ArgValue;
use chls::{backend_by_name, fnum, simulate_design, Compiler, SynthOptions, Table};
use chls_rtl::CostModel;

const NAIVE: &str = "
    const int coeff[8] = {1, 2, 3, 4, 4, 3, 2, 1};
    void fir(int x[16], int y[16]) {
        for (int n = 7; n < 16; n++) {
            int acc = 0;
            for (int k = 0; k < 8; k++) {
                int prod = coeff[k] * x[n - k];
                acc = acc + prod;
            }
            y[n] = acc >> 4;
        }
    }
";

/// Handel-C recoding: fuse the multiply-accumulate into one assignment.
const FUSED: &str = "
    const int coeff[8] = {1, 2, 3, 4, 4, 3, 2, 1};
    void fir(int x[16], int y[16]) {
        for (int n = 7; n < 16; n++) {
            int acc = 0;
            for (int k = 0; k < 8; k++) {
                acc = acc + coeff[k] * x[n - k];
            }
            y[n] = acc >> 4;
        }
    }
";

/// Transmogrifier recoding: unroll the inner loop to buy iterations back.
const UNROLLED: &str = "
    const int coeff[8] = {1, 2, 3, 4, 4, 3, 2, 1};
    void fir(int x[16], int y[16]) {
        for (int n = 7; n < 16; n++) {
            int acc = 0;
            #pragma unroll 8
            for (int k = 0; k < 8; k++) {
                acc = acc + coeff[k] * x[n - k];
            }
            y[n] = acc >> 4;
        }
    }
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = [
        ArgValue::Array((0..16).map(|i| (i * 7 + 3) % 50).collect()),
        ArgValue::Array(vec![0; 16]),
    ];
    let model = CostModel::new();
    let opts = SynthOptions::default();

    let mut table = Table::new(vec![
        "source coding",
        "backend",
        "cycles",
        "min clock (ns)",
        "wall time (ns)",
        "area",
    ]);
    let expected = Compiler::parse(NAIVE)?.interpret("fir", &args)?.arrays[1].1.clone();

    for (coding, src) in [("naive", NAIVE), ("fused", FUSED), ("unrolled x8", UNROLLED)] {
        let compiler = Compiler::parse(src)?;
        for backend_name in ["handelc", "transmogrifier", "c2v"] {
            let backend = backend_by_name(backend_name).expect("registered");
            let design = compiler.synthesize(backend.as_ref(), "fir", &opts)?;
            let out = simulate_design(&design, &args)?;
            assert_eq!(out.arrays[1].1, expected, "{backend_name} wrong on {coding}");
            let cycles = out.cycles.unwrap();
            let fsmd = design.as_fsmd().expect("clocked");
            let period = fsmd.critical_path(&model) + model.sequential_overhead_ns;
            table.row(vec![
                coding.to_string(),
                backend_name.to_string(),
                cycles.to_string(),
                fnum(period),
                fnum(cycles as f64 * period),
                fnum(design.area(&model)),
            ]);
        }
    }
    println!("FIR-8 over 16 samples, identical semantics, three codings:\n");
    println!("{table}");
    println!(
        "\nReadings (the paper's claims, quantified):\n\
         * handelc: fusing assignments cuts cycles (fewer '=' statements)\n\
           but lengthens the critical path — the clock slows down.\n\
         * transmogrifier: unrolling removes iterations (its only cycle\n\
           unit) at a steep area and clock-period price.\n\
         * c2v: the compiler's schedule is insensitive to recoding — the\n\
           whole point of compiler-owned timing."
    );
    Ok(())
}
