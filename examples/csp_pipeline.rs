//! Explicit concurrency, Handel-C style: a three-stage producer /
//! transformer / consumer pipeline over rendezvous channels, compared
//! with the same computation written sequentially.
//!
//! ```sh
//! cargo run --example csp_pipeline
//! ```

use chls::{backend_by_name, simulate_design, Compiler, SynthOptions};

const PIPELINE: &str = "
    int run() {
        chan<int> raw;
        chan<int> squared;
        int total = 0;
        par {
            { for (int i = 1; i <= 8; i++) send(raw, i); }
            { for (int j = 0; j < 8; j++) { int v = recv(raw); send(squared, v * v); } }
            { for (int k = 0; k < 8; k++) total = total + recv(squared); }
        }
        return total;
    }
";

const SEQUENTIAL: &str = "
    int run() {
        int total = 0;
        for (int i = 1; i <= 8; i++) {
            int v = i;
            int sq = v * v;
            total = total + sq;
        }
        return total;
    }
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let backend = backend_by_name("handelc").expect("registered");
    let opts = SynthOptions::default();

    let pipe = Compiler::parse(PIPELINE)?;
    let golden = pipe.interpret("run", &[])?;
    println!("golden (threaded interpreter): {:?}", golden.ret.unwrap());

    let d_pipe = pipe.synthesize(backend.as_ref(), "run", &opts)?;
    let r_pipe = simulate_design(&d_pipe, &[])?;

    let seq = Compiler::parse(SEQUENTIAL)?;
    let d_seq = seq.synthesize(backend.as_ref(), "run", &opts)?;
    let r_seq = simulate_design(&d_seq, &[])?;

    assert_eq!(r_pipe.ret, golden.ret);
    assert_eq!(r_seq.ret, golden.ret);
    println!(
        "three-stage CSP pipeline: sum of squares 1..8 = {} in {} cycles",
        r_pipe.ret.unwrap(),
        r_pipe.cycles.unwrap()
    );
    println!(
        "same computation, sequential: {} in {} cycles",
        r_seq.ret.unwrap(),
        r_seq.cycles.unwrap()
    );
    println!(
        "\nThe pipeline overlaps its stages; once primed, one result pops\n\
         out per producer step. This is the concurrency the paper says the\n\
         programmer must *write* — the compiler never invents processes."
    );
    // The FSMD product machine for the pipeline is also a nice artifact:
    let fsmd = d_pipe.as_fsmd().expect("clocked");
    println!(
        "\nproduct machine: {} states, {} registers, {} channels synchronized",
        fsmd.states.len(),
        fsmd.regs.len(),
        2
    );
    Ok(())
}
