//! The structural paradigm (Ocapi / PDL++ / structural SystemC): "the
//! user's C++ program runs to generate a data structure that represents
//! hardware." Here the user's *Rust* program builds a GCD datapath state
//! by state — each state is one cycle, by construction — then simulates
//! it and emits Verilog.
//!
//! ```sh
//! cargo run --example ocapi_builder
//! ```

use chls::interp::ArgValue;
use chls_frontend::IntType;
use chls_ir::BinKind;
use chls_rtl::builder::FsmdBuilder;
use chls_rtl::{fsmd_to_verilog, CostModel, Rv};
use chls_sim::fsmd_sim::simulate;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ty = IntType::new(32, true);
    let mut b = FsmdBuilder::new("gcd_structural");

    // Ports and registers — explicit structure, not compiled from C.
    let a_in = b.input("a_in", ty, 0);
    let b_in = b.input("b_in", ty, 1);
    let a = b.reg("a", ty, 0);
    let bb = b.reg("b", ty, 0);

    // States: the designer decides what happens in each cycle.
    let s_load = b.state();
    let s_step = b.state();
    let s_done = b.state();

    b.at(s_load).set(a, a_in).set(bb, b_in).goto(s_step);

    // One Euclid step per cycle, mux-gated against the exit condition.
    let b_is_zero = b.eq(b.get(bb), Rv::konst(0, ty));
    let remainder = Rv::bin(BinKind::Rem, ty, b.get(a), b.get(bb));
    let a_next = b.mux(b_is_zero.clone(), b.get(a), b.get(bb));
    let b_next = b.mux(b_is_zero.clone(), b.get(bb), remainder);
    b.at(s_step)
        .set(a, a_next)
        .set(bb, b_next)
        .branch(b_is_zero, s_done, s_step);

    b.at(s_done).done();
    let result = b.get(a);
    let fsmd = b.returning(result).finish();

    // Simulate.
    let r = simulate(&fsmd, &[ArgValue::Scalar(1071), ArgValue::Scalar(462)], 10_000)?;
    println!("gcd(1071, 462) = {} in {} cycles", r.ret.unwrap(), r.cycles);

    // Cost report.
    let model = CostModel::new();
    println!(
        "area = {:.0} gates, min clock period = {:.2} ns (fmax {:.0} MHz)",
        fsmd.area(&model),
        fsmd.critical_path(&model) + model.sequential_overhead_ns,
        fsmd.fmax_mhz(&model)
    );

    // Emit Verilog.
    println!("\n// ---- generated Verilog ----\n{}", fsmd_to_verilog(&fsmd));
    Ok(())
}
