//! Loop pipelining walkthrough: the same FIR kernel synthesized
//! sequentially and as an overlapped (modulo-scheduled) pipeline, plus
//! what each enabler — if-conversion and affine dependence analysis —
//! contributes on kernels that need it.
//!
//! ```sh
//! cargo run --example loop_pipelining
//! ```

use chls::interp::ArgValue;
use chls::{backend_by_name, fnum, simulate_design, Compiler, SynthOptions, Table};
use chls_opt::dep::AliasPrecision;
use chls_rtl::CostModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let backend = backend_by_name("c2v").expect("c2v is registered");
    let model = CostModel::new();

    // 1. A streaming MAC loop: the pipeliner's bread and butter.
    let fir = "
        const int coeff[8] = {1, 2, 3, 4, 4, 3, 2, 1};
        void fir(int x[64], int y[64]) {
            for (int n = 7; n < 64; n++) {
                int acc = 0;
                for (int k = 0; k < 8; k++) {
                    acc += coeff[k] * x[n - k];
                }
                y[n] = acc >> 4;
            }
        }
    ";
    let fir_args = [
        ArgValue::Array((0..64).map(|i| (i * 7 + 3) % 50).collect()),
        ArgValue::Array(vec![0; 64]),
    ];

    println!("1. FIR-64, sequential vs. pipelined c2v\n");
    let compiler = Compiler::parse(fir)?;
    let mut t = Table::new(vec!["schedule", "cycles", "clock (ns)", "area (gates)", "speedup"]);
    let mut base_cycles = 0;
    for (label, pipeline) in [("sequential", false), ("pipelined", true)] {
        let opts = SynthOptions {
            pipeline_loops: pipeline,
            ..Default::default()
        };
        let design = compiler.synthesize(backend.as_ref(), "fir", &opts)?;
        let out = simulate_design(&design, &fir_args)?;
        let cycles = out.cycles.unwrap();
        if !pipeline {
            base_cycles = cycles;
        }
        let chls::Design::Fsmd(f) = &design else {
            unreachable!("c2v emits FSMDs")
        };
        t.row(vec![
            label.to_string(),
            cycles.to_string(),
            fnum(f.critical_path(&model) + model.sequential_overhead_ns),
            format!("{:.0}", design.area(&model)),
            fnum(base_cycles as f64 / cycles as f64),
        ]);
    }
    println!("{t}");
    println!(
        "The inner MAC loop issues one iteration per window instead of\n\
         serializing load->multiply->accumulate; the accumulator recurrence\n\
         is honored through the modulo schedule's carried edges.\n"
    );

    // 2. What if-conversion buys: a saturating (clamped) accumulation,
    // whose body branches every iteration.
    let clamp = "
        int clamp_sum(int a[32], int lo, int hi) {
            int acc = 0;
            for (int i = 0; i < 32; i++) {
                int v = a[i];
                if (v < lo) { v = lo; } else { if (v > hi) { v = hi; } }
                acc = acc + v;
            }
            return acc;
        }
    ";
    let clamp_args = [
        ArgValue::Array((0..32).map(|i| (i * 37 % 300) - 100).collect()),
        ArgValue::Scalar(0),
        ArgValue::Scalar(100),
    ];
    println!("2. Branchy body: if-conversion is the enabler\n");
    let compiler = Compiler::parse(clamp)?;
    let mut t = Table::new(vec!["configuration", "cycles"]);
    for (label, pipeline, ifconv) in [
        ("sequential", false, true),
        ("pipelined, no if-conversion", true, false),
        ("pipelined + if-conversion", true, true),
    ] {
        let opts = SynthOptions {
            pipeline_loops: pipeline,
            pipeline_if_convert: ifconv,
            ..Default::default()
        };
        let design = compiler.synthesize(backend.as_ref(), "clamp_sum", &opts)?;
        let out = simulate_design(&design, &clamp_args)?;
        t.row(vec![label.to_string(), out.cycles.unwrap().to_string()]);
    }
    println!("{t}");
    println!(
        "Without predication the conditional body is not a single-block\n\
         loop, so the pipeliner must fall back; with it, both arms become\n\
         Selects and the loop overlaps.\n"
    );

    // 3. What affine dependence analysis buys: an in-place update whose
    // store only *looks* like it conflicts with the next iteration's load.
    let inplace = "
        void scale(int a[32]) {
            for (int i = 0; i < 32; i++) a[i] = (a[i] * 5) >> 1;
        }
    ";
    let inplace_args = [ArgValue::Array((0..32).map(|i| i - 7).collect())];
    println!("3. In-place update: affine dependence analysis is the enabler\n");
    let compiler = Compiler::parse(inplace)?;
    let mut t = Table::new(vec!["configuration", "cycles"]);
    for (label, pipeline, precision) in [
        ("sequential", false, AliasPrecision::Basic),
        ("pipelined, no analysis", true, AliasPrecision::None),
        ("pipelined + affine analysis", true, AliasPrecision::Basic),
    ] {
        let opts = SynthOptions {
            pipeline_loops: pipeline,
            precision,
            ..Default::default()
        };
        let design = compiler.synthesize(backend.as_ref(), "scale", &opts)?;
        let out = simulate_design(&design, &inplace_args)?;
        t.row(vec![label.to_string(), out.cycles.unwrap().to_string()]);
    }
    println!("{t}");
    println!(
        "`a[i]` this iteration and `a[i+1]` next iteration never alias\n\
         (the addresses differ by the stride), but only the analysis can\n\
         prove it; without it the carried store->load edge pins the II.\n\n\
         Every configuration above simulates bit-exactly against the\n\
         golden interpreter — run `cargo test --test pipeline_prop` for\n\
         the property-based version of that claim."
    );
    Ok(())
}
