//! CASH's pitch, reproduced: compile sequential C to an asynchronous
//! dataflow circuit, inspect its Pegasus structure (mu/eta/token nodes),
//! and race it against a clocked implementation whose one-size-fits-all
//! clock must accommodate the slowest operation.
//!
//! ```sh
//! cargo run --example async_dataflow
//! ```

use chls::interp::ArgValue;
use chls::{backend_by_name, fnum, simulate_design, Compiler, Design, SynthOptions};
use chls_rtl::CostModel;

const SRC: &str = "
    int kernel(int a[8], int n) {
        int acc = 0;
        for (int i = 0; i < n; i++) {
            int q = a[i] / 3;       // slow divider, off the critical chain
            acc = acc + a[i] + q;
        }
        return acc;
    }
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = [ArgValue::Array((1..=8).map(|i| i * 11).collect()), ArgValue::Scalar(8)];
    let compiler = Compiler::parse(SRC)?;
    let golden = compiler.interpret("kernel", &args)?;
    let opts = SynthOptions::default();
    let model = CostModel::new();

    // Asynchronous: CASH.
    let cash = backend_by_name("cash").expect("registered");
    let d_async = compiler.synthesize(cash.as_ref(), "kernel", &opts)?;
    let r_async = simulate_design(&d_async, &args)?;
    assert_eq!(r_async.ret, golden.ret);
    if let Design::Dataflow(g) = &d_async {
        println!("Pegasus-style circuit for the kernel:");
        for (kind, n) in g.histogram() {
            println!("  {kind:<8} x {n}");
        }
        println!();
    }

    // Synchronous: C2Verilog at a clock long enough for the divider.
    let c2v = backend_by_name("c2v").expect("registered");
    let slow_clock = SynthOptions {
        clock_period_ns: model.delay(chls_rtl::OpClass::DivRem, 32) + 0.2,
        ..SynthOptions::default()
    };
    let d_sync = compiler.synthesize(c2v.as_ref(), "kernel", &slow_clock)?;
    let r_sync = simulate_design(&d_sync, &args)?;
    assert_eq!(r_sync.ret, golden.ret);

    // Compare wall-clock: async time units are 10 ps.
    let async_ns = r_async.time_units.unwrap() as f64 / 100.0;
    let sync_ns =
        r_sync.cycles.unwrap() as f64 * (slow_clock.clock_period_ns + model.sequential_overhead_ns);
    println!("result (both): {}", r_async.ret.unwrap());
    println!(
        "asynchronous completion: {} ns   ({} node firings)",
        fnum(async_ns),
        r_async.time_units.unwrap()
    );
    println!(
        "synchronous completion:  {} ns   ({} cycles at a divider-limited clock)",
        fnum(sync_ns),
        r_sync.cycles.unwrap()
    );
    println!(
        "\nEach async operation takes only its own latency; the clocked\n\
         design pays the divider's latency every cycle. That asymmetry is\n\
         why CASH 'is unique because it generates asynchronous hardware'."
    );
    Ok(())
}
