//! Quickstart: compile one C-like kernel with every synthesis paradigm
//! from the paper's Table 1 and compare what comes out.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use chls::interp::ArgValue;
use chls::{backends, fnum, simulate_design, Compiler, SynthOptions, Table};
use chls_rtl::CostModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = "
        int gcd(int a, int b) {
            while (b != 0) {
                int t = b;
                b = a % b;
                a = t;
            }
            return a;
        }
    ";
    let args = [ArgValue::Scalar(1071), ArgValue::Scalar(462)];

    println!("The paper's Table 1, regenerated from the backend registry:\n");
    println!("{}", chls::taxonomy_table());

    let compiler = Compiler::parse(source)?;
    let golden = compiler.interpret("gcd", &args)?;
    println!("golden model: gcd(1071, 462) = {:?}\n", golden.ret.unwrap());

    let model = CostModel::new();
    let opts = SynthOptions::default();
    let mut table = Table::new(vec![
        "backend", "result", "cycles", "async time", "area (gates)", "verdict",
    ]);
    for backend in backends() {
        let name = backend.info().name;
        match compiler.synthesize(backend.as_ref(), "gcd", &opts) {
            Err(e) => table.row(vec![
                name.to_string(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                format!("refused: {e}"),
            ]),
            Ok(design) => {
                let out = simulate_design(&design, &args)?;
                let verdict = if out.ret == golden.ret { "matches golden" } else { "MISMATCH" };
                table.row(vec![
                    name.to_string(),
                    format!("{:?}", out.ret.unwrap_or(0)),
                    out.cycles.map(|c| c.to_string()).unwrap_or_else(|| "-".into()),
                    out.time_units
                        .map(|t| format!("{t} units"))
                        .unwrap_or_else(|| "-".into()),
                    fnum(design.area(&model)),
                    verdict.to_string(),
                ]);
            }
        }
    }
    println!("{table}");
    println!(
        "Cones refuses: its combinational paradigm cannot wait out a\n\
         data-dependent loop — exactly the restriction the paper describes."
    );
    Ok(())
}
