//! Cross-validation at the structural level: every clocked backend's FSMD
//! is additionally lowered to a flat netlist (`chls_rtl::fsmd_to_netlist`)
//! and stepped with the levelized netlist simulator. Result, final memory
//! contents, and the exact cycle count must agree with the FSMD
//! simulator — two independent execution semantics of the same hardware.

use chls::interp::ArgValue;
use chls::{backend_by_name, Compiler, Design, SynthOptions};
use chls_rtl::fsmd_to_netlist;
use chls_sim::netlist_sim::NetlistSim;

/// (cycles, ret, final RAM images) from a finished netlist run.
type NetlistRun = (u64, Option<i64>, Vec<Vec<i64>>);

/// Steps the netlist until `done` reads 1, returning (cycles, ret, rams).
fn run_netlist(nl: &chls_rtl::Netlist, max_cycles: u64) -> Result<NetlistRun, String> {
    let mut sim = NetlistSim::new(nl).map_err(|e| e.to_string())?;
    let has_ret = nl.outputs.iter().any(|(n, _)| n == "ret");
    for cycle in 1..=max_cycles {
        sim.step().map_err(|e| e.to_string())?;
        if sim.output("done").map_err(|e| e.to_string())? == 1 {
            let ret = if has_ret {
                Some(sim.output("ret").map_err(|e| e.to_string())?)
            } else {
                None
            };
            let rams = (0..nl.rams.len()).map(|i| sim.ram(i).to_vec()).collect();
            return Ok((cycle, ret, rams));
        }
    }
    Err("netlist never finished".to_string())
}

fn crossval(backend_name: &str, bench_name: &str) {
    let bench = chls::benchmark(bench_name).expect("exists");
    let compiler = Compiler::parse(bench.source).expect("parses");
    let backend = backend_by_name(backend_name).expect("registered");
    let design = match compiler.synthesize(backend.as_ref(), bench.entry, &SynthOptions::default())
    {
        Ok(d) => d,
        Err(e) => panic!("{backend_name} refused {bench_name}: {e}"),
    };
    let Design::Fsmd(fsmd) = &design else {
        panic!("{backend_name} is not a clocked backend");
    };
    // FSMD simulation.
    let fsmd_result =
        chls_sim::fsmd_sim::simulate(fsmd, &bench.args, 5_000_000).expect("fsmd simulates");

    // Netlist simulation: bake the argument arrays into RAM init and
    // scalar args into input ports.
    let mut nl = fsmd_to_netlist(fsmd);
    for (mi, m) in fsmd.mems.iter().enumerate() {
        if let Some(p) = m.param_index {
            if let Some(ArgValue::Array(contents)) = bench.args.get(p) {
                let mut v = contents.clone();
                v.resize(m.len, 0);
                nl.rams[mi].init = Some(v);
            }
        }
    }
    let mut sim_inputs: Vec<(String, i64)> = Vec::new();
    for (i, (name, _)) in fsmd.inputs.iter().enumerate() {
        let p = fsmd.input_params[i];
        if let Some(ArgValue::Scalar(v)) = bench.args.get(p) {
            sim_inputs.push((name.clone(), *v));
        }
    }
    // Wrap run_netlist with inputs applied.
    let mut sim = NetlistSim::new(&nl).expect("builds");
    for (name, v) in &sim_inputs {
        sim.set_input(name.clone(), *v);
    }
    let has_ret = nl.outputs.iter().any(|(n, _)| n == "ret");
    let mut finished = None;
    for cycle in 1..=5_000_000u64 {
        sim.step().expect("steps");
        if sim.output("done").expect("done") == 1 {
            let ret = if has_ret {
                Some(sim.output("ret").expect("ret"))
            } else {
                None
            };
            let rams: Vec<Vec<i64>> =
                (0..nl.rams.len()).map(|i| sim.ram(i).to_vec()).collect();
            finished = Some((cycle, ret, rams));
            break;
        }
    }
    let (nl_cycles, nl_ret, nl_rams) =
        finished.unwrap_or_else(|| panic!("{backend_name}/{bench_name}: netlist never finished"));

    assert_eq!(
        nl_ret, fsmd_result.ret,
        "{backend_name}/{bench_name}: return mismatch"
    );
    assert_eq!(
        nl_cycles, fsmd_result.cycles,
        "{backend_name}/{bench_name}: cycle-count mismatch"
    );
    for (mi, m) in fsmd.mems.iter().enumerate() {
        if m.len > 0 {
            assert_eq!(
                nl_rams[mi], fsmd_result.mems[mi],
                "{backend_name}/{bench_name}: memory `{}` mismatch",
                m.name
            );
        }
    }
    let _ = run_netlist; // silence when unused in narrow cfgs
}

#[test]
fn c2v_netlists_match_fsmd() {
    for bench in ["gcd", "dot8", "fib16", "max8", "bubble8", "histogram"] {
        crossval("c2v", bench);
    }
}

#[test]
fn handelc_netlists_match_fsmd() {
    for bench in ["gcd", "dot8", "fib16", "popcount", "vecscale"] {
        crossval("handelc", bench);
    }
}

#[test]
fn transmogrifier_netlists_match_fsmd() {
    for bench in ["gcd", "dot8", "isqrt", "max8"] {
        crossval("transmogrifier", bench);
    }
}

#[test]
fn hardwarec_netlists_match_fsmd() {
    for bench in ["gcd", "dot8", "crc32", "fib16"] {
        crossval("hardwarec", bench);
    }
}

#[test]
fn pipelined_c2v_netlists_match_fsmd() {
    // The pipelined kernels use guarded actions and Cases dispatch — the
    // structural lowering must reproduce them cycle for cycle too.
    use chls_sim::interp::ArgValue as A;
    let backend = backend_by_name("c2v").expect("registered");
    let opts = SynthOptions {
        pipeline_loops: true,
        ..Default::default()
    };
    for bench_name in ["dot8", "fib16", "vecscale", "popcount", "histogram"] {
        let bench = chls::benchmark(bench_name).expect("exists");
        let compiler = Compiler::parse(bench.source).expect("parses");
        let design = compiler
            .synthesize(backend.as_ref(), bench.entry, &opts)
            .unwrap_or_else(|e| panic!("{bench_name}: {e}"));
        let Design::Fsmd(fsmd) = &design else { unreachable!() };
        let fsmd_result =
            chls_sim::fsmd_sim::simulate(fsmd, &bench.args, 5_000_000).expect("fsmd simulates");
        let mut nl = fsmd_to_netlist(fsmd);
        for (mi, m) in fsmd.mems.iter().enumerate() {
            if let Some(p) = m.param_index {
                if let Some(A::Array(contents)) = bench.args.get(p) {
                    let mut v = contents.clone();
                    v.resize(m.len, 0);
                    nl.rams[mi].init = Some(v);
                }
            }
        }
        let mut sim = NetlistSim::new(&nl).expect("builds");
        for (i, (name, _)) in fsmd.inputs.iter().enumerate() {
            if let Some(A::Scalar(v)) = bench.args.get(fsmd.input_params[i]) {
                sim.set_input(name.clone(), *v);
            }
        }
        let mut cycles = 0u64;
        loop {
            cycles += 1;
            assert!(cycles < 5_000_000, "{bench_name}: never finished");
            sim.step().expect("steps");
            if sim.output("done").expect("done") == 1 {
                break;
            }
        }
        assert_eq!(cycles, fsmd_result.cycles, "{bench_name}: cycle mismatch");
        if nl.outputs.iter().any(|(n, _)| n == "ret") {
            assert_eq!(
                Some(sim.output("ret").expect("ret")),
                fsmd_result.ret,
                "{bench_name}: return mismatch"
            );
        }
    }
}
