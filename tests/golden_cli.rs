//! Golden pin of every verb's one-shot CLI output (text and `--json`).
//!
//! The files under `tests/golden/` were captured from the `chls` binary
//! immediately *before* the verb dispatch was rerouted through
//! `chls::service::handle` (and immediately after the envelope gained
//! its `"schema"` field, the one deliberate JSON change of that PR), so
//! this suite proves the service-layer refactor is byte-identical: same
//! stdout, same exit codes, flag for flag.
//!
//! Wall-clock fields (`report`'s per-phase timings and parse time) are
//! the only nondeterministic bytes; [`normalize`] rewrites them — and
//! nothing else — to a fixed token on both sides of the diff.

use std::path::PathBuf;
use std::process::{Command, Output};
use std::sync::Once;

fn chls_bin() -> PathBuf {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let bin = root.join("target/release/chls");
    static BUILD: Once = Once::new();
    BUILD.call_once(|| {
        if !bin.exists() {
            let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
            let status = Command::new(cargo)
                .args(["build", "--release", "-p", "chls", "--bins"])
                .current_dir(&root)
                .status()
                .expect("spawn cargo build");
            assert!(status.success(), "building the chls binary failed");
        }
    });
    bin
}

fn chls(args: &[&str]) -> Output {
    Command::new(chls_bin())
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("run chls")
}

/// Rewrites wall-clock measurements to a fixed token.
///
/// * Text tables and headers print times with exactly three fractional
///   digits (`parse 0.034 ms`, `| 0.207    |`); no other field does
///   (`fnum` emits at most two), so `\d+.\d{3}` → `#` is surgical.
/// * JSON carries `"parse_seconds":<n>` and `"seconds":<n>`; their
///   number values become `0`.
fn normalize(s: &str) -> String {
    let mut out: Vec<u8> = Vec::with_capacity(s.len());
    let b = s.as_bytes();
    let mut i = 0;
    while i < b.len() {
        // JSON time keys: skip the number that follows.
        let mut replaced_key = false;
        for key in ["\"parse_seconds\":", "\"seconds\":"] {
            if b[i..].starts_with(key.as_bytes()) {
                out.extend_from_slice(key.as_bytes());
                i += key.len();
                while i < b.len() && matches!(b[i], b'0'..=b'9' | b'.' | b'-' | b'+' | b'e' | b'E')
                {
                    i += 1;
                }
                out.push(b'0');
                replaced_key = true;
                break;
            }
        }
        if replaced_key {
            continue;
        }
        // Text times: digits '.' exactly three digits, not followed by
        // another digit.
        if b[i].is_ascii_digit() {
            let start = i;
            while i < b.len() && b[i].is_ascii_digit() {
                i += 1;
            }
            if i + 3 < b.len()
                && b[i] == b'.'
                && b[i + 1].is_ascii_digit()
                && b[i + 2].is_ascii_digit()
                && b[i + 3].is_ascii_digit()
                && !b.get(i + 4).is_some_and(u8::is_ascii_digit)
            {
                out.push(b'#');
                i += 4;
            } else {
                out.extend_from_slice(&b[start..i]);
            }
            continue;
        }
        out.push(b[i]);
        i += 1;
    }
    String::from_utf8(out).expect("normalization preserves UTF-8")
}

/// One pinned invocation: args, golden file, expected exit success.
const CASES: &[(&[&str], &str, bool)] = &[
    (&["backends"], "backends.golden", true),
    (&["run", "examples/chl/gcd.chl", "main", "1071", "462"], "run_gcd.golden", true),
    (
        &["check", "--jobs", "2", "examples/chl/gcd.chl", "main", "48", "36"],
        "check_gcd.golden",
        true,
    ),
    (
        &["check", "--jobs", "2", "--json", "examples/chl/gcd.chl", "main", "48", "36"],
        "check_gcd_json.golden",
        true,
    ),
    (&["ir", "examples/chl/gcd.chl", "main"], "ir_gcd.golden", true),
    (
        &["lint", "examples/chl/par_pipeline.chl", "main"],
        "lint_par_pipeline.golden",
        true,
    ),
    (
        &["lint", "--json", "examples/chl/gcd.chl", "main"],
        "lint_gcd_json.golden",
        true,
    ),
    (
        &["rewrite", "examples/chl/software/fact.chl", "fact"],
        "rewrite_fact.golden",
        true,
    ),
    (
        &["rewrite", "--json", "examples/chl/software/bitcount.chl", "bitcount"],
        "rewrite_bitcount_json.golden",
        true,
    ),
    (
        &["flow", "examples/chl/stream_multirate.chl", "main"],
        "flow_stream.golden",
        true,
    ),
    (
        &["flow", "--json", "examples/chl/stream_multirate.chl", "main"],
        "flow_stream_json.golden",
        true,
    ),
    (
        &["synth", "c2v", "examples/chl/gcd.chl", "main", "48", "36"],
        "synth_gcd.golden",
        true,
    ),
    (
        &["verilog", "--pipeline", "c2v", "examples/chl/fir.chl", "main"],
        "verilog_fir.golden",
        true,
    ),
    (
        &[
            "equiv", "--backend", "handelc", "--backend", "transmogrifier", "--bound", "60",
            "examples/chl/checksum.chl", "main",
        ],
        "equiv_checksum.golden",
        true,
    ),
    (
        &[
            "equiv", "--backend", "handelc", "--backend", "transmogrifier", "--bound", "60",
            "--json", "examples/chl/checksum.chl", "main",
        ],
        "equiv_checksum_json.golden",
        true,
    ),
    (
        &["explore", "--all", "--seq-bound", "24", "examples/chl/blend.chl", "main"],
        "explore_blend.golden",
        true,
    ),
    (
        &["explore", "--all", "--seq-bound", "24", "--json", "examples/chl/blend.chl", "main"],
        "explore_blend_json.golden",
        true,
    ),
    (
        &["report", "--backend", "c2v", "examples/chl/fir.chl", "main"],
        "report_fir.golden",
        true,
    ),
    (
        &["report", "--backend", "c2v", "--json", "examples/chl/fir.chl", "main"],
        "report_fir_json.golden",
        true,
    ),
];

#[test]
fn every_verb_matches_its_pre_refactor_golden() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    for (args, golden, want_success) in CASES {
        let o = chls(args);
        assert_eq!(
            o.status.success(),
            *want_success,
            "exit status changed for {args:?}: stderr: {}",
            String::from_utf8_lossy(&o.stderr)
        );
        let got = normalize(&String::from_utf8_lossy(&o.stdout));
        let want_raw = std::fs::read_to_string(root.join("tests/golden").join(golden))
            .unwrap_or_else(|e| panic!("missing golden {golden}: {e}"));
        let want = normalize(&want_raw);
        assert_eq!(
            got, want,
            "`chls {}` diverged from tests/golden/{golden}",
            args.join(" ")
        );
    }
}

#[test]
fn normalizer_touches_only_wall_clock_fields() {
    assert_eq!(normalize("(parse 0.034 ms)"), "(parse # ms)");
    assert_eq!(normalize("| 1     | 0.207    |"), "| 1     | #    |");
    assert_eq!(
        normalize(r#""parse_seconds":0.000030244,"x":1"#),
        r#""parse_seconds":0,"x":1"#
    );
    assert_eq!(
        normalize(r#"{"phase":"sim.fsmd","seconds":2.9e-5}"#),
        r#"{"phase":"sim.fsmd","seconds":0}"#
    );
    // Not times: integers, one/two-decimal figures, comma lists.
    assert_eq!(normalize("area 15740 gates 14276.5"), "area 15740 gates 14276.5");
    assert_eq!(normalize("args [1,2,3]"), "args [1,2,3]");
    assert_eq!(normalize("1.2345"), "1.2345");
    assert_eq!(normalize("clock: 2.00 ns"), "clock: 2.00 ns");
}
