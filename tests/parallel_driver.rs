//! The parallel conformance driver must be a pure performance feature:
//! verdicts, their order, and their rendering are byte-identical at any
//! job count. These tests pin that down with a differential comparison,
//! and pin the single-snapshot `eval_outputs` fast path against the
//! one-port-at-a-time `output` reference.

use chls::interp::ArgValue;
use chls::{backend_by_name, check_conformance_with_jobs, Compiler, Design, SynthOptions};
use chls_rtl::fsmd_to_netlist;
use chls_sim::netlist_sim::NetlistSim;

/// Renders a full conformance sweep at a given job count.
fn sweep(bench_name: &str, jobs: usize) -> String {
    let bench = chls::benchmark(bench_name).expect("benchmark exists");
    let results = check_conformance_with_jobs(bench.source, bench.entry, &bench.args, jobs)
        .expect("conformance runs");
    format!("{results:?}")
}

/// jobs=1 (sequential path) and jobs=8 (threaded path) must produce
/// byte-identical verdict lists on representative seed programs: a
/// loop-carried scalar kernel, an array-writing kernel, and a
/// multiplier-heavy kernel.
#[test]
fn verdicts_identical_across_job_counts() {
    for name in ["gcd", "bubble8", "matmul4"] {
        let sequential = sweep(name, 1);
        let threaded = sweep(name, 8);
        assert_eq!(
            sequential, threaded,
            "{name}: parallel driver changed the verdicts"
        );
        // A weird job count must also agree (work claiming is dynamic,
        // so any split of the backend list must merge back in order).
        assert_eq!(sequential, sweep(name, 3), "{name}: jobs=3 differs");
    }
}

/// With `--jit` the conformance driver compiles each FSMD once and runs
/// the native code from worker threads. Verdicts must stay byte-identical
/// to the interpreter sweep at every job count.
#[test]
fn jit_verdicts_identical_across_job_counts() {
    use chls::{check_conformance_with_compile_options, CompileOptions};
    for name in ["gcd", "bubble8", "matmul4"] {
        let bench = chls::benchmark(name).expect("benchmark exists");
        let jit_sweep = |jobs: usize| {
            let opts = CompileOptions::new().jobs(jobs).jit(true);
            let results =
                check_conformance_with_compile_options(bench.source, bench.entry, &bench.args, &opts)
                    .expect("conformance runs");
            format!("{results:?}")
        };
        let sequential = jit_sweep(1);
        let threaded = jit_sweep(8);
        assert_eq!(
            sequential, threaded,
            "{name}: jit verdicts differ between jobs=1 and jobs=8"
        );
        assert_eq!(
            sequential,
            sweep(name, 1),
            "{name}: jit verdicts differ from the interpreter sweep"
        );
    }
}

/// `eval_outputs` evaluates the netlist once and serves every port from
/// that snapshot; `output` re-evaluates per port. Both views of the same
/// pre-clock-edge state must agree on every declared output.
#[test]
fn eval_outputs_matches_per_port_reads() {
    let bench = chls::benchmark("gcd").expect("benchmark exists");
    let compiler = Compiler::parse(bench.source).expect("parses");
    let backend = backend_by_name("c2v").expect("registered");
    let design = compiler
        .synthesize(backend.as_ref(), bench.entry, &SynthOptions::default())
        .expect("synthesizes");
    let Design::Fsmd(fsmd) = &design else {
        panic!("c2v is a clocked backend");
    };
    let nl = fsmd_to_netlist(fsmd);
    assert!(
        nl.outputs.len() >= 2,
        "need several ports for the test to mean anything"
    );
    let mut sim = NetlistSim::new(&nl).expect("builds");
    for (i, (name, _)) in fsmd.inputs.iter().enumerate() {
        if let Some(ArgValue::Scalar(v)) = bench.args.get(fsmd.input_params[i]) {
            sim.set_input(name.clone(), *v);
        }
    }
    // Compare at reset and across several clock edges, including cycles
    // where `done` flips — every port, every time.
    for cycle in 0..24 {
        let snapshot = sim.eval_outputs().expect("evaluates");
        assert_eq!(snapshot.len(), nl.outputs.len());
        for &(name, got) in &snapshot {
            let reference = sim.output(name).expect("per-port read");
            assert_eq!(got, reference, "cycle {cycle}, port {name}");
        }
        sim.step().expect("steps");
    }
}
