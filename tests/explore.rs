//! Integration tests for `chls explore`: determinism across worker
//! counts (the Pareto frontier must not depend on evaluation order),
//! cache warm/cold equivalence (a warm sweep must replay the same
//! frontier, including synthesis-time-only metrics like the II), and
//! daemon parity (the serve path returns the one-shot bytes).

use chls::jsonin::{parse, Value};
use chls::serve::{Client, ServeConfig, Server};
use chls::service::{self, Source};
use chls::{CompileOptions, Request, ServiceCtx};

/// Small enough to sweep quickly, rich enough to have a real frontier:
/// a loop (unrollable, pipelinable) over a multiply-accumulate.
const DOT4: &str = "int dot4(int a, int b) {
    int s = 0;
    for (int i = 0; i < 4; i++) {
        s = (s + a * b + i) & 65535;
    }
    return s;
}";

fn explore_req(src: &str, entry: &str, backend: Option<&str>, jobs: usize) -> Request {
    Request {
        verb: "explore".to_string(),
        source: Source::Text(src.to_string()),
        entry: entry.to_string(),
        options: CompileOptions::new().backend(backend).jobs(jobs),
        ..Request::default()
    }
}

#[test]
fn frontier_is_byte_identical_across_job_counts() {
    // Same request, 1 worker vs 8: the JSON (frontier membership, point
    // order, areas, latencies, certifications) must not move.
    let ctx1 = ServiceCtx::uncached();
    let ctx8 = ServiceCtx::uncached();
    let serial = service::handle(&explore_req(DOT4, "dot4", None, 1), &ctx1)
        .expect("serial explore handles");
    let parallel = service::handle(&explore_req(DOT4, "dot4", None, 8), &ctx8)
        .expect("parallel explore handles");
    assert!(serial.response.ok && parallel.response.ok);
    assert_eq!(
        serial.response.data, parallel.response.data,
        "explore JSON must be byte-identical for --jobs 1 vs --jobs 8"
    );
    assert_eq!(serial.response.text, parallel.response.text);
}

#[test]
fn repeated_sweeps_are_byte_identical() {
    // Two cold sweeps in fresh contexts: no run-to-run drift (HashMap
    // iteration order must never leak into synthesis results).
    let a = service::handle(&explore_req(DOT4, "dot4", None, 4), &ServiceCtx::uncached())
        .expect("first sweep handles");
    let b = service::handle(&explore_req(DOT4, "dot4", None, 4), &ServiceCtx::uncached())
        .expect("second sweep handles");
    assert_eq!(a.response.data, b.response.data, "cold sweeps must agree");
}

#[test]
fn warm_sweep_replays_the_cold_frontier() {
    // One shared context: the second sweep hits the response cache and
    // must return the identical Arc'd response. A third sweep with the
    // response tier cleared still has warm eval records — the frontier
    // (including II, which only exists at synthesis time) must match.
    let ctx = ServiceCtx::with_cache(std::sync::Arc::new(chls::cache::ArtifactCache::default()));
    let req = explore_req(DOT4, "dot4", None, 4);
    let cold = service::handle(&req, &ctx).expect("cold sweep handles");
    assert!(!cold.cached, "first sweep must be a miss");
    let warm = service::handle(&req, &ctx).expect("warm sweep handles");
    assert!(warm.cached, "second identical sweep must hit");
    assert_eq!(cold.response.data, warm.response.data);
    assert_eq!(cold.response.text, warm.response.text);
}

#[test]
fn budget_prunes_but_keeps_json_shape() {
    let mut req = explore_req(DOT4, "dot4", Some("cyber"), 4);
    req.budget = Some(3);
    let h = service::handle(&req, &ServiceCtx::uncached()).expect("budgeted explore handles");
    assert!(h.response.ok);
    let v = parse(&h.response.data).expect("data is JSON");
    assert_eq!(v.get("budget").and_then(Value::as_u64), Some(3));
    assert_eq!(
        v.get("evaluated").and_then(Value::as_u64),
        Some(3),
        "budget must cap full evaluations: {}",
        h.response.data
    );
    let frontier = v.get("frontier").and_then(Value::as_arr).expect("frontier array");
    assert!(!frontier.is_empty() && frontier.len() <= 3);
}

#[test]
fn daemon_explore_matches_one_shot() {
    let mut server = Server::start(&ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        log: false,
        cache_budget: 64 << 20,
    })
    .expect("server binds an ephemeral port");
    let req = explore_req(DOT4, "dot4", Some("cones"), 2);
    let one_shot = service::handle(&req, &ServiceCtx::uncached()).expect("one-shot handles");

    let mut client = Client::connect(&server.addr.to_string()).expect("connects");
    let line = client.call(&req).expect("daemon call succeeds");
    let v = parse(&line).unwrap_or_else(|e| panic!("malformed envelope ({e}): {line}"));
    assert_eq!(v.str_of("tool"), Some("chls"), "{line}");
    assert_eq!(v.get("schema").and_then(Value::as_u64), Some(1), "{line}");
    assert_eq!(v.str_of("verb"), Some("explore"), "{line}");
    assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true), "{line}");
    assert_eq!(
        v.str_of("text").map(str::to_string),
        Some(one_shot.response.text.clone()),
        "daemon text must be the one-shot bytes"
    );

    // Warm repeat through the daemon: cached and identical.
    let again = client.call(&req).expect("warm daemon call succeeds");
    let w = parse(&again).expect("parses");
    assert_eq!(w.get("cached").and_then(Value::as_bool), Some(true), "{again}");
    assert_eq!(
        w.str_of("text").map(str::to_string),
        v.str_of("text").map(str::to_string)
    );
    server.stop();
}

#[test]
fn certified_points_carry_proof_metadata_and_no_refutations() {
    let h = service::handle(&explore_req(DOT4, "dot4", None, 4), &ServiceCtx::uncached())
        .expect("explore handles");
    assert!(h.response.ok, "a refuted point would flip ok=false");
    let v = parse(&h.response.data).expect("data is JSON");
    let frontier = v.get("frontier").and_then(Value::as_arr).expect("frontier array");
    assert!(frontier.len() >= 2, "expected a multi-point frontier");
    let mut certified = 0;
    for p in frontier {
        let cert = p.get("certification").expect("every point is checked");
        let tier = cert.str_of("tier").expect("tier is a string");
        assert_ne!(tier, "refuted", "{}", h.response.data);
        if tier == "certified" {
            certified += 1;
            let method = cert.str_of("method").expect("certified points name a method");
            assert!(
                ["strash", "bdd", "sat"].contains(&method),
                "unexpected proof method {method}"
            );
        }
    }
    assert!(certified >= 1, "expected at least one certified point: {}", h.response.data);
}
