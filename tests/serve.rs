//! Integration tests for the `chls serve` daemon: concurrent clients,
//! cache correctness (a hit must be bit-identical to the cold response
//! and any source/options mutation must miss), one-shot parity (the
//! daemon's `text` is byte-for-byte what the one-shot CLI prints),
//! panic isolation, and graceful shutdown.
//!
//! Everything runs against an embedded [`Server`] on an ephemeral port
//! (`127.0.0.1:0`), so the suite is parallel-safe and needs no fixed
//! port on the host.

use chls::jsonin::{parse, Value};
use chls::serve::{Client, ServeConfig, Server};
use chls::service::{self, Source};
use chls::{Request, ServiceCtx};

const GCD: &str = "int gcd(int a, int b) {
    while (b != 0) { int t = b; b = a % b; a = t; }
    return a;
}";

const MAC4: &str = "int mac4(int a, int b) {
    int s = 0;
    for (int i = 0; i < 4; i++) {
        s = (s + a * a + b) & 4095;
    }
    return s;
}";

const FACT: &str = "uint<32> fact(uint<3> n) {
    if (n <= 1) return 1;
    return (uint<32>)n * fact(n - 1);
}";

fn server() -> Server {
    Server::start(&ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 4,
        log: false,
        cache_budget: 64 << 20,
    })
    .expect("server binds an ephemeral port")
}

fn req(verb: &str, src: &str, entry: &str, args: &[&str]) -> Request {
    Request {
        verb: verb.to_string(),
        source: Source::Text(src.to_string()),
        entry: entry.to_string(),
        args: args.iter().map(ToString::to_string).collect(),
        ..Request::default()
    }
}

/// Parses one reply line and asserts the envelope invariants every
/// serve response must carry.
fn envelope(line: &str) -> Value {
    let v = parse(line).unwrap_or_else(|e| panic!("malformed envelope ({e}): {line}"));
    assert_eq!(v.str_of("tool"), Some("chls"), "{line}");
    assert_eq!(v.get("schema").and_then(Value::as_u64), Some(1), "{line}");
    assert!(v.str_of("verb").is_some(), "{line}");
    assert!(v.get("ok").and_then(Value::as_bool).is_some(), "{line}");
    assert!(v.get("data").is_some(), "{line}");
    assert!(v.get("text").is_some(), "{line}");
    assert!(v.get("cached").and_then(Value::as_bool).is_some(), "{line}");
    v
}

fn ok_of(v: &Value) -> bool {
    v.get("ok").and_then(Value::as_bool).expect("ok is bool")
}

fn cached_of(v: &Value) -> bool {
    v.get("cached").and_then(Value::as_bool).expect("cached is bool")
}

fn text_of(v: &Value) -> String {
    v.str_of("text").expect("text is a string").to_string()
}

/// The raw `data` bytes of an envelope line, for bit-identity checks
/// (parsing would erase formatting differences we want to detect).
fn data_slice(line: &str) -> &str {
    let start = line.find(r#""data":"#).expect("data key") + r#""data":"#.len();
    let end = line.rfind(r#","text":"#).expect("text key");
    &line[start..end]
}

#[test]
fn concurrent_clients_match_one_shot_verdicts() {
    let server = server();
    let addr = server.addr.to_string();
    // The mixed workload every client thread runs. Expected text comes
    // from the same service layer the daemon dispatches into.
    let work: Vec<Request> = vec![
        req("run", GCD, "gcd", &["48", "36"]),
        req("check", MAC4, "mac4", &["3", "5"]),
        req("ir", GCD, "gcd", &[]),
        {
            let mut r = req("synth", MAC4, "mac4", &[]);
            r.options = chls::CompileOptions::new().backend(Some("c2v"));
            r
        },
    ];
    let expected: Vec<(bool, String)> = work
        .iter()
        .map(|r| {
            let h = service::handle(r, &ServiceCtx::uncached()).expect("one-shot handles");
            (h.response.ok, h.response.text.clone())
        })
        .collect();
    std::thread::scope(|scope| {
        for t in 0..8 {
            let addr = &addr;
            let work = &work;
            let expected = &expected;
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connects");
                for i in 0..work.len() * 2 {
                    let k = (t + i) % work.len();
                    let line = client.call(&work[k]).expect("call succeeds");
                    let v = envelope(&line);
                    assert_eq!(v.str_of("verb"), Some(work[k].verb.as_str()));
                    assert_eq!(ok_of(&v), expected[k].0, "{line}");
                    assert_eq!(text_of(&v), expected[k].1, "verdict drift under load");
                }
            });
        }
    });
    // 8 clients × 8 requests over 4 distinct keys: after the first
    // round everything is warm, so hits must dominate. (Exact counts
    // are racy — two threads can both miss a cold key, and the
    // compiler/design tiers count their own gets — so this asserts the
    // shape, not a census.)
    let stats = server.cache().stats();
    assert!(
        stats.hits >= 40 && stats.hits > stats.misses,
        "expected a warm cache, got {stats:?}"
    );
}

#[test]
fn cache_hit_is_bit_identical_and_mutations_invalidate() {
    let server = server();
    let mut client = Client::connect(&server.addr.to_string()).expect("connects");

    let cold = client.call(&req("check", GCD, "gcd", &["48", "36"])).unwrap();
    let warm = client.call(&req("check", GCD, "gcd", &["48", "36"])).unwrap();
    let (vc, vw) = (envelope(&cold), envelope(&warm));
    assert!(!cached_of(&vc), "first request must be a miss");
    assert!(cached_of(&vw), "second identical request must hit");
    assert_eq!(data_slice(&cold), data_slice(&warm), "hit must be bit-identical");
    assert_eq!(text_of(&vc), text_of(&vw));

    // One byte of source: miss.
    let touched = format!("{GCD} ");
    let line = client.call(&req("check", &touched, "gcd", &["48", "36"])).unwrap();
    assert!(!cached_of(&envelope(&line)), "source mutation must invalidate");

    // One option flips: miss (the response key covers CompileOptions).
    let mut narrow = req("check", GCD, "gcd", &["48", "36"]);
    narrow.options = chls::CompileOptions::new().narrow(true);
    let line = client.call(&narrow).unwrap();
    assert!(!cached_of(&envelope(&line)), "option change must invalidate");

    // Different args: miss.
    let line = client.call(&req("check", GCD, "gcd", &["7", "3"])).unwrap();
    assert!(!cached_of(&envelope(&line)), "arg change must invalidate");

    // And the original is still warm after all of that.
    let line = client.call(&req("check", GCD, "gcd", &["48", "36"])).unwrap();
    assert!(cached_of(&envelope(&line)));
}

#[test]
fn daemon_text_is_one_shot_text_for_every_verb() {
    let server = server();
    let mut client = Client::connect(&server.addr.to_string()).expect("connects");
    let mut equiv = req("equiv", MAC4, "mac4", &[]);
    equiv.backends = vec!["handelc".to_string(), "transmogrifier".to_string()];
    equiv.bound = Some(24);
    let mut verilog = req("verilog", GCD, "gcd", &[]);
    verilog.options = chls::CompileOptions::new().backend(Some("c2v"));
    let requests = vec![
        Request { verb: "backends".to_string(), ..Request::default() },
        Request { verb: "schema".to_string(), ..Request::default() },
        req("run", GCD, "gcd", &["48", "36"]),
        req("check", GCD, "gcd", &["48", "36"]),
        req("ir", MAC4, "mac4", &[]),
        req("lint", GCD, "gcd", &[]),
        req("flow", GCD, "gcd", &[]),
        req("rewrite", FACT, "fact", &[]),
        verilog,
        equiv,
    ];
    for r in &requests {
        let local = service::handle(r, &ServiceCtx::uncached()).expect("one-shot handles");
        let line = client.call(r).expect("daemon handles");
        let v = envelope(&line);
        assert_eq!(v.str_of("verb"), Some(r.verb.as_str()));
        assert_eq!(ok_of(&v), local.response.ok, "{}", r.verb);
        assert_eq!(text_of(&v), local.response.text, "text drift on `{}`", r.verb);
        assert_eq!(data_slice(&line), local.response.data, "data drift on `{}`", r.verb);
    }
    // `report` carries wall-clock phase timings, so only the verdict is
    // compared, not the bytes.
    let r = req("report", GCD, "gcd", &["48", "36"]);
    let local = service::handle(&r, &ServiceCtx::uncached()).expect("one-shot report");
    let v = envelope(&client.call(&r).expect("daemon report"));
    assert_eq!(ok_of(&v), local.response.ok);
    assert!(text_of(&v).contains("gcd"), "report text renders");
}

#[test]
fn errors_come_back_as_error_envelopes_not_hangups() {
    let server = server();
    let mut client = Client::connect(&server.addr.to_string()).expect("connects");
    // Unknown verb.
    let v = envelope(&client.call_bare("explode").unwrap());
    assert!(!ok_of(&v));
    // Unreadable path.
    let mut r = req("run", "", "gcd", &[]);
    r.source = Source::Path("/nonexistent/chls-serve-test.chl".to_string());
    let line = client.call(&r).unwrap();
    let v = envelope(&line);
    assert!(!ok_of(&v));
    assert!(line.contains("cannot read"), "{line}");
    // Parse error in the program text.
    let v = envelope(&client.call(&req("run", "int oops(", "oops", &[])).unwrap());
    assert!(!ok_of(&v));
    // The connection survived all three and still serves.
    let v = envelope(&client.call(&req("run", GCD, "gcd", &["48", "36"])).unwrap());
    assert!(ok_of(&v));
}

#[test]
fn worker_panic_is_isolated_from_the_daemon() {
    let server = server();
    let mut client = Client::connect(&server.addr.to_string()).expect("connects");
    // `__panic` is the test-only poison pill: it panics inside a worker.
    let line = client.call_bare("__panic").expect("daemon replies despite the panic");
    let v = envelope(&line);
    assert!(!ok_of(&v));
    assert!(line.contains("panicked"), "{line}");
    // The daemon survives: same connection, fresh request, correct answer.
    let v = envelope(&client.call(&req("run", GCD, "gcd", &["48", "36"])).unwrap());
    assert!(ok_of(&v));
    assert_eq!(text_of(&v), "ret = 12\n");
    // And an independent new connection works too.
    let mut other = Client::connect(&server.addr.to_string()).expect("connects");
    let v = envelope(&other.call_bare("stats").unwrap());
    assert!(ok_of(&v));
}

#[test]
fn stats_verb_reports_service_metrics() {
    let server = server();
    let mut client = Client::connect(&server.addr.to_string()).expect("connects");
    for _ in 0..2 {
        let _ = client.call(&req("run", GCD, "gcd", &["48", "36"])).unwrap();
    }
    let line = client.call_bare("stats").unwrap();
    let v = envelope(&line);
    assert!(ok_of(&v));
    let data = v.get("data").expect("stats data");
    assert!(data.get("uptime_seconds").and_then(Value::as_f64).is_some());
    assert_eq!(data.get("requests").and_then(Value::as_u64), Some(2));
    assert_eq!(data.get("workers").and_then(Value::as_u64), Some(4));
    let cache = data.get("cache").expect("cache block");
    // Cold `run`: response miss + compiler-tier miss. Warm `run`: one
    // response hit (the compiler tier is never consulted on a hit).
    assert_eq!(cache.get("hits").and_then(Value::as_u64), Some(1));
    assert_eq!(cache.get("misses").and_then(Value::as_u64), Some(2));
    let verbs = data.get("verbs").expect("verbs block");
    assert_eq!(verbs.get("run").and_then(Value::as_u64), Some(2));
}

#[test]
fn shutdown_acks_then_stops_accepting() {
    let mut server = server();
    let addr = server.addr.to_string();
    let mut client = Client::connect(&addr).expect("connects");
    let v = envelope(&client.call(&req("run", GCD, "gcd", &["48", "36"])).unwrap());
    assert!(ok_of(&v));
    // The shutdown request is acknowledged *before* the listener dies.
    let line = client.call_bare("shutdown").expect("shutdown is acknowledged");
    let v = envelope(&line);
    assert!(ok_of(&v));
    assert_eq!(
        v.get("data").and_then(|d| d.get("shutting_down")).and_then(Value::as_bool),
        Some(true),
        "{line}"
    );
    // The daemon drains: wait() returns instead of blocking forever.
    server.wait();
    // New work is refused once the listener is gone.
    let refused = Client::connect(&addr).and_then(|mut c| c.call_bare("stats"));
    assert!(refused.is_err(), "daemon still serving after shutdown");
}
