//! Property-based validation of hardware loop pipelining: for random loop
//! kernels — accumulators, branchy bodies that if-convert, in-place array
//! updates that need affine carried-dependence disambiguation — the
//! pipelined c2v design must match the golden interpreter bit-for-bit and
//! must never be slower than the sequential schedule.

use chls::interp::ArgValue;
use chls::{backend_by_name, simulate_design, Compiler, SynthOptions};
use proptest::prelude::*;

/// A random pure expression over the loop variable `i`, the current
/// element `x`, and the running accumulator `acc`.
fn arb_body_expr(depth: u32) -> BoxedStrategy<String> {
    let leaf = prop_oneof![
        Just("i".to_string()),
        Just("x".to_string()),
        Just("acc".to_string()),
        (-20i64..20).prop_map(|v| format!("{v}")),
    ];
    leaf.prop_recursive(depth, 12, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), "[-+*&|^]".prop_map(|s: String| s))
                .prop_map(|(l, r, op)| format!("({l} {op} {r})")),
            (inner.clone(), 0u8..4).prop_map(|(l, s)| format!("({l} >> {s})")),
            (inner, 0u8..4).prop_map(|(l, s)| format!("({l} << {s})")),
        ]
    })
    .boxed()
}

/// Runs `src` through golden interpretation, plain c2v, and pipelined c2v;
/// asserts value agreement and that pipelining never loses cycles.
fn assert_pipeline_agrees(src: &str, args: &[ArgValue]) {
    let compiler = Compiler::parse(src).unwrap_or_else(|e| panic!("{src}\n{}", e.render(src)));
    let golden = compiler
        .interpret("f", args)
        .unwrap_or_else(|e| panic!("golden failed on:\n{src}\n{e}"));
    let backend = backend_by_name("c2v").expect("registered");
    let piped_opts = SynthOptions {
        pipeline_loops: true,
        ..Default::default()
    };
    let piped = compiler
        .synthesize(backend.as_ref(), "f", &piped_opts)
        .unwrap_or_else(|e| panic!("pipelined c2v refused:\n{src}\n{e}"));
    let rq = simulate_design(&piped, args).unwrap_or_else(|e| panic!("{src}\n{e}"));
    assert_eq!(rq.ret, golden.ret, "pipelined return diverges on:\n{src}");
    assert_eq!(rq.arrays, golden.arrays, "pipelined arrays diverge on:\n{src}");
    let plain = compiler
        .synthesize(backend.as_ref(), "f", &SynthOptions::default())
        .expect("plain synthesizes");
    let rp = simulate_design(&plain, args).expect("plain simulates");
    // A pipelined kernel pays a constant prologue (entry/drain states), so
    // a tiny trip count can cost a cycle or two; it must never lose more.
    assert!(
        rq.cycles.unwrap() <= rp.cycles.unwrap() + 2,
        "pipelining lost cycles ({:?} vs {:?}) on:\n{src}",
        rq.cycles,
        rp.cycles
    );
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 20,
        .. ProptestConfig::default()
    })]

    /// Streaming reduction over an array with a random body expression.
    #[test]
    fn random_reductions_pipeline_correctly(
        e in arb_body_expr(2),
        data in proptest::collection::vec(-30i64..30, 12),
        n in 0i64..=12,
    ) {
        let src = format!(
            "int f(int a[12], int n) {{
                int acc = 0;
                for (int i = 0; i < n; i++) {{
                    int x = a[i];
                    acc = acc + ({e});
                }}
                return acc;
            }}"
        );
        assert_pipeline_agrees(&src, &[ArgValue::Array(data), ArgValue::Scalar(n)]);
    }

    /// Branchy bodies: nested pure conditionals that must if-convert (or
    /// fall back) without changing results.
    #[test]
    fn random_branchy_loops_pipeline_correctly(
        c1 in arb_body_expr(1),
        e1 in arb_body_expr(1),
        c2 in arb_body_expr(1),
        e2 in arb_body_expr(1),
        data in proptest::collection::vec(-30i64..30, 10),
    ) {
        let src = format!(
            "int f(int a[10]) {{
                int acc = 0;
                for (int i = 0; i < 10; i++) {{
                    int x = a[i];
                    int v = x;
                    if (({c1}) > 0) {{ v = {e1}; }} else {{ if (({c2}) < 0) {{ v = {e2}; }} }}
                    acc = acc * 3 + v;
                }}
                return acc;
            }}"
        );
        assert_pipeline_agrees(&src, &[ArgValue::Array(data)]);
    }

    /// In-place updates: the carried store->load pair must be handled by
    /// affine disambiguation without reordering actual conflicts.
    #[test]
    fn random_inplace_updates_pipeline_correctly(
        e in arb_body_expr(2),
        data in proptest::collection::vec(-30i64..30, 12),
    ) {
        let src = format!(
            "void f(int a[12]) {{
                int acc = 0;
                for (int i = 0; i < 12; i++) {{
                    int x = a[i];
                    a[i] = ({e});
                    acc = acc + x;
                }}
            }}"
        );
        assert_pipeline_agrees(&src, &[ArgValue::Array(data)]);
    }

    /// Neighbour access with a genuine loop-carried memory dependence
    /// (`a[i+1]` read after `a[i]` written the previous iteration — the
    /// affine test must KEEP this ordering).
    #[test]
    fn genuine_carried_dependences_stay_ordered(
        data in proptest::collection::vec(-20i64..20, 10),
        k in 1i64..4,
    ) {
        let src = format!(
            "void f(int a[10]) {{
                for (int i = 0; i < 9; i++) {{
                    a[i + 1] = a[i] + {k};
                }}
            }}"
        );
        assert_pipeline_agrees(&src, &[ArgValue::Array(data)]);
    }
}
