//! Property-based differential conformance: random CHL programs are run
//! through every synthesis backend and compared against the golden
//! interpreter. This is the strongest correctness argument the repository
//! makes — five independently-implemented compilation strategies (plus
//! the dataflow machine) must agree on arbitrary expression/control
//! structures.

use chls::{check_conformance, Verdict};
use chls::interp::ArgValue;
use proptest::prelude::*;

/// A random side-effect-free integer expression over `a`, `b`, `c`.
fn arb_expr(depth: u32) -> BoxedStrategy<String> {
    let leaf = prop_oneof![
        Just("a".to_string()),
        Just("b".to_string()),
        Just("c".to_string()),
        (-64i64..64).prop_map(|v| format!("{v}")),
        (1i64..16).prop_map(|v| format!("{v}")),
    ];
    leaf.prop_recursive(depth, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), "[-+*&|^]".prop_map(|s: String| s))
                .prop_map(|(l, r, op)| format!("({l} {op} {r})")),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| format!("({l} / ({r} | 1))")),
            (inner.clone(), 0u8..5).prop_map(|(l, s)| format!("({l} >> {s})")),
            (inner.clone(), 0u8..5).prop_map(|(l, s)| format!("({l} << {s})")),
            (inner.clone(), inner.clone(), inner.clone())
                .prop_map(|(c, t, e)| format!("(({c} > 0) ? {t} : {e})")),
            (inner.clone(), inner).prop_map(|(l, r)| format!("(({l} < {r}) ? 1 : 0)")),
        ]
    })
    .boxed()
}

fn assert_all_agree(src: &str, args: &[ArgValue]) {
    let results = check_conformance(src, "f", args)
        .unwrap_or_else(|e| panic!("golden failed on:\n{src}\n{e}"));
    for (backend, verdict) in results {
        match verdict {
            Verdict::Pass { .. } | Verdict::Unsupported(_) => {}
            other => panic!("{backend} diverged on:\n{src}\n{other:?}"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        .. ProptestConfig::default()
    })]

    /// Pure expressions: every backend computes the same value.
    #[test]
    fn expressions_agree(expr in arb_expr(3), a in -100i64..100, b in -100i64..100, c in -100i64..100) {
        let src = format!("int f(int a, int b, int c) {{ return {expr}; }}");
        assert_all_agree(&src, &[ArgValue::Scalar(a), ArgValue::Scalar(b), ArgValue::Scalar(c)]);
    }

    /// Branching on random conditions with assignments in both arms.
    #[test]
    fn branches_agree(
        cond in arb_expr(2),
        e1 in arb_expr(2),
        e2 in arb_expr(2),
        a in -50i64..50,
        b in -50i64..50,
        c in -50i64..50,
    ) {
        let src = format!(
            "int f(int a, int b, int c) {{
                int x = 0;
                if (({cond}) > 0) {{ x = {e1}; }} else {{ x = {e2}; }}
                return x ^ (a + b);
            }}"
        );
        assert_all_agree(&src, &[ArgValue::Scalar(a), ArgValue::Scalar(b), ArgValue::Scalar(c)]);
    }

    /// Constant-bound loops folding random expressions into an accumulator
    /// (Cones participates too: bounds are compile-time constants).
    #[test]
    fn const_loops_agree(
        e in arb_expr(2),
        trips in 1u32..6,
        a in -30i64..30,
        b in -30i64..30,
    ) {
        let src = format!(
            "int f(int a, int b) {{
                int acc = 0;
                for (int c = 0; c < {trips}; c++) {{
                    acc = acc * 3 + ({e});
                }}
                return acc;
            }}"
        );
        assert_all_agree(&src, &[ArgValue::Scalar(a), ArgValue::Scalar(b)]);
    }

    /// Array kernels with random small contents.
    #[test]
    fn array_kernels_agree(
        data in proptest::collection::vec(-40i64..40, 8),
        e in arb_expr(2),
    ) {
        let src = format!(
            "int f(int arr[8], int a) {{
                int acc = 0;
                for (int i = 0; i < 8; i++) {{
                    int b = arr[i];
                    int c = i;
                    arr[i] = b + 1;
                    acc ^= ({e});
                }}
                return acc;
            }}"
        );
        assert_all_agree(&src, &[ArgValue::Array(data), ArgValue::Scalar(7)]);
    }

    /// Narrow-typed arithmetic: wrapping behavior must agree everywhere.
    #[test]
    fn narrow_types_agree(
        a in 0i64..256,
        b in 0i64..256,
        sh in 0u8..8,
    ) {
        let src = format!(
            "int f(int a, int b) {{
                uint<8> x = (uint<8>) a;
                sint<8> y = (sint<8>) b;
                uint<8> z = x + (uint<8>) y;
                z = z << {sh};
                return (int) z + (int) y;
            }}"
        );
        assert_all_agree(&src, &[ArgValue::Scalar(a), ArgValue::Scalar(b)]);
    }
}
