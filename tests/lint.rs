//! Integration tests for the static-analysis layer (`chls lint`).
//!
//! Two cross-validations anchor the lint in observable behavior:
//!
//! 1. **Races**: programs the lint declares race-free compute identical
//!    results across every backend, every conformance job count, and
//!    every legal `par` arm ordering; a curated racy corpus is flagged
//!    by the lint *and* demonstrably diverges when the interpreter picks
//!    different (all legal) arm orderings. The lint's verdict is thus
//!    checked against ground truth in both directions.
//! 2. **Timing**: the static `[min, max]` cycle interval computed from
//!    the Handel-C and Transmogrifier timing rules must contain the
//!    cycle count the FSMD simulator actually measures.

use chls::interp::{ArgValue, InterpOptions, ParOrder};
use chls::{
    backend_by_name, check_conformance_with_jobs, simulate_design, Compiler, SynthOptions, Verdict,
};

fn lint(src: &str, entry: &str) -> chls_analysis::LintReport {
    let c = Compiler::parse(src).expect("parse");
    c.lint(entry, None).expect("lint")
}

fn interpret_with_order(src: &str, entry: &str, args: &[ArgValue], order: ParOrder) -> Option<i64> {
    let c = Compiler::parse(src).expect("parse");
    let opts = InterpOptions {
        par_order: order,
        ..InterpOptions::default()
    };
    chls_sim::interp::run(c.hir(), entry, args, &opts)
        .expect("interpret")
        .ret
}

// ---------------------------------------------------------------- races

/// Race-free `par` programs: every arm touches disjoint state, or arms
/// synchronize through a rendezvous.
const RACE_FREE: &[(&str, &str)] = &[
    (
        "disjoint scalars",
        "int main(int a) {
            int x = 0; int y = 0;
            par { { x = a + 1; } { y = a * 2; } }
            return x + y;
        }",
    ),
    (
        "disjoint through pointers",
        "int main(int a) {
            int x = 0; int y = 0;
            int *p = &x; int *q = &y;
            par { { *p = a; } { *q = a + 1; } }
            return x + 10 * y;
        }",
    ),
    (
        "rendezvous pipeline",
        "int main(int a) {
            chan<int> c;
            int got = 0;
            par { { send(c, a * 3); } { got = recv(c); } }
            return got;
        }",
    ),
    (
        "read-read sharing is fine",
        "int main(int a) {
            int x = 0; int y = 0;
            par { { x = a + a; } { y = a - 1; } }
            return x + y;
        }",
    ),
];

/// Racy `par` programs, each with argument sets under which legal arm
/// orderings produce different results.
const RACY: &[(&str, &str)] = &[
    (
        "write/write on a scalar",
        "int main() {
            int x = 0;
            par { { x = 1; } { x = 2; } }
            return x;
        }",
    ),
    (
        "read/write on a scalar",
        "int main(int a) {
            int x = 0; int y = 0;
            par { { x = a; } { y = x + 100; } }
            return y;
        }",
    ),
    (
        "write/write through a pointer alias",
        "int main() {
            int x = 0;
            int *p = &x;
            par { { x = 1; } { *p = 2; } }
            return x;
        }",
    ),
    (
        "race hidden in a callee",
        "void bump(int *q, int v) { *q = v; }
         int main() {
            int x = 0;
            par { { x = 5; } { bump(&x, 9); } }
            return x;
        }",
    ),
];

#[test]
fn race_free_corpus_is_lint_clean() {
    for (name, src) in RACE_FREE {
        let r = lint(src, "main");
        assert!(
            r.races.is_empty(),
            "{name}: expected race-free, lint said {:?}",
            r.races
        );
    }
}

#[test]
fn race_free_programs_agree_across_backends_and_job_counts() {
    let args = [ArgValue::Scalar(7)];
    for (name, src) in RACE_FREE {
        let for_jobs = |jobs: usize| {
            check_conformance_with_jobs(src, "main", &args, jobs)
                .unwrap_or_else(|e| panic!("{name}: conformance failed: {e}"))
        };
        let one = for_jobs(1);
        let eight = for_jobs(8);
        assert_eq!(one.len(), eight.len(), "{name}");
        for ((b1, v1), (b8, v8)) in one.iter().zip(eight.iter()) {
            assert_eq!(b1, b8, "{name}: verdict order must not depend on --jobs");
            assert_eq!(
                format!("{v1:?}"),
                format!("{v8:?}"),
                "{name}/{b1}: verdict must not depend on --jobs"
            );
            match v1 {
                Verdict::Pass { .. } | Verdict::Unsupported(_) => {}
                bad => panic!("{name}/{b1}: lint-clean program diverged: {bad:?}"),
            }
        }
    }
}

#[test]
fn race_free_programs_are_order_independent() {
    let args = [ArgValue::Scalar(7)];
    for (name, src) in RACE_FREE {
        if src.contains("chan<") {
            // Rendezvous requires truly concurrent arms; sequential
            // orderings would deadlock by construction.
            continue;
        }
        let base = interpret_with_order(src, "main", &args, ParOrder::Concurrent);
        for order in [ParOrder::Sequential, ParOrder::Reversed] {
            let got = interpret_with_order(src, "main", &args, order);
            assert_eq!(
                got, base,
                "{name}: lint-clean program changed answer under {order:?}"
            );
        }
    }
}

#[test]
fn racy_corpus_is_flagged_by_lint() {
    for (name, src) in RACY {
        let r = lint(src, "main");
        assert!(
            !r.races.is_empty(),
            "{name}: lint missed the race"
        );
        assert!(r.has_errors(), "{name}: races must fail the lint");
        for d in &r.races {
            assert!(
                d.notes.len() == 2,
                "{name}: race diagnostics carry both access sites, got {:?}",
                d.notes
            );
        }
    }
}

#[test]
fn racy_corpus_diverges_under_arm_orderings() {
    let args = [ArgValue::Scalar(7)];
    for (name, src) in RACY {
        let seq = interpret_with_order(src, "main", &args, ParOrder::Sequential);
        let rev = interpret_with_order(src, "main", &args, ParOrder::Reversed);
        assert_ne!(
            seq, rev,
            "{name}: both legal orderings agreed; corpus entry demonstrates nothing"
        );
    }
}

// --------------------------------------------------------------- timing

/// Measures FSMD cycles for `src` under a backend, and the lint's static
/// interval for the same backend; asserts containment.
fn assert_interval_contains_simulation(
    name: &str,
    src: &str,
    entry: &str,
    backend_name: &str,
    args: &[ArgValue],
) {
    let compiler = Compiler::parse(src).expect("parse");
    let report = compiler.lint(entry, Some(backend_name)).expect("lint");
    let bound = report
        .cycle_bounds
        .iter()
        .find(|b| b.backend == backend_name)
        .unwrap_or_else(|| panic!("{name}: no {backend_name} bound computed"));
    let backend = backend_by_name(backend_name).expect("registered");
    let design = compiler
        .synthesize(backend.as_ref(), entry, &SynthOptions::default())
        .unwrap_or_else(|e| panic!("{name}: synthesis failed: {e}"));
    let out = simulate_design(&design, args).unwrap_or_else(|e| panic!("{name}: sim failed: {e}"));
    let cycles = out.cycles.unwrap_or_else(|| panic!("{name}: no cycle count"));
    assert!(
        bound.interval.contains(cycles),
        "{name}/{backend_name}: simulated {cycles} cycles outside static {}",
        bound.interval
    );
}

const FIR: &str = "
    const int coeff[8] = {1, 2, 3, 4, 4, 3, 2, 1};
    void fir(int x[16], int y[16]) {
        for (int n = 7; n < 16; n++) {
            int acc = 0;
            for (int k = 0; k < 8; k++) {
                acc = acc + coeff[k] * x[n - k];
            }
            y[n] = acc >> 4;
        }
    }
";

fn fir_args() -> Vec<ArgValue> {
    vec![
        ArgValue::Array((0..16).map(|i| (i * 7 + 3) % 50).collect()),
        ArgValue::Array(vec![0; 16]),
    ]
}

#[test]
fn static_bounds_contain_simulated_cycles_for_fir() {
    for backend in ["handelc", "transmogrifier"] {
        assert_interval_contains_simulation("fir", FIR, "fir", backend, &fir_args());
    }
}

#[test]
fn static_bounds_contain_simulated_cycles_across_programs() {
    let programs: &[(&str, &str, Vec<ArgValue>)] = &[
        (
            "straight-line",
            "int f(int a) { int x = a + 1; x = x * 3; return x - 2; }",
            vec![ArgValue::Scalar(5)],
        ),
        (
            "branchy",
            "int f(int a) {
                int x = 0;
                if (a > 10) { x = a; x = x + 1; x = x + 2; } else { x = 3; }
                return x;
            }",
            vec![ArgValue::Scalar(42)],
        ),
        (
            "counted loop",
            "int f(int a) {
                int acc = 0;
                for (int i = 0; i < 6; i++) { acc = acc + a; }
                return acc;
            }",
            vec![ArgValue::Scalar(4)],
        ),
        (
            "nested counted loops",
            "int f(int a) {
                int acc = 0;
                for (int i = 0; i < 3; i++) {
                    for (int j = 0; j < 4; j++) { acc = acc + a + j; }
                }
                return acc;
            }",
            vec![ArgValue::Scalar(2)],
        ),
        (
            "data-dependent loop (gcd)",
            "int f(int a, int b) {
                while (b != 0) { int t = b; b = a % b; a = t; }
                return a;
            }",
            vec![ArgValue::Scalar(48), ArgValue::Scalar(36)],
        ),
    ];
    for (name, src, args) in programs {
        for backend in ["handelc", "transmogrifier"] {
            assert_interval_contains_simulation(name, src, "f", backend, args);
        }
    }
    // Both branch directions of the branchy program stay inside the hull.
    assert_interval_contains_simulation(
        "branchy (else side)",
        "int f(int a) {
            int x = 0;
            if (a > 10) { x = a; x = x + 1; x = x + 2; } else { x = 3; }
            return x;
        }",
        "f",
        "handelc",
        &[ArgValue::Scalar(1)],
    );
}

#[test]
fn static_bounds_contain_simulated_cycles_for_par_and_delay() {
    // Handel-C only: the sequential pipeline refuses these programs.
    let programs: &[(&str, &str, Vec<ArgValue>)] = &[
        (
            "par lockstep",
            "int f(int a) {
                int x = 0; int y = 0;
                par { { x = a; x = x + 1; x = x * 2; } { y = a - 1; } }
                return x + y;
            }",
            vec![ArgValue::Scalar(6)],
        ),
        (
            "delay chain",
            "int f(int a) { delay; delay; delay; return a; }",
            vec![ArgValue::Scalar(1)],
        ),
        (
            "rendezvous",
            "int f(int a) {
                chan<int> c;
                int got = 0;
                par { { send(c, a * 3); } { got = recv(c); got = got + 1; } }
                return got;
            }",
            vec![ArgValue::Scalar(5)],
        ),
    ];
    for (name, src, args) in programs {
        assert_interval_contains_simulation(name, src, "f", "handelc", args);
    }
}

#[test]
fn handelc_straight_line_bound_is_exact() {
    // Cross-check the rule constants, not just containment: entry + two
    // assignments + return + done.
    let src = "int f(int a) { int x = a + 1; x = x * 3; return x; }";
    let compiler = Compiler::parse(src).expect("parse");
    let report = compiler.lint("f", Some("handelc")).expect("lint");
    let interval = report.cycle_bounds[0].interval;
    let backend = backend_by_name("handelc").expect("registered");
    let design = compiler
        .synthesize(backend.as_ref(), "f", &SynthOptions::default())
        .expect("synth");
    let out = simulate_design(&design, &[ArgValue::Scalar(4)]).expect("sim");
    assert_eq!(interval.min, interval.max.unwrap(), "straight-line is exact");
    assert_eq!(Some(interval.min), out.cycles);
}

// ------------------------------------------------------------- warnings

#[test]
fn sema_warnings_surface_through_the_driver() {
    let src = "int main(int a) { int dead = a * 2; return a + 1; }";
    let compiler = Compiler::parse(src).expect("parse");
    let rendered = compiler.rendered_warnings();
    assert!(
        rendered.iter().any(|w| w.starts_with("warning:") && w.contains("`dead`")),
        "expected an unused-local warning, got {rendered:?}"
    );
    // And the lint report carries the same warnings.
    let report = compiler.lint("main", None).expect("lint");
    assert!(report.warnings.iter().any(|w| w.message.contains("dead")));
}

#[test]
fn lint_report_json_round_trips_key_fields() {
    let r = lint(RACY[2].1, "main");
    let j = r.to_json();
    assert!(j.contains(r#""races":[{"severity":"error""#));
    assert!(j.contains(r#""backend":"handelc","min":"#));
    // Notes carry byte spans for both access sites.
    assert_eq!(j.matches(r#"{"message":"#).count(), 2);
}

// -------------------------------------------------- dataflow lints

/// Out-of-bounds corpus: every entry is a *definite* violation (the
/// whole address interval misses the extent), plus the message fragment
/// the lint must produce and the source fragment its span must cover.
const OOB: &[(&str, &str, &str, &str)] = &[
    (
        "constant read past the end",
        "int main() { int a[8]; a[0] = 1; int x = a[9]; return x; }",
        "out-of-bounds read of `a`: index 9",
        "a[9]",
    ),
    (
        "constant write past the end",
        "int main() { int a[4]; a[4] = 1; return a[0]; }",
        "out-of-bounds write of `a`: index 4",
        "a[4] = 1",
    ),
    (
        "loop interval entirely outside",
        "int main() { int a[8]; a[0] = 0;
            for (int i = 8; i < 12; i++) { a[i] = i; }
            return a[0]; }",
        "out-of-bounds write of `a`",
        "a[i] = i",
    ),
];

/// Uninitialized-read corpus with the expected message fragment.
const UNINIT: &[(&str, &str, &str)] = &[
    (
        "never-written local array",
        "int main(int i) { int a[4]; int x = a[i & 3]; return x; }",
        "uninitialized memory `a`",
    ),
    (
        "read disjoint from all writes",
        "int main() { int a[8];
            for (int i = 0; i < 4; i++) { a[i] = i; }
            int x = a[6]; return x; }",
        "uninitialized memory `a`",
    ),
    (
        "scalar read before assignment",
        "int main() { int x; int y = x + 1; return y; }",
        "`x` may be read before it is initialized",
    ),
    (
        "one-armed if does not initialize",
        "int main(int a) { int x; if (a > 0) { x = 1; } int y = x; return y; }",
        "`x` may be read before it is initialized",
    ),
];

#[test]
fn oob_corpus_is_flagged_as_errors() {
    for (name, src, needle, _) in OOB {
        let r = lint(src, "main");
        assert!(
            r.memory.iter().any(|d| d.message.contains(needle)),
            "{name}: expected `{needle}` in {:?}",
            r.memory
        );
        assert!(r.has_errors(), "{name}: definite OOB must fail the lint");
    }
}

#[test]
fn uninit_corpus_is_flagged_as_warnings() {
    for (name, src, needle) in UNINIT {
        let r = lint(src, "main");
        assert!(
            r.memory.iter().any(|d| d.message.contains(needle)),
            "{name}: expected `{needle}` in {:?}",
            r.memory
        );
        assert!(
            !r.has_errors(),
            "{name}: uninitialized reads warn, they do not fail the lint"
        );
    }
}

#[test]
fn memory_lint_spans_cover_the_offending_access() {
    for (name, src, needle, at) in OOB {
        let r = lint(src, "main");
        let d = r
            .memory
            .iter()
            .find(|d| d.message.contains(needle))
            .unwrap_or_else(|| panic!("{name}: missing diagnostic"));
        let covered = &src[d.span.start as usize..d.span.end as usize];
        assert!(
            covered.contains(at),
            "{name}: span covers `{covered}`, expected it to include `{at}`"
        );
    }
    // Scalar uninit anchors to the reading statement.
    let src = "int main() { int x; int y = x + 1; return y; }";
    let r = lint(src, "main");
    let d = &r.memory[0];
    assert!(
        src[d.span.start as usize..d.span.end as usize].contains("x + 1"),
        "span covers `{}`",
        &src[d.span.start as usize..d.span.end as usize]
    );
}

#[test]
fn in_bounds_and_initialized_programs_are_clean() {
    let clean = [
        // Full in-bounds write then read.
        "int main(int x) { int a[8];
            for (int i = 0; i < 8; i++) { a[i] = x + i; }
            int s = 0;
            for (int j = 0; j < 8; j++) { s = s + a[j]; }
            return s; }",
        // Masked index can never escape the extent.
        "int main(int i) { int a[8]; a[i & 7] = 1; int x = a[i & 7]; return x; }",
        // ROM and parameter arrays arrive initialized.
        "const int t[4] = {1, 2, 3, 4};
         int main(int x[4], int i) { return t[i & 3] + x[i & 3]; }",
    ];
    for src in clean {
        let r = lint(src, "main");
        assert!(r.memory.is_empty(), "false positive: {:?}", r.memory);
    }
}

#[test]
fn provably_dead_branch_warns() {
    let src = "int main(int x) { int m = x & 15; int r = 0;
        if (m < 100) { r = m; } else { r = 7; }
        return r; }";
    let r = lint(src, "main");
    assert_eq!(r.dead_branches.len(), 1, "got {:?}", r.dead_branches);
    assert!(
        r.dead_branches[0].message.contains("always true"),
        "{}",
        r.dead_branches[0].message
    );
    assert!(!r.has_errors(), "dead branches warn, they do not fail");
    // And the finding rides the JSON surface.
    let j = r.to_json();
    assert!(
        j.contains(r#""dead_branches":[{"severity":"warning""#),
        "{j}"
    );
}

#[test]
fn memory_findings_ride_the_json_surface() {
    let r = lint(OOB[0].1, "main");
    let j = r.to_json();
    assert!(j.contains(r#""memory":[{"severity":"error""#), "{j}");
    // Stable order: memory and dead_branches trail the existing fields.
    let cycles = j.find(r#""cycles":["#).unwrap();
    let memory = j.find(r#""memory":["#).unwrap();
    let dead = j.find(r#""dead_branches":["#).unwrap();
    assert!(cycles < memory && memory < dead, "{j}");
}

#[test]
fn concurrency_programs_skip_ir_lints_gracefully() {
    // `par` has no sequential lowering, so the memory and dead-branch
    // checks are vacuous — but the lint must still run end to end.
    for (_, src) in RACY {
        let r = lint(src, "main");
        assert!(r.dead_branches.is_empty());
    }
}

#[test]
fn example_corpus_has_zero_memory_findings() {
    let mut seen = 0;
    for entry in std::fs::read_dir("examples/chl").expect("examples present") {
        let path = entry.unwrap().path();
        if path.extension().is_none_or(|e| e != "chl") {
            continue;
        }
        let src = std::fs::read_to_string(&path).unwrap();
        let r = lint(&src, "main");
        assert!(
            r.memory.is_empty(),
            "{}: false positives {:?}",
            path.display(),
            r.memory
        );
        assert!(
            r.dead_branches.is_empty(),
            "{}: false positives {:?}",
            path.display(),
            r.dead_branches
        );
        seen += 1;
    }
    assert!(seen >= 7, "expected the full example corpus, saw {seen}");
}
