//! `#pragma memory bank(K)`: element `i` lives in bank `i % K`, giving
//! the scheduler K independently-ported memories. These tests check the
//! feature end-to-end: conformance against the golden interpreter across
//! every backend, the cycle payoff through c2v, and the documented
//! fallback (dynamically-banked accesses leave the array whole).

use chls::interp::ArgValue;
use chls::{backend_by_name, check_conformance, simulate_design, Compiler, SynthOptions, Verdict};

const BANKED: &str = "
    int f(int x[8], int y[8]) {
        #pragma memory bank(2)
        int a[8];
        #pragma unroll 8
        for (int i = 0; i < 8; i++) a[i] = x[i] * y[i];
        int s = 0;
        #pragma unroll 8
        for (int j = 0; j < 8; j++) s += a[j];
        return s;
    }
";

fn args() -> Vec<ArgValue> {
    vec![
        ArgValue::Array((1..=8).collect()),
        ArgValue::Array((1..=8).rev().collect()),
    ]
}

#[test]
fn banked_kernel_conforms_on_every_backend() {
    let results = check_conformance(BANKED, "f", &args()).expect("golden runs");
    for (backend, verdict) in results {
        match verdict {
            Verdict::Pass { .. } | Verdict::Unsupported(_) => {}
            other => panic!("{backend} diverged on banked kernel: {other:?}"),
        }
    }
}

#[test]
fn banking_buys_cycles_on_unrolled_kernels() {
    let plain_src = BANKED.replace("#pragma memory bank(2)\n", "");
    let backend = backend_by_name("c2v").expect("registered");
    let run = |src: &str| {
        let compiler = Compiler::parse(src).expect("parses");
        let design = compiler
            .synthesize(backend.as_ref(), "f", &SynthOptions::default())
            .expect("synthesizes");
        simulate_design(&design, &args()).expect("simulates")
    };
    let banked = run(BANKED);
    let plain = run(&plain_src);
    assert_eq!(banked.ret, plain.ret);
    assert!(
        banked.cycles.unwrap() < plain.cycles.unwrap(),
        "banking did not help: {:?} vs {:?}",
        banked.cycles,
        plain.cycles
    );
}

#[test]
fn dynamic_banking_falls_back_correctly() {
    // `a[k]` cannot be statically banked — the array must stay whole and
    // results must stay exact.
    let src = "
        int f(int k) {
            #pragma memory bank(2)
            int a[8];
            for (int i = 0; i < 8; i++) a[i] = i * i;
            return a[k];
        }
    ";
    let results =
        check_conformance(src, "f", &[ArgValue::Scalar(5)]).expect("golden runs");
    for (backend, verdict) in results {
        match verdict {
            Verdict::Pass { .. } | Verdict::Unsupported(_) => {}
            other => panic!("{backend} diverged on fallback kernel: {other:?}"),
        }
    }
}

#[test]
fn banking_composes_with_pipelining() {
    // Two banks halve the memory-port pressure inside the pipelined
    // kernel: banked+pipelined must beat pipelined-only and banked-only.
    let src = |pragma: &str| {
        format!(
            "int f(int x[32]) {{
                {pragma}
                int a[32];
                #pragma unroll 2
                for (int i = 0; i < 32; i++) a[i] = x[i];
                int s = 0;
                for (int j = 0; j < 32; j += 2) {{
                    s += a[j] * 3 - a[j + 1];
                }}
                return s;
            }}"
        )
    };
    let backend = backend_by_name("c2v").expect("registered");
    let args = [ArgValue::Array((0..32).collect())];
    let run = |src: &str, pipeline: bool| {
        let compiler = Compiler::parse(src).expect("parses");
        let golden = compiler.interpret("f", &args).expect("golden");
        let opts = SynthOptions {
            pipeline_loops: pipeline,
            ..Default::default()
        };
        let design = compiler
            .synthesize(backend.as_ref(), "f", &opts)
            .expect("synthesizes");
        let out = simulate_design(&design, &args).expect("simulates");
        assert_eq!(out.ret, golden.ret);
        out.cycles.unwrap()
    };
    let plain = run(&src(""), false);
    let piped = run(&src(""), true);
    let banked = run(&src("#pragma memory bank(2)"), false);
    let both = run(&src("#pragma memory bank(2)"), true);
    assert!(piped < plain, "{piped} vs {plain}");
    assert!(banked < plain, "{banked} vs {plain}");
    assert!(both < piped, "{both} vs {piped}");
    assert!(both < banked, "{both} vs {banked}");
}

#[test]
fn banked_rom_lookup_conforms() {
    let src = "
        #pragma memory bank(4)
        const int twiddle[16] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16};
        int f() {
            int s = 0;
            #pragma unroll 16
            for (int i = 0; i < 16; i++) s += twiddle[i];
            return s;
        }
    ";
    let results = check_conformance(src, "f", &[]).expect("golden runs");
    let mut passes = 0;
    for (backend, verdict) in results {
        match verdict {
            Verdict::Pass { .. } => passes += 1,
            Verdict::Unsupported(_) => {}
            other => panic!("{backend} diverged on banked ROM: {other:?}"),
        }
    }
    assert!(passes >= 5, "only {passes} backends passed");
}
