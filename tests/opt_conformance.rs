//! Differential conformance of the `--opt-netlist` logic optimizer:
//! every shipped example, every backend, with and without the pass, at
//! both serial and parallel job counts — the optimizer must never flip
//! a verdict or change an answer.

use chls::interp::ArgValue;
use chls::{check_conformance_with_options, Compiler, SynthOptions, Verdict};

/// Deterministic non-zero arguments for an example entry (same LCG the
/// narrowing sweep uses, so failures reproduce across suites).
fn example_args(compiler: &Compiler, entry: &str) -> Vec<ArgValue> {
    let (_, f) = compiler
        .hir()
        .func_by_name(entry)
        .expect("entry exists");
    let mut seed = 0x2545_f491u64;
    let mut next = move || {
        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((seed >> 33) & 0xFF) as i64
    };
    f.params()
        .map(|(_, l)| match &l.ty {
            chls_frontend::Type::Array(_, n) => {
                ArgValue::Array((0..*n).map(|_| next()).collect())
            }
            _ => ArgValue::Scalar(next().max(1)),
        })
        .collect()
}

/// For every shipped example and every backend, the verdict kind is the
/// same with and without `--opt-netlist`, and the optimizer never turns
/// a pass into a mismatch. Run at jobs=1 and jobs=8 so the parallel
/// driver path is exercised with the extra pass active.
#[test]
fn examples_conform_with_opt_netlist() {
    for entry in std::fs::read_dir("examples/chl").expect("examples present") {
        let path = entry.unwrap().path();
        if path.extension().is_none_or(|e| e != "chl") {
            continue;
        }
        let src = std::fs::read_to_string(&path).unwrap();
        let compiler = Compiler::parse(&src).expect("example parses");
        let args = example_args(&compiler, "main");
        let name = path.display();
        for jobs in [1, 8] {
            let base =
                check_conformance_with_options(&src, "main", &args, jobs, &SynthOptions::default())
                    .unwrap_or_else(|e| panic!("{name}: {e}"));
            let opt = check_conformance_with_options(
                &src,
                "main",
                &args,
                jobs,
                &SynthOptions {
                    opt_netlist: true,
                    ..Default::default()
                },
            )
            .unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(base.len(), opt.len(), "{name}");
            for ((bk, bv), (ok, ov)) in base.iter().zip(&opt) {
                assert_eq!(bk, ok, "{name}: backend order must not depend on options");
                assert_eq!(
                    std::mem::discriminant(bv),
                    std::mem::discriminant(ov),
                    "{name}/{bk} (jobs={jobs}): {bv:?} vs {ov:?}"
                );
                if matches!(bv, Verdict::Pass { .. }) {
                    assert!(
                        matches!(ov, Verdict::Pass { .. }),
                        "{name}/{bk}: --opt-netlist broke a passing backend: {ov:?}"
                    );
                }
            }
        }
    }
}

/// `--opt-netlist` composes with `--narrow` and `--pipeline`: all three
/// passes stacked still conform on every example.
#[test]
fn opt_netlist_composes_with_narrow_and_pipeline() {
    for entry in std::fs::read_dir("examples/chl").expect("examples present") {
        let path = entry.unwrap().path();
        if path.extension().is_none_or(|e| e != "chl") {
            continue;
        }
        let src = std::fs::read_to_string(&path).unwrap();
        let compiler = Compiler::parse(&src).expect("example parses");
        let args = example_args(&compiler, "main");
        let name = path.display();
        let stacked = check_conformance_with_options(
            &src,
            "main",
            &args,
            1,
            &SynthOptions {
                opt_netlist: true,
                narrow_widths: true,
                pipeline_loops: true,
                ..Default::default()
            },
        )
        .unwrap_or_else(|e| panic!("{name}: {e}"));
        for (bk, v) in &stacked {
            assert!(
                !matches!(v, Verdict::Mismatch { .. } | Verdict::Error(_)),
                "{name}/{bk}: stacked passes broke conformance: {v:?}"
            );
        }
    }
}
