//! Integration tests for the `chls` binary: verb dispatch, per-verb flag
//! validation (misplaced flags must be rejected, not silently stripped),
//! exit codes, and the unified `--json` envelope across `check`, `lint`,
//! and `report`.
//!
//! The tests drive the release binary (tier-1 builds it first); when it
//! is missing they build it once via the `cargo` that launched the test.

use std::path::PathBuf;
use std::process::{Command, Output};
use std::sync::Once;

// ---------------------------------------------------------------------
// A minimal JSON parser (no serde in this tree): enough to assert that
// every `--json` output is well-formed and carries the envelope keys.
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(kv) => kv.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_arr(&self) -> &[Json] {
        match self {
            Json::Arr(v) => v,
            other => panic!("expected array, got {other:?}"),
        }
    }

    fn as_str(&self) -> &str {
        match self {
            Json::Str(s) => s,
            other => panic!("expected string, got {other:?}"),
        }
    }
}

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn ws(&mut self) {
        while self.i < self.s.len() && (self.s[self.i] as char).is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        self.ws();
        if self.s.get(self.i) == Some(&c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!(
                "expected `{}` at byte {} (found {:?})",
                c as char,
                self.i,
                self.s.get(self.i).map(|b| *b as char)
            ))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.s[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.i))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.s.get(self.i) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.s.get(self.i) {
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = std::str::from_utf8(&self.s[self.i + 1..self.i + 5])
                                .map_err(|e| e.to_string())?;
                            let cp = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            out.push(char::from_u32(cp).unwrap_or('\u{FFFD}'));
                            self.i += 4;
                        }
                        Some(&c) => out.push(c as char),
                        None => return Err("bad escape".into()),
                    }
                    self.i += 1;
                }
                Some(&c) => {
                    // Multi-byte UTF-8 sequences pass through bytewise.
                    out.push(c as char);
                    self.i += 1;
                }
            }
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.ws();
        match self.s.get(self.i) {
            Some(b'n') => self.lit("null", Json::Null),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => {
                self.i += 1;
                let mut items = Vec::new();
                self.ws();
                if self.s.get(self.i) == Some(&b']') {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    items.push(self.value()?);
                    self.ws();
                    match self.s.get(self.i) {
                        Some(b',') => self.i += 1,
                        Some(b']') => {
                            self.i += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(format!("bad array at byte {}", self.i)),
                    }
                }
            }
            Some(b'{') => {
                self.i += 1;
                let mut kv = Vec::new();
                self.ws();
                if self.s.get(self.i) == Some(&b'}') {
                    self.i += 1;
                    return Ok(Json::Obj(kv));
                }
                loop {
                    self.ws();
                    let k = self.string()?;
                    self.eat(b':')?;
                    let v = self.value()?;
                    kv.push((k, v));
                    self.ws();
                    match self.s.get(self.i) {
                        Some(b',') => self.i += 1,
                        Some(b'}') => {
                            self.i += 1;
                            return Ok(Json::Obj(kv));
                        }
                        _ => return Err(format!("bad object at byte {}", self.i)),
                    }
                }
            }
            _ => {
                let start = self.i;
                while self
                    .s
                    .get(self.i)
                    .is_some_and(|c| matches!(c, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'))
                {
                    self.i += 1;
                }
                std::str::from_utf8(&self.s[start..self.i])
                    .ok()
                    .and_then(|t| t.parse::<f64>().ok())
                    .map(Json::Num)
                    .ok_or_else(|| format!("bad number at byte {start}"))
            }
        }
    }
}

fn parse_json(s: &str) -> Json {
    let s = s.trim();
    let mut p = Parser { s: s.as_bytes(), i: 0 };
    let v = p.value().unwrap_or_else(|e| panic!("invalid JSON: {e}\n{s}"));
    p.ws();
    assert_eq!(p.i, s.len(), "trailing garbage after JSON:\n{s}");
    v
}

// ---------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------

fn chls_bin() -> PathBuf {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let bin = root.join("target/release/chls");
    static BUILD: Once = Once::new();
    BUILD.call_once(|| {
        if !bin.exists() {
            let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
            let status = Command::new(cargo)
                .args(["build", "--release", "-p", "chls", "--bins"])
                .current_dir(&root)
                .status()
                .expect("spawn cargo build");
            assert!(status.success(), "building the chls binary failed");
        }
    });
    bin
}

fn chls(args: &[&str]) -> Output {
    Command::new(chls_bin())
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("run chls")
}

fn stdout(o: &Output) -> String {
    String::from_utf8_lossy(&o.stdout).into_owned()
}

fn stderr(o: &Output) -> String {
    String::from_utf8_lossy(&o.stderr).into_owned()
}

/// Parses a `--json` output and asserts the unified envelope shape,
/// returning `(ok, data)`.
fn envelope(o: &Output, verb: &str) -> (bool, Json) {
    let j = parse_json(&stdout(o));
    assert_eq!(j.get("tool").unwrap().as_str(), "chls");
    assert_eq!(j.get("verb").unwrap().as_str(), verb);
    assert!(
        !j.get("version").unwrap().as_str().is_empty(),
        "version present"
    );
    let Some(Json::Bool(ok)) = j.get("ok") else {
        panic!("`ok` must be a bool");
    };
    (*ok, j.get("data").unwrap().clone())
}

const GCD: &str = "examples/chl/gcd.chl";
const FIR: &str = "examples/chl/fir.chl";

// ---------------------------------------------------------------------
// Verb behavior and exit codes
// ---------------------------------------------------------------------

#[test]
fn backends_lists_table() {
    let o = chls(&["backends"]);
    assert!(o.status.success());
    let out = stdout(&o);
    for b in ["cones", "hardwarec", "c2v", "handelc", "cash"] {
        assert!(out.contains(b), "missing {b}");
    }
}

#[test]
fn run_interprets() {
    let o = chls(&["run", GCD, "main", "48", "36"]);
    assert!(o.status.success(), "{}", stderr(&o));
    assert!(stdout(&o).contains("ret = 12"));
}

#[test]
fn run_rejects_bad_args_and_missing_file() {
    let o = chls(&["run", GCD, "main", "forty-eight"]);
    assert!(!o.status.success());
    assert!(stderr(&o).contains("bad integer"));
    let o = chls(&["run", "no/such/file.chl", "main"]);
    assert!(!o.status.success());
    assert!(stderr(&o).contains("cannot read"));
}

#[test]
fn check_passes_and_reports_timing_in_json() {
    let o = chls(&["check", "--jobs", "2", "--json", GCD, "main", "48", "36"]);
    assert!(o.status.success(), "{}", stderr(&o));
    let (ok, data) = envelope(&o, "check");
    assert!(ok);
    let results = data.get("results").unwrap().as_arr();
    assert!(results.len() >= 7, "all registered backends appear");
    // Per-design timing: at least one clocked backend reports cycles.
    assert!(
        results.iter().any(|r| matches!(r.get("cycles"), Some(Json::Num(n)) if *n > 0.0)),
        "cycles present in check --json"
    );
    // And the dataflow backend reports async time units.
    assert!(
        results
            .iter()
            .any(|r| matches!(r.get("time_units"), Some(Json::Num(n)) if *n > 0.0)),
        "time_units present in check --json"
    );
}

#[test]
fn unknown_verb_fails_with_usage() {
    let o = chls(&["frobnicate"]);
    assert!(!o.status.success());
    let err = stderr(&o);
    assert!(err.contains("unknown verb"), "{err}");
    assert!(err.contains("usage:"), "{err}");
}

// ---------------------------------------------------------------------
// Per-verb flag validation: misplaced flags are errors, with the
// offending verb's usage string.
// ---------------------------------------------------------------------

#[test]
fn misplaced_flags_are_rejected() {
    // `--jobs` belongs to check, not run.
    let o = chls(&["run", "--jobs", "4", GCD, "main", "1", "2"]);
    assert!(!o.status.success());
    let err = stderr(&o);
    assert!(err.contains("unknown flag `--jobs` for `chls run`"), "{err}");
    assert!(err.contains("usage: chls run"), "{err}");

    // `--backend` belongs to lint/report, not check.
    let o = chls(&["check", "--backend", "c2v", GCD, "main", "1", "2"]);
    assert!(!o.status.success());
    assert!(
        stderr(&o).contains("unknown flag `--backend` for `chls check`"),
        "{}",
        stderr(&o)
    );

    // `--pipeline` belongs to synth/verilog, not report.
    let o = chls(&["report", "--pipeline", GCD, "main"]);
    assert!(!o.status.success());
    assert!(stderr(&o).contains("unknown flag `--pipeline`"), "{}", stderr(&o));
}

#[test]
fn flag_values_and_arity_are_validated() {
    let o = chls(&["check", GCD, "main", "--jobs"]);
    assert!(!o.status.success());
    assert!(stderr(&o).contains("needs a value"), "{}", stderr(&o));

    let o = chls(&["check", "--jobs", "zero", GCD, "main"]);
    assert!(!o.status.success());
    assert!(stderr(&o).contains("positive integer"), "{}", stderr(&o));

    // Too few positionals.
    let o = chls(&["ir", GCD]);
    assert!(!o.status.success());
    assert!(stderr(&o).contains("at least 2"), "{}", stderr(&o));

    // Too many positionals on a fixed-arity verb.
    let o = chls(&["ir", GCD, "main", "extra"]);
    assert!(!o.status.success());
    assert!(stderr(&o).contains("at most 2"), "{}", stderr(&o));

    // Negative numbers still pass through as arguments.
    let o = chls(&["run", GCD, "main", "-48", "-36"]);
    assert!(o.status.success(), "{}", stderr(&o));
}

// ---------------------------------------------------------------------
// chls report
// ---------------------------------------------------------------------

#[test]
fn report_renders_qor_table() {
    let o = chls(&["report", GCD, "main", "48", "36"]);
    assert!(o.status.success(), "{}", stderr(&o));
    let out = stdout(&o);
    assert!(out.contains("| backend"), "{out}");
    assert!(out.contains("wall-clock per phase"), "{out}");
    assert!(out.contains("c2v"), "{out}");
}

#[test]
fn report_all_json_carries_qor_and_phases() {
    let o = chls(&["report", "--all", "--json", GCD, "main", "48", "36"]);
    assert!(o.status.success(), "{}", stderr(&o));
    let (ok, data) = envelope(&o, "report");
    assert!(ok);
    let backends = data.get("backends").unwrap().as_arr();
    assert!(backends.len() >= 7);
    let c2v = backends
        .iter()
        .find(|b| b.get("backend").unwrap().as_str() == "c2v")
        .expect("c2v row");
    for key in ["fsm_states", "registers", "gates", "sched_cycles", "cycles"] {
        assert!(
            matches!(c2v.get(key), Some(Json::Num(n)) if *n > 0.0),
            "c2v `{key}` must be a positive number"
        );
    }
    assert!(
        !c2v.get("phases").unwrap().as_arr().is_empty(),
        "per-phase wall-clock present"
    );
}

#[test]
fn report_carries_narrowed_area() {
    // The table grows a `narrow` column...
    let o = chls(&["report", "--backend", "c2v", FIR, "main"]);
    assert!(o.status.success(), "{}", stderr(&o));
    assert!(stdout(&o).contains("| narrow"), "{}", stdout(&o));

    // ...and the JSON carries the what-if area, never above the baseline.
    let o = chls(&["report", "--backend", "c2v", "--json", FIR, "main"]);
    let (ok, data) = envelope(&o, "report");
    assert!(ok);
    let row = &data.get("backends").unwrap().as_arr()[0];
    let area = match row.get("area") {
        Some(Json::Num(n)) => *n,
        other => panic!("area missing: {other:?}"),
    };
    let narrowed = match row.get("narrowed_area") {
        Some(Json::Num(n)) => *n,
        other => panic!("narrowed_area missing: {other:?}"),
    };
    assert!(narrowed > 0.0 && narrowed <= area, "{narrowed} vs {area}");

    // With `--narrow` the main synthesis already narrows, so the what-if
    // column equals the baseline.
    let o = chls(&["report", "--backend", "c2v", "--narrow", "--json", FIR, "main"]);
    let (ok, data) = envelope(&o, "report");
    assert!(ok);
    let row = &data.get("backends").unwrap().as_arr()[0];
    let (Some(Json::Num(a)), Some(Json::Num(n))) = (row.get("area"), row.get("narrowed_area"))
    else {
        panic!("area/narrowed_area missing");
    };
    assert_eq!(a, n, "--narrow makes the baseline the narrowed design");
}

#[test]
fn report_backend_filter_and_exclusivity() {
    let o = chls(&["report", "--backend", "c2v", FIR, "main"]);
    assert!(o.status.success(), "{}", stderr(&o));
    let out = stdout(&o);
    assert!(out.contains("c2v"), "{out}");
    assert!(!out.contains("handelc"), "filtered to one backend: {out}");

    let o = chls(&["report", "--backend", "c2v", "--all", GCD, "main"]);
    assert!(!o.status.success());
    assert!(stderr(&o).contains("mutually exclusive"), "{}", stderr(&o));

    let o = chls(&["report", "--backend", "vaporware", GCD, "main"]);
    assert!(!o.status.success());
    assert!(stderr(&o).contains("unknown backend"), "{}", stderr(&o));
}

// ---------------------------------------------------------------------
// chls lint --json rides the same envelope
// ---------------------------------------------------------------------

#[test]
fn lint_json_uses_envelope() {
    let o = chls(&["lint", "--json", GCD, "main"]);
    assert!(o.status.success(), "{}", stderr(&o));
    let (ok, data) = envelope(&o, "lint");
    assert!(ok);
    assert!(data.get("races").is_some(), "lint payload inside envelope");
    assert!(data.get("cycles").is_some());
}

// ---------------------------------------------------------------------
// chls flow: process-network analysis through the spec table
// ---------------------------------------------------------------------

#[test]
fn flow_json_uses_envelope() {
    let o = chls(&["flow", "--json", "examples/chl/stream_multirate.chl", "main"]);
    assert!(o.status.success(), "{}", stderr(&o));
    let (ok, data) = envelope(&o, "flow");
    assert!(ok);
    assert!(data.get("networks").is_some(), "flow payload inside envelope");
    assert!(data.get("contracts").is_some());
    assert!(data.get("diags").is_some());
}

#[test]
fn flow_proves_the_ordering_deadlock_and_fails() {
    let o = chls(&["flow", "examples/chl/flow/deadlock_order.chl", "main"]);
    assert!(!o.status.success(), "a proved deadlock must exit nonzero");
    let out = stdout(&o);
    assert!(out.contains("structural deadlock cycle"), "{out}");
    assert!(out.contains("arm 0 → arm 1 → arm 0"), "{out}");
    assert!(out.contains("channel `a` needs capacity ≥ 1"), "{out}");
}

#[test]
fn flow_arity_and_flags_are_validated() {
    // Missing entry argument.
    let o = chls(&["flow", GCD]);
    assert!(!o.status.success());
    assert!(stderr(&o).contains("usage: chls flow"), "{}", stderr(&o));

    // Trailing extras beyond <file> <entry>.
    let o = chls(&["flow", GCD, "main", "42"]);
    assert!(!o.status.success());
    assert!(stderr(&o).contains("usage: chls flow"), "{}", stderr(&o));

    // `--jobs` belongs to check, not flow.
    let o = chls(&["flow", "--jobs", "4", GCD, "main"]);
    assert!(!o.status.success());
    assert!(
        stderr(&o).contains("unknown flag `--jobs` for `chls flow`"),
        "{}",
        stderr(&o)
    );
}

// ---------------------------------------------------------------------
// synth / verilog still work through the spec table
// ---------------------------------------------------------------------

#[test]
fn synth_and_verilog_roundtrip() {
    let o = chls(&["synth", "c2v", GCD, "main", "48", "36"]);
    assert!(o.status.success(), "{}", stderr(&o));
    let out = stdout(&o);
    assert!(out.contains("style:    FSMD"), "{out}");
    assert!(out.contains("result:   Some(12)"), "{out}");

    let o = chls(&["verilog", "--pipeline", "c2v", FIR, "main"]);
    assert!(o.status.success(), "{}", stderr(&o));
    assert!(stdout(&o).contains("module"), "{}", stdout(&o));
}

// ---------------------------------------------------------------------
// chls equiv: backend agreement proofs, refutations, flag validation
// ---------------------------------------------------------------------

#[test]
fn equiv_requires_exactly_two_backends() {
    // No --backend at all.
    let o = chls(&["equiv", FIR, "main"]);
    assert!(!o.status.success());
    let err = stderr(&o);
    assert!(err.contains("exactly two --backend flags"), "{err}");
    assert!(err.contains("usage: chls equiv"), "{err}");

    // Only one.
    let o = chls(&["equiv", "--backend", "handelc", FIR, "main"]);
    assert!(!o.status.success());
    let err = stderr(&o);
    assert!(err.contains("exactly two --backend flags, got 1"), "{err}");
    assert!(err.contains("usage: chls equiv"), "{err}");
}

#[test]
fn equiv_rejects_undeclared_flags_via_verb_table() {
    let o = chls(&["equiv", "--narrow", "--backend", "handelc", "--backend", "c2v", FIR, "main"]);
    assert!(!o.status.success());
    let err = stderr(&o);
    assert!(err.contains("unknown flag `--narrow` for `chls equiv`"), "{err}");
    assert!(err.contains("usage: chls equiv"), "{err}");
}

#[test]
fn opt_netlist_is_rejected_on_wrong_verbs() {
    // Declared for synth/verilog/report, not check or run.
    let o = chls(&["check", "--opt-netlist", GCD, "main", "48", "36"]);
    assert!(!o.status.success());
    let err = stderr(&o);
    assert!(
        err.contains("unknown flag `--opt-netlist` for `chls check`"),
        "{err}"
    );
    assert!(err.contains("usage: chls check"), "{err}");

    let o = chls(&["run", "--opt-netlist", GCD, "main", "48", "36"]);
    assert!(!o.status.success());
    assert!(
        stderr(&o).contains("unknown flag `--opt-netlist` for `chls run`"),
        "{}",
        stderr(&o)
    );
}

#[test]
fn equiv_proves_two_backends_agree_on_blend() {
    let o = chls(&[
        "equiv", "--backend", "handelc", "--backend", "transmogrifier", "--bound", "70",
        "examples/chl/blend.chl", "main",
    ]);
    assert!(o.status.success(), "{}", stdout(&o));
    let out = stdout(&o);
    assert!(out.contains("EQUIVALENT"), "{out}");
    assert!(out.contains("method"), "{out}");
}

#[test]
fn equiv_json_envelope_and_refutation_exit_code() {
    let dir = std::env::temp_dir().join("chls_equiv_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("bug.chl");
    std::fs::write(
        &file,
        "int main(int a, int b) {
            int s = 0;
            for (int i = 0; i < 4; i++) { s = (s + a * 3 + b) & 4095; }
            return s;
        }
        int main_bug(int a, int b) {
            int s = 0;
            for (int i = 0; i < 4; i++) { s = (s + a * 3 + b) & 4095; }
            if (s == 2900) { s = s ^ 1; }
            return s;
        }",
    )
    .unwrap();
    let path = file.to_str().unwrap();

    // Proof: same entry on both sides, JSON envelope, exit 0.
    let o = chls(&[
        "equiv", "--backend", "handelc", "--backend", "transmogrifier", "--bound", "24",
        "--json", path, "main",
    ]);
    assert!(o.status.success(), "{}", stdout(&o));
    let (ok, data) = envelope(&o, "equiv");
    assert!(ok);
    assert_eq!(data.get("verdict").unwrap().as_str(), "equivalent");
    assert!(
        matches!(data.get("aig_nodes"), Some(Json::Num(n)) if *n > 0.0),
        "aig_nodes present"
    );

    // Refutation: seeded miscompile, exit 1, counterexample in JSON.
    let o = chls(&[
        "equiv", "--backend", "handelc", "--backend", "transmogrifier", "--bound", "24",
        "--json", path, "main", "main_bug",
    ]);
    assert!(!o.status.success());
    let (ok, data) = envelope(&o, "equiv");
    assert!(!ok);
    assert_eq!(data.get("verdict").unwrap().as_str(), "differ");
    let detail = data.get("detail").unwrap();
    assert!(detail.get("inputs").is_some(), "counterexample inputs present");
    assert!(
        detail.get("a_value") != detail.get("b_value"),
        "replayed values differ"
    );
}

#[test]
fn equiv_rejects_dataflow_and_bad_bound() {
    // The cash backend emits dataflow circuits — not comparable.
    let o = chls(&[
        "equiv", "--backend", "cash", "--backend", "c2v", FIR, "main",
    ]);
    assert!(!o.status.success());
    assert!(stderr(&o).contains("dataflow"), "{}", stderr(&o));

    let o = chls(&[
        "equiv", "--backend", "handelc", "--backend", "c2v", "--bound", "zero", FIR, "main",
    ]);
    assert!(!o.status.success());
    assert!(stderr(&o).contains("--bound needs a positive integer"), "{}", stderr(&o));
}

#[test]
fn report_carries_opt_area() {
    // The table grows an `opt` column...
    let o = chls(&["report", "--backend", "c2v", FIR, "main"]);
    assert!(o.status.success(), "{}", stderr(&o));
    assert!(stdout(&o).contains("| opt"), "{}", stdout(&o));

    // ...and the JSON carries the what-if area, never above the baseline.
    let o = chls(&["report", "--backend", "c2v", "--json", FIR, "main"]);
    let (ok, data) = envelope(&o, "report");
    assert!(ok);
    let row = &data.get("backends").unwrap().as_arr()[0];
    let area = match row.get("area") {
        Some(Json::Num(n)) => *n,
        other => panic!("area missing: {other:?}"),
    };
    let opt = match row.get("opt_area") {
        Some(Json::Num(n)) => *n,
        other => panic!("opt_area missing: {other:?}"),
    };
    assert!(opt > 0.0 && opt <= area, "{opt} vs {area}");

    // With --opt-netlist the main synthesis is already optimized, so the
    // what-if column equals the baseline.
    let o = chls(&["report", "--backend", "c2v", "--opt-netlist", "--json", FIR, "main"]);
    let (ok, data) = envelope(&o, "report");
    assert!(ok);
    let row = &data.get("backends").unwrap().as_arr()[0];
    let (Some(Json::Num(a)), Some(Json::Num(n))) = (row.get("area"), row.get("opt_area"))
    else {
        panic!("area/opt_area missing");
    };
    assert_eq!(a, n, "--opt-netlist makes the baseline the optimized design");
}

#[test]
fn synth_accepts_opt_netlist_and_still_conforms() {
    let o = chls(&["synth", "--opt-netlist", "c2v", GCD, "main", "48", "36"]);
    assert!(o.status.success(), "{}", stderr(&o));
    let out = stdout(&o);
    assert!(out.contains("result:   Some(12)"), "{out}");
}
