//! Differential bit-exactness: the x86-64 JIT (`chls-jit`) against the
//! tape interpreter, over every example program with seeded random
//! inputs, plus targeted edge-case kernels (division by zero, full-width
//! shifts, signed wraparound, single-bit conditions).
//!
//! The contract is total equality: return value, cycle count, final
//! register file, and final memory images — or, when a run traps, the
//! identical error. On hosts without JIT support every test passes
//! trivially (and asserts that `chls_jit::available()` agrees).

use chls::interp::ArgValue;
use chls::{backend_by_name, Compiler, Design, SynthOptions};
use chls_frontend::types::Type;
use chls_jit::JitProgram;
use chls_rtl::fsmd::Fsmd;
use chls_sim::fsmd_sim;

const MAX_CYCLES: u64 = 5_000_000;

/// Deterministic 64-bit LCG (Knuth's MMIX constants) — the container has
/// no `rand`, and the suite must be reproducible anyway.
struct Lcg(u64);

impl Lcg {
    fn new(seed: u64) -> Self {
        Lcg(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        self.0 >> 11
    }

    /// A scalar in a range that exercises signs and small magnitudes.
    fn scalar(&mut self) -> i64 {
        (self.next() % 2001) as i64 - 1000
    }
}

/// Builds a random argument vector from the entry's HIR signature.
/// Returns `None` when a parameter has no value representation.
fn random_args(compiler: &Compiler, entry: &str, rng: &mut Lcg) -> Option<Vec<ArgValue>> {
    let (_, f) = compiler.hir().func_by_name(entry)?;
    let mut args = Vec::new();
    for (_, l) in f.params() {
        match &l.ty {
            Type::Bool => args.push(ArgValue::Scalar((rng.next() & 1) as i64)),
            Type::Int(_) => args.push(ArgValue::Scalar(rng.scalar())),
            Type::Array(_, _) => {
                args.push(ArgValue::Array(
                    (0..l.ty.flat_len()).map(|_| rng.scalar()).collect(),
                ));
            }
            Type::Void | Type::Ptr(_) | Type::Chan(_) => return None,
        }
    }
    Some(args)
}

/// Runs both engines on one (design, args) pair and demands bit-exact
/// agreement. Returns false when the host has no JIT.
fn assert_bit_exact(f: &Fsmd, args: &[ArgValue], label: &str) -> bool {
    let Some(prog) = JitProgram::compile(f) else {
        assert!(
            !chls_jit::available(),
            "{label}: compile returned None on a JIT-capable host"
        );
        return false;
    };
    let jit = prog.run(args, MAX_CYCLES);
    let interp = fsmd_sim::simulate(f, args, MAX_CYCLES);
    match (jit, interp) {
        (Ok(j), Ok(i)) => {
            assert_eq!(j.ret, i.ret, "{label}: return value diverged");
            assert_eq!(j.cycles, i.cycles, "{label}: cycle count diverged");
            assert_eq!(j.regs, i.regs, "{label}: final registers diverged");
            assert_eq!(j.mems, i.mems, "{label}: final memories diverged");
        }
        (Err(je), Err(ie)) => assert_eq!(je, ie, "{label}: errors diverged"),
        (j, i) => panic!("{label}: engines split: jit={j:?} interp={i:?}"),
    }
    true
}

fn synth_c2v(compiler: &Compiler, entry: &str) -> Option<Fsmd> {
    let backend = backend_by_name("c2v").expect("c2v is registered");
    match compiler.synthesize(backend.as_ref(), entry, &SynthOptions::default()) {
        Ok(Design::Fsmd(f)) => Some(f),
        Ok(_) => None,
        Err(_) => None, // language subset the backend refuses — not a JIT concern
    }
}

/// Every `examples/chl/*.chl` program, synthesized through c2v and run
/// on several seeded random argument vectors per program.
#[test]
fn examples_agree_on_random_inputs() {
    let dir = std::path::Path::new("examples/chl");
    let mut checked = 0usize;
    let mut entries: Vec<_> = std::fs::read_dir(dir)
        .expect("examples/chl exists")
        .map(|e| e.expect("readable").path())
        .filter(|p| p.extension().is_some_and(|x| x == "chl"))
        .collect();
    entries.sort();
    assert!(!entries.is_empty(), "no example programs found");
    for path in entries {
        let src = std::fs::read_to_string(&path).expect("readable example");
        let Ok(compiler) = Compiler::parse(&src) else {
            continue;
        };
        let Some(fsmd) = synth_c2v(&compiler, "main") else {
            continue;
        };
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let mut rng = Lcg::new(0xC0FFEE ^ name.len() as u64);
        for round in 0..4 {
            let Some(args) = random_args(&compiler, "main", &mut rng) else {
                break;
            };
            if !assert_bit_exact(&fsmd, &args, &format!("{name} round {round}")) {
                return; // host without JIT: nothing more to learn
            }
            checked += 1;
        }
    }
    if chls_jit::available() {
        assert!(checked >= 8, "too few example runs exercised ({checked})");
    }
}

/// Division and remainder by zero (and by -1 at `i64::MIN`-like values)
/// must match the interpreter's defined semantics exactly.
#[test]
fn division_by_zero_agrees() {
    let compiler = Compiler::parse(
        "int f(int a, int b) { return (a / b) ^ (a % b) ^ (a / (b - b)); }",
    )
    .expect("parses");
    let Some(fsmd) = synth_c2v(&compiler, "f") else {
        panic!("c2v must synthesize a straight-line kernel")
    };
    for (a, b) in [
        (7, 0),
        (-7, 0),
        (0, 0),
        (i64::from(i32::MIN), -1),
        (i64::from(i32::MAX), 1),
        (100, 3),
    ] {
        if !assert_bit_exact(
            &fsmd,
            &[ArgValue::Scalar(a), ArgValue::Scalar(b)],
            &format!("div0 a={a} b={b}"),
        ) {
            return;
        }
    }
}

/// Dynamic shifts at and beyond the type width: the saturation rule the
/// interpreter implements must be reproduced bit for bit.
#[test]
fn full_width_shifts_agree() {
    let compiler = Compiler::parse(
        "int f(int a, int s) { return (a << s) ^ (a >> s); }",
    )
    .expect("parses");
    let Some(fsmd) = synth_c2v(&compiler, "f") else {
        panic!("c2v must synthesize a straight-line kernel")
    };
    for (a, s) in [
        (1, 31),
        (1, 32),
        (1, 33),
        (-1, 63),
        (-1, 64),
        (-1, 1000),
        (12345, 0),
        (-12345, 7),
    ] {
        if !assert_bit_exact(
            &fsmd,
            &[ArgValue::Scalar(a), ArgValue::Scalar(s)],
            &format!("shift a={a} s={s}"),
        ) {
            return;
        }
    }
}

/// Narrow signed arithmetic wraps; the JIT's canonicalization sequences
/// must produce the interpreter's exact wrapped values.
#[test]
fn signed_overflow_wrap_agrees() {
    let compiler = Compiler::parse(
        "int f(int a, int b) {
            sint<8> x = (sint<8>) a;
            sint<8> y = (sint<8>) b;
            sint<8> s = x + y;
            sint<8> p = x * y;
            return ((int) s << 8) ^ (int) p;
        }",
    )
    .expect("parses");
    let Some(fsmd) = synth_c2v(&compiler, "f") else {
        panic!("c2v must synthesize a straight-line kernel")
    };
    for (a, b) in [(127, 1), (-128, -1), (100, 100), (-100, -100), (127, 127)] {
        if !assert_bit_exact(
            &fsmd,
            &[ArgValue::Scalar(a), ArgValue::Scalar(b)],
            &format!("wrap a={a} b={b}"),
        ) {
            return;
        }
    }
}

/// Single-bit (i1) conditions driving control flow — comparison results
/// land in 1-bit registers and steer the FSM.
#[test]
fn i1_conditions_agree() {
    let compiler = Compiler::parse(
        "int f(int a, int b) {
            int n = 0;
            while (a != b) {
                if (a > b) { a = a - 1; } else { b = b - 1; }
                n = n + 1;
            }
            return n;
        }",
    )
    .expect("parses");
    let Some(fsmd) = synth_c2v(&compiler, "f") else {
        panic!("c2v must synthesize a loop kernel")
    };
    for (a, b) in [(10, 3), (3, 10), (5, 5), (-4, 4), (0, -9)] {
        if !assert_bit_exact(
            &fsmd,
            &[ArgValue::Scalar(a), ArgValue::Scalar(b)],
            &format!("i1 a={a} b={b}"),
        ) {
            return;
        }
    }
}

/// The registered benchmark suite, through both engines.
#[test]
fn benchmark_suite_agrees() {
    for bench in chls::benchmarks() {
        let compiler = Compiler::parse(bench.source).expect("benchmark parses");
        let Some(fsmd) = synth_c2v(&compiler, bench.entry) else {
            continue;
        };
        if !assert_bit_exact(&fsmd, &bench.args, bench.name) {
            return;
        }
    }
}
