//! Commit-semantics lock for the cycle-accurate simulators.
//!
//! These tests pin down the observable edge behavior of
//! [`chls_sim::netlist_sim::NetlistSim::step`] and
//! [`chls_sim::fsmd_sim::simulate`] — register enable gating, RAM-write
//! commit-at-edge ordering, guard-before-bounds-check evaluation, and
//! out-of-bounds errors — so the dense-state hot-path rewrite is provably
//! behavior-preserving.

use chls_frontend::IntType;
use chls_ir::BinKind;
use chls_rtl::builder::FsmdBuilder;
use chls_rtl::fsmd::Rv;
use chls_rtl::netlist::{CellId, CellKind, Netlist, Ram};
use chls_sim::fsmd_sim::{simulate, FsmdSimError};
use chls_sim::netlist_sim::{NetlistSim, NetlistSimError};
use chls_sim::interp::ArgValue;

fn u(w: u16) -> IntType {
    IntType::new(w, false)
}

fn i32t() -> IntType {
    IntType::new(32, true)
}

/// Adds a register whose `next` input is patched after allocation so it
/// can reference downstream cells.
fn reg_with_next(
    nl: &mut Netlist,
    ty: IntType,
    init: i64,
    en: Option<CellId>,
    next_of: impl FnOnce(&mut Netlist, CellId) -> CellId,
) -> CellId {
    let placeholder = nl.add(CellKind::Const(0), ty);
    let reg = nl.add(
        CellKind::Reg {
            next: placeholder,
            init,
            en,
        },
        ty,
    );
    let next = next_of(nl, reg);
    nl.cells[reg.0 as usize].kind = CellKind::Reg { next, init, en };
    reg
}

// ---------------------------------------------------------------------
// NetlistSim: registers
// ---------------------------------------------------------------------

#[test]
fn netlist_registers_swap_simultaneously() {
    // a <= b, b <= a: both next inputs sample pre-edge values.
    let mut nl = Netlist::new("swap");
    let a = nl.add(
        CellKind::Reg {
            next: CellId(0),
            init: 1,
            en: None,
        },
        u(8),
    );
    let b = nl.add(
        CellKind::Reg {
            next: a,
            init: 2,
            en: None,
        },
        u(8),
    );
    nl.cells[a.0 as usize].kind = CellKind::Reg {
        next: b,
        init: 1,
        en: None,
    };
    nl.set_output("a", a);
    nl.set_output("b", b);
    let mut sim = NetlistSim::new(&nl).unwrap();
    sim.step().unwrap();
    assert_eq!(sim.output("a").unwrap(), 2);
    assert_eq!(sim.output("b").unwrap(), 1);
    sim.step().unwrap();
    assert_eq!(sim.output("a").unwrap(), 1);
    assert_eq!(sim.output("b").unwrap(), 2);
}

#[test]
fn netlist_enable_gates_register_commit() {
    let mut nl = Netlist::new("en");
    let en = nl.add(CellKind::Input { name: "en".into() }, u(1));
    let reg = reg_with_next(&mut nl, u(8), 5, Some(en), |nl, reg| {
        let one = nl.add(CellKind::Const(1), u(8));
        nl.add(CellKind::Bin(BinKind::Add, reg, one), u(8))
    });
    nl.set_output("q", reg);
    let mut sim = NetlistSim::new(&nl).unwrap();
    sim.set_input("en", 0);
    sim.step().unwrap();
    sim.step().unwrap();
    assert_eq!(sim.output("q").unwrap(), 5, "disabled register must hold");
    sim.set_input("en", 1);
    sim.step().unwrap();
    assert_eq!(sim.output("q").unwrap(), 6);
    sim.set_input("en", 0);
    sim.step().unwrap();
    assert_eq!(sim.output("q").unwrap(), 6, "re-disabled register holds again");
}

#[test]
fn netlist_register_init_canonicalized_to_width() {
    // init = 300 in an 8-bit register reads back as 300 & 0xFF = 44.
    let mut nl = Netlist::new("init");
    let reg = reg_with_next(&mut nl, u(8), 300, None, |_, reg| reg);
    nl.set_output("q", reg);
    let sim = NetlistSim::new(&nl).unwrap();
    assert_eq!(sim.output("q").unwrap(), 44);
}

#[test]
fn netlist_eval_does_not_advance_state() {
    let mut nl = Netlist::new("idem");
    let reg = reg_with_next(&mut nl, u(8), 0, None, |nl, reg| {
        let one = nl.add(CellKind::Const(1), u(8));
        nl.add(CellKind::Bin(BinKind::Add, reg, one), u(8))
    });
    nl.set_output("q", reg);
    let mut sim = NetlistSim::new(&nl).unwrap();
    for _ in 0..5 {
        assert_eq!(sim.output("q").unwrap(), 0, "reading outputs must not clock");
    }
    sim.step().unwrap();
    for _ in 0..5 {
        assert_eq!(sim.output("q").unwrap(), 1);
    }
}

// ---------------------------------------------------------------------
// NetlistSim: RAM commit ordering
// ---------------------------------------------------------------------

#[test]
fn netlist_ram_write_commits_at_edge_not_before() {
    let mut nl = Netlist::new("edge");
    let ram = nl.add_ram(Ram {
        name: "m".into(),
        elem: u(8),
        len: 4,
        init: Some(vec![9, 9, 9, 9]),
    });
    let addr = nl.add(CellKind::Input { name: "addr".into() }, u(8));
    let data = nl.add(CellKind::Input { name: "data".into() }, u(8));
    let one = nl.add(CellKind::Const(1), u(1));
    nl.add(
        CellKind::RamWrite {
            ram,
            addr,
            data,
            en: one,
        },
        u(8),
    );
    let rd = nl.add(CellKind::RamRead { ram, addr }, u(8));
    nl.set_output("rd", rd);
    let mut sim = NetlistSim::new(&nl).unwrap();
    sim.set_input("addr", 1);
    sim.set_input("data", 55);
    // The async read port races the write within the cycle: it must see
    // the OLD contents until the edge.
    assert_eq!(sim.output("rd").unwrap(), 9);
    sim.step().unwrap();
    assert_eq!(sim.output("rd").unwrap(), 55);
    assert_eq!(sim.ram(0), &[9, 55, 9, 9]);
}

#[test]
fn netlist_conflicting_ram_writes_last_cell_wins() {
    // Two enabled write ports to the same address in the same cycle:
    // commit order is cell-index order, so the later cell's data lands.
    let mut nl = Netlist::new("conflict");
    let ram = nl.add_ram(Ram {
        name: "m".into(),
        elem: u(8),
        len: 2,
        init: None,
    });
    let addr = nl.add(CellKind::Const(0), u(8));
    let d1 = nl.add(CellKind::Const(11), u(8));
    let d2 = nl.add(CellKind::Const(22), u(8));
    let one = nl.add(CellKind::Const(1), u(1));
    nl.add(
        CellKind::RamWrite {
            ram,
            addr,
            data: d1,
            en: one,
        },
        u(8),
    );
    nl.add(
        CellKind::RamWrite {
            ram,
            addr,
            data: d2,
            en: one,
        },
        u(8),
    );
    let rd = nl.add(CellKind::RamRead { ram, addr }, u(8));
    nl.set_output("rd", rd);
    let mut sim = NetlistSim::new(&nl).unwrap();
    sim.step().unwrap();
    assert_eq!(sim.output("rd").unwrap(), 22);
}

#[test]
fn netlist_disabled_ram_write_neither_commits_nor_bounds_checks() {
    // en = 0 suppresses the write entirely — even an out-of-range
    // address must not error, matching a disabled hardware port.
    let mut nl = Netlist::new("dis");
    let ram = nl.add_ram(Ram {
        name: "m".into(),
        elem: u(8),
        len: 2,
        init: None,
    });
    let addr = nl.add(CellKind::Const(99), u(8));
    let data = nl.add(CellKind::Const(1), u(8));
    let zero = nl.add(CellKind::Const(0), u(1));
    nl.add(
        CellKind::RamWrite {
            ram,
            addr,
            data,
            en: zero,
        },
        u(8),
    );
    let a0 = nl.add(CellKind::Const(0), u(8));
    let rd = nl.add(CellKind::RamRead { ram, addr: a0 }, u(8));
    nl.set_output("rd", rd);
    let mut sim = NetlistSim::new(&nl).unwrap();
    sim.step().unwrap();
    assert_eq!(sim.output("rd").unwrap(), 0);
    assert_eq!(sim.ram(0), &[0, 0]);
}

#[test]
fn netlist_ram_data_canonicalized_to_element_width() {
    let mut nl = Netlist::new("canon");
    let ram = nl.add_ram(Ram {
        name: "m".into(),
        elem: u(4),
        len: 2,
        init: None,
    });
    let addr = nl.add(CellKind::Const(1), u(8));
    let data = nl.add(CellKind::Input { name: "d".into() }, u(8));
    let one = nl.add(CellKind::Const(1), u(1));
    nl.add(
        CellKind::RamWrite {
            ram,
            addr,
            data,
            en: one,
        },
        u(8),
    );
    let rd = nl.add(CellKind::RamRead { ram, addr }, u(8));
    nl.set_output("rd", rd);
    let mut sim = NetlistSim::new(&nl).unwrap();
    sim.set_input("d", 0xAB);
    sim.step().unwrap();
    assert_eq!(sim.output("rd").unwrap(), 0xB, "stored word masked to u4");
}

// ---------------------------------------------------------------------
// NetlistSim: out-of-bounds errors
// ---------------------------------------------------------------------

#[test]
fn netlist_oob_read_and_write_report_ram_name() {
    for (addr_val, check_write) in [(4i64, false), (-1, false), (4, true), (-1, true)] {
        let mut nl = Netlist::new("oob");
        let ram = nl.add_ram(Ram {
            name: "buf".into(),
            elem: u(8),
            len: 4,
            init: None,
        });
        let addr = nl.add(CellKind::Input { name: "addr".into() }, IntType::new(8, true));
        if check_write {
            let data = nl.add(CellKind::Const(1), u(8));
            let one = nl.add(CellKind::Const(1), u(1));
            nl.add(
                CellKind::RamWrite {
                    ram,
                    addr,
                    data,
                    en: one,
                },
                u(8),
            );
            let c0 = nl.add(CellKind::Const(0), u(8));
            nl.set_output("o", c0);
        } else {
            let rd = nl.add(CellKind::RamRead { ram, addr }, u(8));
            nl.set_output("o", rd);
        }
        let mut sim = NetlistSim::new(&nl).unwrap();
        sim.set_input("addr", addr_val);
        let err = sim.step().unwrap_err();
        match err {
            NetlistSimError::OutOfBounds { ram, addr, len } => {
                assert_eq!(ram, "buf");
                assert_eq!(addr, addr_val);
                assert_eq!(len, 4);
            }
            other => panic!("expected OutOfBounds, got {other:?}"),
        }
    }
}

// ---------------------------------------------------------------------
// FSMD simulator semantics
// ---------------------------------------------------------------------

#[test]
fn fsmd_actions_commit_simultaneously() {
    // par { a = b; b = a; } — the Handel-C swap.
    let mut b = FsmdBuilder::new("swap");
    let a = b.reg("a", i32t(), 3);
    let bb = b.reg("b", i32t(), 7);
    let s0 = b.state();
    let s1 = b.state();
    let (old_a, old_b) = (b.get(a), b.get(bb));
    b.at(s0).set(a, old_b).set(bb, old_a).goto(s1);
    b.at(s1).done();
    let result = b.get(a);
    let f = b.returning(result).finish();
    let out = simulate(&f, &[], 100).unwrap();
    // ret samples in s1 pre-commit of s1 (which commits nothing), after
    // s0's swap: a holds the old b.
    assert_eq!(out.ret, Some(7));
}

#[test]
fn fsmd_guard_false_suppresses_oob_write() {
    // A guarded write whose guard is 0 must not evaluate addr/value for
    // bounds purposes — the seed semantics short-circuit on the guard.
    let ty = i32t();
    let mut b = FsmdBuilder::new("gw");
    let mem = b.mem("buf", ty, 4);
    let s0 = b.state();
    b.at(s0)
        .write_if(
            Rv::konst(0, IntType::new(1, false)),
            mem,
            Rv::konst(99, ty),
            Rv::konst(1, ty),
        )
        .done();
    let f = b.finish();
    let out = simulate(&f, &[], 100).unwrap();
    assert_eq!(out.mems[0], vec![0, 0, 0, 0]);
}

#[test]
fn fsmd_guard_true_oob_write_errors() {
    let ty = i32t();
    let mut b = FsmdBuilder::new("gw2");
    let mem = b.mem("buf", ty, 4);
    let s0 = b.state();
    b.at(s0)
        .write_if(
            Rv::konst(1, IntType::new(1, false)),
            mem,
            Rv::konst(99, ty),
            Rv::konst(1, ty),
        )
        .done();
    let f = b.finish();
    let err = simulate(&f, &[], 100).unwrap_err();
    assert!(matches!(err, FsmdSimError::OutOfBounds { addr: 99, len: 4, .. }));
}

#[test]
fn fsmd_mux_untaken_branch_not_evaluated() {
    // sel ? mem[0] : mem[99] with sel = 1: the OOB read on the untaken
    // side must not fire (short-circuit mux evaluation).
    let ty = i32t();
    let mut b = FsmdBuilder::new("mux");
    let mem = b.rom("tab", ty, vec![5, 6]);
    let r = b.reg("r", ty, 0);
    let s0 = b.state();
    let s1 = b.state();
    let safe = b.read(mem, Rv::konst(0, ty));
    let oob = b.read(mem, Rv::konst(99, ty));
    let sel = b.konst(1, IntType::new(1, false));
    let v = b.mux(sel, safe, oob);
    b.at(s0).set(r, v).goto(s1);
    b.at(s1).done();
    let result = b.get(r);
    let f = b.returning(result).finish();
    let out = simulate(&f, &[], 100).unwrap();
    assert_eq!(out.ret, Some(5));
}

#[test]
fn fsmd_mux_taken_oob_branch_still_errors() {
    let ty = i32t();
    let mut b = FsmdBuilder::new("mux2");
    let mem = b.rom("tab", ty, vec![5, 6]);
    let r = b.reg("r", ty, 0);
    let s0 = b.state();
    let safe = b.read(mem, Rv::konst(0, ty));
    let oob = b.read(mem, Rv::konst(99, ty));
    let sel = b.konst(0, IntType::new(1, false));
    let v = b.mux(sel, safe, oob);
    b.at(s0).set(r, v).done();
    let f = b.finish();
    assert!(matches!(
        simulate(&f, &[], 100).unwrap_err(),
        FsmdSimError::OutOfBounds { addr: 99, .. }
    ));
}

#[test]
fn fsmd_conflicting_writes_last_action_wins() {
    // Two writes to the same address in one state commit in action
    // order: the later action's value survives.
    let ty = i32t();
    let mut b = FsmdBuilder::new("ww");
    let mem = b.mem("buf", ty, 2);
    let s0 = b.state();
    b.at(s0)
        .write(mem, Rv::konst(0, ty), Rv::konst(10, ty))
        .write(mem, Rv::konst(0, ty), Rv::konst(20, ty))
        .done();
    let f = b.finish();
    let out = simulate(&f, &[], 100).unwrap();
    assert_eq!(out.mems[0], vec![20, 0]);
}

#[test]
fn fsmd_conflicting_reg_sets_last_action_wins() {
    let ty = i32t();
    let mut b = FsmdBuilder::new("rr");
    let r = b.reg("r", ty, 0);
    let s0 = b.state();
    let s1 = b.state();
    b.at(s0)
        .set(r, Rv::konst(1, ty))
        .set(r, Rv::konst(2, ty))
        .goto(s1);
    b.at(s1).done();
    let result = b.get(r);
    let f = b.returning(result).finish();
    let out = simulate(&f, &[], 100).unwrap();
    assert_eq!(out.ret, Some(2));
}

#[test]
fn fsmd_branch_condition_reads_pre_commit_values() {
    // s0 sets r = 1 and branches on (r == 1) in the SAME cycle: the
    // branch must see the old r (0), so it goes to the else target.
    let ty = i32t();
    let mut b = FsmdBuilder::new("br");
    let r = b.reg("r", ty, 0);
    let flag = b.reg("flag", ty, 0);
    let s0 = b.state();
    let s_then = b.state();
    let s_els = b.state();
    let cond = b.eq(b.get(r), Rv::konst(1, ty));
    b.at(s0).set(r, Rv::konst(1, ty)).branch(cond, s_then, s_els);
    b.at(s_then).set(flag, Rv::konst(100, ty)).done();
    b.at(s_els).set(flag, Rv::konst(200, ty)).done();
    let result = b.get(flag);
    let f = b.returning(result).finish();
    let out = simulate(&f, &[], 100).unwrap();
    // Done-state return samples flag pre-commit, so look at cycles to
    // know the path: s0 -> s_els is 2 cycles.
    assert_eq!(out.cycles, 2);
    assert_eq!(out.ret, Some(0), "ret samples pre-commit in the done state");
}

#[test]
fn fsmd_memory_param_binding_and_writeback() {
    let ty = i32t();
    let mut b = FsmdBuilder::new("wb");
    let mem = b.mem("a", ty, 4);
    let s0 = b.state();
    b.at(s0)
        .write(mem, Rv::konst(3, ty), Rv::konst(-7, ty))
        .done();
    let mut f = b.finish();
    f.mems[0].param_index = Some(0);
    let out = simulate(&f, &[ArgValue::Array(vec![1, 2, 3, 4])], 100).unwrap();
    assert_eq!(out.mems[0], vec![1, 2, 3, -7]);
}

#[test]
fn fsmd_cycle_limit_exact_boundary() {
    // A machine that finishes in exactly `max_cycles` cycles must pass;
    // one fewer budget cycle must fail.
    let mut b = FsmdBuilder::new("bound");
    let s: Vec<_> = (0..4).map(|_| b.state()).collect();
    for w in s.windows(2) {
        b.at(w[0]).goto(w[1]);
    }
    b.at(s[3]).done();
    let f = b.finish();
    assert_eq!(simulate(&f, &[], 4).unwrap().cycles, 4);
    assert!(matches!(
        simulate(&f, &[], 3).unwrap_err(),
        FsmdSimError::CycleLimit(3)
    ));
}
