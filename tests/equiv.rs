//! End-to-end tests of the `chls-logic` equivalence subsystem: the
//! optimizer is formally checked against its own input, broken rewrites
//! are refuted with simulator-confirmed counterexamples, and two real
//! backends are proven bounded-equivalent on a shared program.

use chls::interp::ArgValue;
use chls::{backend_by_name, Compiler, Design, SynthOptions};
use chls_frontend::IntType;
use chls_ir::BinKind;
use chls_logic::{
    check_comb_equiv, check_seq_equiv, optimize, EquivOptions, Verdict,
};
use chls_rtl::netlist::{CellKind, Netlist};
use chls_rtl::CostModel;
use chls_sim::netlist_sim::NetlistSim;
use proptest::prelude::*;

/// Random layered combinational netlist over two 16-bit inputs, 20–60
/// cells, mixing arithmetic, logic, comparisons, and muxes.
fn random_netlist(n: usize, seed: u64) -> Netlist {
    let ty = IntType::new(16, false);
    let bit = IntType::new(1, false);
    let mut nl = Netlist::new("rand");
    let a = nl.add(CellKind::Input { name: "a".into() }, ty);
    let b = nl.add(CellKind::Input { name: "b".into() }, ty);
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut nets = vec![a, b];
    for _ in 0..n {
        let x = nets[(next() as usize) % nets.len()];
        let y = nets[(next() as usize) % nets.len()];
        let id = match next() % 12 {
            0 => nl.add(CellKind::Const((next() % 4096) as i64), ty),
            1 => {
                let s = nl.add(CellKind::Bin(BinKind::Lt, x, y), bit);
                nl.add(CellKind::Mux { sel: s, a: x, b: y }, ty)
            }
            2 => nl.add(CellKind::Bin(BinKind::Div, x, y), ty),
            3 => nl.add(CellKind::Bin(BinKind::Rem, x, y), ty),
            4 => nl.add(CellKind::Bin(BinKind::Shl, x, y), ty),
            5 => nl.add(CellKind::Bin(BinKind::Shr, x, y), ty),
            6 => nl.add(CellKind::Bin(BinKind::Mul, x, y), ty),
            7 => nl.add(CellKind::Bin(BinKind::Sub, x, y), ty),
            8 => nl.add(CellKind::Bin(BinKind::And, x, y), ty),
            9 => nl.add(CellKind::Bin(BinKind::Or, x, y), ty),
            10 => nl.add(CellKind::Bin(BinKind::Xor, x, y), ty),
            _ => nl.add(CellKind::Bin(BinKind::Add, x, y), ty),
        };
        nets.push(id);
    }
    for (i, &net) in nets.iter().rev().take(3).enumerate() {
        nl.set_output(format!("o{i}"), net);
    }
    nl
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// The optimizer's output is formally equivalent to its input (full
    /// input space, decided by the strash/BDD/SAT ladder) and never
    /// costs more area.
    #[test]
    fn optimize_is_sat_equivalent_and_never_larger(
        n in 20usize..60,
        seed in any::<u64>(),
    ) {
        let nl = random_netlist(n, seed);
        let opt = optimize(&nl);
        let model = CostModel::new();
        prop_assert!(
            opt.area(&model) <= nl.area(&model),
            "optimizer grew area: {} -> {} (seed {seed})",
            nl.area(&model),
            opt.area(&model)
        );
        let report = check_comb_equiv(&nl, &opt, &EquivOptions::default())
            .expect("check runs");
        prop_assert!(
            matches!(report.verdict, Verdict::Equivalent),
            "optimizer changed semantics (seed {seed}): {:?}",
            report.verdict
        );
    }
}

/// A deliberately broken "rewrite" — replacing `a + b` with `a | b`,
/// sound only when no carries propagate — must be refuted, and the
/// counterexample must be confirmed by the concrete simulator.
#[test]
fn broken_rewrite_is_refuted_with_confirmed_counterexample() {
    let ty = IntType::new(8, false);
    let build = |op: BinKind| {
        let mut nl = Netlist::new("masked_sum");
        let a = nl.add(CellKind::Input { name: "a".into() }, ty);
        let b = nl.add(CellKind::Input { name: "b".into() }, ty);
        let s = nl.add(CellKind::Bin(op, a, b), ty);
        nl.set_output("s", s);
        nl
    };
    let good = build(BinKind::Add);
    let broken = build(BinKind::Or);
    let report = check_comb_equiv(&good, &broken, &EquivOptions::default())
        .expect("check runs");
    let Verdict::Differ(cex) = report.verdict else {
        panic!("broken rewrite not refuted: {:?}", report.verdict);
    };
    assert_eq!(cex.output, "s");
    assert_ne!(cex.a_value, cex.b_value);
    // Independently replay the counterexample through both netlists.
    for (nl, expected) in [(&good, cex.a_value), (&broken, cex.b_value)] {
        let mut sim = NetlistSim::new(nl).expect("builds");
        for (name, v) in &cex.inputs {
            sim.set_input(name.clone(), *v);
        }
        assert_eq!(sim.output("s").expect("evaluates"), expected);
    }
}

const SUMSQ: &str = "
    int sumsq(int a, int b) {
        int s = 0;
        for (int i = 0; i < 4; i++) {
            s = (s + a * a + b) & 4095;
        }
        return s;
    }
";

fn synth_fsmd(src: &str, backend: &str, entry: &str) -> chls_rtl::Fsmd {
    let compiler = Compiler::parse(src).expect("parses");
    let b = backend_by_name(backend).expect("registered");
    match compiler.synthesize(b.as_ref(), entry, &SynthOptions::default()) {
        Ok(Design::Fsmd(f)) => f,
        other => panic!("{backend}:{entry}: expected an FSMD, got {other:?}"),
    }
}

/// Two genuinely different schedules of the same program (handelc's
/// rule-timed FSMD vs transmogrifier's one-big-switch) are proven
/// bounded-equivalent.
#[test]
fn two_backends_prove_bounded_equivalent() {
    let a = synth_fsmd(SUMSQ, "handelc", "sumsq");
    let b = synth_fsmd(SUMSQ, "transmogrifier", "sumsq");
    let report =
        check_seq_equiv(&a, &b, 24, &EquivOptions::default()).expect("check runs");
    assert!(
        matches!(report.verdict, Verdict::Equivalent),
        "backends disagree: {:?}",
        report.verdict
    );
}

/// A bound under which no input can finish on both sides must come back
/// `Unknown`, never a vacuous `Equivalent`.
#[test]
fn vacuous_bound_is_unknown_not_equivalent() {
    let a = synth_fsmd(SUMSQ, "handelc", "sumsq");
    let b = synth_fsmd(SUMSQ, "transmogrifier", "sumsq");
    let report =
        check_seq_equiv(&a, &b, 1, &EquivOptions::default()).expect("check runs");
    assert!(
        matches!(report.verdict, Verdict::Unknown(_)),
        "vacuous bound must be Unknown: {:?}",
        report.verdict
    );
}

const SEEDED_BUG: &str = "
    int main(int a, int b) {
        int s = 0;
        for (int i = 0; i < 4; i++) {
            s = (s + a * 3 + b) & 4095;
        }
        return s;
    }

    int main_bug(int a, int b) {
        int s = 0;
        for (int i = 0; i < 4; i++) {
            s = (s + a * 3 + b) & 4095;
        }
        if (s == 2900) {
            s = s ^ 1;
        }
        return s;
    }
";

/// A seeded miscompile — correct except on one deep reachable state —
/// is refuted, and the counterexample distinguishes the two entries in
/// the golden interpreter too.
#[test]
fn seeded_miscompile_refuted_with_interpreter_confirmed_cex() {
    let a = synth_fsmd(SEEDED_BUG, "handelc", "main");
    let b = synth_fsmd(SEEDED_BUG, "transmogrifier", "main_bug");
    let report =
        check_seq_equiv(&a, &b, 24, &EquivOptions::default()).expect("check runs");
    let Verdict::Differ(cex) = report.verdict else {
        panic!("seeded miscompile not refuted: {:?}", report.verdict);
    };
    assert_ne!(cex.a_value, cex.b_value);
    // The solver's input vector must distinguish the entries under the
    // golden interpreter as well — full independence from the netlist
    // and symbolic models.
    let compiler = Compiler::parse(SEEDED_BUG).expect("parses");
    let mut args = vec![ArgValue::Scalar(0); 2];
    for (name, v) in &cex.inputs {
        let idx: usize = name
            .strip_prefix("arg")
            .and_then(|s| s.parse().ok())
            .expect("unified input names are arg{i}");
        args[idx] = ArgValue::Scalar(*v);
    }
    let good = compiler.interpret("main", &args).expect("runs").ret;
    let bug = compiler.interpret("main_bug", &args).expect("runs").ret;
    assert_ne!(good, bug, "counterexample must distinguish the entries");
    assert_eq!(good, Some(cex.a_value));
    assert_eq!(bug, Some(cex.b_value));
}

/// Interface mismatches (different parameter shapes) are reported as
/// errors, not verdicts.
#[test]
fn interface_mismatch_is_an_error() {
    const TWO: &str = "
        int f(int a) { int s = 0; for (int i = 0; i < 2; i++) { s = s + a; } return s; }
        int g(int a, int b) { int s = 0; for (int i = 0; i < 2; i++) { s = s + a + b; } return s; }
    ";
    let a = synth_fsmd(TWO, "handelc", "f");
    let b = synth_fsmd(TWO, "handelc", "g");
    assert!(check_seq_equiv(&a, &b, 8, &EquivOptions::default()).is_err());
}

/// Comparing a netlist with itself after optimization: `CellId`-level
/// sharing means the miter should collapse structurally, without SAT.
#[test]
fn self_equivalence_decided_by_strash() {
    let nl = random_netlist(40, 0xfeed);
    let report = check_comb_equiv(&nl, &nl, &EquivOptions::default()).expect("check runs");
    assert!(matches!(report.verdict, Verdict::Equivalent));
    assert_eq!(report.method, chls_logic::Method::Strash);
}
