//! Integration tests for `chls rewrite`: the software-idiom corpus in
//! `examples/chl/software/` must be auto-repaired into forms that every
//! accepting backend synthesizes conformantly (sequential and parallel
//! job fan-out), the SAT equivalence rung must fire where the program is
//! bounded enough, and — the part that keeps the certifier honest — a
//! deliberately wrong rewrite (off-by-one stack bound) must be refuted
//! with a counterexample that the hardware simulator confirms.

use chls::interp::ArgValue;
use chls::{
    backend_by_name, check_conformance_with_jobs, rewrite_and_certify, simulate_design, Compiler,
    CheckStatus, SynthOptions, Verdict,
};
use chls_opt::rewrite::RewriteOptions;
use std::path::Path;

/// One corpus program: file, entry point, representative arguments for
/// conformance, and the backends allowed to refuse the *rewritten* form
/// (cones cannot take the stack machine's data-dependent dispatch loop,
/// exactly as its construct matrix says).
struct Case {
    file: &'static str,
    entry: &'static str,
    args: Vec<ArgValue>,
    may_refuse: &'static [&'static str],
    /// Expected accepted-backend count after rewriting, over the full
    /// 9-row construct matrix (7 compilers + 2 lint-only rows).
    accepted_after: usize,
}

fn corpus() -> Vec<Case> {
    let ramp16: Vec<i64> = (0..16).map(|i| i64::from(3 * i - 7)).collect();
    vec![
        Case {
            file: "fib.chl",
            entry: "fib",
            args: vec![ArgValue::Scalar(10)],
            may_refuse: &["cones"],
            accepted_after: 8,
        },
        Case {
            file: "fact.chl",
            entry: "fact",
            args: vec![ArgValue::Scalar(9)],
            may_refuse: &[],
            accepted_after: 9,
        },
        Case {
            file: "bsearch.chl",
            entry: "bsearch",
            args: vec![ArgValue::Array(ramp16.clone()), ArgValue::Scalar(14)],
            may_refuse: &[],
            accepted_after: 9,
        },
        Case {
            file: "memcpy_walk.chl",
            entry: "memcpy_walk",
            args: vec![
                ArgValue::Array(vec![0; 64]),
                ArgValue::Array((0..64).map(|i| 1000 - i).collect()),
                ArgValue::Scalar(37),
            ],
            may_refuse: &[],
            accepted_after: 9,
        },
        Case {
            file: "matmul.chl",
            entry: "matmul",
            args: vec![
                ArgValue::Array(ramp16.clone()),
                ArgValue::Array((0..16).map(|i| (i * i) % 11 - 5).collect()),
                ArgValue::Array(vec![0; 16]),
            ],
            may_refuse: &[],
            accepted_after: 9,
        },
        Case {
            file: "bitcount.chl",
            entry: "bitcount",
            args: vec![ArgValue::Scalar(0xA7)],
            may_refuse: &[],
            accepted_after: 9,
        },
    ]
}

fn load(file: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("examples/chl/software")
        .join(file);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Every corpus program is repaired, certified, and gains backends.
#[test]
fn corpus_rewrites_are_certified() {
    for case in corpus() {
        let src = load(case.file);
        let outcome = rewrite_and_certify(&src, case.entry, &RewriteOptions::default(), None)
            .unwrap_or_else(|e| panic!("{}: {e}", case.file));
        assert!(outcome.changed, "{}: rewriter left the program alone", case.file);
        assert!(
            outcome.certified,
            "{}: not certified: {:?}",
            case.file, outcome.checks
        );
        assert!(
            outcome.accepted_after > outcome.accepted_before,
            "{}: no backend gained ({} -> {})",
            case.file,
            outcome.accepted_before,
            outcome.accepted_after
        );
        assert_eq!(
            outcome.accepted_after, case.accepted_after,
            "{}: accepted-after drifted from the documented table",
            case.file
        );
        for check in &outcome.checks {
            assert!(
                !matches!(check.status, CheckStatus::Fail),
                "{}: rung {} failed: {}",
                case.file,
                check.name,
                check.detail
            );
        }
    }
}

/// The rewritten corpus is conformance-checked against the golden
/// interpreter on every registered backend, at the given job fan-out.
fn conformance_sweep(jobs: usize) {
    for case in corpus() {
        let src = load(case.file);
        let outcome = rewrite_and_certify(&src, case.entry, &RewriteOptions::default(), None)
            .unwrap_or_else(|e| panic!("{}: {e}", case.file));
        let verdicts = check_conformance_with_jobs(&outcome.source, case.entry, &case.args, jobs)
            .unwrap_or_else(|e| panic!("{}: interpreter rejected rewrite: {e}", case.file));
        for (backend, verdict) in verdicts {
            match verdict {
                Verdict::Pass { .. } => {}
                Verdict::Unsupported(reason) => {
                    assert!(
                        case.may_refuse.contains(&backend),
                        "{}: {backend} unexpectedly refused the rewrite: {reason}",
                        case.file
                    );
                }
                other => panic!("{}: {backend} diverged on the rewrite: {other:?}", case.file),
            }
        }
    }
}

#[test]
fn rewritten_corpus_is_conformant_sequential() {
    conformance_sweep(1);
}

#[test]
fn rewritten_corpus_is_conformant_parallel() {
    conformance_sweep(8);
}

/// Where the original is bounded enough (scalar inputs within the
/// equivalence budget), certification carries a SAT/BDD equivalence
/// proof, not just seeded vectors.
#[test]
fn equiv_rung_fires_where_bounded() {
    let outcome = rewrite_and_certify(
        &load("bitcount.chl"),
        "bitcount",
        &RewriteOptions::default(),
        None,
    )
    .unwrap();
    let equiv = outcome
        .checks
        .iter()
        .find(|c| c.name == "equiv")
        .expect("equiv rung present");
    assert!(
        matches!(equiv.status, CheckStatus::Pass),
        "equiv rung did not prove bitcount: {}",
        equiv.detail
    );

    // Recursive originals cannot be synthesized for comparison, so the
    // equiv rung must honestly skip — never silently pass.
    let fib = rewrite_and_certify(&load("fib.chl"), "fib", &RewriteOptions::default(), None)
        .unwrap();
    let equiv = fib.checks.iter().find(|c| c.name == "equiv").expect("equiv rung present");
    assert!(matches!(equiv.status, CheckStatus::Skip), "{}", equiv.detail);
}

/// The seeded wrong rewrite: capping fib's stack one frame short of the
/// proved depth. Certification must refuse it with a counterexample, and
/// the counterexample must be real — synthesizing the broken rewrite and
/// running it in the hardware simulator at the deepest input disagrees
/// with (or crashes against) the golden interpreter on the original.
#[test]
fn off_by_one_stack_cap_is_refuted_and_simulator_confirmed() {
    let src = load("fib.chl");
    let broken_opts = RewriteOptions {
        stack_cap_override: Some(14),
        ..RewriteOptions::default()
    };
    let outcome = rewrite_and_certify(&src, "fib", &broken_opts, None).unwrap();
    assert!(!outcome.certified, "off-by-one stack bound slipped through certification");
    let diff = outcome
        .checks
        .iter()
        .find(|c| c.name == "differential")
        .expect("differential rung present");
    assert!(
        matches!(diff.status, CheckStatus::Fail),
        "differential rung did not refute the broken rewrite: {}",
        diff.detail
    );
    assert!(
        diff.detail.contains("counterexample"),
        "refutation carries no counterexample: {}",
        diff.detail
    );

    // Simulator confirmation: the broken machine still compiles and
    // synthesizes (the bug is a runtime bound), so run it in hardware at
    // n = 15 — the one input needing all 15 frames. The original is
    // recursive, so its golden value comes from the relaxed frontend
    // plus the interpreter.
    let hir = chls_frontend::compile_to_hir_relaxed(&src)
        .expect("original parses under the relaxed frontend path");
    let golden = match chls::interp::run(
        &hir,
        "fib",
        &[ArgValue::Scalar(15)],
        &chls::interp::InterpOptions::default(),
    ) {
        Ok(r) => r.ret,
        Err(e) => panic!("golden interpreter failed on fib(15): {e}"),
    };

    let compiler = Compiler::parse(&outcome.source).expect("broken rewrite still strict-compiles");
    let backend = backend_by_name("c2v").expect("c2v registered");
    let design = compiler
        .synthesize(backend.as_ref(), "fib", &SynthOptions::default())
        .expect("broken rewrite still synthesizes");
    // An out-of-bounds stack write aborting the simulation would be an
    // equally conclusive confirmation, hence the `if let Ok`.
    if let Ok(out) = simulate_design(&design, &[ArgValue::Scalar(15)]) {
        assert_ne!(
            out.ret, golden,
            "hardware agreed with the golden interpreter at n=15; the stack cap was not actually broken"
        );
    }

    // And the honest cap certifies on the same program.
    let fixed = rewrite_and_certify(&src, "fib", &RewriteOptions::default(), None).unwrap();
    assert!(fixed.certified);
}
