//! Formal equivalence checking of synthesized hardware (`chls_rtl::bdd`).
//!
//! The strongest check in this file verifies the *entire* compile flow —
//! frontend, SSA lowering, optimization, and the Cones combinational
//! backend — against an independently hand-built reference netlist, with
//! BDDs, over all 2^N inputs at once. The others check that the netlist
//! optimizer is equivalence-preserving on real synthesized designs and
//! that planted miscompilations are caught with verified witnesses.

use chls::{backend_by_name, Compiler, Design, SynthOptions};
use chls_frontend::IntType;
use chls_ir::BinKind;
use chls_rtl::{check_equivalence, CellKind, Equivalence, Netlist};

const BUDGET: usize = 1 << 22;

fn cones_netlist(src: &str, entry: &str) -> Netlist {
    let compiler = Compiler::parse(src).expect("parses");
    let backend = backend_by_name("cones").expect("registered");
    let design = compiler
        .synthesize(backend.as_ref(), entry, &SynthOptions::default())
        .expect("cones synthesizes");
    match design {
        Design::Comb(nl) => nl,
        _ => panic!("cones emits combinational netlists"),
    }
}

#[test]
fn cones_popcount_matches_handbuilt_reference() {
    // The whole compiler on one side ...
    let synthesized = cones_netlist(
        "int f(int x) {
            int c = 0;
            #pragma unroll 0
            for (int i = 0; i < 16; i++) {
                c += (x >> i) & 1;
            }
            return c;
        }",
        "f",
    );
    // ... a 20-line hand-built circuit on the other.
    let i32t = IntType::new(32, true);
    let mut reference = Netlist::new("ref");
    let x = reference.add(
        CellKind::Input {
            name: synthesized_input_name(&synthesized),
        },
        i32t,
    );
    let mut acc = reference.add(CellKind::Const(0), i32t);
    for i in 0..16 {
        let k = reference.add(CellKind::Const(i), i32t);
        let sh = reference.add(CellKind::Bin(BinKind::Shr, x, k), i32t);
        let one = reference.add(CellKind::Const(1), i32t);
        let bit = reference.add(CellKind::Bin(BinKind::And, sh, one), i32t);
        acc = reference.add(CellKind::Bin(BinKind::Add, acc, bit), i32t);
    }
    let out_name = synthesized.outputs[0].0.clone();
    reference.outputs.push((out_name, acc));

    let r = check_equivalence(&synthesized, &reference, BUDGET).expect("checkable");
    assert_eq!(r, Equivalence::Equivalent, "compiler output differs from reference");
}

/// The single primary input's name as the synthesized netlist spells it.
fn synthesized_input_name(nl: &Netlist) -> String {
    nl.cells
        .iter()
        .find_map(|c| match &c.kind {
            CellKind::Input { name } => Some(name.clone()),
            _ => None,
        })
        .expect("netlist has an input")
}

#[test]
fn optimizer_preserves_synthesized_clamp() {
    let nl = cones_netlist(
        "int f(int v, int lo, int hi) {
            if (v < lo) { v = lo; } else { if (v > hi) { v = hi; } }
            return v;
        }",
        "f",
    );
    let mut opt = nl.clone();
    opt.fold_constants();
    opt.sweep_dead();
    let r = check_equivalence(&nl, &opt, BUDGET).expect("checkable");
    assert_eq!(r, Equivalence::Equivalent);
}

#[test]
fn optimizer_preserves_synthesized_parity_tree() {
    let nl = cones_netlist(
        "int f(int x) {
            int p = 0;
            #pragma unroll 0
            for (int i = 0; i < 32; i++) {
                p ^= (x >> i) & 1;
            }
            return p;
        }",
        "f",
    );
    let mut opt = nl.clone();
    opt.fold_constants();
    opt.sweep_dead();
    let r = check_equivalence(&nl, &opt, BUDGET).expect("checkable");
    assert_eq!(r, Equivalence::Equivalent);
}

mod properties {
    use super::*;
    use proptest::prelude::*;

    /// Random pure expressions over two variables, multiplier-free so the
    /// BDDs stay small.
    fn arb_expr(depth: u32) -> BoxedStrategy<String> {
        let leaf = prop_oneof![
            Just("a".to_string()),
            Just("b".to_string()),
            (-8i64..8).prop_map(|v| format!("{v}")),
        ];
        leaf.prop_recursive(depth, 10, 2, |inner| {
            prop_oneof![
                (inner.clone(), inner.clone(), "[-+&|^]".prop_map(|s: String| s))
                    .prop_map(|(l, r, op)| format!("({l} {op} {r})")),
                (inner.clone(), 0u8..5).prop_map(|(l, s)| format!("({l} >> {s})")),
                (inner.clone(), 0u8..5).prop_map(|(l, s)| format!("({l} << {s})")),
                (inner.clone(), inner.clone(), inner)
                    .prop_map(|(c, t, e)| format!("(({c} > 0) ? {t} : {e})")),
            ]
        })
        .boxed()
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

        /// Algebraic identities survive the whole compile flow: `E`,
        /// `E ^ 0`, `~~E`, and `0 + E` must synthesize to formally
        /// equivalent circuits.
        #[test]
        fn rewritten_expressions_stay_equivalent(e in arb_expr(3)) {
            let base = cones_netlist(
                &format!("int f(int a, int b) {{ return {e}; }}"),
                "f",
            );
            for rewrite in [
                format!("({e}) ^ 0"),
                format!("~(~({e}))"),
                format!("0 + ({e})"),
            ] {
                let other = cones_netlist(
                    &format!("int f(int a, int b) {{ return {rewrite}; }}"),
                    "f",
                );
                match check_equivalence(&base, &other, BUDGET) {
                    Ok(Equivalence::Equivalent) => {}
                    Ok(Equivalence::Differ { witness, .. }) => {
                        panic!("`{e}` vs `{rewrite}` differ on {witness:?}")
                    }
                    Err(chls_rtl::BddError::Budget) => {} // rare; not a failure
                    Err(other) => panic!("`{e}`: {other}"),
                }
            }
        }
    }
}

#[test]
fn planted_miscompile_is_caught() {
    let good = cones_netlist("int f(int a, int b) { return (a & b) + 3; }", "f");
    // Plant a bug: flip the first And to Or.
    let mut bad = good.clone();
    let mut planted = false;
    for cell in &mut bad.cells {
        if let CellKind::Bin(op @ BinKind::And, _, _) = &mut cell.kind {
            *op = BinKind::Or;
            planted = true;
            break;
        }
    }
    assert!(planted, "no And cell to mutate");
    match check_equivalence(&good, &bad, BUDGET).expect("checkable") {
        Equivalence::Differ { output, witness, .. } => {
            assert!(!output.is_empty());
            assert!(!witness.is_empty());
        }
        Equivalence::Equivalent => panic!("planted bug not detected"),
    }
}
