//! Workspace-wide conformance: every synthesis backend, on every
//! benchmark program, must either (a) produce hardware whose simulation
//! matches the golden interpreter exactly — return value and visible
//! array state — or (b) refuse the program for a documented language
//! reason (e.g. Cones cannot take data-dependent loops, exactly as the
//! paper describes).

use chls::interp::ArgValue;
use chls::{benchmarks, check_conformance, Verdict};

/// Which refusals are legitimate per backend (the paper's language
/// restrictions), keyed by backend name.
fn refusal_allowed(backend: &str, bench: &chls::Benchmark) -> bool {
    match backend {
        // "Its strict C subset handled conditionals; loops, which it
        // unrolled" — data-dependent loops are out.
        "cones" => !bench.const_bounds,
        // Straight-line par only in our HardwareC; none of the benchmarks
        // use par, so no refusals are expected.
        _ => false,
    }
}

#[test]
fn every_backend_on_every_benchmark() {
    let mut failures = Vec::new();
    let mut passes = 0;
    let mut refusals = 0;
    for bench in benchmarks() {
        let results = check_conformance(bench.source, bench.entry, &bench.args)
            .unwrap_or_else(|e| panic!("{}: golden run failed: {e}", bench.name));
        for (backend, verdict) in results {
            match verdict {
                Verdict::Pass { .. } => passes += 1,
                Verdict::Unsupported(why) => {
                    if refusal_allowed(backend, &bench) {
                        refusals += 1;
                    } else {
                        failures.push(format!(
                            "{backend} refused {}: {why}",
                            bench.name
                        ));
                    }
                }
                Verdict::Mismatch { got, expected } => failures.push(format!(
                    "{backend} on {}: got {got}, expected {expected}",
                    bench.name
                )),
                Verdict::Error(e) => {
                    failures.push(format!("{backend} on {}: {e}", bench.name))
                }
            }
        }
    }
    assert!(
        failures.is_empty(),
        "{} conformance failures:\n{}",
        failures.len(),
        failures.join("\n")
    );
    // Sanity: the matrix is actually being exercised.
    assert!(passes >= 60, "only {passes} passes");
    assert!(refusals >= 3, "only {refusals} legitimate refusals");
}

#[test]
fn conformance_on_extra_inputs() {
    // A second input set per scalar benchmark guards against
    // constant-folding flukes.
    let cases = [
        ("gcd", vec![ArgValue::Scalar(17), ArgValue::Scalar(5)]),
        ("fib16", vec![ArgValue::Scalar(9)]),
        ("popcount", vec![ArgValue::Scalar(-1)]),
        ("isqrt", vec![ArgValue::Scalar(2)]),
    ];
    for (name, args) in cases {
        let bench = chls::benchmark(name).expect("exists");
        let results = check_conformance(bench.source, bench.entry, &args)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        for (backend, verdict) in results {
            match verdict {
                Verdict::Pass { .. } => {}
                Verdict::Unsupported(_) if refusal_allowed(backend, &bench) => {}
                other => panic!("{backend} on {name} with alt inputs: {other:?}"),
            }
        }
    }
}

#[test]
fn cycle_counts_reflect_timing_models() {
    // The same GCD through the three clocked compiler paradigms: the
    // implicit-rule backends and the scheduler produce different cycle
    // counts, but all are in a sane band.
    let bench = chls::benchmark("gcd").expect("exists");
    let results = check_conformance(bench.source, bench.entry, &bench.args).expect("runs");
    let mut cycles = std::collections::HashMap::new();
    for (backend, verdict) in results {
        if let Verdict::Pass {
            cycles: Some(c), ..
        } = verdict
        {
            cycles.insert(backend, c);
        }
    }
    // gcd(1071, 462) takes 3 Euclid steps.
    for (backend, c) in &cycles {
        assert!(
            (2..200).contains(c),
            "{backend} took {c} cycles for 3 Euclid steps"
        );
    }
    assert!(cycles.len() >= 3, "{cycles:?}");
}

#[test]
fn pipelined_c2v_matches_golden_on_all_benchmarks() {
    use chls::{backend_by_name, simulate_design, Compiler, SynthOptions};
    let backend = backend_by_name("c2v").expect("registered");
    let opts = SynthOptions {
        pipeline_loops: true,
        ..Default::default()
    };
    let mut pipelined_faster = 0;
    for bench in benchmarks() {
        let compiler = Compiler::parse(bench.source).expect("parses");
        let golden = compiler.interpret(bench.entry, &bench.args).expect("golden");
        let design = compiler
            .synthesize(backend.as_ref(), bench.entry, &opts)
            .unwrap_or_else(|e| panic!("c2v+pipeline refused {}: {e}", bench.name));
        let out = simulate_design(&design, &bench.args)
            .unwrap_or_else(|e| panic!("{}: {e}", bench.name));
        assert_eq!(out.ret, golden.ret, "{} return mismatch", bench.name);
        assert_eq!(out.arrays, golden.arrays, "{} array mismatch", bench.name);
        // Compare against non-pipelined cycles.
        let plain = compiler
            .synthesize(backend.as_ref(), bench.entry, &SynthOptions::default())
            .expect("plain synthesizes");
        let plain_out = simulate_design(&plain, &bench.args).expect("plain simulates");
        if out.cycles < plain_out.cycles {
            pipelined_faster += 1;
        }
    }
    // With load forwarding, if-conversion, affine carried-dependence
    // disambiguation, and value shadowing, nearly the whole suite gets
    // faster; only gcd (mod recurrence — the paper's own exemplar of
    // "less effective in general") is pinned. Fallbacks must never be
    // wrong or slower.
    assert!(
        pipelined_faster >= 12,
        "pipelining helped only {pipelined_faster} benchmarks"
    );
}
