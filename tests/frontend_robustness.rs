//! Frontend robustness: the lexer, parser, and semantic analysis must
//! never panic — every malformed input produces a diagnostic. Also checks
//! that common mistakes get *useful* messages (a compiler's first UX).

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Arbitrary byte soup (printable-ish) never panics the frontend.
    #[test]
    fn arbitrary_text_never_panics(s in "[ -~\\n\\t]{0,200}") {
        let _ = chls_frontend::compile_to_hir(&s);
    }

    /// Token-shaped soup (keywords, idents, punctuation in random order)
    /// never panics.
    #[test]
    fn token_soup_never_panics(tokens in proptest::collection::vec(
        prop_oneof![
            Just("int".to_string()),
            Just("while".to_string()),
            Just("par".to_string()),
            Just("chan".to_string()),
            Just("uint".to_string()),
            Just("<".to_string()),
            Just(">".to_string()),
            Just("(".to_string()),
            Just(")".to_string()),
            Just("{".to_string()),
            Just("}".to_string()),
            Just("[".to_string()),
            Just("]".to_string()),
            Just(";".to_string()),
            Just("=".to_string()),
            Just("+".to_string()),
            Just("x".to_string()),
            Just("42".to_string()),
            Just("return".to_string()),
            Just("#pragma unroll 2".to_string()),
        ],
        0..40,
    )) {
        let src = tokens.join(" ");
        let _ = chls_frontend::compile_to_hir(&src);
    }

    /// Mutations of a valid program never panic: delete a random slice.
    #[test]
    fn truncated_valid_program_never_panics(cut_start in 0usize..160, cut_len in 0usize..80) {
        let base = "int f(int a[8], int n) {
            int s = 0;
            #pragma unroll 2
            for (int i = 0; i < n; i++) {
                if ((a[i] & 1) == 0) { s += a[i]; } else { s -= a[i]; }
            }
            return s;
        }";
        let bytes = base.as_bytes();
        let start = cut_start.min(bytes.len());
        let end = (start + cut_len).min(bytes.len());
        let mutated: Vec<u8> = bytes[..start].iter().chain(&bytes[end..]).copied().collect();
        if let Ok(s) = String::from_utf8(mutated) {
            let _ = chls_frontend::compile_to_hir(&s);
        }
    }
}

#[test]
fn diagnostics_are_specific() {
    let cases = [
        ("int f() { return x; }", "undefined name `x`"),
        ("int f() { break; }", "`break` outside of a loop"),
        (
            "int f(int n) { return n * f(n - 1); }",
            "recursion is not synthesizable",
        ),
        ("int g = 3; int f() { return g; }", "must be `const`"),
        (
            "void f() { chan<int> c; int x = c + 1; }",
            "can only be used with send/recv",
        ),
        ("uint<0> f() { return 0; }", "bit width must be 1..=64"),
        ("int f() { int x = 1; int x = 2; return x; }", "already defined"),
        (
            "void f() { while (true) { par { return; } } }",
            "`return` inside `par`",
        ),
        ("int f(int a[4]) { return a; }", "cannot convert"),
    ];
    for (src, expected) in cases {
        let err = chls_frontend::compile_to_hir(src).expect_err(src);
        let msg = err.to_string();
        assert!(
            msg.contains(expected),
            "for `{src}`: expected message containing {expected:?}, got {msg:?}"
        );
    }
}

#[test]
fn diagnostics_carry_positions() {
    let src = "int f() {\n    return nope;\n}";
    let err = chls_frontend::compile_to_hir(src).unwrap_err();
    let rendered = err.render(src);
    assert!(rendered.contains("2:"), "no line info: {rendered}");
}
