//! `SynthOptions::narrow_widths`: the value-range analysis drives real
//! register and datapath narrowing in c2v. These tests pin the soundness
//! story: identical results on every benchmark (including combined with
//! pipelining), real area savings on mask-heavy kernels, and the
//! high-bit-dependence case (`>>` whose operand is wider than its result)
//! that a naive result-width narrowing would miscompile.

use chls::interp::ArgValue;
use chls::{backend_by_name, benchmarks, simulate_design, Compiler, SynthOptions};
use chls_rtl::CostModel;
use proptest::prelude::*;

fn narrow_opts(pipeline: bool) -> SynthOptions {
    SynthOptions {
        narrow_widths: true,
        pipeline_loops: pipeline,
        ..Default::default()
    }
}

#[test]
fn narrowing_conforms_on_every_benchmark() {
    let backend = backend_by_name("c2v").expect("registered");
    for bench in benchmarks() {
        let compiler = Compiler::parse(bench.source).expect("parses");
        let golden = compiler.interpret(bench.entry, &bench.args).expect("golden");
        for pipeline in [false, true] {
            let design = compiler
                .synthesize(backend.as_ref(), bench.entry, &narrow_opts(pipeline))
                .unwrap_or_else(|e| panic!("{}: {e}", bench.name));
            let out = simulate_design(&design, &bench.args)
                .unwrap_or_else(|e| panic!("{}: {e}", bench.name));
            assert_eq!(out.ret, golden.ret, "{} (pipeline={pipeline})", bench.name);
            assert_eq!(out.arrays, golden.arrays, "{} (pipeline={pipeline})", bench.name);
        }
    }
}

#[test]
fn narrowing_saves_area_on_masked_datapaths() {
    // The E8 pixel blend: every intermediate is provably ≤ 21 bits.
    let src = "
        int blend(int a[16], int b[16], int alpha) {
            int acc = 0;
            for (int i = 0; i < 16; i++) {
                int pa = a[i] & 0xFFF;
                int pb = b[i] & 0xFFF;
                int mixed = (pa * (alpha & 0xFF) + pb * (255 - (alpha & 0xFF))) >> 8;
                acc ^= mixed;
            }
            return acc;
        }
    ";
    let args = [
        ArgValue::Array((0..16).map(|i| (i * 251) % 4096).collect()),
        ArgValue::Array((0..16).map(|i| (i * 97 + 13) % 4096).collect()),
        ArgValue::Scalar(180),
    ];
    let backend = backend_by_name("c2v").expect("registered");
    let compiler = Compiler::parse(src).expect("parses");
    let model = CostModel::new();
    let wide = compiler
        .synthesize(backend.as_ref(), "blend", &SynthOptions::default())
        .expect("synthesizes");
    let narrow = compiler
        .synthesize(backend.as_ref(), "blend", &narrow_opts(false))
        .expect("synthesizes");
    let rw = simulate_design(&wide, &args).expect("simulates");
    let rn = simulate_design(&narrow, &args).expect("simulates");
    assert_eq!(rw.ret, rn.ret);
    // The two 16-element arrays keep their caller-visible 32-bit element
    // type, so the memory macros put a floor under the total; the ~27%
    // delta is all datapath (multipliers, adder, xor reduction).
    let (aw, an) = (wide.area(&model), narrow.area(&model));
    assert!(
        an < aw * 0.75,
        "expected ≥25% savings, got {an:.0} vs {aw:.0}"
    );
}

#[test]
fn right_shift_keeps_operand_width() {
    // Regression: `crc >> 1` has a 31-bit result but a 32-bit operand —
    // narrowing the shift to 31 bits would drop the operand's top bit
    // into the result. (Found by crc32 divergence.)
    let src = "
        int f(int d) {
            unsigned int crc = 0xFFFFFFFF;
            crc = crc ^ d;
            for (int k = 0; k < 8; k++) {
                bool lsb = (crc & 1) != 0;
                crc = crc >> 1;
                if (lsb) crc = crc ^ 0xEDB88320;
            }
            return (int) ~crc;
        }
    ";
    let backend = backend_by_name("c2v").expect("registered");
    let compiler = Compiler::parse(src).expect("parses");
    let args = [ArgValue::Scalar(0x31)];
    let golden = compiler.interpret("f", &args).expect("golden");
    let design = compiler
        .synthesize(backend.as_ref(), "f", &narrow_opts(false))
        .expect("synthesizes");
    let out = simulate_design(&design, &args).expect("simulates");
    assert_eq!(out.ret, golden.ret);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Random masked/shifted expressions: narrowing never changes the
    /// result.
    #[test]
    fn narrowing_preserves_random_expressions(
        mask in 1i64..0xFFFF,
        sh1 in 0u8..12,
        sh2 in 0u8..12,
        a in -100_000i64..100_000,
        b in -100_000i64..100_000,
        use_mul in proptest::bool::ANY,
    ) {
        let combine = if use_mul { "*" } else { "+" };
        let src = format!(
            "int f(int a, int b) {{
                int x = a & {mask};
                int y = (b >> {sh1}) & 255;
                unsigned int z = (unsigned int) (x {combine} y);
                z = z >> {sh2};
                return (int) (z ^ (unsigned int) x);
            }}"
        );
        let backend = backend_by_name("c2v").expect("registered");
        let compiler = Compiler::parse(&src).expect("parses");
        let args = [ArgValue::Scalar(a), ArgValue::Scalar(b)];
        let golden = compiler.interpret("f", &args).expect("golden");
        let design = compiler
            .synthesize(backend.as_ref(), "f", &narrow_opts(false))
            .expect("synthesizes");
        let out = simulate_design(&design, &args).expect("simulates");
        prop_assert_eq!(out.ret, golden.ret, "{}", src);
    }
}

/// Deterministic non-zero arguments for an example entry: scalars and
/// array elements come from a small LCG so masked datapaths see varied
/// bit patterns, not just zeros.
fn example_args(compiler: &Compiler, entry: &str) -> Vec<ArgValue> {
    let (_, f) = compiler
        .hir()
        .func_by_name(entry)
        .expect("entry exists");
    let mut seed = 0x2545_f491u64;
    let mut next = move || {
        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((seed >> 33) & 0xFF) as i64
    };
    f.params()
        .map(|(_, l)| match &l.ty {
            chls_frontend::Type::Array(_, n) => {
                ArgValue::Array((0..*n).map(|_| next()).collect())
            }
            _ => ArgValue::Scalar(next().max(1)),
        })
        .collect()
}

/// The PR's soundness contract, end to end: for every shipped example,
/// every backend's verdict has the same *kind* with and without
/// `--narrow`, and narrowing never turns a pass into a mismatch.
/// (Cycle counts may legitimately differ — narrower operators can
/// reschedule — so only the verdict kind is compared.)
#[test]
fn examples_are_bit_identical_with_and_without_narrowing() {
    use chls::{check_conformance_with_options, Verdict};
    for entry in std::fs::read_dir("examples/chl").expect("examples present") {
        let path = entry.unwrap().path();
        if path.extension().is_none_or(|e| e != "chl") {
            continue;
        }
        let src = std::fs::read_to_string(&path).unwrap();
        let compiler = Compiler::parse(&src).expect("example parses");
        let args = example_args(&compiler, "main");
        let name = path.display();
        for jobs in [1, 8] {
            let base =
                check_conformance_with_options(&src, "main", &args, jobs, &SynthOptions::default())
                    .unwrap_or_else(|e| panic!("{name}: {e}"));
            let narrow = check_conformance_with_options(
                &src,
                "main",
                &args,
                jobs,
                &SynthOptions {
                    narrow_widths: true,
                    ..Default::default()
                },
            )
            .unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(base.len(), narrow.len(), "{name}");
            for ((bk, bv), (nk, nv)) in base.iter().zip(&narrow) {
                assert_eq!(bk, nk, "{name}: backend order must not depend on options");
                assert_eq!(
                    std::mem::discriminant(bv),
                    std::mem::discriminant(nv),
                    "{name}/{bk} (jobs={jobs}): {bv:?} vs {nv:?}"
                );
                if matches!(bv, Verdict::Pass { .. }) {
                    assert!(
                        matches!(nv, Verdict::Pass { .. }),
                        "{name}/{bk}: narrowing broke a passing backend: {nv:?}"
                    );
                }
            }
        }
    }
}
