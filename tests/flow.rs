//! Differential validation of `chls flow` — every static verdict the
//! process-network analysis makes is checked against what actually
//! happens when the program runs:
//!
//! * programs flow flags as deadlocked must *really* hang — in the
//!   golden interpreter ([`InterpError::Deadlock`]) and in the Handel-C
//!   FSMD token simulator ([`FsmdSimError::Deadlock`]), with the same
//!   blocked endpoints flow predicted;
//! * programs flow passes as clean must complete identically across all
//!   backends, at `--jobs 1` and `--jobs 8`;
//! * the whole pre-existing example corpus must flow clean — zero false
//!   positives.

use std::collections::BTreeSet;
use std::fs;
use std::path::Path;

use chls::interp::InterpError;
use chls::{
    backend_by_name, check_conformance_with_options, Compiler, Design, SynthOptions, Verdict,
};
use chls_analysis::flow::Dir;
use chls_analysis::{Balance, FlowReport};
use chls_rtl::fsmd::{ChanDir, Fsmd};
use chls_sched::ContractVerdict;
use chls_sim::fsmd_sim::{self, FsmdSimError};

const MAX_CYCLES: u64 = 5_000_000;

fn load(path: &str) -> (Compiler, String) {
    let src = fs::read_to_string(path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    let compiler = Compiler::parse(&src).unwrap_or_else(|e| panic!("parse {path}: {e}"));
    (compiler, src)
}

fn flow(compiler: &Compiler) -> FlowReport {
    compiler.flow("main").expect("flow analysis runs")
}

fn synth_handelc(compiler: &Compiler) -> Fsmd {
    let backend = backend_by_name("handelc").expect("handelc registered");
    match compiler.synthesize(backend.as_ref(), "main", &SynthOptions::default()) {
        Ok(Design::Fsmd(f)) => f,
        Ok(_) => panic!("handelc should produce an FSMD"),
        Err(e) => panic!("handelc synthesis failed: {e}"),
    }
}

/// The `(channel, direction)` endpoints of a blocked set, as a set —
/// the common currency between flow's prediction and the simulators'
/// observed hang. (Process labels also agree, but arm order is the
/// interesting invariant here, not the point of the test.)
fn flow_endpoints(report: &FlowReport) -> BTreeSet<(String, &'static str)> {
    report
        .networks
        .iter()
        .filter_map(|n| n.deadlock.as_ref())
        .flat_map(|d| d.blocked.iter())
        .map(|b| {
            let dir = match b.dir {
                Dir::Send => "send",
                Dir::Recv => "recv",
            };
            (b.channel.clone(), dir)
        })
        .collect()
}

/// The same endpoint set, from a simulator's observed blocked ops (both
/// simulators report [`chls_rtl::fsmd::BlockedOp`]).
fn sim_endpoints(blocked: &[chls_rtl::fsmd::BlockedOp]) -> BTreeSet<(String, &'static str)> {
    blocked
        .iter()
        .map(|b| {
            let dir = match b.dir {
                ChanDir::Send => "send",
                ChanDir::Recv => "recv",
            };
            (b.channel.clone(), dir)
        })
        .collect()
}

// ---------------------------------------------------------------------
// Deadlocked corpus: static verdict ⇔ dynamic hang
// ---------------------------------------------------------------------

#[test]
fn ordering_deadlock_verdict_matches_both_simulators() {
    let (compiler, _) = load("examples/chl/flow/deadlock_order.chl");
    let report = flow(&compiler);

    // Static side: a proved wait-for cycle through both arms, plus the
    // minimal capacity fix (one token of slack on either channel).
    assert!(report.has_errors());
    let net = &report.networks[0];
    let dl = net.deadlock.as_ref().expect("deadlock proved");
    assert_eq!(dl.cycle.first(), dl.cycle.last());
    assert!(dl.cycle.len() >= 3, "cycle names both arms: {:?}", dl.cycle);
    assert_eq!(dl.blocked.len(), 2);
    assert_eq!(net.capacities.len(), 1);
    assert_eq!(net.capacities[0].capacity, 1);

    let predicted = flow_endpoints(&report);
    assert_eq!(
        predicted,
        BTreeSet::from([("a".into(), "send"), ("b".into(), "send")])
    );

    // Golden interpreter: the same endpoints, as a first-class error.
    let err = compiler
        .interpret("main", &[])
        .expect_err("interpreter must hang");
    let InterpError::Deadlock { blocked } = &err else {
        panic!("expected interpreter deadlock, got: {err}");
    };
    assert_eq!(sim_endpoints(blocked), predicted);

    // Handel-C FSMD token simulator: same verdict again, end to end
    // through synthesis (exercises the product-construction stuck
    // detection, not just the interpreter's monitor).
    let f = synth_handelc(&compiler);
    let err = fsmd_sim::simulate(&f, &[], MAX_CYCLES).expect_err("fsmd sim must hang");
    let FsmdSimError::Deadlock { blocked, .. } = &err else {
        panic!("expected fsmd deadlock, got: {err}");
    };
    assert_eq!(sim_endpoints(blocked), predicted);
}

#[test]
fn rate_mismatch_verdict_matches_the_interpreter() {
    let (compiler, _) = load("examples/chl/flow/rate_mismatch.chl");
    let report = flow(&compiler);

    // Static side: the balance equations cannot close (8 sends vs 4
    // recvs), and the token game proves the producer's 5th send hangs
    // with every partner terminated — so no capacity can fix it.
    assert!(report.has_errors());
    let net = &report.networks[0];
    assert_eq!(net.channels.len(), 1);
    assert_eq!(net.channels[0].balance, Balance::Accumulates);
    let dl = net.deadlock.as_ref().expect("deadlock proved");
    assert!(dl.cycle.is_empty(), "partner exhaustion has no cycle");
    assert!(net.capacities.is_empty(), "no finite buffer fixes a rate mismatch");
    assert_eq!(
        flow_endpoints(&report),
        BTreeSet::from([("c".into(), "send")])
    );

    // Dynamic side: the interpreter hangs on exactly that send.
    let err = compiler
        .interpret("main", &[])
        .expect_err("interpreter must hang");
    let InterpError::Deadlock { blocked } = &err else {
        panic!("expected interpreter deadlock, got: {err}");
    };
    assert_eq!(blocked.len(), 1);
    assert_eq!(blocked[0].channel, "c");
    assert!(matches!(blocked[0].dir, ChanDir::Send));

    // And the FSMD simulator agrees.
    let f = synth_handelc(&compiler);
    let err = fsmd_sim::simulate(&f, &[], MAX_CYCLES).expect_err("fsmd sim must hang");
    assert!(
        matches!(err, FsmdSimError::Deadlock { .. }),
        "expected fsmd deadlock, got: {err}"
    );
}

// ---------------------------------------------------------------------
// Clean corpus: static pass ⇔ dynamic completion everywhere
// ---------------------------------------------------------------------

#[test]
fn multirate_stream_is_clean_and_its_contract_is_met() {
    let (compiler, src) = load("examples/chl/stream_multirate.chl");
    let report = flow(&compiler);

    assert!(!report.has_errors(), "clean example must flow clean");
    let net = &report.networks[0];
    assert_eq!(net.processes.len(), 3);
    assert!(net.deadlock.is_none());
    assert!(net.skipped.is_none(), "trip-counted loops stay exact");
    for ch in &net.channels {
        assert_eq!(ch.balance, Balance::Balanced, "channel `{}`", ch.name);
    }

    // The `@ii(4)` contract on `c1`: the producer's loop services it
    // every 2 cycles, comfortably inside the promise.
    assert_eq!(report.contracts.len(), 1);
    let c = &report.contracts[0];
    assert_eq!(c.channel, "c1");
    assert_eq!(c.declared, 4);
    assert_eq!(c.verdict, ContractVerdict::Met);

    // Flow says clean ⇒ every backend must complete and agree, with
    // both a single worker and a contended 8-worker pool.
    for jobs in [1, 8] {
        let verdicts =
            check_conformance_with_options(&src, "main", &[], jobs, &SynthOptions::default())
                .unwrap_or_else(|e| panic!("conformance (jobs={jobs}) failed to run: {e}"));
        for (backend, v) in &verdicts {
            match v {
                Verdict::Pass { .. } | Verdict::Unsupported(_) => {}
                bad => panic!("jobs={jobs}/{backend}: flow-clean program diverged: {bad:?}"),
            }
        }
    }

    // And the golden interpreter returns the documented sum.
    let out = compiler.interpret("main", &[]).expect("completes");
    assert_eq!(out.ret, Some(136));
}

#[test]
fn existing_example_corpus_has_zero_false_positives() {
    let dir = Path::new("examples/chl");
    let mut seen = 0usize;
    for entry in fs::read_dir(dir).expect("examples/chl exists") {
        let path = entry.expect("dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("chl") {
            continue;
        }
        seen += 1;
        let name = path.display().to_string();
        let (compiler, _) = load(&name);
        let report = flow(&compiler);
        assert!(
            !report.has_errors(),
            "false positive on {name}:\n{}",
            report.render(compiler.source())
        );
    }
    assert!(seen >= 8, "expected the full example corpus, saw {seen}");
}
