//! E3 — the Wall experiment: available instruction-level parallelism vs.
//! issue width, over dynamic traces with perfect memory disambiguation.
//! The paper: "it seems that ILP beyond about five simultaneous
//! instructions is unlikely due to fundamental limits."

use chls::{benchmarks, fnum, Table};
use chls_ir::exec::{execute, ArgValue as IrArg, ExecOptions};
use chls_sched::ilp::measure_ilp;

fn main() {
    let widths = [1u32, 2, 4, 8, 16, 32, 64];
    let mut headers = vec!["benchmark".to_string(), "ops".to_string()];
    headers.extend(widths.iter().map(|w| format!("w={w}")));
    headers.push("w=inf".to_string());
    let mut table = Table::new(headers);
    let mut inf_ipcs = Vec::new();

    for bench in benchmarks() {
        let hir = chls_frontend::compile_to_hir(bench.source).expect("parses");
        let (id, _) = hir.func_by_name(bench.entry).expect("exists");
        let mut f = chls_ir::lower_function(&hir, id).expect("lowers");
        chls_opt::simplify::simplify(&mut f);
        let args: Vec<IrArg> = bench
            .args
            .iter()
            .map(|a| match a {
                chls::interp::ArgValue::Scalar(v) => IrArg::Scalar(*v),
                chls::interp::ArgValue::Array(v) => IrArg::Array(v.clone()),
            })
            .collect();
        let trace = execute(
            &f,
            &args,
            &ExecOptions {
                record_trace: true,
                ..Default::default()
            },
        )
        .expect("executes")
        .trace;
        let mut row = vec![bench.name.to_string(), trace.len().to_string()];
        for w in widths {
            row.push(fnum(measure_ilp(&trace, w).ipc));
        }
        let inf = measure_ilp(&trace, u32::MAX).ipc;
        inf_ipcs.push(inf);
        row.push(fnum(inf));
        table.row(row);
    }
    println!("E3: achieved IPC vs issue width (dependence-limited)\n");
    println!("{table}");
    let mut sorted = inf_ipcs.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
    let median = sorted[sorted.len() / 2];
    let max = sorted.last().copied().unwrap_or(0.0);
    println!(
        "median unlimited-width ILP = {} (max {}): the control/dependence\n\
         plateau the paper cites Wall for sits right around 5 for general\n\
         code; only embarrassingly-parallel array kernels (fir, matmul)\n\
         escape it — and those are exactly the loops pipelining targets.",
        fnum(median),
        fnum(max)
    );
}
