//! E12 — C's pointers "demand compilers with aggressive optimization to
//! perform costly pointer analysis". Three measurements:
//!
//! 1. analysis cost vs. program size (synthetic pointer-copy chains);
//! 2. what resolution buys: a kernel whose pointers resolve to single
//!    arrays vs. the same kernel forced through the monolithic memory;
//! 3. what *disambiguation* buys the scheduler: cycles with and without
//!    the may-alias test.

use chls::interp::ArgValue;
use chls::{backend_by_name, simulate_design, Compiler, SynthOptions, Table};
use chls_opt::dep::AliasPrecision;
use chls_opt::ptr::{lower_pointers, PtrStats};
use std::fmt::Write as _;
use std::time::Instant;

/// Synthetic program with `n` pointer-copy chains over `n` arrays.
fn chains(n: usize) -> String {
    let mut src = String::from("int f() {\n    int total = 0;\n");
    for i in 0..n {
        let _ = writeln!(src, "    int a{i}[4];");
        let _ = writeln!(src, "    a{i}[0] = {i};");
        let _ = writeln!(src, "    int *p{i}_0 = &a{i}[0];");
        for j in 1..8 {
            let _ = writeln!(src, "    int *p{i}_{j} = p{i}_{} + 0;", j - 1);
        }
        let _ = writeln!(src, "    total += *p{i}_7;");
    }
    src.push_str("    return total;\n}\n");
    src
}

fn main() {
    // Part 1: analysis cost scaling.
    let mut t = Table::new(vec![
        "pointer chains", "pointers", "analysis iterations", "resolved", "time (us)",
    ]);
    for n in [2usize, 8, 32, 128] {
        let src = chains(n);
        let hir = chls_frontend::compile_to_hir(&src).expect("parses");
        let (id, _) = hir.func_by_name("f").expect("exists");
        let mut prog = chls_opt::inline_program(&hir, id).expect("inlines");
        let mut stats = PtrStats::default();
        let start = Instant::now();
        lower_pointers(&mut prog.funcs[0], &mut stats).expect("analyzes");
        let us = start.elapsed().as_micros();
        t.row(vec![
            n.to_string(),
            stats.pointers.to_string(),
            stats.iterations.to_string(),
            stats.resolved.to_string(),
            us.to_string(),
        ]);
    }
    println!("E12a: Andersen-style points-to analysis cost vs program size\n");
    println!("{t}");

    // Part 2: resolution quality -> memory architecture.
    const RESOLVED: &str = "
        int f(int a[16], int b[16]) {
            int *pa = &a[0];
            int *pb = &b[0];
            int s = 0;
            for (int i = 0; i < 16; i++) s += pa[i] * pb[i];
            return s;
        }
    ";
    const AMBIGUOUS: &str = "
        int f(int sel) {
            int a[16];
            int b[16];
            for (int i = 0; i < 16; i++) { a[i] = i; b[i] = i * 2; }
            int *pa = sel != 0 ? &a[0] : &b[0];
            int *pb = sel != 0 ? &b[0] : &a[0];
            int s = 0;
            for (int i = 0; i < 16; i++) s += pa[i] * pb[i];
            return s;
        }
    ";
    let backend = backend_by_name("c2v").expect("registered");
    let opts = SynthOptions::default();
    let mut t = Table::new(vec!["kernel", "pointers resolve?", "memories used", "loop cycles"]);
    {
        let compiler = Compiler::parse(RESOLVED).expect("parses");
        let d = compiler.synthesize(backend.as_ref(), "f", &opts).expect("synth");
        let args = [
            ArgValue::Array((1..=16).collect()),
            ArgValue::Array((1..=16).rev().collect()),
        ];
        let out = simulate_design(&d, &args).expect("sim");
        assert_eq!(out.ret, Some(816));
        let mems = d.as_fsmd().unwrap().mems.iter().filter(|m| m.len > 0).count();
        t.row(vec![
            "dot16 via pointers".to_string(),
            "yes -> direct arrays".into(),
            mems.to_string(),
            out.cycles.unwrap().to_string(),
        ]);
    }
    {
        let compiler = Compiler::parse(AMBIGUOUS).expect("parses");
        let d = compiler.synthesize(backend.as_ref(), "f", &opts).expect("synth");
        let out = simulate_design(&d, &[ArgValue::Scalar(1)]).expect("sim");
        assert_eq!(out.ret, Some((0..16).map(|i| i * i * 2).sum::<i64>()));
        let mems = d.as_fsmd().unwrap().mems.iter().filter(|m| m.len > 0).count();
        t.row(vec![
            "dot16, data-dependent pointers".to_string(),
            "no -> monolithic memory".into(),
            mems.to_string(),
            out.cycles.unwrap().to_string(),
        ]);
    }
    println!("E12b: pointer resolution decides the memory architecture\n");
    println!("{t}");

    // Part 3: disambiguation buys the scheduler parallelism.
    // Fully unrolled so addresses are compile-time constants — the case
    // the disambiguator can actually act on.
    const STREAMS: &str = "
        void f(int a[8], int b[8]) {
            #pragma unroll 8
            for (int i = 0; i < 8; i++) {
                a[i] = a[i] + 1;
                b[i] = b[i] * 2;
            }
        }
    ";
    let mut t = Table::new(vec!["alias precision", "cycles"]);
    for (name, precision) in [
        ("none (all accesses conflict)", AliasPrecision::None),
        ("basic (constant offsets disambiguated)", AliasPrecision::Basic),
    ] {
        let o = SynthOptions {
            precision,
            resources: {
                let mut r = chls_sched::Resources::unlimited();
                r.default_mem_ports = 2;
                r
            },
            ..Default::default()
        };
        let compiler = Compiler::parse(STREAMS).expect("parses");
        let d = compiler.synthesize(backend.as_ref(), "f", &o).expect("synth");
        let args = [
            ArgValue::Array((1..=8).collect()),
            ArgValue::Array((1..=8).collect()),
        ];
        let out = simulate_design(&d, &args).expect("sim");
        assert_eq!(out.arrays[0].1, (2..=9).collect::<Vec<i64>>());
        t.row(vec![name.to_string(), out.cycles.unwrap().to_string()]);
    }
    println!("E12c: memory disambiguation in the scheduler\n");
    println!("{t}");
    println!(
        "Cheap analysis, big consequences: resolved pointers get dedicated\n\
         fast memories and alias-free schedules; unresolved ones drag every\n\
         object into one serialized memory — 'costly pointer analysis' is\n\
         the toll C charges for hardware."
    );
}
