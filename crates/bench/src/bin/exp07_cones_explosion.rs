//! E7 — Cones "flattens each function, including loops and conditionals,
//! into a single two-level network": combinational area and delay vs.
//! problem size, and the hard wall at data-dependent control.

use chls::interp::ArgValue;
use chls::{backend_by_name, fnum, simulate_design, Compiler, SynthOptions, Table};
use chls_rtl::CostModel;

fn main() {
    let model = CostModel::new();
    let backend = backend_by_name("cones").expect("registered");
    let opts = SynthOptions::default();

    println!("E7a: fully-unrolled reduction tree, area/delay vs trip count\n");
    let mut t = Table::new(vec!["trips", "netlist cells", "area (gates)", "delay (ns)"]);
    for n in [2usize, 4, 8, 16, 32, 64] {
        let src = format!(
            "int f(int x) {{
                int s = 0;
                for (int i = 0; i < {n}; i++) s += (x + i) * (i | 1);
                return s;
            }}"
        );
        let compiler = Compiler::parse(&src).expect("parses");
        let d = compiler
            .synthesize(backend.as_ref(), "f", &opts)
            .expect("synthesizes");
        let out = simulate_design(&d, &[ArgValue::Scalar(3)]).expect("simulates");
        let golden = compiler.interpret("f", &[ArgValue::Scalar(3)]).expect("golden");
        assert_eq!(out.ret, golden.ret);
        let nl = d.as_netlist().expect("combinational");
        t.row(vec![
            n.to_string(),
            nl.cells.len().to_string(),
            fnum(nl.area(&model)),
            fnum(nl.critical_path(&model)),
        ]);
    }
    println!("{t}");

    println!("E7b: data-dependent array indexing, area vs array size (mux trees)\n");
    let mut t = Table::new(vec!["array len", "netlist cells", "area (gates)"]);
    for n in [4usize, 8, 16, 32, 64] {
        let src = format!(
            "void f(int a[{n}], int idx[{n}]) {{
                for (int i = 0; i < {n}; i++) a[i] = a[idx[i] & {mask}] + 1;
            }}",
            mask = n - 1
        );
        let compiler = Compiler::parse(&src).expect("parses");
        let d = compiler
            .synthesize(backend.as_ref(), "f", &opts)
            .expect("synthesizes");
        let nl = d.as_netlist().expect("combinational");
        t.row(vec![
            n.to_string(),
            nl.cells.len().to_string(),
            fnum(nl.area(&model)),
        ]);
    }
    println!("{t}");

    let gcd = Compiler::parse(
        "int gcd(int a, int b) { while (b != 0) { int t = b; b = a % b; a = t; } return a; }",
    )
    .expect("parses");
    let refusal = gcd.synthesize(backend.as_ref(), "gcd", &opts).unwrap_err();
    println!("E7c: data-dependent loop -> {refusal}\n");
    println!(
        "Area grows linearly with trips and superlinearly once dynamic\n\
         indexing multiplies mux trees; delay accumulates through the whole\n\
         unrolled chain (no registers to cut it). And anything whose trip\n\
         count depends on data simply cannot be built — the reason every\n\
         later system moved to sequential circuits."
    );
}
