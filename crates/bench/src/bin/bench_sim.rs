//! `bench_sim` — the dependency-free performance harness behind
//! `BENCH_sim.json`.
//!
//! Criterion stays confined to `cargo bench`; this binary runs on the
//! default build path (`cargo run --release -p chls-bench --bin bench_sim`)
//! and emits a small JSON report at the repository root so every PR can
//! reproduce and track the simulator-throughput trajectory:
//!
//! * `fsmd_mac` — a hand-built multi-million-cycle FSMD MAC/hash loop
//!   (register transfers, a memory read and write, shared subexpressions
//!   every cycle). This is the headline cycles/sec number.
//! * `fsmd_crc32` — the synthesized (c2v) crc32 benchmark kernel,
//!   simulated repeatedly: the realistic backend-emitted FSMD shape.
//! * `fsmd_stream_crc` — a three-process streaming pipelined-CRC
//!   network (producer → CRC stage → accumulator over rendezvous
//!   channels), synthesized by handelc into one product FSMD: the
//!   channel-handshake hot path. Tracked, not part of the `--check`
//!   ratchet.
//! * `fsmd_mac_jit` / `fsmd_crc32_jit` — the same two FSMD workloads
//!   through the native x86-64 JIT (`chls-jit`). On hosts where the JIT
//!   is unavailable the report carries `"jit": "skipped"` instead.
//! * `netlist_wide` — a wide combinational netlist driven through
//!   `simulate_design`, exercising the many-output-ports driver path.
//! * `conformance` — wall time of the full benchmark-suite conformance
//!   sweep at `CHLS_JOBS=1` and at the host's parallelism.
//! * `eqcheck` — wall time of one bounded sequential equivalence proof
//!   (handelc vs transmogrifier on a looped MAC kernel) through the
//!   `chls-logic` strash/BDD/SAT ladder. Not part of the `--check`
//!   ratchet; tracked so equivalence-checking cost stays visible.
//!
//! All workloads use only stable public APIs, so the identical harness
//! compiles against the seed simulators — the `baseline` block below
//! records its measurements at the seed commit on this machine.

use chls::interp::ArgValue;
use chls::{benchmarks, check_conformance, simulate_design, Compiler, Design, SynthOptions};
use chls_frontend::IntType;
use chls_ir::BinKind;
use chls_rtl::builder::FsmdBuilder;
use chls_rtl::fsmd::{Fsmd, Rv};
use chls_rtl::netlist::{CellKind, Netlist};
use std::time::Instant;

/// Cycle count of the synthetic MAC workload.
const MAC_CYCLES: u64 = 2_000_000;

/// Seed-commit measurements from this same harness (recorded before the
/// hot-path overhaul; see CHANGES.md). Used to report speedups.
mod baseline {
    /// `fsmd_mac` cycles/sec at the seed commit.
    pub const FSMD_MAC_CPS: f64 = 3_624_476.0;
    /// `fsmd_crc32` cycles/sec at the seed commit.
    pub const FSMD_CRC32_CPS: f64 = 15_431_001.0;
    /// `netlist_wide` design-evaluations/sec at the seed commit.
    pub const NETLIST_WIDE_EPS: f64 = 5_438.0;
    /// Conformance sweep wall seconds at the seed commit (sequential).
    pub const CONFORMANCE_S: f64 = 0.0191;
}

/// The synthetic workload: per cycle one memory read, one memory write,
/// three register transfers, and a handful of shared subexpressions.
fn mac_fsmd(n: u64) -> Fsmd {
    let ty = IntType::new(32, true);
    let mut b = FsmdBuilder::new("mac");
    let mem = b.mem("buf", ty, 256);
    let i = b.reg("i", ty, 0);
    let acc = b.reg("acc", ty, 1);
    let s_loop = b.state();
    let s_done = b.state();
    let idx = Rv::bin(BinKind::And, ty, b.get(i), b.konst(255, ty));
    let v = b.read(mem, idx.clone());
    let scale = Rv::bin(BinKind::And, ty, b.get(i), b.konst(15, ty));
    let shifted = Rv::bin(BinKind::Shr, ty, b.get(acc), b.konst(3, ty));
    let acc_next = b.add(b.add(b.get(acc), b.mul(v.clone(), scale)), shifted);
    let stored = Rv::bin(BinKind::Xor, ty, acc_next.clone(), v);
    let done = b.eq(b.get(i), b.konst(n as i64 - 1, ty));
    let i_next = b.add(b.get(i), b.konst(1, ty));
    b.at(s_loop)
        .set(acc, acc_next)
        .write(mem, idx, stored)
        .set(i, i_next)
        .branch(done, s_done, s_loop);
    b.at(s_done).done();
    let ret = b.get(acc);
    b.returning(ret).finish()
}

/// A wide combinational design in the driver's `arg{i}_{j}`/`out{i}_{j}`
/// port convention: 64 array elements in, 64 outputs, each output a small
/// expression over several inputs.
fn wide_netlist(width: usize) -> Netlist {
    let ty = IntType::new(32, false);
    let mut nl = Netlist::new("wide");
    let inputs: Vec<_> = (0..width)
        .map(|j| {
            nl.add(
                CellKind::Input {
                    name: format!("arg0_{j}"),
                },
                ty,
            )
        })
        .collect();
    let mut acc = inputs[0];
    for (j, &inp) in inputs.iter().enumerate() {
        let x = nl.add(CellKind::Bin(BinKind::Xor, acc, inp), ty);
        let y = nl.add(
            CellKind::Bin(BinKind::Add, x, inputs[(j + 7) % width]),
            ty,
        );
        nl.set_output(format!("out0_{j}"), y);
        acc = y;
    }
    nl.set_output("ret", acc);
    nl
}

/// Best-of-`reps` wall time for `f`, in seconds.
fn best_of<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps {
        let t = Instant::now();
        let r = f();
        best = best.min(t.elapsed().as_secs_f64());
        out = Some(r);
    }
    (best, out.expect("reps >= 1"))
}

fn conformance_sweep() -> usize {
    let mut verdicts = 0;
    for bench in benchmarks() {
        let results =
            check_conformance(bench.source, bench.entry, &bench.args).expect("golden runs");
        verdicts += results.len();
    }
    verdicts
}

fn speedup(now: f64, before: f64) -> f64 {
    if before > 0.0 {
        now / before
    } else {
        0.0
    }
}

/// Pulls `"cycles_per_sec": <n>` out of a named block of a previous
/// BENCH_sim.json, by string search (the shape is fixed; no parser here).
fn prior_cps(json: &str, block: &str) -> Option<f64> {
    let body = &json[json.find(&format!("\"{block}\""))?..];
    let key = "\"cycles_per_sec\": ";
    let body = &body[body.find(key)? + key.len()..];
    let end = body.find([',', '}'])?;
    body[..end].trim().parse().ok()
}

fn main() {
    let mut out_path = None;
    let mut check_pct: Option<f64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--check" {
            let v = args.next().unwrap_or_else(|| {
                eprintln!("bench_sim: --check needs a percentage");
                std::process::exit(2);
            });
            check_pct = Some(v.parse().unwrap_or_else(|_| {
                eprintln!("bench_sim: --check wants a number, got `{v}`");
                std::process::exit(2);
            }));
        } else {
            out_path = Some(a);
        }
    }
    let out_path =
        out_path.unwrap_or_else(|| format!("{}/../../BENCH_sim.json", env!("CARGO_MANIFEST_DIR")));

    // fsmd_mac: the headline multi-million-cycle workload. The gated
    // workloads are measured through re-invocable closures so the
    // `--check` gate can re-sample on a contended host (see below).
    let mac = mac_fsmd(MAC_CYCLES);
    let measure_mac = || {
        let (s, r) = best_of(3, || {
            chls_sim::fsmd_sim::simulate(&mac, &[], MAC_CYCLES + 10).expect("simulates")
        });
        assert_eq!(r.cycles, MAC_CYCLES + 1); // +1 for the done state
        (s, r)
    };
    let (mut mac_s, mac_r) = measure_mac();
    let mut mac_cps = mac_r.cycles as f64 / mac_s;

    // fsmd_crc32: the synthesized shape.
    let bench = chls::benchmark("crc32").expect("exists");
    let compiler = Compiler::parse(bench.source).expect("parses");
    let c2v = chls::backend_by_name("c2v").expect("registered");
    let design = compiler
        .synthesize(c2v.as_ref(), bench.entry, &SynthOptions::default())
        .expect("synthesizes");
    let crc_fsmd = match &design {
        Design::Fsmd(f) => f,
        _ => unreachable!("c2v emits FSMDs"),
    };
    const CRC_REPS: u64 = 400;
    let measure_crc = || {
        best_of(3, || {
            let mut cycles = 0;
            for _ in 0..CRC_REPS {
                cycles += chls_sim::fsmd_sim::simulate(crc_fsmd, &bench.args, 5_000_000)
                    .expect("simulates")
                    .cycles;
            }
            cycles
        })
    };
    let (mut crc_s, crc_cycles) = measure_crc();
    let mut crc_cps = crc_cycles as f64 / crc_s;

    // fsmd_stream_crc: a streaming pipelined-CRC process network —
    // producer / CRC stage / accumulator over rendezvous channels —
    // synthesized by the Handel-C backend into one product FSMD. This
    // exercises the channel fabric (a handshake every few cycles),
    // which the single-process fsmd_mac/fsmd_crc32 workloads never
    // touch. `chls flow` proves the network balanced and deadlock-free.
    const STREAM_SRC: &str = "
        int stream_crc(int seed) {
            chan<int> raw;
            chan<int> crc;
            int acc = 0;
            par {
                {
                    int x = seed & 255;
                    for (int i = 0; i < 4096; i++) {
                        x = (x * 37 + 11) & 255;
                        send(raw, x);
                    }
                }
                {
                    for (int j = 0; j < 4096; j++) {
                        int w = recv(raw);
                        int c = w;
                        for (int k = 0; k < 8; k++) {
                            c = ((c >> 1) ^ (40961 * (c & 1))) & 65535;
                        }
                        send(crc, c);
                    }
                }
                {
                    for (int m = 0; m < 4096; m++) {
                        acc = (acc + recv(crc)) & 65535;
                    }
                }
            }
            return acc;
        }
    ";
    let stream_compiler = Compiler::parse(STREAM_SRC).expect("parses");
    let stream_fsmd = match stream_compiler
        .synthesize(
            chls::backend_by_name("handelc").expect("registered").as_ref(),
            "stream_crc",
            &SynthOptions::default(),
        )
        .expect("synthesizes")
    {
        Design::Fsmd(f) => f,
        _ => unreachable!("handelc emits FSMDs"),
    };
    let stream_args = [ArgValue::Scalar(7)];
    const STREAM_REPS: u64 = 12;
    let (stream_s, stream_cycles) = best_of(3, || {
        let mut cycles = 0;
        for _ in 0..STREAM_REPS {
            cycles += chls_sim::fsmd_sim::simulate(&stream_fsmd, &stream_args, 5_000_000)
                .expect("simulates")
                .cycles;
        }
        cycles
    });
    let stream_cps = stream_cycles as f64 / stream_s;

    // The same two FSMD workloads through the native JIT. Compile once,
    // run hot — the interpreter numbers above are the denominators.
    let jit_progs = if chls_jit::available() {
        let mac_prog = chls_jit::JitProgram::compile(&mac).expect("mac compiles to native");
        let crc_prog = chls_jit::JitProgram::compile(crc_fsmd).expect("crc32 compiles to native");
        // The JIT must be bit-exact, not just fast.
        let jit_mac = mac_prog.run(&[], MAC_CYCLES + 10).expect("jit simulates");
        let interp_mac = chls_sim::fsmd_sim::simulate(&mac, &[], MAC_CYCLES + 10).expect("simulates");
        assert_eq!(jit_mac, interp_mac, "JIT diverged from interpreter on fsmd_mac");
        Some((mac_prog, crc_prog))
    } else {
        None
    };
    let measure_jmac = |prog: &chls_jit::JitProgram| {
        let (s, r) = best_of(3, || prog.run(&[], MAC_CYCLES + 10).expect("jit simulates"));
        assert_eq!(r.cycles, MAC_CYCLES + 1);
        (s, r.cycles)
    };
    let measure_jcrc = |prog: &chls_jit::JitProgram| {
        let (s, cycles) = best_of(3, || {
            let mut cycles = 0;
            for _ in 0..CRC_REPS {
                cycles += prog.run(&bench.args, 5_000_000).expect("jit simulates").cycles;
            }
            cycles
        });
        assert_eq!(cycles, crc_cycles, "JIT cycle count diverged on fsmd_crc32");
        (s, cycles)
    };
    // (cycles, wall_s, cps) per workload.
    let mut jit_vals = jit_progs.as_ref().map(|(mp, cp)| {
        let (jmac_s, jmac_cycles) = measure_jmac(mp);
        let (jcrc_s, jcrc_cycles) = measure_jcrc(cp);
        (
            jmac_cycles,
            jmac_s,
            jmac_cycles as f64 / jmac_s,
            jcrc_cycles,
            jcrc_s,
            jcrc_cycles as f64 / jcrc_s,
        )
    });

    // netlist_wide: many output ports through the driver path.
    let nl = wide_netlist(64);
    let wide_design = Design::Comb(nl);
    let wide_args = [ArgValue::Array((0..64).map(|i| i * 3 + 1).collect())];
    const WIDE_REPS: usize = 2_000;
    let (wide_s, _) = best_of(3, || {
        for _ in 0..WIDE_REPS {
            simulate_design(&wide_design, &wide_args).expect("simulates");
        }
    });
    let wide_eps = WIDE_REPS as f64 / wide_s;

    // eqcheck: one bounded sequential equivalence proof between two
    // genuinely different schedules of the same program.
    const EQ_SRC: &str = "
        int mac4(int a, int b) {
            int s = 0;
            for (int i = 0; i < 4; i++) {
                s = (s + a * a + b) & 4095;
            }
            return s;
        }
    ";
    let eq_compiler = Compiler::parse(EQ_SRC).expect("parses");
    let eq_fsmd = |backend: &str| match eq_compiler
        .synthesize(
            chls::backend_by_name(backend).expect("registered").as_ref(),
            "mac4",
            &SynthOptions::default(),
        )
        .expect("synthesizes")
    {
        Design::Fsmd(f) => f,
        _ => unreachable!("sequential backends emit FSMDs"),
    };
    let (eq_a, eq_b) = (eq_fsmd("handelc"), eq_fsmd("transmogrifier"));
    let (eq_s, eq_report) = best_of(3, || {
        chls_logic::check_seq_equiv(&eq_a, &eq_b, 24, &chls_logic::EquivOptions::default())
            .expect("check runs")
    });
    assert!(
        matches!(eq_report.verdict, chls_logic::Verdict::Equivalent),
        "bench kernel must be equivalent across backends: {:?}",
        eq_report.verdict
    );

    // Conformance sweep, sequential then parallel. CHLS_JOBS is read by
    // the (post-overhaul) parallel driver and ignored by the seed one.
    std::env::set_var("CHLS_JOBS", "1");
    let (conf1_s, verdicts) = best_of(2, conformance_sweep);
    std::env::remove_var("CHLS_JOBS");
    let (confn_s, _) = best_of(2, conformance_sweep);
    let jobs = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    // Regression gate: with `--check <pct>`, compare against the numbers
    // already on disk before overwriting them. Throughput on a shared
    // host is noisy — one best-of-3 sample can dip far below the
    // recorded figure while the next is fine — so a workload only
    // counts as regressed after three below-floor measurements with a
    // settle pause between them; re-samples keep their best result.
    if let Some(pct) = check_pct {
        let floor = 1.0 - pct / 100.0;
        if let Ok(prev) = std::fs::read_to_string(&out_path) {
            let below = |gates: &[(&'static str, f64)]| -> Vec<&'static str> {
                gates
                    .iter()
                    .filter_map(|&(name, now)| {
                        let old = prior_cps(&prev, name)?;
                        (now < old * floor).then_some(name)
                    })
                    .collect()
            };
            let current = |mac_cps: f64, crc_cps: f64, jit: &Option<(u64, f64, f64, u64, f64, f64)>| {
                let mut g = vec![("fsmd_mac", mac_cps), ("fsmd_crc32", crc_cps)];
                if let Some((_, _, jm, _, _, jc)) = jit {
                    g.push(("fsmd_mac_jit", *jm));
                    g.push(("fsmd_crc32_jit", *jc));
                }
                g
            };
            let mut failed = false;
            for attempt in 0..3 {
                let failing = below(&current(mac_cps, crc_cps, &jit_vals));
                failed = !failing.is_empty();
                if !failed || attempt == 2 {
                    break;
                }
                eprintln!(
                    "bench_sim: below floor, re-measuring (attempt {}): {failing:?}",
                    attempt + 2
                );
                std::thread::sleep(std::time::Duration::from_millis(400));
                if failing.contains(&"fsmd_mac") {
                    let (s, r) = measure_mac();
                    let cps = r.cycles as f64 / s;
                    if cps > mac_cps {
                        mac_s = s;
                        mac_cps = cps;
                    }
                }
                if failing.contains(&"fsmd_crc32") {
                    let (s, c) = measure_crc();
                    let cps = c as f64 / s;
                    if cps > crc_cps {
                        crc_s = s;
                        crc_cps = cps;
                    }
                }
                if let (Some(v), Some((mp, cp))) = (&mut jit_vals, &jit_progs) {
                    if failing.contains(&"fsmd_mac_jit") {
                        let (s, c) = measure_jmac(mp);
                        let cps = c as f64 / s;
                        if cps > v.2 {
                            v.1 = s;
                            v.2 = cps;
                        }
                    }
                    if failing.contains(&"fsmd_crc32_jit") {
                        let (s, c) = measure_jcrc(cp);
                        let cps = c as f64 / s;
                        if cps > v.5 {
                            v.4 = s;
                            v.5 = cps;
                        }
                    }
                }
            }
            for (name, now) in current(mac_cps, crc_cps, &jit_vals) {
                if let Some(old) = prior_cps(&prev, name) {
                    if now < old * floor {
                        eprintln!(
                            "bench_sim: REGRESSION in {name}: {now:.0} cycles/sec vs \
                             previous {old:.0} (floor {:.0}, -{pct}%)",
                            old * floor
                        );
                    } else {
                        eprintln!(
                            "bench_sim: {name} ok: {now:.0} cycles/sec vs previous {old:.0} \
                             (floor {:.0})",
                            old * floor
                        );
                    }
                }
            }
            if failed {
                std::process::exit(1);
            }
        } else {
            eprintln!("bench_sim: --check: no previous {out_path}, nothing to compare");
        }
    }

    let jit_json = match &jit_vals {
        Some((jm_cycles, jm_s, jm_cps, jc_cycles, jc_s, jc_cps)) => format!(
            "\"fsmd_mac_jit\": {{\"cycles\": {jm_cycles}, \"wall_s\": {jm_s:.4}, \"cycles_per_sec\": {jm_cps:.0}, \"speedup_vs_interp\": {:.2}}},\n  \
             \"fsmd_crc32_jit\": {{\"cycles\": {jc_cycles}, \"wall_s\": {jc_s:.4}, \"cycles_per_sec\": {jc_cps:.0}, \"speedup_vs_interp\": {:.2}}}",
            speedup(*jm_cps, mac_cps),
            speedup(*jc_cps, crc_cps),
        ),
        None => "\"jit\": \"skipped\"".to_string(),
    };
    let json = format!(
        "{{\n  \
         \"harness\": \"bench_sim\",\n  \
         \"arch\": \"{}\",\n  \
         \"fsmd_mac\": {{\"cycles\": {}, \"wall_s\": {:.4}, \"cycles_per_sec\": {:.0}, \"baseline_cycles_per_sec\": {:.0}, \"speedup\": {:.2}}},\n  \
         \"fsmd_crc32\": {{\"cycles\": {}, \"wall_s\": {:.4}, \"cycles_per_sec\": {:.0}, \"baseline_cycles_per_sec\": {:.0}, \"speedup\": {:.2}}},\n  \
         \"fsmd_stream_crc\": {{\"cycles\": {}, \"wall_s\": {:.4}, \"cycles_per_sec\": {:.0}}},\n  \
         {jit_json},\n  \
         \"netlist_wide\": {{\"ports\": 65, \"evals\": {}, \"wall_s\": {:.4}, \"evals_per_sec\": {:.0}, \"baseline_evals_per_sec\": {:.0}, \"speedup\": {:.2}}},\n  \
         \"conformance\": {{\"verdicts\": {}, \"wall_s_jobs1\": {:.4}, \"wall_s_jobsN\": {:.4}, \"host_jobs\": {}, \"baseline_wall_s\": {:.4}}},\n  \
         \"eqcheck\": {{\"bound\": 24, \"method\": \"{}\", \"aig_nodes\": {}, \"sat_conflicts\": {}, \"wall_s\": {:.4}}}\n\
         }}\n",
        std::env::consts::ARCH,
        mac_r.cycles, mac_s, mac_cps, baseline::FSMD_MAC_CPS, speedup(mac_cps, baseline::FSMD_MAC_CPS),
        crc_cycles, crc_s, crc_cps, baseline::FSMD_CRC32_CPS, speedup(crc_cps, baseline::FSMD_CRC32_CPS),
        stream_cycles, stream_s, stream_cps,
        WIDE_REPS, wide_s, wide_eps, baseline::NETLIST_WIDE_EPS, speedup(wide_eps, baseline::NETLIST_WIDE_EPS),
        verdicts, conf1_s, confn_s, jobs, baseline::CONFORMANCE_S,
        eq_report.method.name(), eq_report.aig_nodes, eq_report.sat_conflicts, eq_s,
    );
    std::fs::write(&out_path, &json).expect("writes BENCH_sim.json");
    print!("{json}");
    eprintln!("wrote {out_path}");
}
