//! E1 — regenerates the paper's Table 1 from live backend metadata.

fn main() {
    println!("E1: Table 1 — C-like languages/compilers (chronological order)\n");
    println!("{}", chls::taxonomy_table());
    println!(
        "Every compiler row is an executable backend; the Ocapi row is the\n\
         structural builder API (`chls_rtl::builder`); the SpecC row is a\n\
         refinement methodology whose synthesizable subset the other rows\n\
         execute. All backends are kept honest by the conformance suite\n\
         (tests/conformance.rs)."
    );
}
