//! E2 — "About half the languages require the programmer to express
//! concurrency with parallel constructs": explicit `par` (Handel-C) vs.
//! plain sequential code vs. compiler-extracted parallelism (C2Verilog
//! with generous resources, CASH dataflow).

use chls::interp::ArgValue;
use chls::{fnum, Table};
use chls_bench::run_clocked;
use chls_sched::Resources;

const SEQ: &str = "
    int f(int a[8], int b[8]) {
        int s1 = 0;
        int s2 = 0;
        for (int i = 0; i < 8; i++) s1 = s1 + a[i] * 2;
        for (int j = 0; j < 8; j++) s2 = s2 + b[j] * 3;
        return s1 + s2;
    }
";

const PAR: &str = "
    int f(int a[8], int b[8]) {
        int s1 = 0;
        int s2 = 0;
        par {
            { for (int i = 0; i < 8; i++) s1 = s1 + a[i] * 2; }
            { for (int j = 0; j < 8; j++) s2 = s2 + b[j] * 3; }
        }
        return s1 + s2;
    }
";

/// Fused into one loop body: the compiler-friendly coding (both streams
/// inside one basic block, where block-scoped scheduling can see them).
const FUSED: &str = "
    int f(int a[8], int b[8]) {
        int s1 = 0;
        int s2 = 0;
        for (int i = 0; i < 8; i++) {
            s1 = s1 + a[i] * 2;
            s2 = s2 + b[i] * 3;
        }
        return s1 + s2;
    }
";

fn main() {
    let args = [
        ArgValue::Array((1..=8).collect()),
        ArgValue::Array((11..=18).collect()),
    ];
    let opts = chls::SynthOptions::default();
    let wide = chls::SynthOptions {
        resources: Resources {
            default_mem_ports: 2,
            ..Resources::unlimited()
        },
        ..Default::default()
    };

    let (hc_seq, _) = run_clocked("handelc", SEQ, "f", &args, &opts);
    let (hc_par, _) = run_clocked("handelc", PAR, "f", &args, &opts);
    let (c2v_seq, _) = run_clocked("c2v", SEQ, "f", &args, &opts);
    let (c2v_fused, _) = run_clocked("c2v", FUSED, "f", &args, &opts);
    let (c2v_wide, _) = run_clocked("c2v", FUSED, "f", &args, &wide);
    let (cash_t, _) = run_clocked("cash", SEQ, "f", &args, &opts);

    let mut t = Table::new(vec!["approach", "writes par?", "cycles/time", "speedup vs base"]);
    t.row(vec![
        "handelc, sequential source".to_string(),
        "no".into(),
        hc_seq.to_string(),
        "1.00 (base)".into(),
    ]);
    t.row(vec![
        "handelc, explicit par".to_string(),
        "YES".into(),
        hc_par.to_string(),
        fnum(hc_seq as f64 / hc_par as f64),
    ]);
    t.row(vec![
        "c2v, compiler (1 port/mem)".to_string(),
        "no".into(),
        c2v_seq.to_string(),
        fnum(hc_seq as f64 / c2v_seq as f64),
    ]);
    t.row(vec![
        "c2v, compiler, fused-loop coding (1 port/mem)".to_string(),
        "no".into(),
        c2v_fused.to_string(),
        fnum(hc_seq as f64 / c2v_fused as f64),
    ]);
    t.row(vec![
        "c2v, compiler, fused coding + 2 ports/mem".to_string(),
        "no".into(),
        c2v_wide.to_string(),
        fnum(hc_seq as f64 / c2v_wide as f64),
    ]);
    t.row(vec![
        "cash, dataflow (async time units)".to_string(),
        "no".into(),
        format!("{cash_t} units"),
        "-".into(),
    ]);
    println!("E2: two independent reductions, explicit vs inferred concurrency\n");
    println!("{t}");
    println!(
        "Explicit par nearly halves the cycles with no source gymnastics.\n\
         The scheduling compiler cannot overlap the two *separate* loops at\n\
         all (block-scoped scheduling); it only competes once the designer\n\
         rewrites the source into one fused loop *and* grants extra memory\n\
         ports — the paper's point that exploiting compiler-found\n\
         parallelism 'requires understanding details of the compiler's\n\
         operation', with idioms 'awkward for programmers accustomed to\n\
         writing efficient C'."
    );
}
