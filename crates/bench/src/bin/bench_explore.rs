//! Benchmark harness for the `chls explore` design-space engine.
//!
//! Measures the full fir.chl lattice sweep (224 points, all seven
//! backends) three ways and writes `BENCH_explore.json`:
//!
//! * **jobs scaling** — cache-cold wall time at `--jobs 1` vs
//!   `--jobs 8`. The speedup floor scales with the machine: ≥3× where
//!   at least 8 cores exist, proportionally less below that, and plain
//!   no-pathological-slowdown parity on a single core (a thread pool
//!   cannot beat physics; the floor says so instead of pretending).
//! * **throughput** — evaluated points per second on the parallel run.
//! * **cache** — a warm repeat of the same sweep through a shared
//!   [`ArtifactCache`]: wall time, speedup over cold, and the hit rate.
//!
//! `--check <pct>` gates: below-floor numbers are re-measured up to
//! three times (shared hosts are noisy) before failing the run, and a
//! prior `BENCH_explore.json` throughput is allowed to regress at most
//! `<pct>` percent.

use chls::cache::{fnv64, ArtifactCache};
use chls::explore::{explore, ExploreOptions};
use chls::{Compiler, ServiceCtx};
use std::sync::Arc;
use std::time::Instant;

const FIR: &str = "examples/chl/fir.chl";
/// Absolute floors, independent of any prior recording.
const POINTS_PER_SEC_FLOOR: f64 = 20.0;
const WARM_SPEEDUP_FLOOR: f64 = 2.0;

fn sweep(compiler: &Arc<Compiler>, digest: u64, jobs: usize, ctx: &ServiceCtx) -> (f64, usize) {
    let opts = ExploreOptions { jobs, ..ExploreOptions::default() };
    let t = Instant::now();
    let report = explore(compiler, "main", &opts, ctx, digest).expect("fir sweep succeeds");
    (t.elapsed().as_secs_f64(), report.evaluated)
}

/// The prior recorded value of `section.key` in an existing JSON file,
/// tolerant of absence (first run, fresh clone).
fn prior_num(text: &str, section: &str, key: &str) -> Option<f64> {
    let sec = text.find(&format!("\"{section}\""))?;
    let rest = &text[sec..];
    let k = rest.find(&format!("\"{key}\":"))?;
    let after = &rest[k + key.len() + 3..];
    let end = after.find([',', '}'])?;
    after[..end].trim().parse().ok()
}

fn main() {
    let mut check_pct: Option<f64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--check" => match args.next() {
                Some(v) => match v.parse() {
                    Ok(p) => check_pct = Some(p),
                    Err(_) => {
                        eprintln!("bench_explore: --check wants a number, got `{v}`");
                        std::process::exit(2);
                    }
                },
                None => {
                    eprintln!("bench_explore: --check needs a percentage");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("bench_explore: unknown argument `{other}`");
                std::process::exit(2);
            }
        }
    }
    let out_path = std::env::var("BENCH_EXPLORE_OUT")
        .unwrap_or_else(|_| "BENCH_explore.json".to_string());

    let src = std::fs::read_to_string(FIR).expect("fir.chl exists");
    let digest = fnv64(src.as_bytes());
    let compiler = Arc::new(Compiler::parse(&src).expect("fir parses"));
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    // What an 8-thread pool can honestly deliver on this machine, with
    // generous scheduling slack; 1 core ⇒ parity is the best case.
    #[allow(clippy::cast_precision_loss)]
    let jobs_floor = if cores >= 8 {
        3.0
    } else if cores > 1 {
        (cores as f64 * 0.5).max(1.0)
    } else {
        0.8
    };

    // Cache-cold scaling: fresh uncached context per run.
    let (mut jobs1_s, evaluated) = sweep(&compiler, digest, 1, &ServiceCtx::uncached());
    let (mut jobs8_s, _) = sweep(&compiler, digest, 8, &ServiceCtx::uncached());
    let mut jobs_speedup = jobs1_s / jobs8_s;
    let mut pps = evaluated as f64 / jobs8_s;

    // Warm replay through one shared cache.
    let cache = Arc::new(ArtifactCache::default());
    let ctx = ServiceCtx::with_cache(Arc::clone(&cache));
    let (mut cold_s, _) = sweep(&compiler, digest, 8, &ctx);
    let (mut warm_s, _) = sweep(&compiler, digest, 8, &ctx);
    let mut warm_speedup = cold_s / warm_s;

    if let Some(pct) = check_pct {
        let floor = 1.0 - pct / 100.0;
        let prior_pps = std::fs::read_to_string(&out_path)
            .ok()
            .and_then(|prev| prior_num(&prev, "throughput", "points_per_sec"));
        let pps_floor = prior_pps.map_or(POINTS_PER_SEC_FLOOR, |p| (p * floor).max(POINTS_PER_SEC_FLOOR));
        let mut failed = false;
        for attempt in 0..3 {
            failed =
                jobs_speedup < jobs_floor || pps < pps_floor || warm_speedup < WARM_SPEEDUP_FLOOR;
            if !failed || attempt == 2 {
                break;
            }
            eprintln!(
                "bench_explore: below floor (jobs {jobs_speedup:.2}x, {pps:.0} pts/s, \
                 warm {warm_speedup:.1}x), re-measuring (attempt {})",
                attempt + 2
            );
            std::thread::sleep(std::time::Duration::from_millis(400));
            if jobs_speedup < jobs_floor || pps < pps_floor {
                let (t1, _) = sweep(&compiler, digest, 1, &ServiceCtx::uncached());
                let (t8, _) = sweep(&compiler, digest, 8, &ServiceCtx::uncached());
                jobs1_s = jobs1_s.min(t1);
                jobs8_s = jobs8_s.min(t8);
                jobs_speedup = jobs1_s / jobs8_s;
                pps = evaluated as f64 / jobs8_s;
            }
            if warm_speedup < WARM_SPEEDUP_FLOOR {
                let (w, _) = sweep(&compiler, digest, 8, &ctx);
                if w < warm_s {
                    warm_s = w;
                    warm_speedup = cold_s / warm_s;
                }
                cold_s = cold_s.max(warm_s);
            }
        }
        if jobs_speedup < jobs_floor {
            eprintln!(
                "bench_explore: REGRESSION: jobs-8 speedup {jobs_speedup:.2}x below the \
                 {jobs_floor:.2}x floor for {cores} core(s) (jobs1 {jobs1_s:.3}s, jobs8 {jobs8_s:.3}s)"
            );
        } else {
            eprintln!(
                "bench_explore: jobs scaling ok: {jobs_speedup:.2}x (floor {jobs_floor:.2}x, {cores} core(s))"
            );
        }
        if pps < pps_floor {
            eprintln!("bench_explore: REGRESSION: {pps:.0} points/s below floor {pps_floor:.0}");
        } else {
            eprintln!("bench_explore: throughput ok: {pps:.0} points/s (floor {pps_floor:.0})");
        }
        if warm_speedup < WARM_SPEEDUP_FLOOR {
            eprintln!(
                "bench_explore: REGRESSION: warm sweep speedup {warm_speedup:.1}x below the \
                 {WARM_SPEEDUP_FLOOR}x floor (cold {cold_s:.3}s, warm {warm_s:.3}s)"
            );
        } else {
            eprintln!("bench_explore: warm sweep ok: {warm_speedup:.1}x (floor {WARM_SPEEDUP_FLOOR}x)");
        }
        if failed {
            std::process::exit(1);
        }
    }

    let stats = cache.stats();
    let json = format!(
        "{{\n  \
         \"harness\": \"bench_explore\",\n  \
         \"arch\": \"{}\",\n  \
         \"cores\": {cores},\n  \
         \"sweep\": {{\"file\": \"{FIR}\", \"evaluated\": {evaluated}}},\n  \
         \"jobs\": {{\"jobs1_s\": {jobs1_s:.4}, \"jobs8_s\": {jobs8_s:.4}, \"speedup\": {jobs_speedup:.2}, \"floor\": {jobs_floor:.2}}},\n  \
         \"throughput\": {{\"points_per_sec\": {pps:.0}, \"floor\": {POINTS_PER_SEC_FLOOR:.0}}},\n  \
         \"cache\": {{\"cold_s\": {cold_s:.4}, \"warm_s\": {warm_s:.4}, \"speedup\": {warm_speedup:.1}, \"floor\": {WARM_SPEEDUP_FLOOR:.1}, \"hits\": {}, \"misses\": {}, \"hit_rate\": {:.4}}}\n\
         }}\n",
        std::env::consts::ARCH,
        stats.hits,
        stats.misses,
        stats.hit_rate(),
    );
    std::fs::write(&out_path, &json).expect("writes BENCH_explore.json");
    print!("{json}");
    eprintln!(
        "bench_explore: {evaluated} points; jobs {jobs_speedup:.2}x on {cores} core(s); \
         {pps:.0} pts/s; warm {warm_speedup:.1}x"
    );
    eprintln!("wrote {out_path}");
}
