//! E10 — HardwareC: timing constraints "allow easier design-space
//! exploration".
//!
//! Two sweeps of the same 4-product multiply-accumulate window:
//!
//! 1. **One axis, in-language** — `#pragma constraint N` budgets under
//!    force-directed scheduling: latency trades against functional
//!    units along a Pareto curve, and infeasible budgets come back as
//!    errors carrying the best achievable latency.
//! 2. **The full space, by the tool** — the `chls explore` engine
//!    sweeps backend × pipeline × narrow × opt-netlist × unroll and
//!    certifies every frontier point against an unoptimized reference,
//!    which is what "easier design-space exploration" grows into once
//!    the compiler owns the knobs instead of the source text.

use chls::explore::{explore, ExploreOptions};
use chls::interp::ArgValue;
use chls::{
    backend_by_name, fnum, simulate_design, Compiler, ServiceCtx, SynthError, SynthOptions, Table,
};
use chls_rtl::{CostModel, OpClass};
use std::sync::Arc;

fn source(budget: u32) -> String {
    format!(
        "int f(int a, int b, int c, int d, int e, int g, int h, int k) {{
            int s = 0;
            #pragma constraint {budget}
            {{
                int p0 = a * b;
                int p1 = c * d;
                int p2 = e * g;
                int p3 = h * k;
                s = ((p0 + p1) + (p2 + p3));
            }}
            return s;
        }}"
    )
}

/// The same window without the constraint pragma, as a looped kernel
/// the full-lattice sweep can unroll and pipeline.
const WINDOW: &str = "int f(int a, int b, int c, int d, int e, int g, int h, int k) {
    int x[4];
    int y[4];
    x[0] = a; x[1] = c; x[2] = e; x[3] = h;
    y[0] = b; y[1] = d; y[2] = g; y[3] = k;
    int s = 0;
    for (int i = 0; i < 4; i++) {
        s += x[i] * y[i];
    }
    return s;
}";

fn constraint_sweep() {
    let args: Vec<ArgValue> = (1..=8).map(ArgValue::Scalar).collect();
    let model = CostModel::new();
    let backend = backend_by_name("hardwarec").expect("registered");
    let opts = SynthOptions::default();
    let mut t = Table::new(vec![
        "constraint (cycles)", "feasible?", "total cycles", "multipliers", "adders",
        "area (gates)",
    ]);
    for budget in [1u32, 2, 3, 4, 6, 8] {
        let src = source(budget);
        let compiler = Compiler::parse(&src).expect("parses");
        match compiler.synthesize(backend.as_ref(), "f", &opts) {
            Err(SynthError::ConstraintInfeasible { achieved, .. }) => {
                t.row(vec![
                    budget.to_string(),
                    format!("no (best {achieved})"),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                ]);
            }
            Err(e) => panic!("unexpected: {e}"),
            Ok(d) => {
                let out = simulate_design(&d, &args).expect("simulates");
                assert_eq!(out.ret, Some(2 + 12 + 30 + 56));
                let fsmd = d.as_fsmd().expect("clocked");
                let fu = fsmd.fu_requirements();
                let count = |cls: OpClass| {
                    fu.iter()
                        .filter(|((c, _), _)| *c == cls)
                        .map(|(_, n)| *n)
                        .sum::<usize>()
                };
                t.row(vec![
                    budget.to_string(),
                    "yes".into(),
                    out.cycles.unwrap().to_string(),
                    count(OpClass::Mul).to_string(),
                    count(OpClass::AddSub).to_string(),
                    fnum(d.area(&model)),
                ]);
            }
        }
    }
    println!("E10a: 4-product MAC window under HardwareC timing constraints\n");
    println!("{t}");
    println!(
        "Tightening the in-language constraint from 8 cycles to 1 walks the\n\
         latency/area Pareto front without touching the algorithm — the\n\
         design-space exploration story. Budgets below the critical path\n\
         come back as errors carrying the best achievable latency.\n"
    );
}

fn full_lattice_sweep() {
    let compiler = Arc::new(Compiler::parse(WINDOW).expect("parses"));
    let digest = chls::cache::fnv64(WINDOW.as_bytes());
    let opts = ExploreOptions {
        jobs: 4,
        seq_bound: 32,
        ..ExploreOptions::default()
    };
    let report = explore(&compiler, "f", &opts, &ServiceCtx::uncached(), digest)
        .expect("full-lattice sweep succeeds");
    println!(
        "E10b: the same window, full configuration lattice ({} points, {} backends)\n",
        report.lattice,
        report.backends.len()
    );
    print!("{}", report.render());
    assert!(
        report.frontier.len() >= 3,
        "expected a multi-point certified frontier, got {}",
        report.frontier.len()
    );
    assert!(
        report.frontier_backends() >= 2,
        "expected the frontier to span several backends"
    );
    println!(
        "\nWhat one pragma axis sketched, the full sweep completes: {} \
         mutually non-dominated (area, latency, II) points across {} \
         backends, every one checked against an unoptimized reference \
         of its own backend.",
        report.frontier.len(),
        report.frontier_backends()
    );
}

fn main() {
    constraint_sweep();
    full_lattice_sweep();
}
