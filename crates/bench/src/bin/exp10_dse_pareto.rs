//! E10 — HardwareC: timing constraints "allow easier design-space
//! exploration". One 8-point multiply-accumulate window under a sweep of
//! `#pragma constraint N` budgets: force-directed scheduling trades
//! latency for functional units along a Pareto curve, and reports
//! infeasible budgets with the best achievable latency.

use chls::interp::ArgValue;
use chls::{backend_by_name, fnum, simulate_design, Compiler, SynthError, SynthOptions, Table};
use chls_rtl::{CostModel, OpClass};

fn source(budget: u32) -> String {
    format!(
        "int f(int a, int b, int c, int d, int e, int g, int h, int k) {{
            int s = 0;
            #pragma constraint {budget}
            {{
                int p0 = a * b;
                int p1 = c * d;
                int p2 = e * g;
                int p3 = h * k;
                s = ((p0 + p1) + (p2 + p3));
            }}
            return s;
        }}"
    )
}

fn main() {
    let args: Vec<ArgValue> = (1..=8).map(ArgValue::Scalar).collect();
    let model = CostModel::new();
    let backend = backend_by_name("hardwarec").expect("registered");
    let opts = SynthOptions::default();
    let mut t = Table::new(vec![
        "constraint (cycles)", "feasible?", "total cycles", "multipliers", "adders",
        "area (gates)",
    ]);
    for budget in [1u32, 2, 3, 4, 6, 8] {
        let src = source(budget);
        let compiler = Compiler::parse(&src).expect("parses");
        match compiler.synthesize(backend.as_ref(), "f", &opts) {
            Err(SynthError::ConstraintInfeasible { achieved, .. }) => {
                t.row(vec![
                    budget.to_string(),
                    format!("no (best {achieved})"),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                ]);
            }
            Err(e) => panic!("unexpected: {e}"),
            Ok(d) => {
                let out = simulate_design(&d, &args).expect("simulates");
                assert_eq!(out.ret, Some(2 + 12 + 30 + 56));
                let fsmd = d.as_fsmd().expect("clocked");
                let fu = fsmd.fu_requirements();
                let count = |cls: OpClass| {
                    fu.iter()
                        .filter(|((c, _), _)| *c == cls)
                        .map(|(_, n)| *n)
                        .sum::<usize>()
                };
                t.row(vec![
                    budget.to_string(),
                    "yes".into(),
                    out.cycles.unwrap().to_string(),
                    count(OpClass::Mul).to_string(),
                    count(OpClass::AddSub).to_string(),
                    fnum(d.area(&model)),
                ]);
            }
        }
    }
    println!("E10: 4-product MAC window under HardwareC timing constraints\n");
    println!("{t}");
    println!(
        "Tightening the in-language constraint from 8 cycles to 1 walks the\n\
         latency/area Pareto front without touching the algorithm — the\n\
         design-space exploration story. Budgets below the critical path\n\
         come back as errors carrying the best achievable latency."
    );
}
