//! E5 — Handel-C's rule in action: "Each assignment statement runs in one
//! cycle … Handel-C may require assignment statements to be fused" to
//! meet a cycle budget, trading clock rate for cycle count. C2Verilog,
//! whose compiler owns the schedule, is indifferent to the same recoding.

use chls::interp::ArgValue;
use chls::{backend_by_name, fnum, simulate_design, Compiler, SynthOptions, Table};
use chls_rtl::CostModel;

/// The same complex-multiply kernel at three fusion levels.
const THREE_TEMPS: &str = "
    int f(int ar, int ai, int br, int bi) {
        int t1 = ar * br;
        int t2 = ai * bi;
        int t3 = ar * bi;
        int t4 = ai * br;
        int re = t1 - t2;
        int im = t3 + t4;
        return re ^ im;
    }
";
const TWO_TEMPS: &str = "
    int f(int ar, int ai, int br, int bi) {
        int re = ar * br - ai * bi;
        int im = ar * bi + ai * br;
        return re ^ im;
    }
";
const FULLY_FUSED: &str = "
    int f(int ar, int ai, int br, int bi) {
        return (ar * br - ai * bi) ^ (ar * bi + ai * br);
    }
";

fn main() {
    let args = [
        ArgValue::Scalar(3),
        ArgValue::Scalar(-4),
        ArgValue::Scalar(5),
        ArgValue::Scalar(7),
    ];
    let model = CostModel::new();
    let opts = SynthOptions::default();
    let mut t = Table::new(vec![
        "coding", "backend", "cycles", "min clock (ns)", "wall (ns)",
    ]);
    for (coding, src) in [
        ("6 assignments", THREE_TEMPS),
        ("3 assignments", TWO_TEMPS),
        ("1 assignment", FULLY_FUSED),
    ] {
        let compiler = Compiler::parse(src).expect("parses");
        for backend in ["handelc", "c2v"] {
            let b = backend_by_name(backend).expect("registered");
            let d = compiler
                .synthesize(b.as_ref(), "f", &opts)
                .expect("synthesizes");
            let out = simulate_design(&d, &args).expect("simulates");
            let fsmd = d.as_fsmd().expect("clocked");
            let period = fsmd.critical_path(&model) + model.sequential_overhead_ns;
            t.row(vec![
                coding.to_string(),
                backend.to_string(),
                out.cycles.unwrap().to_string(),
                fnum(period),
                fnum(out.cycles.unwrap() as f64 * period),
            ]);
        }
    }
    println!("E5: complex multiply, assignment fusion under the Handel-C rule\n");
    println!("{t}");
    println!(
        "Handel-C: every fused assignment removes a whole cycle and dumps\n\
         its logic into the remaining one — cycle count falls, clock\n\
         slows. C2Verilog schedules the same dataflow identically no\n\
         matter how the designer groups it."
    );
}
