//! Ablation: which enabler buys loop pipelining its coverage?
//!
//! The c2v pipeliner rests on four design choices (DESIGN.md §7):
//!
//! 1. **redundant-load elimination** — forwarding duplicated loads so a
//!    re-loading arm becomes pure (bundled with if-conversion under the
//!    `pipeline_if_convert` knob);
//! 2. **if-conversion** — predicating pure branchy bodies into `Select`s
//!    so the loop becomes a single-block canonical shape;
//! 3. **affine carried-dependence disambiguation** — dropping false
//!    store→load ordering between `a[i]` and the next iteration's
//!    `a[i+1]` (`AliasPrecision::Basic`; `None` turns it off);
//! 4. the pipelined kernel emission itself (stage shadows, boundary
//!    condition, drain).
//!
//! Each column removes one enabler and reports measured cycles over the
//! benchmark suite, so the contribution of every choice is visible.

use chls::{backend_by_name, benchmarks, simulate_design, Compiler, SynthOptions, Table};
use chls_opt::dep::AliasPrecision;

fn cycles(src: &str, entry: &str, args: &[chls::interp::ArgValue], opts: &SynthOptions) -> u64 {
    let compiler = Compiler::parse(src).expect("parses");
    let backend = backend_by_name("c2v").expect("registered");
    let design = compiler
        .synthesize(backend.as_ref(), entry, opts)
        .expect("synthesizes");
    let out = simulate_design(&design, args).expect("simulates");
    // Cross-check against the golden model in every configuration.
    let golden = compiler.interpret(entry, args).expect("golden");
    assert_eq!(out.ret, golden.ret, "{entry}: ablated config diverges");
    assert_eq!(out.arrays, golden.arrays, "{entry}: ablated arrays diverge");
    out.cycles.unwrap()
}

fn main() {
    let plain = SynthOptions::default();
    let full = SynthOptions {
        pipeline_loops: true,
        ..Default::default()
    };
    let no_ifconv = SynthOptions {
        pipeline_loops: true,
        pipeline_if_convert: false,
        ..Default::default()
    };
    let no_affine = SynthOptions {
        pipeline_loops: true,
        precision: AliasPrecision::None,
        ..Default::default()
    };

    let mut t = Table::new(vec![
        "benchmark",
        "plain",
        "full pipeline",
        "no if-conversion",
        "no affine dep",
        "full speedup",
    ]);
    let mut helped_full = 0;
    let mut helped_no_ifconv = 0;
    let mut helped_no_affine = 0;
    for bench in benchmarks() {
        let cp = cycles(bench.source, bench.entry, &bench.args, &plain);
        let cf = cycles(bench.source, bench.entry, &bench.args, &full);
        let ci = cycles(bench.source, bench.entry, &bench.args, &no_ifconv);
        let ca = cycles(bench.source, bench.entry, &bench.args, &no_affine);
        helped_full += (cf < cp) as u32;
        helped_no_ifconv += (ci < cp) as u32;
        helped_no_affine += (ca < cp) as u32;
        t.row(vec![
            bench.name.to_string(),
            cp.to_string(),
            cf.to_string(),
            ci.to_string(),
            ca.to_string(),
            if cf < cp {
                format!("{:.2}x", cp as f64 / cf as f64)
            } else {
                "-".to_string()
            },
        ]);
    }
    println!("Ablation: c2v loop pipelining enablers (measured cycles)\n");
    println!("{t}");
    println!(
        "kernels sped up — full: {helped_full}, without if-conversion: \
         {helped_no_ifconv}, without affine disambiguation: {helped_no_affine}.\n\
         Load forwarding + if-conversion carry the branchy kernels (crc32,\n\
         max8, isqrt, strchr8, clamp_mix, bubble8); affine analysis carries\n\
         the in-place updaters (vecscale); every configuration remains\n\
         bit-exact against the golden model. Only gcd never pipelines: its\n\
         mod recurrence is the paper's own exemplar of 'less effective in\n\
         general'."
    );
}
