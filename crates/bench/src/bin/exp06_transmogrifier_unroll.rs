//! E6 — Transmogrifier C's rule: "only loop iterations and function calls
//! take a cycle … loops may need to be unrolled" to meet timing. A dot
//! product at unroll factors 1..16 shows the trade: cycles fall linearly,
//! while the single-cycle region's logic depth, memory ports, and area
//! climb.

use chls::interp::ArgValue;
use chls::{backend_by_name, fnum, simulate_design, Compiler, SynthOptions, Table};
use chls_rtl::CostModel;

fn source(unroll: u32) -> String {
    let pragma = if unroll > 1 {
        format!("#pragma unroll {unroll}\n                ")
    } else {
        String::new()
    };
    format!(
        "int dot(int a[16], int b[16]) {{
            int s = 0;
            {pragma}for (int i = 0; i < 16; i++) s += a[i] * b[i];
            return s;
        }}"
    )
}

fn main() {
    let args = [
        ArgValue::Array((1..=16).collect()),
        ArgValue::Array((1..=16).rev().collect()),
    ];
    let model = CostModel::new();
    let backend = backend_by_name("transmogrifier").expect("registered");
    let opts = SynthOptions::default();
    let mut t = Table::new(vec![
        "unroll", "cycles", "min clock (ns)", "wall (ns)", "area (gates)", "mem read ports",
    ]);
    for unroll in [1u32, 2, 4, 8, 16] {
        let src = source(unroll);
        let compiler = Compiler::parse(&src).expect("parses");
        let d = compiler
            .synthesize(backend.as_ref(), "dot", &opts)
            .expect("synthesizes");
        let out = simulate_design(&d, &args).expect("simulates");
        assert_eq!(out.ret, Some(816));
        let fsmd = d.as_fsmd().expect("clocked");
        let period = fsmd.critical_path(&model) + model.sequential_overhead_ns;
        let ports = fsmd.mem_port_usage().iter().map(|(r, _)| *r).max().unwrap_or(0);
        t.row(vec![
            format!("x{unroll}"),
            out.cycles.unwrap().to_string(),
            fnum(period),
            fnum(out.cycles.unwrap() as f64 * period),
            fnum(d.area(&model)),
            ports.to_string(),
        ]);
    }
    println!("E6: dot-16 under Transmogrifier's one-cycle-per-iteration rule\n");
    println!("{t}");
    println!(
        "Unrolling is the *only* lever the rule leaves the designer: each\n\
         factor of 2 halves the iteration count (and so the cycles), but\n\
         the per-cycle region doubles — deeper logic, more memory ports,\n\
         more area. 'Simple to understand … can require recoding to meet\n\
         timing.'"
    );
}
