//! E11 — CASH "generates asynchronous dataflow circuits": completion time
//! vs. a clocked design as operator latencies grow more unbalanced. The
//! synchronous clock must stretch to the slowest operation; asynchronous
//! handshaking pays each operation only its own latency.

use chls::interp::ArgValue;
use chls::{backend_by_name, fnum, simulate_design, Compiler, SynthOptions, Table};
use chls_rtl::{CostModel, OpClass};

/// Mixed kernel: mostly cheap add/xor work plus one division per item.
const SRC: &str = "
    int f(int a[16], int n) {
        int acc = 0;
        for (int i = 0; i < n; i++) {
            int cheap = (a[i] + i) ^ (a[i] << 1);
            int rare = a[i] / 7;
            acc = acc + cheap + rare;
        }
        return acc;
    }
";

fn main() {
    let args = [
        ArgValue::Array((1..=16).map(|i| i * 13 % 97).collect()),
        ArgValue::Scalar(16),
    ];
    let compiler = Compiler::parse(SRC).expect("parses");
    let golden = compiler.interpret("f", &args).expect("golden").ret;
    let cash = backend_by_name("cash").expect("registered");
    let c2v = backend_by_name("c2v").expect("registered");

    let mut t = Table::new(vec![
        "divider slowdown", "sync clock (ns)", "sync cycles", "sync wall (ns)",
        "async wall (ns)", "async speedup",
    ]);
    for scale in [1.0f64, 2.0, 4.0, 8.0] {
        let model = CostModel {
            div_delay_scale: scale,
            ..CostModel::new()
        };
        // Synchronous: the divider must fit one cycle (single-cycle FSMDs
        // evaluate each state's datapath combinationally).
        let opts = SynthOptions {
            model: model.clone(),
            clock_period_ns: model.delay(OpClass::DivRem, 32) + 0.5,
            ..Default::default()
        };
        let d_sync = compiler.synthesize(c2v.as_ref(), "f", &opts).expect("sync");
        let r_sync = simulate_design(&d_sync, &args).expect("sync sim");
        assert_eq!(r_sync.ret, golden);
        let period = opts.clock_period_ns + model.sequential_overhead_ns;
        let sync_ns = r_sync.cycles.unwrap() as f64 * period;

        // Asynchronous, same skewed cost model.
        let d_async = compiler.synthesize(cash.as_ref(), "f", &opts).expect("async");
        let g = match &d_async {
            chls::Design::Dataflow(g) => g,
            _ => unreachable!(),
        };
        let df_args: Vec<chls_dataflow::sim::ArgValue> = args
            .iter()
            .map(|a| match a {
                ArgValue::Scalar(v) => chls_dataflow::sim::ArgValue::Scalar(*v),
                ArgValue::Array(v) => chls_dataflow::sim::ArgValue::Array(v.clone()),
            })
            .collect();
        let r_async = chls_dataflow::sim::simulate(
            g,
            &df_args,
            &chls_dataflow::sim::TokenSimOptions {
                model: model.clone(),
                ..Default::default()
            },
        )
        .expect("async sim");
        assert_eq!(r_async.ret, golden);
        let async_ns = r_async.time as f64 / 100.0;
        t.row(vec![
            format!("x{scale}"),
            fnum(period),
            r_sync.cycles.unwrap().to_string(),
            fnum(sync_ns),
            fnum(async_ns),
            fnum(sync_ns / async_ns),
        ]);
    }
    println!("E11: asynchronous dataflow vs divider-limited clock\n");
    println!("{t}");
    println!(
        "As the divider slows, the synchronous design pays the longer clock\n\
         on *every* cycle; the asynchronous circuit pays it only on the\n\
         rare division, so its advantage widens — CASH's architectural\n\
         argument, reproduced."
    );
}
