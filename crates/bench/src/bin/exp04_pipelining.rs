//! E4 — "Pipelining works well on regular loops, e.g., in scientific
//! computation, but is less effective in general."
//!
//! For each benchmark's hottest innermost loop: the initiation interval
//! (II) achieved by iterative modulo scheduling, its resource and
//! recurrence lower bounds, and the asymptotic speedup over a
//! non-pipelined schedule of the same body.

use chls::{benchmarks, fnum, Table};
use chls_opt::dep::AliasPrecision;
use chls_rtl::CostModel;
use chls_sched::modulo::{loop_dfg, modulo_schedule};
use chls_sched::{list_schedule, Resources};

/// Extra kernels with deeper loop bodies, where pipelining's headroom is
/// visible: a polynomial evaluator (independent iterations, deep body)
/// and a Newton-style recurrence (every iteration needs the last).
const DEEP_KERNELS: &[(&str, &str, bool)] = &[
    (
        "poly8 (deep regular)",
        "int f(int a[64], int n) {
            int s = 0;
            for (int i = 0; i < n; i++) {
                int x = a[i];
                int p = ((((((x * 3 + 1) * x + 2) * x + 3) * x + 4) * x + 5) * x + 6);
                s = s ^ p;
            }
            return s;
        }",
        true,
    ),
    (
        "newton (deep recurrence)",
        "int f(int x0, int n) {
            int x = x0;
            for (int i = 0; i < n; i++) {
                x = (x * x * 3 + x * 5 + 7) & 0xffff;
            }
            return x;
        }",
        false,
    ),
];

fn main() {
    let model = CostModel::new();
    let period = 1.0;
    let res = Resources::typical();
    // A generous datapath: recurrences stay pinned, resources do not.
    let generous = {
        let mut r = Resources::unlimited();
        r.default_mem_ports = 2;
        r
    };
    let mut t = Table::new(vec![
        "benchmark", "loop kind", "body ops", "ResMII", "RecMII", "II", "serial len",
        "speedup", "II (wide HW)", "speedup (wide HW)",
    ]);
    let mut regular_speedups = Vec::new();
    let mut irregular_speedups = Vec::new();

    #[allow(clippy::too_many_arguments)]
    fn add_row(
        t: &mut Table,
        name: &str,
        regular: bool,
        dfg: &chls_sched::Dfg,
        period: f64,
        res: &Resources,
        generous: &Resources,
        regular_speedups: &mut Vec<f64>,
        irregular_speedups: &mut Vec<f64>,
    ) {
        let m = modulo_schedule(dfg, period, res);
        let serial = list_schedule(dfg, period, res).length.max(1);
        let effective_ii = m.ii.min(serial);
        let speedup = serial as f64 / effective_ii as f64;
        let mw = modulo_schedule(dfg, period, generous);
        let serial_w = list_schedule(dfg, period, generous).length.max(1);
        let ii_w = mw.ii.min(serial_w);
        let speedup_w = serial_w as f64 / ii_w as f64;
        if regular {
            regular_speedups.push(speedup_w);
        } else {
            irregular_speedups.push(speedup_w);
        }
        t.row(vec![
            name.to_string(),
            if regular { "regular" } else { "irregular" }.to_string(),
            dfg.nodes.len().to_string(),
            m.res_mii.to_string(),
            m.rec_mii.to_string(),
            effective_ii.to_string(),
            serial.to_string(),
            fnum(speedup),
            ii_w.to_string(),
            fnum(speedup_w),
        ]);
    }

    for bench in benchmarks() {
        let hir = chls_frontend::compile_to_hir(bench.source).expect("parses");
        let (id, _) = hir.func_by_name(bench.entry).expect("exists");
        let mut f = chls_ir::lower_function(&hir, id).expect("lowers");
        chls_opt::simplify::simplify(&mut f);
        let forest = chls_ir::loops::LoopForest::compute(&f);
        // The innermost (deepest) loop.
        let Some(l) = forest.loops.iter().max_by_key(|l| l.depth) else {
            continue;
        };
        let body: Vec<_> = l.blocks.iter().copied().filter(|b| *b != l.header).collect();
        let (dfg, _) = loop_dfg(&f, l.header, &body, AliasPrecision::Basic, &model);
        if dfg.nodes.is_empty() {
            continue;
        }
        add_row(
            &mut t,
            bench.name,
            bench.regular_loops,
            &dfg,
            period,
            &res,
            &generous,
            &mut regular_speedups,
            &mut irregular_speedups,
        );
    }
    for (name, src, regular) in DEEP_KERNELS {
        let hir = chls_frontend::compile_to_hir(src).expect("parses");
        let (id, _) = hir.func_by_name("f").expect("exists");
        let mut f = chls_ir::lower_function(&hir, id).expect("lowers");
        chls_opt::simplify::simplify(&mut f);
        let forest = chls_ir::loops::LoopForest::compute(&f);
        let l = forest.loops.iter().max_by_key(|l| l.depth).expect("loop");
        let body: Vec<_> = l.blocks.iter().copied().filter(|b| *b != l.header).collect();
        let (dfg, _) = loop_dfg(&f, l.header, &body, AliasPrecision::Basic, &model);
        add_row(
            &mut t,
            name,
            *regular,
            &dfg,
            period,
            &res,
            &generous,
            &mut regular_speedups,
            &mut irregular_speedups,
        );
    }
    println!("E4: loop pipelining (iterative modulo scheduling), typical resources\n");
    println!("{t}");
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    // Hardware pipelining (not just the analytic model): the c2v backend
    // with `pipeline_loops` emitstrue overlapped kernels for canonical
    // streaming loops; measure actual cycle counts.
    println!("\nHardware pipelining (c2v backend, measured cycles):\n");
    let mut hw = Table::new(vec!["kernel", "plain cycles", "pipelined cycles", "speedup"]);
    let hw_cases: &[(&str, &str, Vec<chls::interp::ArgValue>)] = &[
        (
            "dot64",
            "int f(int a[64], int b[64]) {
                int s = 0;
                for (int i = 0; i < 64; i++) s += a[i] * b[i];
                return s;
            }",
            vec![
                chls::interp::ArgValue::Array((1..=64).collect()),
                chls::interp::ArgValue::Array((1..=64).rev().collect()),
            ],
        ),
        (
            "scale64",
            "void f(int a[64], int b[64]) {
                for (int i = 0; i < 64; i++) b[i] = a[i] * 3 + 1;
            }",
            vec![
                chls::interp::ArgValue::Array((0..64).collect()),
                chls::interp::ArgValue::Array(vec![0; 64]),
            ],
        ),
    ];
    let measure = |name: &str, src: &str, entry: &str, args: &[chls::interp::ArgValue], hw: &mut Table| {
        let compiler = chls::Compiler::parse(src).expect("parses");
        let backend = chls::backend_by_name("c2v").expect("registered");
        let plain = compiler
            .synthesize(backend.as_ref(), entry, &chls::SynthOptions::default())
            .expect("plain");
        let piped = compiler
            .synthesize(
                backend.as_ref(),
                entry,
                &chls::SynthOptions {
                    pipeline_loops: true,
                    ..Default::default()
                },
            )
            .expect("pipelined");
        let rp = chls::simulate_design(&plain, args).expect("sim");
        let rq = chls::simulate_design(&piped, args).expect("sim");
        assert_eq!(rp.ret, rq.ret, "{name}: pipelined result diverges");
        assert_eq!(rp.arrays, rq.arrays, "{name}: pipelined arrays diverge");
        let (cp, cq) = (rp.cycles.unwrap(), rq.cycles.unwrap());
        hw.row(vec![
            name.to_string(),
            cp.to_string(),
            cq.to_string(),
            if cq < cp {
                fnum(cp as f64 / cq as f64)
            } else {
                "fallback".to_string()
            },
        ]);
    };
    for (name, src, args) in hw_cases {
        measure(name, src, "f", args, &mut hw);
    }
    // The whole benchmark suite: pipelined-or-fallback, never wrong.
    for bench in benchmarks() {
        measure(bench.name, bench.source, bench.entry, &bench.args, &mut hw);
    }
    println!("{hw}");

    println!(
        "mean asymptotic speedup on wide hardware — regular loops: {}x,\n\
         irregular loops: {}x.\n\
         Regular array kernels pipeline down to II 1-2 once resources\n\
         allow; recurrence- and control-bound loops are pinned no matter\n\
         how much hardware is thrown at them — 'less effective in\n\
         general', as the paper says.",
        fnum(avg(&regular_speedups)),
        fnum(avg(&irregular_speedups))
    );
}
