//! `bench_serve` — the daemon performance harness behind
//! `BENCH_serve.json`.
//!
//! Spins up an embedded `chls serve` ([`Server`] on an ephemeral port)
//! and measures the two numbers the service layer exists for:
//!
//! * `warm_report` — wall time of a `report` request against a warm
//!   artifact cache (a response-memo pointer clone) vs the same report
//!   through the cold one-shot path. The acceptance floor is **5×**.
//! * `throughput` — requests/second over several concurrent client
//!   connections running a mixed, mostly-warm verb workload. The
//!   acceptance floor is **100 req/s**.
//! * `cache` — the daemon's hit/miss census for the whole run, so the
//!   recorded hit rate keeps the cache honest in CI.
//!
//! `--check <pct>` gates a run against the absolute floors above *and*
//! against the throughput recorded in an existing `BENCH_serve.json`
//! (minus `pct` percent of slack). Like `bench_sim`, a below-floor
//! measurement on a contended host is re-sampled before it counts as a
//! regression.

use chls::serve::{Client, ServeConfig, Server};
use chls::service::{self, Source};
use chls::{Request, ServiceCtx};
use std::time::Instant;

/// Acceptance floors (see ISSUE 8): warm daemon `report` must beat the
/// cold one-shot by at least this factor, and the mixed workload must
/// clear this many requests per second.
const SPEEDUP_FLOOR: f64 = 5.0;
const RPS_FLOOR: f64 = 100.0;

const GCD: &str = "int gcd(int a, int b) {
    while (b != 0) { int t = b; b = a % b; a = t; }
    return a;
}";

const MAC4: &str = "int mac4(int a, int b) {
    int s = 0;
    for (int i = 0; i < 4; i++) {
        s = (s + a * a + b) & 4095;
    }
    return s;
}";

/// The `report` workload: a bit-serial CRC so every backend has real
/// work (nested data loops, hundreds of simulated cycles). Cold cost is
/// parse + synthesize + simulate × every backend; warm cost is one
/// response-memo pointer clone.
const CRC8: &str = "int crc8(int seed) {
    int c = seed & 255;
    for (int i = 0; i < 64; i++) {
        int b = (c ^ i) & 255;
        for (int k = 0; k < 8; k++) {
            c = ((c >> 1) ^ (165 * (c & 1))) & 255;
        }
        c = (c + b) & 255;
    }
    return c;
}";

fn req(verb: &str, src: &str, entry: &str, args: &[&str]) -> Request {
    Request {
        verb: verb.to_string(),
        source: Source::Text(src.to_string()),
        entry: entry.to_string(),
        args: args.iter().map(ToString::to_string).collect(),
        ..Request::default()
    }
}

/// Best-of-`reps` wall time for `f`, in seconds.
fn best_of<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps {
        let t = Instant::now();
        let r = f();
        best = best.min(t.elapsed().as_secs_f64());
        out = Some(r);
    }
    (best, out.expect("reps >= 1"))
}

/// Pulls `"<key>": <num>` out of a named block of a previous
/// BENCH_serve.json, by string search (fixed shape; no parser here).
fn prior_num(json: &str, block: &str, key: &str) -> Option<f64> {
    let body = &json[json.find(&format!("\"{block}\""))?..];
    let key = format!("\"{key}\": ");
    let body = &body[body.find(&key)? + key.len()..];
    let end = body.find([',', '}'])?;
    body[..end].trim().parse().ok()
}

/// Cold one-shot `report`: parse + synthesize + simulate every backend,
/// no cache anywhere. This is what `chls report` costs from a shell.
fn cold_report(r: &Request) -> f64 {
    let (s, h) = best_of(3, || {
        service::handle(r, &ServiceCtx::uncached()).expect("one-shot report")
    });
    assert!(h.response.ok, "report must succeed cold");
    s
}

/// Warm daemon `report`: prime once, then time a batch of cache hits.
fn warm_report(client: &mut Client, r: &Request) -> f64 {
    const BATCH: usize = 20;
    let prime = client.call(r).expect("priming report");
    assert!(prime.contains(r#""ok":true"#), "report must succeed via daemon");
    let (s, ()) = best_of(3, || {
        for _ in 0..BATCH {
            let line = client.call(r).expect("warm report");
            assert!(line.contains(r#""cached":true"#), "warm report must hit");
        }
    });
    s / BATCH as f64
}

/// The mixed throughput workload: `clients` threads, each its own
/// connection, each sending `per_client` requests cycling through a
/// small verb×source matrix. Returns wall seconds.
fn throughput(addr: &str, clients: usize, per_client: usize) -> f64 {
    let work: Vec<Request> = vec![
        req("run", GCD, "gcd", &["48", "36"]),
        req("run", MAC4, "mac4", &["3", "5"]),
        req("check", GCD, "gcd", &["48", "36"]),
        req("ir", MAC4, "mac4", &[]),
        {
            let mut r = req("synth", MAC4, "mac4", &[]);
            r.options = chls::CompileOptions::new().backend(Some("c2v"));
            r
        },
    ];
    let t = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..clients {
            let work = &work;
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connects");
                for i in 0..per_client {
                    let k = (c + i) % work.len();
                    let line = client.call(&work[k]).expect("call succeeds");
                    assert!(line.contains(r#""ok":true"#), "workload request failed: {line}");
                }
            });
        }
    });
    t.elapsed().as_secs_f64()
}

#[allow(clippy::too_many_lines, clippy::cast_precision_loss)]
fn main() {
    let mut out_path = None;
    let mut check_pct: Option<f64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--check" {
            let v = args.next().unwrap_or_else(|| {
                eprintln!("bench_serve: --check needs a percentage");
                std::process::exit(2);
            });
            check_pct = Some(v.parse().unwrap_or_else(|_| {
                eprintln!("bench_serve: --check wants a number, got `{v}`");
                std::process::exit(2);
            }));
        } else {
            out_path = Some(a);
        }
    }
    let out_path = out_path
        .unwrap_or_else(|| format!("{}/../../BENCH_serve.json", env!("CARGO_MANIFEST_DIR")));

    let mut server = Server::start(&ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        ..ServeConfig::default()
    })
    .expect("bind ephemeral port");
    let addr = server.addr.to_string();
    let workers = server.workers();

    // warm_report: the headline cache win.
    let report_req = req("report", CRC8, "crc8", &["7"]);
    let cold_s = cold_report(&report_req);
    let mut client = Client::connect(&addr).expect("connects");
    let mut warm_s = warm_report(&mut client, &report_req);
    let mut report_speedup = cold_s / warm_s;

    // throughput: concurrent mixed workload, mostly warm after the
    // first lap of each connection.
    const CLIENTS: usize = 4;
    const PER_CLIENT: usize = 100;
    let total = (CLIENTS * PER_CLIENT) as f64;
    let mut wall_s = throughput(&addr, CLIENTS, PER_CLIENT);
    let mut rps = total / wall_s;

    // Gate before overwriting the file: absolute floors always, prior
    // throughput with `--check <pct>` slack. Re-sample below-floor
    // numbers before calling them regressions (shared hosts are noisy).
    if let Some(pct) = check_pct {
        let floor = 1.0 - pct / 100.0;
        let prior_rps = std::fs::read_to_string(&out_path)
            .ok()
            .and_then(|prev| prior_num(&prev, "throughput", "requests_per_sec"));
        let mut failed = false;
        for attempt in 0..3 {
            let rps_floor = prior_rps.map_or(RPS_FLOOR, |p| (p * floor).max(RPS_FLOOR));
            failed = report_speedup < SPEEDUP_FLOOR || rps < rps_floor;
            if !failed || attempt == 2 {
                break;
            }
            eprintln!(
                "bench_serve: below floor (speedup {report_speedup:.1}, {rps:.0} req/s), \
                 re-measuring (attempt {})",
                attempt + 2
            );
            std::thread::sleep(std::time::Duration::from_millis(400));
            if report_speedup < SPEEDUP_FLOOR {
                let w = warm_report(&mut client, &report_req);
                if w < warm_s {
                    warm_s = w;
                    report_speedup = cold_s / warm_s;
                }
            }
            if rps < rps_floor {
                let w = throughput(&addr, CLIENTS, PER_CLIENT);
                if w < wall_s {
                    wall_s = w;
                    rps = total / wall_s;
                }
            }
        }
        if report_speedup < SPEEDUP_FLOOR {
            eprintln!(
                "bench_serve: REGRESSION: warm report speedup {report_speedup:.1}x \
                 below the {SPEEDUP_FLOOR}x floor (cold {cold_s:.4}s, warm {warm_s:.6}s)"
            );
        } else {
            eprintln!("bench_serve: warm report ok: {report_speedup:.1}x (floor {SPEEDUP_FLOOR}x)");
        }
        let rps_floor = prior_rps.map_or(RPS_FLOOR, |p| (p * floor).max(RPS_FLOOR));
        if rps < rps_floor {
            eprintln!(
                "bench_serve: REGRESSION: {rps:.0} req/s below floor {rps_floor:.0} \
                 (prior {}, -{pct}%)",
                prior_rps.map_or_else(|| "none".to_string(), |p| format!("{p:.0}")),
            );
        } else {
            eprintln!("bench_serve: throughput ok: {rps:.0} req/s (floor {rps_floor:.0})");
        }
        if failed {
            std::process::exit(1);
        }
    }

    let stats = server.cache().stats();
    let json = format!(
        "{{\n  \
         \"harness\": \"bench_serve\",\n  \
         \"arch\": \"{}\",\n  \
         \"workers\": {workers},\n  \
         \"warm_report\": {{\"cold_s\": {cold_s:.4}, \"warm_s\": {warm_s:.6}, \"speedup\": {report_speedup:.1}, \"floor\": {SPEEDUP_FLOOR:.1}}},\n  \
         \"throughput\": {{\"clients\": {CLIENTS}, \"requests\": {}, \"wall_s\": {wall_s:.4}, \"requests_per_sec\": {rps:.0}, \"floor\": {RPS_FLOOR:.0}}},\n  \
         \"cache\": {{\"hits\": {}, \"misses\": {}, \"hit_rate\": {:.4}, \"bytes\": {}, \"entries\": {}}}\n\
         }}\n",
        std::env::consts::ARCH,
        CLIENTS * PER_CLIENT,
        stats.hits,
        stats.misses,
        stats.hit_rate(),
        stats.bytes,
        stats.entries,
    );
    server.stop();
    std::fs::write(&out_path, &json).expect("writes BENCH_serve.json");
    print!("{json}");
    eprintln!(
        "bench_serve: warm report {report_speedup:.1}x over cold one-shot \
         (cold {cold_s:.4}s, warm {warm_s:.6}s); {rps:.0} req/s mixed"
    );
    eprintln!("wrote {out_path}");
}
