//! E9 — "C's memory model is an undifferentiated array of bytes, yet many
//! small, varied memories are most effective in hardware." The same
//! two-stream kernel with (a) everything forced into one monolithic
//! memory (C's model), (b) one memory per array (the default),
//! (c) per-array memories with 2 ports and an unrolled loop to exploit
//! them, and (d) single-ported but `#pragma memory bank(2)`-split arrays
//! — cyclic banking buys the same parallelism as multi-porting without
//! multi-port RAMs.

use chls::interp::ArgValue;
use chls::{backend_by_name, fnum, simulate_design, Compiler, SynthOptions, Table};
use chls_rtl::CostModel;

const MONOLITHIC: &str = "
    int f(int inp[16], int out[16]) {
        #pragma memory monolithic
        int a[16];
        #pragma memory monolithic
        int b[16];
        for (int i = 0; i < 16; i++) { a[i] = inp[i]; b[i] = inp[i] * 3; }
        int s = 0;
        for (int i = 0; i < 16; i++) { out[i] = a[i] + b[i]; s += out[i]; }
        return s;
    }
";

const PER_ARRAY: &str = "
    int f(int inp[16], int out[16]) {
        int a[16];
        int b[16];
        for (int i = 0; i < 16; i++) { a[i] = inp[i]; b[i] = inp[i] * 3; }
        int s = 0;
        for (int i = 0; i < 16; i++) { out[i] = a[i] + b[i]; s += out[i]; }
        return s;
    }
";

const BANKED_UNROLLED: &str = "
    int f(int inp[16], int out[16]) {
        int a[16];
        int b[16];
        #pragma unroll 2
        for (int i = 0; i < 16; i++) { a[i] = inp[i]; b[i] = inp[i] * 3; }
        int s = 0;
        #pragma unroll 2
        for (int i = 0; i < 16; i++) { out[i] = a[i] + b[i]; s += out[i]; }
        return s;
    }
";

const CYCLIC_BANKS: &str = "
    int f(int inp[16], int out[16]) {
        #pragma memory bank(2)
        int a[16];
        #pragma memory bank(2)
        int b[16];
        #pragma unroll 2
        for (int i = 0; i < 16; i++) { a[i] = inp[i]; b[i] = inp[i] * 3; }
        int s = 0;
        #pragma unroll 2
        for (int i = 0; i < 16; i++) { out[i] = a[i] + b[i]; s += out[i]; }
        return s;
    }
";

fn main() {
    let args = [
        ArgValue::Array((1..=16).collect()),
        ArgValue::Array(vec![0; 16]),
    ];
    let model = CostModel::new();
    let backend = backend_by_name("c2v").expect("registered");
    let mut t = Table::new(vec![
        "memory discipline", "memories", "cycles", "area (gates)", "speedup",
    ]);
    let mut base = 0u64;
    for (name, src, opts) in [
        ("monolithic (C's model)", MONOLITHIC, SynthOptions::default()),
        ("one memory per array", PER_ARRAY, SynthOptions::default()),
        (
            "per array + unroll x2 (2 ports)",
            BANKED_UNROLLED,
            SynthOptions {
                resources: {
                    let mut r = chls_sched::Resources::unlimited();
                    r.default_mem_ports = 2;
                    r
                },
                ..Default::default()
            },
        ),
        (
            "bank(2) + unroll x2 (1 port each)",
            CYCLIC_BANKS,
            SynthOptions::default(),
        ),
    ] {
        let compiler = Compiler::parse(src).expect("parses");
        let d = compiler
            .synthesize(backend.as_ref(), "f", &opts)
            .expect("synthesizes");
        let out = simulate_design(&d, &args).expect("simulates");
        assert_eq!(out.ret, Some(544));
        let cycles = out.cycles.unwrap();
        if base == 0 {
            base = cycles;
        }
        let mems = d.as_fsmd().map(|f| f.mems.len()).unwrap_or(0);
        t.row(vec![
            name.to_string(),
            mems.to_string(),
            cycles.to_string(),
            fnum(d.area(&model)),
            fnum(base as f64 / cycles as f64),
        ]);
    }
    println!("E9: one kernel, four memory architectures (c2v backend)\n");
    println!("{t}");
    println!(
        "In the monolithic model every access to `a` and `b` fights for the\n\
         same port, serializing the whole kernel. Splitting arrays into\n\
         dedicated small memories lets accesses to different arrays share a\n\
         cycle; more ports plus unrolling stack a further speedup — and\n\
         cyclic banking (`#pragma memory bank(2)`) recovers it with plain\n\
         single-ported RAMs. 'Many small, varied memories are most\n\
         effective.'"
    );
}
