//! E8 — "Bit vectors are natural in hardware, yet C only supports four
//! sizes." The same 12-bit pixel pipeline written with C's `int`, with
//! bit-precise `uint<N>` types, and with C types plus compiler
//! bit-width recovery (value-range analysis).

use chls::interp::ArgValue;
use chls::{backend_by_name, fnum, simulate_design, Compiler, SynthOptions, Table};
use chls_rtl::CostModel;

/// 12-bit pixel blend: everything fits far inside `int`.
const C_INT: &str = "
    int blend(int a[16], int b[16], int alpha) {
        int acc = 0;
        for (int i = 0; i < 16; i++) {
            int pa = a[i] & 0xFFF;
            int pb = b[i] & 0xFFF;
            int mixed = (pa * (alpha & 0xFF) + pb * (255 - (alpha & 0xFF))) >> 8;
            acc ^= mixed;
        }
        return acc;
    }
";

/// The same kernel with the widths the data actually needs.
const BIT_PRECISE: &str = "
    int blend(int a[16], int b[16], int alpha) {
        uint<13> acc = 0;
        for (int i = 0; i < 16; i++) {
            uint<12> pa = (uint<12>) a[i];
            uint<12> pb = (uint<12>) b[i];
            uint<8> al = (uint<8>) alpha;
            uint<21> mixed =
                ((uint<21>) pa * al + (uint<21>) pb * (uint<8>) (255 - al)) >> 8;
            acc = acc ^ (uint<13>) mixed;
        }
        return (int) acc;
    }
";

fn main() {
    let args = [
        ArgValue::Array((0..16).map(|i| (i * 251) % 4096).collect()),
        ArgValue::Array((0..16).map(|i| (i * 97 + 13) % 4096).collect()),
        ArgValue::Scalar(180),
    ];
    let model = CostModel::new();
    let opts = SynthOptions::default();
    let backend = backend_by_name("handelc").expect("registered");

    // Handel-C maps each declared variable to a register of its declared
    // width and each expression to dedicated logic — source typing shows
    // up in the area directly.
    let mut t = Table::new(vec!["source typing", "result", "datapath area (gates)", "vs C int"]);
    let mut base_area = 0.0;
    for (name, src) in [("C `int` everywhere", C_INT), ("bit-precise uint<N>", BIT_PRECISE)] {
        let compiler = Compiler::parse(src).expect("parses");
        let d = compiler
            .synthesize(backend.as_ref(), "blend", &opts)
            .expect("synthesizes");
        let out = simulate_design(&d, &args).expect("simulates");
        let area = d.area(&model);
        if base_area == 0.0 {
            base_area = area;
        }
        t.row(vec![
            name.to_string(),
            out.ret.unwrap().to_string(),
            fnum(area),
            format!("{}%", fnum(100.0 * area / base_area)),
        ]);
    }

    // Compiler recovery: value-range analysis on the C-int version.
    let hir = chls_frontend::compile_to_hir(C_INT).expect("parses");
    let (id, _) = hir.func_by_name("blend").expect("exists");
    let mut f = chls_ir::lower_function(&hir, id).expect("lowers");
    chls_opt::simplify::simplify(&mut f);
    let wa = chls_opt::width::analyze(&f);
    let (declared, narrowed) = wa.area_comparison(&f, &model);
    t.row(vec![
        "C int + compiler width recovery (estimate)".to_string(),
        "-".to_string(),
        format!("{} -> {}", fnum(declared), fnum(narrowed)),
        format!("{}%", fnum(100.0 * narrowed / declared)),
    ]);

    // The recovery is not just an estimate: `narrow_widths` drives real
    // register/datapath narrowing in the scheduled (c2v) flow.
    {
        let c2v = backend_by_name("c2v").expect("registered");
        let compiler = Compiler::parse(C_INT).expect("parses");
        let wide = compiler
            .synthesize(c2v.as_ref(), "blend", &SynthOptions::default())
            .expect("synthesizes");
        let narrow = compiler
            .synthesize(
                c2v.as_ref(),
                "blend",
                &SynthOptions {
                    narrow_widths: true,
                    ..Default::default()
                },
            )
            .expect("synthesizes");
        let rw = simulate_design(&wide, &args).expect("simulates");
        let rn = simulate_design(&narrow, &args).expect("simulates");
        assert_eq!(rw.ret, rn.ret);
        let (aw, an) = (wide.area(&model), narrow.area(&model));
        t.row(vec![
            "C int + narrow_widths, c2v (synthesized)".to_string(),
            rn.ret.unwrap().to_string(),
            format!("{} -> {}", fnum(aw), fnum(an)),
            format!("{}%", fnum(100.0 * an / aw)),
        ]);
    }
    println!("E8: 12-bit pixel blend under three typing disciplines\n");
    println!("{t}");
    println!(
        "Writing the widths down (as every surveyed HDL-flavoured language\n\
         lets you, and C does not) cuts the datapath substantially; a\n\
         range analysis recovers much of it automatically — but only where\n\
         masks and constants prove the bounds. Both results agree with the\n\
         paper's complaint about C's four integer sizes."
    );
}
