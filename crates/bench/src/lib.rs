//! # chls-bench
//!
//! The experiment harness: one `exp*` binary per claim in the paper (see
//! `EXPERIMENTS.md` at the workspace root for the index and the recorded
//! results), plus Criterion microbenchmarks of the toolchain itself.

use chls::interp::ArgValue;
use chls::{simulate_design, Compiler, SynthOptions};
use chls_rtl::CostModel;

/// Synthesizes `src` with the named backend and simulates it, returning
/// (cycles-or-time, area). Panics on any failure: experiment inputs are
/// fixed and must work.
pub fn run_clocked(
    backend: &str,
    src: &str,
    entry: &str,
    args: &[ArgValue],
    opts: &SynthOptions,
) -> (u64, f64) {
    let compiler = Compiler::parse(src).expect("parses");
    let b = chls::backend_by_name(backend).expect("registered");
    let design = compiler
        .synthesize(b.as_ref(), entry, opts)
        .unwrap_or_else(|e| panic!("{backend} refused: {e}"));
    let out = simulate_design(&design, args).expect("simulates");
    let model = CostModel::new();
    (
        out.cycles.or(out.time_units).unwrap_or(0),
        design.area(&model),
    )
}
