//! Criterion benchmarks of the schedulers on synthetic DFGs of growing
//! size: list scheduling, force-directed scheduling, and iterative modulo
//! scheduling.

use chls_rtl::OpClass;
use chls_sched::dfg::{Dfg, DfgNode};
use chls_sched::{force_directed, list_schedule, modulo_schedule, Resources};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// A layered DFG: `layers` rows of `width` MACs, each feeding the next.
fn layered_dfg(layers: usize, width: usize) -> Dfg {
    let mut d = Dfg::default();
    let mut prev: Vec<chls_sched::NodeId> = Vec::new();
    for l in 0..layers {
        let mut cur = Vec::new();
        for w in 0..width {
            let n = d.add_node(DfgNode {
                op: if (l + w) % 3 == 0 { OpClass::Mul } else { OpClass::AddSub },
                width: 32,
                delay_ns: if (l + w) % 3 == 0 { 0.6 } else { 0.3 },
                mem: None,
                chainable: true,
                tag: 0,
            });
            if let Some(&p) = prev.get(w) {
                d.add_edge(p, n);
            }
            cur.push(n);
        }
        prev = cur;
    }
    d
}

fn schedulers(c: &mut Criterion) {
    let res = Resources::typical();
    for (layers, width) in [(8usize, 8usize), (16, 16), (32, 16)] {
        let dfg = layered_dfg(layers, width);
        let n = dfg.nodes.len();
        c.bench_with_input(BenchmarkId::new("list_schedule", n), &dfg, |b, dfg| {
            b.iter(|| list_schedule(dfg, 2.0, &res))
        });
        c.bench_with_input(BenchmarkId::new("force_directed", n), &dfg, |b, dfg| {
            b.iter(|| force_directed(dfg, 2.0, (layers * 2) as u32))
        });
        c.bench_with_input(BenchmarkId::new("modulo_schedule", n), &dfg, |b, dfg| {
            b.iter(|| modulo_schedule(dfg, 2.0, &res))
        });
    }
}

criterion_group!(benches, schedulers);
criterion_main!(benches);
