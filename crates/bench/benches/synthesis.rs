//! Criterion benchmarks of the synthesis paths themselves: full
//! frontend + backend runs per paradigm on representative kernels.

use chls::{backend_by_name, Compiler, SynthOptions};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn backend_synthesis(c: &mut Criterion) {
    let mut group = c.benchmark_group("synthesize");
    let cases = [
        ("gcd", "gcd"),
        ("fir8", "fir"),
        ("bubble8", "sort"),
        ("crc32", "crc32"),
    ];
    for (bench_name, entry) in cases {
        let bench = chls::benchmark(bench_name).expect("exists");
        let compiler = Compiler::parse(bench.source).expect("parses");
        for backend_name in ["transmogrifier", "c2v", "handelc", "hardwarec", "cash"] {
            let backend = backend_by_name(backend_name).expect("registered");
            // Skip combinations a backend refuses.
            if compiler
                .synthesize(backend.as_ref(), entry, &SynthOptions::default())
                .is_err()
            {
                continue;
            }
            group.bench_with_input(
                BenchmarkId::new(backend_name, bench_name),
                &compiler,
                |b, compiler| {
                    b.iter(|| {
                        compiler
                            .synthesize(backend.as_ref(), entry, &SynthOptions::default())
                            .expect("synthesizes")
                    })
                },
            );
        }
    }
    group.finish();
}

fn frontend(c: &mut Criterion) {
    let mut group = c.benchmark_group("frontend");
    for bench in chls::benchmarks() {
        group.bench_with_input(
            BenchmarkId::new("parse+sema", bench.name),
            &bench.source,
            |b, src| b.iter(|| chls_frontend::compile_to_hir(src).expect("compiles")),
        );
    }
    group.finish();
}

fn pipelined_synthesis(c: &mut Criterion) {
    // Compile-time cost of the pipelining path (if-conversion + modulo
    // scheduling + kernel emission) relative to the plain schedule.
    let mut group = c.benchmark_group("pipeline_synthesis");
    let piped = SynthOptions {
        pipeline_loops: true,
        ..Default::default()
    };
    for bench_name in ["fir8", "vecscale", "clamp_mix"] {
        let bench = chls::benchmark(bench_name).expect("exists");
        let compiler = Compiler::parse(bench.source).expect("parses");
        let backend = backend_by_name("c2v").expect("registered");
        group.bench_with_input(
            BenchmarkId::new("plain", bench_name),
            &compiler,
            |b, compiler| {
                b.iter(|| {
                    compiler
                        .synthesize(backend.as_ref(), bench.entry, &SynthOptions::default())
                        .expect("synthesizes")
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("pipelined", bench_name),
            &compiler,
            |b, compiler| {
                b.iter(|| {
                    compiler
                        .synthesize(backend.as_ref(), bench.entry, &piped)
                        .expect("synthesizes")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, backend_synthesis, frontend, pipelined_synthesis);
criterion_main!(benches);
