//! Criterion benchmarks of the simulators: golden interpreter, FSMD cycle
//! simulation, and asynchronous token simulation on the same kernel.

use chls::interp::ArgValue;
use chls::{backend_by_name, Compiler, Design, SynthOptions};
use criterion::{criterion_group, criterion_main, Criterion};

fn simulators(c: &mut Criterion) {
    let bench = chls::benchmark("crc32").expect("exists");
    let compiler = Compiler::parse(bench.source).expect("parses");
    let entry = bench.entry;
    let args = bench.args.clone();

    c.bench_function("interp/crc32", |b| {
        b.iter(|| compiler.interpret(entry, &args).expect("runs"))
    });

    let c2v = backend_by_name("c2v").expect("registered");
    let fsmd_design = compiler
        .synthesize(c2v.as_ref(), entry, &SynthOptions::default())
        .expect("synthesizes");
    let fsmd = match &fsmd_design {
        Design::Fsmd(f) => f.clone(),
        _ => unreachable!(),
    };
    c.bench_function("fsmd_sim/crc32", |b| {
        b.iter(|| chls_sim::fsmd_sim::simulate(&fsmd, &args, 5_000_000).expect("simulates"))
    });

    let cash = backend_by_name("cash").expect("registered");
    let df_design = compiler
        .synthesize(cash.as_ref(), entry, &SynthOptions::default())
        .expect("synthesizes");
    let g = match &df_design {
        Design::Dataflow(g) => g.clone(),
        _ => unreachable!(),
    };
    let df_args: Vec<chls_dataflow::sim::ArgValue> = args
        .iter()
        .map(|a| match a {
            ArgValue::Scalar(v) => chls_dataflow::sim::ArgValue::Scalar(*v),
            ArgValue::Array(v) => chls_dataflow::sim::ArgValue::Array(v.clone()),
        })
        .collect();
    c.bench_function("token_sim/crc32", |b| {
        b.iter(|| {
            chls_dataflow::sim::simulate(
                &g,
                &df_args,
                &chls_dataflow::sim::TokenSimOptions::default(),
            )
            .expect("simulates")
        })
    });
}

criterion_group!(benches, simulators);
criterion_main!(benches);
