//! Criterion benchmarks of the individual optimizer passes on
//! representative lowered kernels.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn lowered(src: &str, entry: &str) -> chls_ir::Function {
    let hir = chls_frontend::compile_to_hir(src).expect("compiles");
    let (id, _) = hir.func_by_name(entry).expect("exists");
    let prog = chls_opt::inline::inline_program(&hir, id).expect("inlines");
    chls_ir::lower_function(&prog, chls_frontend::hir::FuncId(0)).expect("lowers")
}

fn passes(c: &mut Criterion) {
    let mut group = c.benchmark_group("opt_passes");
    let kernels: Vec<(&str, chls_ir::Function)> = ["fir8", "crc32", "clamp_mix", "histogram"]
        .iter()
        .map(|name| {
            let b = chls::benchmark(name).expect("exists");
            (*name, lowered(b.source, b.entry))
        })
        .collect();
    for (name, f) in &kernels {
        group.bench_with_input(BenchmarkId::new("simplify", name), f, |b, f| {
            b.iter_batched(
                || f.clone(),
                |mut f| chls_opt::simplify::simplify(&mut f),
                criterion::BatchSize::SmallInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("ifconv", name), f, |b, f| {
            b.iter_batched(
                || f.clone(),
                |mut f| chls_opt::ifconv::if_convert(&mut f),
                criterion::BatchSize::SmallInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("loadcse", name), f, |b, f| {
            b.iter_batched(
                || f.clone(),
                |mut f| chls_opt::loadcse::eliminate_redundant_loads(&mut f),
                criterion::BatchSize::SmallInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("width_analysis", name), f, |b, f| {
            b.iter(|| chls_opt::width::analyze(f))
        });
    }
    group.finish();
}

criterion_group!(benches, passes);
criterion_main!(benches);
