//! Offline stand-in for [proptest](https://crates.io/crates/proptest).
//!
//! The crates registry is unreachable in this environment, so the
//! workspace vendors the slice of the proptest API its tests actually
//! use: `proptest!`, `prop_oneof!`, `prop_assert!`/`prop_assert_eq!`,
//! [`strategy::Strategy`] with `prop_map`/`prop_recursive`/`boxed`,
//! [`strategy::Just`], [`arbitrary::any`], [`collection::vec`],
//! [`bool::ANY`], integer-range strategies, and a small regex-subset
//! string strategy (`"[class]{m,n}"`).
//!
//! Generation is a deterministic splitmix64 stream seeded from the test
//! name and case index, so failures reproduce exactly on re-run. There
//! is no shrinking: a failing case reports its case index and message.

pub mod test_runner {
    use std::fmt;

    /// Per-test configuration (the subset the workspace sets).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
        /// Accepted for compatibility; shrinking is not implemented.
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_shrink_iters: 0,
            }
        }
    }

    /// A failed property (carried by `prop_assert!` early returns).
    #[derive(Debug, Clone)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// A failure with a message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "{}", self.0)
        }
    }

    /// Deterministic splitmix64 generator.
    #[derive(Debug, Clone)]
    pub struct Rng {
        state: u64,
    }

    impl Rng {
        /// Seeds from a test name and case index (stable across runs).
        pub fn from_name_case(name: &str, case: u64) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            Rng {
                state: h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    use crate::test_runner::Rng;
    use std::rc::Rc;

    /// A generator of values of one type.
    ///
    /// Object safety: `generate` is the one required method; the
    /// combinators require `Self: Sized` and are provided. The `'static`
    /// supertrait lets any strategy be type-erased into a
    /// [`BoxedStrategy`].
    pub trait Strategy: 'static {
        /// The generated type.
        type Value;

        /// Produces one value from the deterministic stream.
        fn generate(&self, rng: &mut Rng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U + 'static,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (cheaply clonable).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized,
        {
            BoxedStrategy(Rc::new(self))
        }

        /// Builds recursive values: the leaf strategy is wrapped `levels`
        /// times by `recurse` (the desired-size / branch hints are
        /// accepted for API compatibility and ignored).
        fn prop_recursive<S, F>(
            self,
            levels: u32,
            _desired_size: u32,
            _expected_branch: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized,
            S: Strategy<Value = Self::Value>,
            F: Fn(BoxedStrategy<Self::Value>) -> S,
        {
            let mut cur = self.boxed();
            for _ in 0..levels {
                cur = recurse(cur).boxed();
            }
            cur
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone + 'static> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut Rng) -> T {
            self.0.clone()
        }
    }

    /// [`Strategy::prop_map`] adapter.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U + 'static,
        U: 'static,
    {
        type Value = U;
        fn generate(&self, rng: &mut Rng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A type-erased, clonable strategy.
    pub struct BoxedStrategy<T>(Rc<dyn ErasedStrategy<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    trait ErasedStrategy<T> {
        fn erased_generate(&self, rng: &mut Rng) -> T;
    }

    impl<S: Strategy> ErasedStrategy<S::Value> for S {
        fn erased_generate(&self, rng: &mut Rng) -> S::Value {
            self.generate(rng)
        }
    }

    impl<T: 'static> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut Rng) -> T {
            self.0.erased_generate(rng)
        }
    }

    /// Equal-weight choice between alternatives (`prop_oneof!`).
    pub struct Union<T> {
        alts: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union of the given alternatives; must be nonempty.
        pub fn new(alts: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!alts.is_empty(), "prop_oneof! needs at least one case");
            Union { alts }
        }
    }

    impl<T: 'static> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut Rng) -> T {
            let i = rng.below(self.alts.len() as u64) as usize;
            self.alts[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut Rng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut Rng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let off = (rng.next_u64() as u128) % span;
                    (lo as i128 + off as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut Rng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);

    /// `&'static str` is a regex-subset string strategy: a sequence of
    /// atoms (`[class]` or literal/escaped chars), each optionally
    /// quantified with `{m,n}`. Classes support ranges (`a-z`), escapes
    /// (`\n`, `\t`, `\\`), and a literal leading `-`.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut Rng) -> String {
            let atoms = parse_regex_subset(self);
            let mut out = String::new();
            for (chars, lo, hi) in &atoms {
                let n = if lo == hi {
                    *lo
                } else {
                    *lo + rng.below((*hi - *lo + 1) as u64) as usize
                };
                for _ in 0..n {
                    let i = rng.below(chars.len() as u64) as usize;
                    out.push(chars[i]);
                }
            }
            out
        }
    }

    /// Parses the supported regex subset into (alphabet, min, max) atoms.
    fn parse_regex_subset(pat: &str) -> Vec<(Vec<char>, usize, usize)> {
        let cs: Vec<char> = pat.chars().collect();
        let mut atoms = Vec::new();
        let mut i = 0;
        while i < cs.len() {
            let alphabet: Vec<char> = if cs[i] == '[' {
                let close = cs[i + 1..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| p + i + 1)
                    .unwrap_or_else(|| panic!("unclosed [ in `{pat}`"));
                let mut members = Vec::new();
                let mut j = i + 1;
                while j < close {
                    let c = match cs[j] {
                        '\\' => {
                            j += 1;
                            unescape(cs[j])
                        }
                        c => c,
                    };
                    // `a-b` range (dash not first/last in the class).
                    if j + 2 < close && cs[j + 1] == '-' && cs[j + 2] != ']' {
                        let hi = match cs[j + 2] {
                            '\\' => {
                                j += 1;
                                unescape(cs[j + 2])
                            }
                            c => c,
                        };
                        for x in c..=hi {
                            members.push(x);
                        }
                        j += 3;
                    } else {
                        members.push(c);
                        j += 1;
                    }
                }
                i = close + 1;
                members
            } else if cs[i] == '\\' {
                i += 2;
                vec![unescape(cs[i - 1])]
            } else {
                i += 1;
                vec![cs[i - 1]]
            };
            // Optional {m,n} quantifier.
            let (lo, hi) = if i < cs.len() && cs[i] == '{' {
                let close = cs[i + 1..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| p + i + 1)
                    .unwrap_or_else(|| panic!("unclosed {{ in `{pat}`"));
                let body: String = cs[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((a, b)) => (
                        a.trim().parse().expect("bad quantifier"),
                        b.trim().parse().expect("bad quantifier"),
                    ),
                    None => {
                        let n = body.trim().parse().expect("bad quantifier");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            atoms.push((alphabet, lo, hi));
        }
        atoms
    }

    fn unescape(c: char) -> char {
        match c {
            'n' => '\n',
            't' => '\t',
            'r' => '\r',
            c => c,
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::Rng;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized + 'static {
        /// Produces one arbitrary value.
        fn arbitrary(rng: &mut Rng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut Rng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut Rng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The full-range strategy for `T` (see [`any`]).
    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut Rng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy producing any value of `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::Rng;

    /// Accepted sizes for [`vec`]: a fixed count or a range of counts.
    pub trait SizeRange {
        /// Chooses a length.
        fn pick(&self, rng: &mut Rng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut Rng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut Rng) -> usize {
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut Rng) -> usize {
            self.start() + rng.below((self.end() - self.start() + 1) as u64) as usize
        }
    }

    /// Vectors of values from `element`, sized by `size`.
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    /// Strategy for `Vec<S::Value>` with the given size range.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, R: SizeRange + 'static> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut Rng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::Rng;

    /// Strategy for either boolean.
    #[derive(Debug, Clone, Copy)]
    pub struct BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;
        fn generate(&self, rng: &mut Rng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Generates `true` or `false` with equal probability.
    pub const ANY: BoolAny = BoolAny;
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]`-able function running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$attr:meta])*
     fn $name:ident($($p:pat in $s:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases as u64 {
                let mut __rng =
                    $crate::test_runner::Rng::from_name_case(stringify!($name), __case);
                $(let $p = $crate::strategy::Strategy::generate(&($s), &mut __rng);)+
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = __outcome {
                    panic!(
                        "proptest `{}` failed at case {}/{}: {}",
                        stringify!($name), __case, __cfg.cases, e
                    );
                }
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// Equal-probability choice between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}

/// Property assertion: fails the current case without panicking past the
/// runner (usable only inside `proptest!` bodies).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__l, __r) = (&$a, &$b);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), __l, __r
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$a, &$b);
        $crate::prop_assert!(*__l == *__r, $($fmt)*);
    }};
}

/// Property inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__l, __r) = (&$a, &$b);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($a), stringify!($b), __l
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::Rng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Rng::from_name_case("ranges", 0);
        for _ in 0..1000 {
            let v = (10i64..20).generate(&mut rng);
            assert!((10..20).contains(&v));
            let u = (0u8..3).generate(&mut rng);
            assert!(u < 3);
        }
    }

    #[test]
    fn regex_subset_strings() {
        let mut rng = Rng::from_name_case("re", 1);
        for _ in 0..200 {
            let s = "[ -~\\n\\t]{0,200}".generate(&mut rng);
            assert!(s.len() <= 200);
            assert!(s
                .chars()
                .all(|c| c == '\n' || c == '\t' || (' '..='~').contains(&c)));
            let op = "[-+*&|^]".generate(&mut rng);
            assert_eq!(op.chars().count(), 1);
            assert!("-+*&|^".contains(&op));
        }
    }

    #[test]
    fn oneof_union_and_map() {
        let mut rng = Rng::from_name_case("u", 2);
        let s = prop_oneof![
            Just("a".to_string()),
            (0i64..10).prop_map(|v| format!("{v}")),
        ];
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v == "a" || v.parse::<i64>().is_ok());
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        let leaf = prop_oneof![(0i64..5).prop_map(|v| format!("{v}"))];
        let expr = leaf.boxed().prop_recursive(3, 10, 2, |inner| {
            prop_oneof![
                inner.clone(),
                (inner.clone(), inner).prop_map(|(a, b)| format!("({a}+{b})")),
            ]
        });
        let mut rng = Rng::from_name_case("rec", 3);
        for _ in 0..50 {
            let e = expr.generate(&mut rng);
            assert!(!e.is_empty());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn macro_binds_and_asserts(a in 0i64..100, b in 0i64..100) {
            prop_assert!(a + b <= 198);
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn collections_and_any(v in crate::collection::vec(-5i64..5, 0..8), x in any::<u64>()) {
            prop_assert!(v.len() < 8);
            let _ = x;
            for e in v {
                prop_assert!((-5..5).contains(&e));
            }
        }
    }
}
