//! Instruction-level-parallelism measurement over dynamic traces.
//!
//! Reproduces the methodology behind the paper's Wall citation ("ILP
//! beyond about five simultaneous instructions is unlikely"): take the
//! dynamic instruction trace with its true data and (perfectly
//! disambiguated) memory dependences, schedule it greedily onto a machine
//! that can issue `width` instructions per cycle with unit latency, and
//! report achieved IPC. As the issue width grows the IPC saturates at the
//! dependence-limited bound `instructions / critical-path-length`.

use chls_ir::exec::TraceEntry;

/// Result of one ILP measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct IlpResult {
    /// Issue width used (`u32::MAX` = unlimited).
    pub width: u32,
    /// Executed instructions.
    pub instructions: u64,
    /// Cycles the greedy schedule needed.
    pub cycles: u64,
    /// Achieved instructions per cycle.
    pub ipc: f64,
}

/// Greedy dependence-respecting schedule of a dynamic trace onto a
/// `width`-issue machine with unit-latency operations.
pub fn measure_ilp(trace: &[TraceEntry], width: u32) -> IlpResult {
    let mut finish: Vec<u64> = Vec::with_capacity(trace.len());
    let mut issued_at: std::collections::HashMap<u64, u32> = std::collections::HashMap::new();
    let mut makespan: u64 = 0;
    for e in trace {
        let ready = e
            .deps
            .iter()
            .map(|&d| finish[d as usize])
            .max()
            .unwrap_or(0);
        let mut t = ready;
        if width != u32::MAX {
            while issued_at.get(&t).copied().unwrap_or(0) >= width {
                t += 1;
            }
        }
        *issued_at.entry(t).or_insert(0) += 1;
        finish.push(t + 1);
        makespan = makespan.max(t + 1);
    }
    let instructions = trace.len() as u64;
    let cycles = makespan.max(1);
    IlpResult {
        width,
        instructions,
        cycles,
        ipc: instructions as f64 / cycles as f64,
    }
}

/// Measures ILP across a sweep of issue widths (ending with unlimited).
pub fn ilp_sweep(trace: &[TraceEntry], widths: &[u32]) -> Vec<IlpResult> {
    let mut out: Vec<IlpResult> = widths.iter().map(|&w| measure_ilp(trace, w)).collect();
    out.push(measure_ilp(trace, u32::MAX));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use chls_ir::exec::{execute, ArgValue, ExecOptions};

    fn trace_of(src: &str, args: &[ArgValue]) -> Vec<TraceEntry> {
        let hir = chls_frontend::compile_to_hir(src).expect("frontend ok");
        let (id, _) = hir.func_by_name("f").expect("exists");
        let f = chls_ir::lower_function(&hir, id).expect("lowers");
        execute(
            &f,
            args,
            &ExecOptions {
                record_trace: true,
                ..Default::default()
            },
        )
        .expect("executes")
        .trace
    }

    #[test]
    fn serial_chain_has_ipc_one() {
        let t = trace_of(
            "int f(int a) { int x = a + 1; x = x + 2; x = x + 3; x = x + 4; return x; }",
            &[ArgValue::Scalar(0)],
        );
        let r = measure_ilp(&t, u32::MAX);
        assert!((r.ipc - 1.0).abs() < 1e-9, "{r:?}");
    }

    #[test]
    fn parallel_work_saturates_at_width() {
        // Eight independent adds: width 2 gives IPC 2, width 8 gives 8.
        let t = trace_of(
            "int f(int a, int b) {
                int x0 = a + 1; int x1 = a + 2; int x2 = a + 3; int x3 = a + 4;
                int x4 = b + 1; int x5 = b + 2; int x6 = b + 3; int x7 = b + 4;
                return x0 ^ x1 ^ x2 ^ x3 ^ x4 ^ x5 ^ x6 ^ x7;
            }",
            &[ArgValue::Scalar(0), ArgValue::Scalar(100)],
        );
        let r2 = measure_ilp(&t, 2);
        let r_inf = measure_ilp(&t, u32::MAX);
        assert!(r2.ipc <= 2.0 + 1e-9);
        assert!(r_inf.ipc > r2.ipc);
    }

    #[test]
    fn ipc_is_monotone_in_width() {
        let t = trace_of(
            "int f(int a[16], int n) {
                int s = 0;
                for (int i = 0; i < n; i++) s += a[i] * a[i];
                return s;
            }",
            &[ArgValue::Array((0..16).collect()), ArgValue::Scalar(16)],
        );
        let sweep = ilp_sweep(&t, &[1, 2, 4, 8, 16]);
        for pair in sweep.windows(2) {
            assert!(
                pair[1].ipc >= pair[0].ipc - 1e-9,
                "{:?} then {:?}",
                pair[0],
                pair[1]
            );
        }
        // Width 1 means IPC <= 1.
        assert!(sweep[0].ipc <= 1.0 + 1e-9);
    }

    #[test]
    fn ilp_plateaus_from_dependences() {
        // An accumulation loop: unlimited width cannot beat the recurrence.
        let t = trace_of(
            "int f(int n) { int s = 1; for (int i = 1; i < n; i++) s = s * 3 + i; return s; }",
            &[ArgValue::Scalar(64)],
        );
        let r8 = measure_ilp(&t, 8);
        let r_inf = measure_ilp(&t, u32::MAX);
        // The plateau: widening past 8 buys (almost) nothing.
        assert!(r_inf.ipc < r8.ipc * 1.1 + 1e-9, "{r8:?} vs {r_inf:?}");
        // And the plateau is low (Wall's point): well under 8.
        assert!(r_inf.ipc < 8.0, "{r_inf:?}");
    }
}
