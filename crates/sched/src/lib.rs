//! # chls-sched
//!
//! Operation scheduling — the heart of every compiler-timed synthesis
//! flow the paper surveys:
//!
//! * [`dfg`] — dependence graphs extracted from IR basic blocks;
//! * [`schedule`] — ASAP/ALAP with operator chaining under a clock
//!   period, and resource-constrained list scheduling;
//! * [`fds`] — force-directed scheduling (HardwareC-style
//!   latency-constrained resource minimization);
//! * [`modulo`] — iterative modulo scheduling (loop pipelining), with
//!   ResMII/RecMII bounds;
//! * [`ii`] — timed-interface contract verdicts: declared `@ii(n)`
//!   promises checked against achieved initiation intervals;
//! * [`ilp`] — dynamic-trace ILP measurement (the Wall experiment).

pub mod dfg;
pub mod fds;
pub mod ii;
pub mod ilp;
pub mod modulo;
pub mod schedule;

pub use dfg::{dfg_from_block, Dfg, DfgEdge, DfgNode, NodeId};
pub use ii::{check_contract, ContractVerdict};
pub use fds::force_directed;
pub use ilp::{ilp_sweep, measure_ilp, IlpResult};
pub use modulo::{loop_dfg, modulo_schedule, ModuloSchedule};
pub use schedule::{alap, asap, list_schedule, Resources, Schedule};
