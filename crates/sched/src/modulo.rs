//! Iterative modulo scheduling (software pipelining) for innermost loops.
//!
//! The paper: "Pipelining ... works well on regular loops, e.g., in
//! scientific computation, but is less effective in general." This module
//! makes that quantitative: the achieved initiation interval (II) on a
//! regular loop approaches the resource bound, while loop-carried
//! recurrences (irregular code) pin II to the recurrence bound.
//!
//! II lower bounds:
//!
//! * **ResMII** — for each resource, ⌈uses / units⌉;
//! * **RecMII** — for each elementary cycle through distance-1 edges,
//!   ⌈latency(cycle) / distance(cycle)⌉.
//!
//! Scheduling tries II = MII, MII+1, ... with a modulo reservation table
//! and ALAP-priority list placement, giving up on a budget to the serial
//! length (which always succeeds).

use crate::dfg::{Dfg, NodeId};
use crate::schedule::Resources;
use chls_rtl::cost::OpClass;
use std::collections::HashMap;

/// A modulo schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct ModuloSchedule {
    /// Achieved initiation interval.
    pub ii: u32,
    /// Start slot of every node (absolute; slot mod II gives the table row).
    pub slot: Vec<u32>,
    /// Cycles each node occupies.
    pub duration: Vec<u32>,
    /// Schedule length of one iteration (for prologue/epilogue).
    pub iteration_length: u32,
    /// The resource-minimum II.
    pub res_mii: u32,
    /// The recurrence-minimum II.
    pub rec_mii: u32,
}

impl ModuloSchedule {
    /// Total cycles to run `trips` iterations.
    pub fn total_cycles(&self, trips: u64) -> u64 {
        if trips == 0 {
            return 0;
        }
        self.iteration_length as u64 + (trips - 1) * self.ii as u64
    }
}

fn cycles_needed(delay_ns: f64, period_ns: f64) -> u32 {
    if delay_ns <= period_ns {
        1
    } else {
        (delay_ns / period_ns).ceil() as u32
    }
}

/// Resource-minimum II.
pub fn res_mii(dfg: &Dfg, period_ns: f64, res: &Resources) -> u32 {
    let mut uses: HashMap<OpClass, u32> = HashMap::new();
    let mut mem_uses: HashMap<u32, u32> = HashMap::new();
    for node in &dfg.nodes {
        let dur = cycles_needed(node.delay_ns, period_ns);
        *uses.entry(node.op).or_insert(0) += dur;
        if let Some(m) = node.mem {
            *mem_uses.entry(m).or_insert(0) += dur;
        }
    }
    let mut mii = 1;
    for (op, n) in uses {
        if let Some(&limit) = res.units.get(&op) {
            if limit > 0 {
                mii = mii.max(n.div_ceil(limit as u32));
            }
        }
    }
    for (m, n) in mem_uses {
        let ports = res
            .mem_ports
            .get(&m)
            .copied()
            .unwrap_or(res.default_mem_ports);
        if ports > 0 {
            mii = mii.max(n.div_ceil(ports as u32));
        }
    }
    mii
}

/// Recurrence-minimum II via longest-ratio cycle detection (iterative
/// relaxation up to a bound — exact for the small loop DFGs synthesis
/// sees).
pub fn rec_mii(dfg: &Dfg, period_ns: f64) -> u32 {
    // For each candidate II, check feasibility of the dependence system:
    // slot(to) >= slot(from) + dur(from) - II * distance. A negative cycle
    // in the constraint graph means II is infeasible. Use Bellman-Ford.
    let n = dfg.nodes.len();
    if n == 0 {
        return 1;
    }
    let dur: Vec<i64> = dfg
        .nodes
        .iter()
        .map(|nd| cycles_needed(nd.delay_ns, period_ns) as i64)
        .collect();
    let serial: u32 = dur.iter().sum::<i64>().max(1) as u32;
    'outer: for ii in 1..=serial {
        // Edge weight from->to: dur(from) - II*distance; feasible iff no
        // positive cycle in the "longest path" sense.
        let mut dist = vec![0i64; n];
        for _ in 0..=n {
            let mut changed = false;
            for e in &dfg.edges {
                let w = dur[e.from.0 as usize] - (ii as i64) * e.distance as i64;
                let nd = dist[e.from.0 as usize] + w;
                if nd > dist[e.to.0 as usize] {
                    dist[e.to.0 as usize] = nd;
                    changed = true;
                }
            }
            if !changed {
                return ii.max(1);
            }
        }
        continue 'outer; // positive cycle at this II; try the next
    }
    serial.max(1)
}

/// Iterative modulo scheduling. Returns the achieved schedule.
pub fn modulo_schedule(dfg: &Dfg, period_ns: f64, res: &Resources) -> ModuloSchedule {
    let _span = chls_trace::span("sched.modulo");
    let s = modulo_schedule_inner(dfg, period_ns, res);
    chls_trace::gauge("sched.ii", u64::from(s.ii));
    chls_trace::gauge("sched.length", u64::from(s.iteration_length));
    s
}

fn modulo_schedule_inner(dfg: &Dfg, period_ns: f64, res: &Resources) -> ModuloSchedule {
    let n = dfg.nodes.len();
    let dur: Vec<u32> = dfg
        .nodes
        .iter()
        .map(|nd| cycles_needed(nd.delay_ns, period_ns))
        .collect();
    let serial: u32 = dur.iter().sum::<u32>().max(1);
    let rmii = res_mii(dfg, period_ns, res);
    let cmii = rec_mii(dfg, period_ns);
    let mii = rmii.max(cmii).max(1);

    'try_ii: for ii in mii..=serial.max(mii) {
        // List placement in topological order of distance-0 edges with a
        // modulo reservation table.
        let order = dfg.topo_order();
        let mut slot = vec![0u32; n];
        let mut placed = vec![false; n];
        let mut op_table: HashMap<(u32, OpClass), usize> = HashMap::new();
        let mut mem_table: HashMap<(u32, u32), usize> = HashMap::new();
        for &v in &order {
            let i = v.0 as usize;
            // Earliest slot from placed predecessors (all distances; a
            // distance-d edge relaxes the bound by d*II).
            let mut earliest = 0u32;
            for e in &dfg.edges {
                if e.to != v {
                    continue;
                }
                let p = e.from.0 as usize;
                if !placed[p] && e.distance == 0 {
                    continue; // topo order guarantees placement; skip safe
                }
                if placed[p] {
                    let bound = slot[p] as i64 + dur[p] as i64 - (e.distance as i64 * ii as i64);
                    if bound > earliest as i64 {
                        earliest = bound.max(0) as u32;
                    }
                }
            }
            // Search II consecutive candidate slots.
            let mut found = false;
            for cand in earliest..earliest + ii {
                let mut ok = true;
                for dc in 0..dur[i] {
                    let row = (cand + dc) % ii;
                    if let Some(&limit) = res.units.get(&dfg.nodes[i].op) {
                        if op_table.get(&(row, dfg.nodes[i].op)).copied().unwrap_or(0) >= limit {
                            ok = false;
                            break;
                        }
                    }
                    if let Some(m) = dfg.nodes[i].mem {
                        let ports = res
                            .mem_ports
                            .get(&m)
                            .copied()
                            .unwrap_or(res.default_mem_ports);
                        if ports > 0 && mem_table.get(&(row, m)).copied().unwrap_or(0) >= ports {
                            ok = false;
                            break;
                        }
                    }
                }
                if ok {
                    slot[i] = cand;
                    placed[i] = true;
                    for dc in 0..dur[i] {
                        let row = (cand + dc) % ii;
                        *op_table.entry((row, dfg.nodes[i].op)).or_insert(0) += 1;
                        if let Some(m) = dfg.nodes[i].mem {
                            *mem_table.entry((row, m)).or_insert(0) += 1;
                        }
                    }
                    found = true;
                    break;
                }
            }
            if !found {
                continue 'try_ii;
            }
        }
        // Validate loop-carried constraints (distance >= 1 edges whose
        // producer was placed after the consumer's earliest computation).
        for e in &dfg.edges {
            let (p, s) = (e.from.0 as usize, e.to.0 as usize);
            let lhs = slot[s] as i64 + (e.distance as i64 * ii as i64);
            if lhs < slot[p] as i64 + dur[p] as i64 {
                continue 'try_ii;
            }
        }
        let iteration_length = (0..n).map(|i| slot[i] + dur[i]).max().unwrap_or(1);
        return ModuloSchedule {
            ii,
            slot,
            duration: dur,
            iteration_length,
            res_mii: rmii,
            rec_mii: cmii,
        };
    }
    // Fallback: fully serial (II = serial length) always works.
    let mut slot = vec![0u32; n];
    let mut t = 0;
    for v in dfg.topo_order() {
        slot[v.0 as usize] = t;
        t += dur[v.0 as usize];
    }
    ModuloSchedule {
        ii: serial,
        slot,
        duration: dur,
        iteration_length: serial,
        res_mii: rmii,
        rec_mii: cmii,
    }
}

/// Builds a loop-body DFG from an IR function's innermost loop: block-local
/// data edges plus distance-1 edges for loop-carried phi flows and memory
/// ordering across iterations.
fn constant_of(f: &chls_ir::Function, v: chls_ir::Value) -> Option<i64> {
    match &f.inst(v).kind {
        chls_ir::InstKind::Const(c) => Some(*c),
        _ => None,
    }
}

pub fn loop_dfg(
    f: &chls_ir::Function,
    header: chls_ir::BlockId,
    body_blocks: &[chls_ir::BlockId],
    precision: chls_opt::dep::AliasPrecision,
    model: &chls_rtl::cost::CostModel,
) -> (Dfg, Vec<chls_ir::Value>) {
    use chls_ir::InstKind;
    let mut dfg = Dfg::default();
    let mut node_of: HashMap<chls_ir::Value, NodeId> = HashMap::new();
    let mut values = Vec::new();
    let mut all_blocks = vec![header];
    all_blocks.extend_from_slice(body_blocks);
    for &b in &all_blocks {
        for &v in &f.block(b).insts {
            let Some((op, width)) = crate::dfg::inst_class(f, v) else {
                continue;
            };
            let delay = match op {
                OpClass::MemRead | OpClass::MemWrite => {
                    let len = match &f.inst(v).kind {
                        InstKind::Load { mem, .. } | InstKind::Store { mem, .. } => {
                            f.mem(*mem).len
                        }
                        _ => 64,
                    };
                    model.ram_read_delay(len)
                }
                other => model.delay(other, width),
            };
            let mem = match &f.inst(v).kind {
                InstKind::Load { mem, .. } | InstKind::Store { mem, .. } => Some(mem.0),
                _ => None,
            };
            let chainable = !matches!(op, OpClass::MemRead | OpClass::MemWrite);
            let id = dfg.add_node(crate::dfg::DfgNode {
                op,
                width,
                delay_ns: delay,
                mem,
                chainable,
                tag: v.0,
            });
            node_of.insert(v, id);
            values.push(v);
        }
    }
    // Data edges: same-iteration for direct operands; loop-carried where a
    // value flows through a header phi back from the latch.
    for (&v, &id) in &node_of {
        f.inst(v).kind.for_each_operand(|o| {
            if let Some(&src) = node_of.get(&o) {
                dfg.add_edge(src, id);
            } else if let InstKind::Phi(args) = &f.inst(o).kind {
                // Consumer uses a phi: the latch value feeds the next
                // iteration — distance-1 edge from the producer.
                for (_, pv) in args {
                    if let Some(&src) = node_of.get(pv) {
                        dfg.add_carried_edge(src, id);
                    }
                }
            }
        });
    }
    // Memory ordering: same-iteration within blocks, plus distance-1
    // self-ordering between conflicting accesses anywhere in the body
    // (a store this iteration vs. access next iteration). The carried
    // direction is refined by induction-relative affine analysis: with a
    // header phi `i` stepping by `s`, address `i + ca` this iteration and
    // `i + cb` next iteration (= `i + s + cb` in this iteration's frame)
    // are independent unless `ca == s + cb`.
    let mut inductions: Vec<(chls_ir::Value, i64)> = Vec::new();
    for &pv in &f.block(header).insts {
        if let InstKind::Phi(args) = &f.inst(pv).kind {
            for (_, inc) in args {
                let stride = match &f.inst(*inc).kind {
                    InstKind::Bin(chls_ir::BinKind::Add, x, y) if *x == pv => {
                        constant_of(f, *y)
                    }
                    InstKind::Bin(chls_ir::BinKind::Add, x, y) if *y == pv => {
                        constant_of(f, *x)
                    }
                    InstKind::Bin(chls_ir::BinKind::Sub, x, y) if *x == pv => {
                        constant_of(f, *y).map(|c| -c)
                    }
                    _ => None,
                };
                if let Some(s) = stride {
                    inductions.push((pv, s));
                }
            }
        }
    }
    let carried_independent = |a: &chls_opt::dep::MemAccess, b: &chls_opt::dep::MemAccess| {
        precision != chls_opt::dep::AliasPrecision::None
            && inductions.iter().any(|&(ind, s)| {
                match (
                    chls_opt::dep::affine_offset(f, a.addr, ind),
                    chls_opt::dep::affine_offset(f, b.addr, ind),
                ) {
                    (Some(ca), Some(cb)) => ca != s + cb,
                    _ => false,
                }
            })
    };
    let accesses: Vec<chls_opt::dep::MemAccess> = values
        .iter()
        .filter_map(|&v| chls_opt::dep::mem_access(f, v))
        .collect();
    for (ai, a) in accesses.iter().enumerate() {
        for (bi, b) in accesses.iter().enumerate() {
            if chls_opt::dep::must_order(f, a, b, precision) {
                let (na, nb) = (node_of[&a.inst], node_of[&b.inst]);
                if ai < bi {
                    dfg.add_edge(na, nb);
                } else if !carried_independent(a, b) {
                    dfg.add_carried_edge(na, nb);
                }
            }
        }
    }
    (dfg, values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfg::DfgNode;

    fn node(op: OpClass, delay: f64) -> DfgNode {
        DfgNode {
            op,
            width: 32,
            delay_ns: delay,
            mem: None,
            chainable: true,
            tag: 0,
        }
    }

    /// A regular loop body: independent multiply-accumulate per iteration,
    /// accumulator recurrence of latency 1.
    fn regular_body() -> Dfg {
        let mut d = Dfg::default();
        let mul = d.add_node(node(OpClass::Mul, 0.8));
        let acc = d.add_node(node(OpClass::AddSub, 0.3));
        d.add_edge(mul, acc);
        // Accumulator feeds itself next iteration.
        d.add_carried_edge(acc, acc);
        d
    }

    /// An irregular body: a long recurrence (div feeds itself).
    fn irregular_body() -> Dfg {
        let mut d = Dfg::default();
        let div = d.add_node(node(OpClass::DivRem, 3.2));
        let add = d.add_node(node(OpClass::AddSub, 0.3));
        d.add_edge(div, add);
        d.add_carried_edge(add, div);
        d
    }

    #[test]
    fn regular_loop_reaches_ii_1() {
        let d = regular_body();
        let s = modulo_schedule(&d, 1.0, &Resources::unlimited());
        assert_eq!(s.ii, 1, "{s:?}");
        assert_eq!(s.rec_mii, 1);
    }

    #[test]
    fn recurrence_bounds_ii() {
        let d = irregular_body();
        let s = modulo_schedule(&d, 1.0, &Resources::unlimited());
        // div takes 4 cycles + add takes 1 around the cycle: RecMII = 5.
        assert_eq!(s.rec_mii, 5, "{s:?}");
        assert!(s.ii >= 5);
    }

    #[test]
    fn resource_bound_applies() {
        // Two multiplies per iteration, one multiplier: ResMII = 2.
        let mut d = Dfg::default();
        d.add_node(node(OpClass::Mul, 0.8));
        d.add_node(node(OpClass::Mul, 0.8));
        let mut res = Resources::unlimited();
        res.units.insert(OpClass::Mul, 1);
        let s = modulo_schedule(&d, 1.0, &res);
        assert_eq!(s.res_mii, 2);
        assert_eq!(s.ii, 2);
    }

    #[test]
    fn memory_port_bound_applies() {
        // Three loads from one single-ported memory: ResMII = 3.
        let mut d = Dfg::default();
        for _ in 0..3 {
            d.add_node(DfgNode {
                op: OpClass::MemRead,
                width: 32,
                delay_ns: 0.4,
                mem: Some(0),
                chainable: false,
                tag: 0,
            });
        }
        let res = Resources {
            default_mem_ports: 1,
            ..Default::default()
        };
        let s = modulo_schedule(&d, 1.0, &res);
        assert_eq!(s.ii, 3);
    }

    #[test]
    fn total_cycles_amortizes_ii() {
        let d = regular_body();
        let s = modulo_schedule(&d, 1.0, &Resources::unlimited());
        let t100 = s.total_cycles(100);
        // ~II per iteration once the pipeline fills.
        assert!(t100 <= s.iteration_length as u64 + 99 * s.ii as u64);
        assert!(t100 >= 100 * s.ii as u64);
        assert_eq!(s.total_cycles(0), 0);
    }

    #[test]
    fn modulo_respects_same_iteration_edges() {
        let d = regular_body();
        let s = modulo_schedule(&d, 1.0, &Resources::unlimited());
        // acc starts after mul finishes.
        assert!(s.slot[1] >= s.slot[0] + s.duration[0]);
    }

    #[test]
    fn affine_disambiguation_drops_false_carried_memory_edges() {
        // `a[i] = a[i] * 5`: the store never conflicts with the *next*
        // iteration's load (addresses differ by the stride), so with Basic
        // precision there must be no carried memory edge — and with None
        // there must be.
        let hir = chls_frontend::compile_to_hir(
            "void f(int a[32]) {
                for (int i = 0; i < 32; i++) a[i] = a[i] * 5;
            }",
        )
        .unwrap();
        let (id, _) = hir.func_by_name("f").unwrap();
        let f = chls_ir::lower_function(&hir, id).unwrap();
        let forest = chls_ir::loops::LoopForest::compute(&f);
        let l = &forest.loops[0];
        let body: Vec<_> = l
            .blocks
            .iter()
            .copied()
            .filter(|b| *b != l.header)
            .collect();
        let model = chls_rtl::cost::CostModel::new();
        let carried_mem_edges = |precision| {
            let (dfg, _) = loop_dfg(&f, l.header, &body, precision, &model);
            dfg.edges
                .iter()
                .filter(|e| {
                    e.distance == 1
                        && dfg.nodes[e.from.0 as usize].mem.is_some()
                        && dfg.nodes[e.to.0 as usize].mem.is_some()
                })
                .count()
        };
        assert_eq!(
            carried_mem_edges(chls_opt::dep::AliasPrecision::Basic),
            0,
            "affine analysis should prove independence"
        );
        assert!(
            carried_mem_edges(chls_opt::dep::AliasPrecision::None) > 0,
            "without analysis the pair must stay ordered"
        );
    }

    #[test]
    fn genuine_neighbour_dependence_keeps_carried_edge() {
        // `a[i + 1] = a[i] + 1` reads what the previous iteration wrote:
        // offset math (0 == stride + (-1) ... here read i, write i+1 with
        // stride 1: ca(store)=1, cb(load)=0, 1 == 1 + 0) proves a real
        // conflict that must stay.
        let hir = chls_frontend::compile_to_hir(
            "void f(int a[32]) {
                for (int i = 0; i < 31; i++) a[i + 1] = a[i] + 1;
            }",
        )
        .unwrap();
        let (id, _) = hir.func_by_name("f").unwrap();
        let f = chls_ir::lower_function(&hir, id).unwrap();
        let forest = chls_ir::loops::LoopForest::compute(&f);
        let l = &forest.loops[0];
        let body: Vec<_> = l
            .blocks
            .iter()
            .copied()
            .filter(|b| *b != l.header)
            .collect();
        let model = chls_rtl::cost::CostModel::new();
        let (dfg, _) = loop_dfg(
            &f,
            l.header,
            &body,
            chls_opt::dep::AliasPrecision::Basic,
            &model,
        );
        let carried_mem = dfg
            .edges
            .iter()
            .filter(|e| {
                e.distance == 1
                    && dfg.nodes[e.from.0 as usize].mem.is_some()
                    && dfg.nodes[e.to.0 as usize].mem.is_some()
            })
            .count();
        assert!(carried_mem > 0, "real dependence was dropped");
    }

    #[test]
    fn loop_dfg_finds_carried_edges() {
        let hir = chls_frontend::compile_to_hir(
            "int f(int a[64], int n) {
                int s = 0;
                for (int i = 0; i < n; i++) s += a[i] * 3;
                return s;
            }",
        )
        .unwrap();
        let (id, _) = hir.func_by_name("f").unwrap();
        let f = chls_ir::lower_function(&hir, id).unwrap();
        let forest = chls_ir::loops::LoopForest::compute(&f);
        assert_eq!(forest.loops.len(), 1);
        let l = &forest.loops[0];
        let body: Vec<_> = l
            .blocks
            .iter()
            .copied()
            .filter(|b| *b != l.header)
            .collect();
        let model = chls_rtl::cost::CostModel::new();
        let (dfg, _) = loop_dfg(
            &f,
            l.header,
            &body,
            chls_opt::dep::AliasPrecision::Basic,
            &model,
        );
        assert!(dfg.edges.iter().any(|e| e.distance == 1), "{dfg:?}");
        let s = modulo_schedule(&dfg, 2.0, &Resources::typical());
        // MAC loop with one memory port: II small (1-2).
        assert!(s.ii <= 2, "{s:?}");
    }
}
