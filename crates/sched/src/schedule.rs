//! Core scheduling algorithms: ASAP/ALAP with operator chaining, and
//! resource-constrained list scheduling.
//!
//! A schedule assigns each DFG node a start cycle. Chaining packs
//! dependent operations into one cycle while their combinational delays
//! fit the clock period; multi-cycle operations (a 32-bit divider at a
//! short period) occupy several consecutive cycles.

use crate::dfg::{Dfg, NodeId};
use chls_rtl::cost::OpClass;
use std::collections::HashMap;

/// A computed schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    /// Start cycle of every node.
    pub cycle: Vec<u32>,
    /// Arrival time (ns) within its start cycle, after chained predecessors.
    pub arrival_ns: Vec<f64>,
    /// Cycles the node occupies (≥ 1; >1 for multi-cycle operations).
    pub duration: Vec<u32>,
    /// Total schedule length in cycles.
    pub length: u32,
}

impl Schedule {
    /// Number of nodes starting in each cycle, per op class (for
    /// resource-usage reports).
    pub fn usage_per_cycle(&self, dfg: &Dfg) -> Vec<HashMap<OpClass, usize>> {
        let mut out = vec![HashMap::new(); self.length as usize];
        for (i, &c) in self.cycle.iter().enumerate() {
            if (c as usize) < out.len() {
                *out[c as usize].entry(dfg.nodes[i].op).or_insert(0) += 1;
            }
        }
        out
    }

    /// Maximum simultaneous uses of each op class across cycles — the
    /// functional units an unshared implementation needs.
    pub fn fu_requirements(&self, dfg: &Dfg) -> HashMap<OpClass, usize> {
        let mut worst: HashMap<OpClass, usize> = HashMap::new();
        for cycle_usage in self.usage_per_cycle(dfg) {
            for (k, v) in cycle_usage {
                let e = worst.entry(k).or_insert(0);
                *e = (*e).max(v);
            }
        }
        worst
    }
}

/// How many cycles a node of the given delay needs at `period_ns`, and
/// whether it is chainable (single-cycle ops only).
fn cycles_needed(delay_ns: f64, period_ns: f64) -> u32 {
    if delay_ns <= period_ns {
        1
    } else {
        (delay_ns / period_ns).ceil() as u32
    }
}

/// As-soon-as-possible schedule with chaining under `period_ns`.
///
/// Memory ports are not constrained here; use [`list_schedule`] for that.
pub fn asap(dfg: &Dfg, period_ns: f64) -> Schedule {
    let n = dfg.nodes.len();
    let preds = dfg.preds();
    let order = dfg.topo_order();
    let mut cycle = vec![0u32; n];
    let mut arrival = vec![0f64; n];
    let mut duration = vec![1u32; n];
    for &v in &order {
        let i = v.0 as usize;
        let my_delay = dfg.nodes[i].delay_ns;
        let my_cycles = cycles_needed(my_delay, period_ns);
        duration[i] = my_cycles;
        // Earliest start considering each predecessor.
        let mut best_cycle = 0u32;
        let mut best_arrival = 0f64;
        for &p in &preds[i] {
            let pi = p.0 as usize;
            let p_end_cycle = cycle[pi] + duration[pi] - 1;
            if duration[pi] > 1 || my_cycles > 1 || !dfg.nodes[pi].chainable {
                // Multi-cycle ops register their results: no chaining.
                let c = p_end_cycle + 1;
                if c > best_cycle {
                    best_cycle = c;
                    best_arrival = 0.0;
                } else if c == best_cycle {
                    best_arrival = best_arrival.max(0.0);
                }
            } else {
                // Try to chain in the predecessor's cycle.
                let chained_arrival = arrival[pi] + dfg.nodes[pi].delay_ns;
                if chained_arrival + my_delay <= period_ns {
                    if p_end_cycle > best_cycle {
                        best_cycle = p_end_cycle;
                        best_arrival = chained_arrival;
                    } else if p_end_cycle == best_cycle {
                        best_arrival = best_arrival.max(chained_arrival);
                    }
                } else {
                    let c = p_end_cycle + 1;
                    if c > best_cycle {
                        best_cycle = c;
                        best_arrival = 0.0;
                    }
                }
            }
        }
        cycle[i] = best_cycle;
        arrival[i] = best_arrival;
    }
    let length = (0..n)
        .map(|i| cycle[i] + duration[i])
        .max()
        .unwrap_or(0)
        .max(if n == 0 { 0 } else { 1 });
    Schedule {
        cycle,
        arrival_ns: arrival,
        duration,
        length,
    }
}

/// As-late-as-possible schedule within `deadline` cycles (no chaining
/// refinement — ALAP is used for mobility, where cycle granularity is
/// what matters).
pub fn alap(dfg: &Dfg, period_ns: f64, deadline: u32) -> Schedule {
    let n = dfg.nodes.len();
    let succs = dfg.succs();
    let order = dfg.topo_order();
    let mut cycle = vec![0u32; n];
    let mut duration = vec![1u32; n];
    for &v in order.iter().rev() {
        let i = v.0 as usize;
        duration[i] = cycles_needed(dfg.nodes[i].delay_ns, period_ns);
        let latest_end = succs[i]
            .iter()
            .map(|s| cycle[s.0 as usize])
            .min()
            .unwrap_or(deadline);
        cycle[i] = latest_end.saturating_sub(duration[i]);
    }
    Schedule {
        cycle,
        arrival_ns: vec![0.0; n],
        duration,
        length: deadline,
    }
}

/// Resource constraints for list scheduling.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Resources {
    /// Available units per op class; absent classes are unlimited.
    pub units: HashMap<OpClass, usize>,
    /// Ports per memory id; absent memories get `default_mem_ports`.
    pub mem_ports: HashMap<u32, usize>,
    /// Port count for memories not listed in `mem_ports` (0 = unlimited).
    pub default_mem_ports: usize,
}

impl Resources {
    /// Unlimited resources.
    pub fn unlimited() -> Self {
        Resources::default()
    }

    /// A typical constrained datapath: limited multipliers/dividers and
    /// single-ported memories.
    pub fn typical() -> Self {
        let mut units = HashMap::new();
        units.insert(OpClass::Mul, 1);
        units.insert(OpClass::DivRem, 1);
        Resources {
            units,
            mem_ports: HashMap::new(),
            default_mem_ports: 1,
        }
    }

    fn op_limit(&self, op: OpClass) -> Option<usize> {
        self.units.get(&op).copied()
    }

    fn mem_limit(&self, mem: u32) -> Option<usize> {
        match self.mem_ports.get(&mem) {
            Some(&p) => Some(p),
            None if self.default_mem_ports > 0 => Some(self.default_mem_ports),
            None => None,
        }
    }
}

/// Resource-constrained list scheduling with chaining, priority =
/// least ALAP slack (critical path first).
pub fn list_schedule(dfg: &Dfg, period_ns: f64, res: &Resources) -> Schedule {
    let _span = chls_trace::span("sched.list");
    let s = list_schedule_inner(dfg, period_ns, res);
    chls_trace::add("sched.cycles", u64::from(s.length));
    chls_trace::gauge("sched.length", u64::from(s.length));
    s
}

fn list_schedule_inner(dfg: &Dfg, period_ns: f64, res: &Resources) -> Schedule {
    let n = dfg.nodes.len();
    if n == 0 {
        return Schedule {
            cycle: Vec::new(),
            arrival_ns: Vec::new(),
            duration: Vec::new(),
            length: 0,
        };
    }
    let preds = dfg.preds();
    let asap_sched = asap(dfg, period_ns);
    let alap_sched = alap(dfg, period_ns, asap_sched.length.max(1));
    let duration: Vec<u32> = dfg
        .nodes
        .iter()
        .map(|nd| cycles_needed(nd.delay_ns, period_ns))
        .collect();

    let mut cycle = vec![u32::MAX; n];
    let mut arrival = vec![0f64; n];
    let mut unscheduled: Vec<NodeId> = dfg.topo_order();
    // usage[(cycle)][resource]: occupancy. Multi-cycle units stay busy for
    // their whole duration.
    let mut op_usage: HashMap<(u32, OpClass), usize> = HashMap::new();
    let mut mem_usage: HashMap<(u32, u32), usize> = HashMap::new();

    // Priority: smaller ALAP first (less slack).
    unscheduled.sort_by_key(|v| alap_sched.cycle[v.0 as usize]);

    let mut done = vec![false; n];
    let mut remaining = n;
    let mut guard = 0u64;
    while remaining > 0 {
        guard += 1;
        assert!(guard < 1_000_000, "list scheduler failed to converge");
        let mut progressed = false;
        for &v in &unscheduled {
            let i = v.0 as usize;
            if done[i] {
                continue;
            }
            if preds[i].iter().any(|p| !done[p.0 as usize]) {
                continue;
            }
            // Earliest data-ready slot (with chaining).
            let mut ready_cycle = 0u32;
            let mut ready_arrival = 0f64;
            for &p in &preds[i] {
                let pi = p.0 as usize;
                let p_end = cycle[pi] + duration[pi] - 1;
                if duration[pi] > 1 || duration[i] > 1 || !dfg.nodes[pi].chainable {
                    let c = p_end + 1;
                    if c > ready_cycle {
                        ready_cycle = c;
                        ready_arrival = 0.0;
                    }
                } else {
                    let chained = arrival[pi] + dfg.nodes[pi].delay_ns;
                    if chained + dfg.nodes[i].delay_ns <= period_ns {
                        if p_end > ready_cycle {
                            ready_cycle = p_end;
                            ready_arrival = chained;
                        } else if p_end == ready_cycle {
                            ready_arrival = ready_arrival.max(chained);
                        }
                    } else if p_end + 1 > ready_cycle {
                        ready_cycle = p_end + 1;
                        ready_arrival = 0.0;
                    }
                }
            }
            // Find the first cycle with resources available for the whole
            // duration.
            let mut c = ready_cycle;
            loop {
                let mut ok = true;
                for dc in 0..duration[i] {
                    if let Some(limit) = res.op_limit(dfg.nodes[i].op) {
                        if op_usage
                            .get(&(c + dc, dfg.nodes[i].op))
                            .copied()
                            .unwrap_or(0)
                            >= limit
                        {
                            ok = false;
                            break;
                        }
                    }
                    if let Some(mem) = dfg.nodes[i].mem {
                        if let Some(ports) = res.mem_limit(mem) {
                            if mem_usage.get(&(c + dc, mem)).copied().unwrap_or(0) >= ports {
                                ok = false;
                                break;
                            }
                        }
                    }
                }
                if ok {
                    break;
                }
                c += 1;
                ready_arrival = 0.0;
            }
            // Commit.
            cycle[i] = c;
            arrival[i] = if c == ready_cycle { ready_arrival } else { 0.0 };
            for dc in 0..duration[i] {
                *op_usage.entry((c + dc, dfg.nodes[i].op)).or_insert(0) += 1;
                if let Some(mem) = dfg.nodes[i].mem {
                    *mem_usage.entry((c + dc, mem)).or_insert(0) += 1;
                }
            }
            done[i] = true;
            remaining -= 1;
            progressed = true;
        }
        assert!(progressed, "list scheduler deadlocked");
    }
    let length = (0..n).map(|i| cycle[i] + duration[i]).max().unwrap_or(1);
    Schedule {
        cycle,
        arrival_ns: arrival,
        duration,
        length,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfg::{DfgNode, NodeId};
    use chls_rtl::cost::CostModel;

    fn node(op: OpClass, delay: f64) -> DfgNode {
        DfgNode {
            op,
            width: 32,
            delay_ns: delay,
            mem: None,
            chainable: true,
            tag: 0,
        }
    }

    /// Chain a -> b -> c of adds plus an independent d.
    fn chain_dfg() -> Dfg {
        let mut d = Dfg::default();
        let a = d.add_node(node(OpClass::AddSub, 0.3));
        let b = d.add_node(node(OpClass::AddSub, 0.3));
        let c = d.add_node(node(OpClass::AddSub, 0.3));
        let _ind = d.add_node(node(OpClass::AddSub, 0.3));
        d.add_edge(a, b);
        d.add_edge(b, c);
        d
    }

    #[test]
    fn asap_chains_within_period() {
        let d = chain_dfg();
        // Period fits all three chained adds (0.9 <= 1.0).
        let s = asap(&d, 1.0);
        assert_eq!(s.length, 1, "{s:?}");
        // Period fits only one add per cycle.
        let s = asap(&d, 0.35);
        assert_eq!(s.length, 3, "{s:?}");
        // Period fits two chained adds.
        let s = asap(&d, 0.65);
        assert_eq!(s.length, 2, "{s:?}");
    }

    #[test]
    fn multicycle_divider() {
        let mut d = Dfg::default();
        let div = d.add_node(node(OpClass::DivRem, 3.2));
        let add = d.add_node(node(OpClass::AddSub, 0.3));
        d.add_edge(div, add);
        let s = asap(&d, 1.0);
        // Divider needs 4 cycles, add starts after.
        assert_eq!(s.duration[div.0 as usize], 4);
        assert_eq!(s.cycle[add.0 as usize], 4);
        assert_eq!(s.length, 5);
    }

    #[test]
    fn alap_pushes_late() {
        let d = chain_dfg();
        let s = alap(&d, 0.35, 3);
        // Independent node sits in the last cycle under ALAP.
        assert_eq!(s.cycle[3], 2);
        // The chain is forced: 0, 1, 2.
        assert_eq!((s.cycle[0], s.cycle[1], s.cycle[2]), (0, 1, 2));
    }

    #[test]
    fn list_schedule_respects_unit_limits() {
        // Four independent multiplies, one multiplier.
        let mut d = Dfg::default();
        for _ in 0..4 {
            d.add_node(node(OpClass::Mul, 0.8));
        }
        let mut res = Resources::unlimited();
        res.units.insert(OpClass::Mul, 1);
        let s = list_schedule(&d, 1.0, &res);
        assert_eq!(s.length, 4);
        // With two multipliers: two cycles.
        res.units.insert(OpClass::Mul, 2);
        let s = list_schedule(&d, 1.0, &res);
        assert_eq!(s.length, 2);
        // Unlimited: one cycle.
        let s = list_schedule(&d, 1.0, &Resources::unlimited());
        assert_eq!(s.length, 1);
    }

    #[test]
    fn list_schedule_respects_memory_ports() {
        // Two independent loads from the same memory, one port.
        let mut d = Dfg::default();
        let mk = |d: &mut Dfg| {
            d.add_node(DfgNode {
                op: OpClass::MemRead,
                width: 32,
                delay_ns: 0.4,
                mem: Some(0),
                chainable: false,
                tag: 0,
            })
        };
        mk(&mut d);
        mk(&mut d);
        let res = Resources {
            default_mem_ports: 1,
            ..Default::default()
        };
        let s = list_schedule(&d, 1.0, &res);
        assert_eq!(s.length, 2);
        let res2 = Resources {
            default_mem_ports: 2,
            ..Default::default()
        };
        let s = list_schedule(&d, 1.0, &res2);
        assert_eq!(s.length, 1);
    }

    #[test]
    fn list_matches_asap_when_unlimited() {
        let hir = chls_frontend::compile_to_hir(
            "int f(int a, int b, int c, int d) { return (a + b) * (c + d); }",
        )
        .unwrap();
        let (id, _) = hir.func_by_name("f").unwrap();
        let f = chls_ir::lower_function(&hir, id).unwrap();
        let model = CostModel::new();
        let (dfg, _) = crate::dfg::dfg_from_block(
            &f,
            f.entry,
            chls_opt::dep::AliasPrecision::Basic,
            &model,
        );
        let a = asap(&dfg, 2.0);
        let l = list_schedule(&dfg, 2.0, &Resources::unlimited());
        assert_eq!(a.length, l.length);
    }

    #[test]
    fn fu_requirements_from_schedule() {
        let mut d = Dfg::default();
        for _ in 0..3 {
            d.add_node(node(OpClass::Mul, 0.8));
        }
        let s = list_schedule(&d, 1.0, &Resources::unlimited());
        assert_eq!(s.fu_requirements(&d).get(&OpClass::Mul), Some(&3));
        let mut res = Resources::unlimited();
        res.units.insert(OpClass::Mul, 1);
        let s = list_schedule(&d, 1.0, &res);
        assert_eq!(s.fu_requirements(&d).get(&OpClass::Mul), Some(&1));
    }

    #[test]
    fn empty_dfg() {
        let d = Dfg::default();
        let s = list_schedule(&d, 1.0, &Resources::unlimited());
        assert_eq!(s.length, 0);
        let _ = NodeId(0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::dfg::{Dfg, DfgNode, NodeId};
    use chls_rtl::cost::OpClass;
    use proptest::prelude::*;

    /// Random DAG: `n` nodes, each with edges from a random subset of
    /// earlier nodes.
    fn arb_dfg() -> impl Strategy<Value = Dfg> {
        (2usize..24, any::<u64>()).prop_map(|(n, seed)| {
            let mut d = Dfg::default();
            let mut state = seed | 1;
            let mut next = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            for i in 0..n {
                let class = match next() % 4 {
                    0 => OpClass::Mul,
                    1 => OpClass::AddSub,
                    2 => OpClass::Logic,
                    _ => OpClass::MemRead,
                };
                let delay = match class {
                    OpClass::Mul => 0.9,
                    OpClass::AddSub => 0.35,
                    OpClass::Logic => 0.05,
                    _ => 0.5,
                };
                d.add_node(DfgNode {
                    op: class,
                    width: 32,
                    delay_ns: delay,
                    mem: if class == OpClass::MemRead { Some((next() % 2) as u32) } else { None },
                    chainable: class != OpClass::MemRead,
                    tag: i as u32,
                });
                // Edges from up to two earlier nodes.
                for _ in 0..(next() % 3) {
                    if i > 0 {
                        let src = (next() as usize) % i;
                        d.add_edge(NodeId(src as u32), NodeId(i as u32));
                    }
                }
            }
            d
        })
    }

    proptest! {
        /// Every schedule respects dependences and resource limits.
        #[test]
        fn list_schedule_invariants(dfg in arb_dfg()) {
            let mut res = Resources::typical();
            res.units.insert(OpClass::Mul, 1);
            let s = list_schedule(&dfg, 1.0, &res);
            // Dependences: consumer starts no earlier than producer ends
            // (same cycle only when chained, i.e. arrival bookkeeping).
            for e in &dfg.edges {
                let (p, c) = (e.from.0 as usize, e.to.0 as usize);
                let p_end = s.cycle[p] + s.duration[p] - 1;
                prop_assert!(
                    s.cycle[c] >= p_end
                        || (s.cycle[c] == s.cycle[p] && dfg.nodes[p].chainable),
                    "edge {e:?} violated: producer {} (+{}), consumer {}",
                    s.cycle[p], s.duration[p], s.cycle[c]
                );
            }
            // Resources: never more than one multiplier per cycle, never
            // more than one port per memory per cycle.
            let usage = s.usage_per_cycle(&dfg);
            for cycle in usage {
                prop_assert!(cycle.get(&OpClass::Mul).copied().unwrap_or(0) <= 1);
            }
            let mut mem_use: std::collections::HashMap<(u32, u32), usize> =
                std::collections::HashMap::new();
            for (i, node) in dfg.nodes.iter().enumerate() {
                if let Some(m) = node.mem {
                    for dc in 0..s.duration[i] {
                        *mem_use.entry((s.cycle[i] + dc, m)).or_insert(0) += 1;
                    }
                }
            }
            for ((_, _), n) in mem_use {
                prop_assert!(n <= 1, "memory port oversubscribed");
            }
        }

        /// ASAP is a lower bound for list scheduling length.
        #[test]
        fn asap_is_lower_bound(dfg in arb_dfg()) {
            let a = asap(&dfg, 1.0);
            let l = list_schedule(&dfg, 1.0, &Resources::typical());
            prop_assert!(l.length >= a.length);
        }
    }
}
