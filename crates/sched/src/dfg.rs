//! Data-flow graphs for scheduling.
//!
//! A [`Dfg`] is the scheduler's view of one straight-line region: nodes
//! are operations with a cost class, width, and combinational delay; edges
//! are data dependences plus memory-ordering constraints. Both the IR
//! backends (per basic block) and the HIR-structured backends (per
//! statement run) build these.

use chls_ir::ir::{BlockId, Function, InstKind, UnKind, Value};
use chls_opt::dep::{block_mem_deps, AliasPrecision};
use chls_rtl::cost::{CostModel, OpClass};
use chls_rtl::netlist::bin_class;

/// Index of a DFG node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// One schedulable operation.
#[derive(Debug, Clone, PartialEq)]
pub struct DfgNode {
    /// Cost class.
    pub op: OpClass,
    /// Operand width for costing.
    pub width: u16,
    /// Combinational delay (ns) for chaining decisions.
    pub delay_ns: f64,
    /// Which memory this node's port belongs to, for port constraints.
    pub mem: Option<u32>,
    /// False for operations whose result is registered at cycle end and
    /// therefore cannot chain into same-cycle consumers (memory reads).
    pub chainable: bool,
    /// Back-reference to the producing IR value (or a caller-chosen tag).
    pub tag: u32,
}

/// A dependence edge `from -> to` with an iteration distance
/// (0 = same iteration; 1 = loop-carried, used by modulo scheduling).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DfgEdge {
    /// Producer.
    pub from: NodeId,
    /// Consumer.
    pub to: NodeId,
    /// Iteration distance.
    pub distance: u32,
}

/// A dependence graph over one region.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Dfg {
    /// Nodes.
    pub nodes: Vec<DfgNode>,
    /// Edges.
    pub edges: Vec<DfgEdge>,
}

impl Dfg {
    /// Adds a node.
    pub fn add_node(&mut self, node: DfgNode) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(node);
        id
    }

    /// Adds a same-iteration dependence.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId) {
        self.edges.push(DfgEdge {
            from,
            to,
            distance: 0,
        });
    }

    /// Adds a loop-carried dependence.
    pub fn add_carried_edge(&mut self, from: NodeId, to: NodeId) {
        self.edges.push(DfgEdge {
            from,
            to,
            distance: 1,
        });
    }

    /// Same-iteration predecessors of each node.
    pub fn preds(&self) -> Vec<Vec<NodeId>> {
        let mut p = vec![Vec::new(); self.nodes.len()];
        for e in &self.edges {
            if e.distance == 0 {
                p[e.to.0 as usize].push(e.from);
            }
        }
        p
    }

    /// Same-iteration successors of each node.
    pub fn succs(&self) -> Vec<Vec<NodeId>> {
        let mut s = vec![Vec::new(); self.nodes.len()];
        for e in &self.edges {
            if e.distance == 0 {
                s[e.from.0 as usize].push(e.to);
            }
        }
        s
    }

    /// Nodes in a topological order of the distance-0 subgraph.
    ///
    /// # Panics
    ///
    /// Panics if the distance-0 edges contain a cycle (malformed DFG).
    pub fn topo_order(&self) -> Vec<NodeId> {
        let n = self.nodes.len();
        let mut indeg = vec![0usize; n];
        for e in &self.edges {
            if e.distance == 0 {
                indeg[e.to.0 as usize] += 1;
            }
        }
        let succs = self.succs();
        let mut ready: Vec<NodeId> = (0..n)
            .filter(|&i| indeg[i] == 0)
            .map(|i| NodeId(i as u32))
            .collect();
        let mut order = Vec::with_capacity(n);
        while let Some(v) = ready.pop() {
            order.push(v);
            for &s in &succs[v.0 as usize] {
                indeg[s.0 as usize] -= 1;
                if indeg[s.0 as usize] == 0 {
                    ready.push(s);
                }
            }
        }
        assert_eq!(order.len(), n, "cycle in distance-0 DFG edges");
        order
    }
}

/// The cost class of one IR instruction, or `None` for free/ambient ones
/// (constants, params, phis).
pub fn inst_class(f: &Function, v: Value) -> Option<(OpClass, u16)> {
    let inst = f.inst(v);
    Some(match &inst.kind {
        InstKind::Bin(op, a, _) => {
            let w = if op.is_comparison() {
                f.inst(*a).ty.width
            } else {
                inst.ty.width
            };
            (bin_class(*op), w)
        }
        InstKind::Un(UnKind::Neg, _) => (OpClass::AddSub, inst.ty.width),
        InstKind::Un(UnKind::Not, _) => (OpClass::Logic, inst.ty.width),
        InstKind::Select { .. } => (OpClass::Mux, inst.ty.width),
        InstKind::Cast { .. } => (OpClass::Cast, inst.ty.width),
        InstKind::Load { .. } => (OpClass::MemRead, inst.ty.width),
        InstKind::Store { .. } => (OpClass::MemWrite, inst.ty.width),
        InstKind::Const(_) | InstKind::Param(_) | InstKind::Phi(_) => return None,
    })
}

/// Builds the DFG of one basic block: data edges between block-local
/// instructions plus memory-ordering edges at the given alias precision.
/// Returns the graph and the mapping from node to IR value.
pub fn dfg_from_block(
    f: &Function,
    block: BlockId,
    precision: AliasPrecision,
    model: &CostModel,
) -> (Dfg, Vec<Value>) {
    let mut dfg = Dfg::default();
    let mut node_of: std::collections::HashMap<Value, NodeId> = std::collections::HashMap::new();
    let mut values = Vec::new();
    for &v in &f.block(block).insts {
        let Some((op, width)) = inst_class(f, v) else {
            continue;
        };
        let delay = match op {
            OpClass::MemRead | OpClass::MemWrite => {
                let len = match &f.inst(v).kind {
                    InstKind::Load { mem, .. } | InstKind::Store { mem, .. } => f.mem(*mem).len,
                    _ => 64,
                };
                model.ram_read_delay(len)
            }
            other => model.delay(other, width),
        };
        let mem = match &f.inst(v).kind {
            InstKind::Load { mem, .. } | InstKind::Store { mem, .. } => Some(mem.0),
            _ => None,
        };
        let chainable = !matches!(op, OpClass::MemRead | OpClass::MemWrite);
        let id = dfg.add_node(DfgNode {
            op,
            width,
            delay_ns: delay,
            mem,
            chainable,
            tag: v.0,
        });
        node_of.insert(v, id);
        values.push(v);
    }
    // Data edges between in-block nodes. Operands produced by free
    // instructions (constants/params/phis) or in other blocks are ambient.
    // Iterate `values` (block order), not the map: edge insertion order
    // shapes adjacency lists and thus scheduler tie-breaking, so it must
    // be deterministic.
    for &v in &values {
        let id = node_of[&v];
        f.inst(v).kind.for_each_operand(|o| {
            if let Some(&src) = node_of.get(&o) {
                dfg.add_edge(src, id);
            }
        });
    }
    // Memory ordering.
    for (a, b) in block_mem_deps(f, block, precision) {
        if let (Some(&na), Some(&nb)) = (node_of.get(&a), node_of.get(&b)) {
            dfg.add_edge(na, nb);
        }
    }
    (dfg, values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chls_frontend::compile_to_hir;
    use chls_ir::lower_function;

    fn block_dfg(src: &str, precision: AliasPrecision) -> Dfg {
        let hir = compile_to_hir(src).expect("frontend ok");
        let (id, _) = hir.func_by_name("f").expect("exists");
        let f = lower_function(&hir, id).expect("lowers");
        let model = CostModel::new();
        let (dfg, _) = dfg_from_block(&f, f.entry, precision, &model);
        dfg
    }

    #[test]
    fn expression_tree_shape() {
        let dfg = block_dfg(
            "int f(int a, int b) { return (a + b) * (a - b); }",
            AliasPrecision::Basic,
        );
        // add, sub, mul.
        assert_eq!(dfg.nodes.len(), 3);
        // mul depends on both.
        assert_eq!(dfg.edges.len(), 2);
        let topo = dfg.topo_order();
        assert_eq!(topo.len(), 3);
        // mul must come last.
        let mul_idx = dfg
            .nodes
            .iter()
            .position(|n| n.op == OpClass::Mul)
            .unwrap();
        assert_eq!(topo.last().unwrap().0 as usize, mul_idx);
    }

    #[test]
    fn memory_edges_respect_precision() {
        let src = "void f(int a[4]) { a[0] = 1; a[1] = 2; }";
        let strict = block_dfg(src, AliasPrecision::None);
        let relaxed = block_dfg(src, AliasPrecision::Basic);
        let count_edges = |d: &Dfg| d.edges.len();
        assert!(count_edges(&strict) > count_edges(&relaxed));
    }

    #[test]
    fn free_instructions_excluded() {
        let dfg = block_dfg("int f(int a) { return a + 1; }", AliasPrecision::Basic);
        // Just the add; the constant and param are ambient.
        assert_eq!(dfg.nodes.len(), 1);
        assert!(dfg.edges.is_empty());
    }

    #[test]
    fn division_has_large_delay() {
        let dfg = block_dfg("int f(int a, int b) { return a / b + a; }", AliasPrecision::Basic);
        let div = dfg
            .nodes
            .iter()
            .find(|n| n.op == OpClass::DivRem)
            .unwrap();
        let add = dfg.nodes.iter().find(|n| n.op == OpClass::AddSub).unwrap();
        assert!(div.delay_ns > add.delay_ns * 5.0);
    }
}
