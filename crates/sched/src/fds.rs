//! Force-directed scheduling (Paulin & Knight), the classic
//! latency-constrained, resource-minimizing scheduler of behavioural
//! synthesis systems like HardwareC's Olympus/Hebe.
//!
//! Given a latency budget, each operation's *time frame* is
//! [ASAP, ALAP]; distribution graphs estimate expected resource usage per
//! cycle; operations are fixed one at a time to the cycle with the lowest
//! "force" (self force + predecessor/successor forces), flattening the
//! usage profile and thus minimizing peak functional units.
//!
//! This powers experiment E10: sweeping the latency budget produces the
//! latency-vs-area Pareto curve that makes "constraints allow easier
//! design-space exploration" concrete.

use crate::dfg::Dfg;
use crate::schedule::{alap, asap, Schedule};
use chls_rtl::cost::OpClass;
use std::collections::HashMap;

/// Force-directed schedule under a latency budget of `deadline` cycles.
/// Falls back to the budget implied by ASAP when the deadline is too
/// tight. Cycle granularity (no chaining) — standard for FDS.
pub fn force_directed(dfg: &Dfg, period_ns: f64, deadline: u32) -> Schedule {
    let _span = chls_trace::span("sched.fds");
    let s = force_directed_inner(dfg, period_ns, deadline);
    chls_trace::add("sched.cycles", u64::from(s.length));
    chls_trace::gauge("sched.length", u64::from(s.length));
    s
}

fn force_directed_inner(dfg: &Dfg, period_ns: f64, deadline: u32) -> Schedule {
    let n = dfg.nodes.len();
    if n == 0 {
        return Schedule {
            cycle: Vec::new(),
            arrival_ns: Vec::new(),
            duration: Vec::new(),
            length: 0,
        };
    }
    let asap_sched = asap(dfg, period_ns);
    let deadline = deadline.max(asap_sched.length);
    let alap_sched = alap(dfg, period_ns, deadline);
    let preds = dfg.preds();
    let succs = dfg.succs();

    // Mutable frames.
    let mut lo: Vec<u32> = asap_sched.cycle.clone();
    let mut hi: Vec<u32> = alap_sched.cycle.clone();
    for i in 0..n {
        if hi[i] < lo[i] {
            hi[i] = lo[i];
        }
    }
    let duration = asap_sched.duration.clone();
    let mut fixed = vec![false; n];

    // Iteratively fix the operation/cycle pair with minimal force.
    for _ in 0..n {
        // Distribution graphs per op class (sized to the widest frame —
        // multi-cycle tails can reach past the nominal deadline).
        let horizon = (0..n).map(|i| hi[i] + duration[i]).max().unwrap_or(1) as usize + 1;
        let mut dg: HashMap<OpClass, Vec<f64>> = HashMap::new();
        for i in 0..n {
            let frame = (hi[i] - lo[i] + 1) as f64;
            let p = 1.0 / frame;
            let entry = dg
                .entry(dfg.nodes[i].op)
                .or_insert_with(|| vec![0.0; horizon.max(deadline as usize + 1)]);
            for c in lo[i]..=hi[i] {
                entry[c as usize] += p;
            }
        }

        // Pick the unfixed op and target cycle with minimal self force.
        let mut best: Option<(usize, u32, f64)> = None;
        for i in 0..n {
            if fixed[i] {
                continue;
            }
            let class_dg = &dg[&dfg.nodes[i].op];
            let frame = (hi[i] - lo[i] + 1) as f64;
            let avg: f64 = (lo[i]..=hi[i])
                .map(|c| class_dg[c as usize])
                .sum::<f64>()
                / frame;
            for c in lo[i]..=hi[i] {
                // Self force: moving the whole probability mass to c.
                let force = class_dg[c as usize] - avg;
                match best {
                    None => best = Some((i, c, force)),
                    Some((_, _, bf)) if force < bf => best = Some((i, c, force)),
                    _ => {}
                }
            }
        }
        let Some((i, c, _)) = best else { break };
        lo[i] = c;
        hi[i] = c;
        fixed[i] = true;
        // Propagate frame tightening through dependences.
        let mut changed = true;
        while changed {
            changed = false;
            for e in &dfg.edges {
                if e.distance != 0 {
                    continue;
                }
                let (p, s) = (e.from.0 as usize, e.to.0 as usize);
                let min_s = lo[p] + duration[p];
                if lo[s] < min_s {
                    lo[s] = min_s;
                    changed = true;
                }
                let max_p = hi[s].saturating_sub(duration[p]);
                if hi[p] > max_p {
                    hi[p] = max_p.max(lo[p]);
                    changed = true;
                }
            }
            for i in 0..n {
                if hi[i] < lo[i] {
                    hi[i] = lo[i];
                    changed = false; // clamp, do not loop forever
                }
            }
        }
        let _ = &preds;
        let _ = &succs;
    }

    let cycle = lo;
    let length = (0..n)
        .map(|i| cycle[i] + duration[i])
        .max()
        .unwrap_or(1)
        .max(deadline);
    Schedule {
        cycle,
        arrival_ns: vec![0.0; n],
        duration,
        length,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfg::DfgNode;
    use crate::schedule::Resources;

    fn node(op: OpClass) -> DfgNode {
        DfgNode {
            op,
            width: 32,
            delay_ns: 0.8,
            mem: None,
            chainable: true,
            tag: 0,
        }
    }

    /// Two independent multiply chains of length 2.
    fn two_chains() -> Dfg {
        let mut d = Dfg::default();
        let a0 = d.add_node(node(OpClass::Mul));
        let a1 = d.add_node(node(OpClass::Mul));
        let b0 = d.add_node(node(OpClass::Mul));
        let b1 = d.add_node(node(OpClass::Mul));
        d.add_edge(a0, a1);
        d.add_edge(b0, b1);
        d
    }

    #[test]
    fn relaxed_deadline_reduces_peak_usage() {
        let d = two_chains();
        // Tight deadline (2 cycles): both chains overlap -> 2 multipliers.
        let tight = force_directed(&d, 1.0, 2);
        let peak_tight = tight
            .fu_requirements(&d)
            .get(&OpClass::Mul)
            .copied()
            .unwrap_or(0);
        assert_eq!(peak_tight, 2, "{tight:?}");
        // Relaxed deadline (4 cycles): FDS staggers the chains -> 1.
        let relaxed = force_directed(&d, 1.0, 4);
        let peak_relaxed = relaxed
            .fu_requirements(&d)
            .get(&OpClass::Mul)
            .copied()
            .unwrap_or(0);
        assert_eq!(peak_relaxed, 1, "{relaxed:?}");
    }

    #[test]
    fn dependences_always_respected() {
        let d = two_chains();
        for deadline in 2..8 {
            let s = force_directed(&d, 1.0, deadline);
            for e in &d.edges {
                assert!(
                    s.cycle[e.to.0 as usize]
                        >= s.cycle[e.from.0 as usize] + s.duration[e.from.0 as usize],
                    "deadline {deadline}: edge {e:?} violated in {s:?}"
                );
            }
        }
    }

    #[test]
    fn matches_list_when_budget_is_asap() {
        let d = two_chains();
        let fds = force_directed(&d, 1.0, 0);
        let ls = crate::schedule::list_schedule(&d, 1.0, &Resources::unlimited());
        assert_eq!(
            fds.cycle.iter().zip(&fds.duration).map(|(c, du)| c + du).max(),
            ls.cycle.iter().zip(&ls.duration).map(|(c, du)| c + du).max()
        );
    }

    #[test]
    fn pareto_sweep_is_monotone() {
        // Peak multiplier usage never increases as the deadline grows.
        let d = two_chains();
        let mut prev_peak = usize::MAX;
        for deadline in 2..=6 {
            let s = force_directed(&d, 1.0, deadline);
            let peak = s
                .fu_requirements(&d)
                .get(&OpClass::Mul)
                .copied()
                .unwrap_or(0);
            assert!(peak <= prev_peak, "deadline {deadline}: {peak} > {prev_peak}");
            prev_peak = peak;
        }
    }
}
