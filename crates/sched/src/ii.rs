//! Initiation-interval contract checking.
//!
//! A `@ii(N)` annotation on a channel declaration is a *timed-interface
//! contract* (in the Dahlia sense): the declaring module promises that the
//! channel is serviced — one rendezvous completes — at least once every N
//! cycles in steady state. The paper's central complaint is that C-like
//! languages leave such timing obligations implicit; the contract makes
//! them part of the interface, and `chls flow` checks them against the
//! initiation interval the scheduler/backend actually achieves.
//!
//! The achieved II is conservative: an *interval* `[min, max]` of cycles
//! per service, because trip counts and branch-dependent paths make the
//! exact figure input-dependent. The verdict logic is deliberately strict
//! in one direction only: a contract is **violated** when even the
//! best-case achieved interval exceeds the promise (the module cannot
//! possibly honor it), and merely **at risk** when only the worst case
//! does.

use std::fmt;

/// Outcome of checking one declared `@ii(n)` contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContractVerdict {
    /// The achieved interval is wholly within the promise: `max <= declared`.
    Met,
    /// The best case honors the promise but the worst case does not
    /// (`min <= declared < max`, or the worst case is unbounded).
    AtRisk,
    /// Even the best case breaks the promise: `min > declared`.
    /// The declaration over-promises and must be relaxed.
    Violated,
}

impl fmt::Display for ContractVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ContractVerdict::Met => "met",
            ContractVerdict::AtRisk => "at risk",
            ContractVerdict::Violated => "violated",
        })
    }
}

/// Checks a declared II contract against the achieved service interval
/// `[achieved_min, achieved_max]` (`None` max = unbounded / unknown).
pub fn check_contract(
    declared: u32,
    achieved_min: u64,
    achieved_max: Option<u64>,
) -> ContractVerdict {
    let declared = u64::from(declared);
    if achieved_min > declared {
        ContractVerdict::Violated
    } else if achieved_max.is_some_and(|mx| mx <= declared) {
        ContractVerdict::Met
    } else {
        ContractVerdict::AtRisk
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn met_when_worst_case_within_promise() {
        assert_eq!(check_contract(4, 2, Some(4)), ContractVerdict::Met);
        assert_eq!(check_contract(4, 4, Some(4)), ContractVerdict::Met);
    }

    #[test]
    fn at_risk_when_only_best_case_holds() {
        assert_eq!(check_contract(4, 3, Some(9)), ContractVerdict::AtRisk);
        assert_eq!(check_contract(4, 3, None), ContractVerdict::AtRisk);
    }

    #[test]
    fn violated_when_best_case_exceeds_promise() {
        assert_eq!(check_contract(4, 5, Some(9)), ContractVerdict::Violated);
        assert_eq!(check_contract(1, 2, None), ContractVerdict::Violated);
    }
}
