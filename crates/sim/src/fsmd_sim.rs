//! Cycle-accurate simulator for FSMD designs.
//!
//! Each simulated cycle evaluates the current state's datapath expressions
//! from the *current* register/memory contents, picks the next state, and
//! then commits all actions simultaneously — matching both the Verilog the
//! emitter produces and real registered hardware. The sampled return value
//! likewise reads pre-commit values, so backends route results through a
//! register that is stable before the `Done` state.

use crate::interp::ArgValue;
use chls_ir::{eval_bin, eval_un};
use chls_rtl::fsmd::{ActionKind, Fsmd, NextState, Rv, RvKind};
use std::fmt;

/// Simulation errors.
#[derive(Debug, Clone, PartialEq)]
pub enum FsmdSimError {
    /// Memory access out of range.
    OutOfBounds {
        /// Memory name.
        mem: String,
        /// Offending address.
        addr: i64,
        /// Word count.
        len: usize,
    },
    /// The cycle limit was exceeded.
    CycleLimit(u64),
    /// Missing or mistyped argument.
    BadArgument(usize),
}

impl fmt::Display for FsmdSimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsmdSimError::OutOfBounds { mem, addr, len } => {
                write!(f, "address {addr} out of range for memory `{mem}` (len {len})")
            }
            FsmdSimError::CycleLimit(n) => write!(f, "exceeded cycle limit of {n}"),
            FsmdSimError::BadArgument(i) => write!(f, "missing or mistyped argument {i}"),
        }
    }
}

impl std::error::Error for FsmdSimError {}

/// Result of simulating an FSMD to completion.
#[derive(Debug, Clone, PartialEq)]
pub struct FsmdSimResult {
    /// Sampled return value.
    pub ret: Option<i64>,
    /// Clock cycles from start to done (each visited state is one cycle).
    pub cycles: u64,
    /// Final contents of every memory.
    pub mems: Vec<Vec<i64>>,
}

/// Simulates `f` with arguments bound by parameter index.
///
/// # Errors
///
/// See [`FsmdSimError`].
pub fn simulate(
    f: &Fsmd,
    args: &[ArgValue],
    max_cycles: u64,
) -> Result<FsmdSimResult, FsmdSimError> {
    // Bind inputs.
    let mut inputs = vec![0i64; f.inputs.len()];
    for (i, (_, ty)) in f.inputs.iter().enumerate() {
        let p = f.input_params[i];
        match args.get(p) {
            Some(ArgValue::Scalar(v)) => inputs[i] = ty.canonicalize(*v),
            _ => return Err(FsmdSimError::BadArgument(p)),
        }
    }
    // Bind memories.
    let mut mems: Vec<Vec<i64>> = Vec::with_capacity(f.mems.len());
    for m in &f.mems {
        let contents = if let Some(rom) = &m.rom {
            let mut v = rom.clone();
            v.resize(m.len, 0);
            v
        } else if let Some(p) = m.param_index {
            match args.get(p) {
                Some(ArgValue::Array(a)) => {
                    let mut v = a.clone();
                    v.resize(m.len, 0);
                    v.iter_mut().for_each(|x| *x = m.elem.canonicalize(*x));
                    v
                }
                _ => return Err(FsmdSimError::BadArgument(p)),
            }
        } else {
            vec![0; m.len]
        };
        mems.push(contents);
    }
    let mut regs: Vec<i64> = f.regs.iter().map(|r| r.init).collect();

    let mut state = f.entry;
    let mut cycles: u64 = 0;
    loop {
        cycles += 1;
        if cycles > max_cycles {
            return Err(FsmdSimError::CycleLimit(max_cycles));
        }
        let st = f.state(state);

        // Evaluate everything against the current state.
        let mut reg_updates: Vec<(usize, i64)> = Vec::new();
        let mut mem_updates: Vec<(usize, i64, i64)> = Vec::new();
        for a in &st.actions {
            if let Some(g) = &a.guard {
                if eval_rv(f, g, &regs, &mems, &inputs)? == 0 {
                    continue;
                }
            }
            match &a.kind {
                ActionKind::SetReg(r, rv) => {
                    let v = eval_rv(f, rv, &regs, &mems, &inputs)?;
                    reg_updates.push((r.0 as usize, f.regs[r.0 as usize].ty.canonicalize(v)));
                }
                ActionKind::MemWrite { mem, addr, value } => {
                    let a = eval_rv(f, addr, &regs, &mems, &inputs)?;
                    let v = eval_rv(f, value, &regs, &mems, &inputs)?;
                    let mi = mem.0 as usize;
                    if a < 0 || a as usize >= mems[mi].len() {
                        return Err(FsmdSimError::OutOfBounds {
                            mem: f.mems[mi].name.clone(),
                            addr: a,
                            len: mems[mi].len(),
                        });
                    }
                    mem_updates.push((mi, a, f.mems[mi].elem.canonicalize(v)));
                }
            }
        }
        let next = match &st.next {
            NextState::Goto(t) => Some(*t),
            NextState::Branch { cond, then, els } => {
                let c = eval_rv(f, cond, &regs, &mems, &inputs)?;
                Some(if c != 0 { *then } else { *els })
            }
            NextState::Cases { cases, default } => {
                let mut target = *default;
                for (c, t) in cases {
                    if eval_rv(f, c, &regs, &mems, &inputs)? != 0 {
                        target = *t;
                        break;
                    }
                }
                Some(target)
            }
            NextState::Done => None,
        };
        let ret = if next.is_none() {
            match &f.ret {
                Some(rv) => Some(eval_rv(f, rv, &regs, &mems, &inputs)?),
                None => None,
            }
        } else {
            None
        };

        // Commit simultaneously.
        for (r, v) in reg_updates {
            regs[r] = v;
        }
        for (m, a, v) in mem_updates {
            mems[m][a as usize] = v;
        }

        match next {
            Some(t) => state = t,
            None => return Ok(FsmdSimResult { ret, cycles, mems }),
        }
    }
}

fn eval_rv(
    f: &Fsmd,
    rv: &Rv,
    regs: &[i64],
    mems: &[Vec<i64>],
    inputs: &[i64],
) -> Result<i64, FsmdSimError> {
    Ok(match &rv.kind {
        RvKind::Const(v) => rv.ty.canonicalize(*v),
        RvKind::Reg(r) => regs[r.0 as usize],
        RvKind::Input(i) => inputs[*i],
        RvKind::Un(op, a) => eval_un(*op, rv.ty, eval_rv(f, a, regs, mems, inputs)?),
        RvKind::Bin(op, a, b) => {
            let av = eval_rv(f, a, regs, mems, inputs)?;
            let bv = eval_rv(f, b, regs, mems, inputs)?;
            let ety = if op.is_comparison() { a.ty } else { rv.ty };
            eval_bin(*op, ety, av, bv)
        }
        RvKind::Mux(s, a, b) => {
            if eval_rv(f, s, regs, mems, inputs)? != 0 {
                eval_rv(f, a, regs, mems, inputs)?
            } else {
                eval_rv(f, b, regs, mems, inputs)?
            }
        }
        RvKind::Cast(a) => rv.ty.canonicalize(eval_rv(f, a, regs, mems, inputs)?),
        RvKind::MemRead { mem, addr } => {
            let a = eval_rv(f, addr, regs, mems, inputs)?;
            let mi = mem.0 as usize;
            if a < 0 || a as usize >= mems[mi].len() {
                return Err(FsmdSimError::OutOfBounds {
                    mem: f.mems[mi].name.clone(),
                    addr: a,
                    len: mems[mi].len(),
                });
            }
            mems[mi][a as usize]
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use chls_frontend::IntType;
    use chls_rtl::builder::FsmdBuilder;

    fn ty32() -> IntType {
        IntType::new(32, true)
    }

    /// GCD built by hand with the Ocapi-style builder, then simulated.
    fn gcd_fsmd() -> Fsmd {
        let mut b = FsmdBuilder::new("gcd");
        let ain = b.input("a_in", ty32(), 0);
        let bin = b.input("b_in", ty32(), 1);
        let a = b.reg("a", ty32(), 0);
        let breg = b.reg("b", ty32(), 0);
        let s_load = b.state();
        let s_loop = b.state();
        let s_done = b.state();
        b.at(s_load).set(a, ain).set(breg, bin).goto(s_loop);
        // loop: if b == 0 -> done else { a <= b; b <= a % b; }. The
        // updates are mux-gated on the exit condition because actions
        // commit in every visited state, including the exiting one.
        let b_is_zero = b.eq(b.get(breg), Rv::konst(0, ty32()));
        let rem = Rv::bin(chls_ir::BinKind::Rem, ty32(), b.get(a), b.get(breg));
        let a_next = b.mux(b_is_zero.clone(), b.get(a), b.get(breg));
        let b_next = b.mux(b_is_zero.clone(), b.get(breg), rem);
        b.at(s_loop)
            .set(a, a_next)
            .set(breg, b_next)
            .branch(b_is_zero, s_done, s_loop);
        b.at(s_done).done();
        let result = b.get(a);
        b.returning(result).finish()
    }

    #[test]
    fn gcd_computes_and_counts_cycles() {
        let f = gcd_fsmd();
        let r = simulate(&f, &[ArgValue::Scalar(48), ArgValue::Scalar(36)], 10_000)
            .expect("simulation ok");
        assert_eq!(r.ret, Some(12));
        assert!(r.cycles >= 4 && r.cycles < 20, "cycles = {}", r.cycles);
    }

    #[test]
    fn simultaneous_commit_swap_semantics() {
        // In s_loop, `a <= b` and `b <= a % b` both see the OLD a and b.
        let f = gcd_fsmd();
        let r = simulate(&f, &[ArgValue::Scalar(7), ArgValue::Scalar(3)], 1000).unwrap();
        assert_eq!(r.ret, Some(1));
    }

    #[test]
    fn memory_write_then_read_next_cycle() {
        let ty = ty32();
        let mut b = FsmdBuilder::new("m");
        let mem = b.mem("buf", ty, 4);
        let r = b.reg("r", ty, 0);
        let s0 = b.state();
        let s1 = b.state();
        b.at(s0)
            .write(mem, Rv::konst(2, ty), Rv::konst(99, ty))
            .goto(s1);
        let rd = b.read(mem, Rv::konst(2, ty));
        b.at(s1).set(r, rd).done();
        let result = b.get(r);
        let f = b.returning(result).finish();
        let out = simulate(&f, &[], 100).unwrap();
        assert_eq!(out.mems[0], vec![0, 0, 99, 0]);
        // ret samples r pre-commit in s1, so it still reads 0.
        assert_eq!(out.ret, Some(0));
        assert_eq!(out.cycles, 2);
    }

    #[test]
    fn cycle_limit_detects_livelock() {
        let mut b = FsmdBuilder::new("spin");
        let s0 = b.state();
        b.at(s0).goto(s0);
        let f = b.finish();
        let err = simulate(&f, &[], 50).unwrap_err();
        assert!(matches!(err, FsmdSimError::CycleLimit(50)));
    }

    #[test]
    fn rom_contents_visible() {
        let ty = ty32();
        let mut b = FsmdBuilder::new("rom");
        let rom = b.rom("tab", ty, vec![7, 8, 9]);
        let r = b.reg("r", ty, 0);
        let s0 = b.state();
        let s1 = b.state();
        let rd = b.read(rom, Rv::konst(1, ty));
        b.at(s0).set(r, rd).goto(s1);
        b.at(s1).done();
        let result = b.get(r);
        let f = b.returning(result).finish();
        let out = simulate(&f, &[], 100).unwrap();
        assert_eq!(out.ret, Some(8));
    }

    #[test]
    fn out_of_bounds_write_detected() {
        let ty = ty32();
        let mut b = FsmdBuilder::new("oob");
        let mem = b.mem("buf", ty, 4);
        let s0 = b.state();
        b.at(s0)
            .write(mem, Rv::konst(9, ty), Rv::konst(1, ty))
            .done();
        let f = b.finish();
        let err = simulate(&f, &[], 100).unwrap_err();
        assert!(matches!(err, FsmdSimError::OutOfBounds { .. }));
    }

    #[test]
    fn array_param_binding_initializes_memory() {
        let ty = ty32();
        let mut b = FsmdBuilder::new("arr");
        let mem = b.mem("a", ty, 4);
        let s0 = b.state();
        b.at(s0)
            .write(mem, Rv::konst(0, ty), Rv::konst(-1, ty))
            .done();
        let mut f = b.finish();
        f.mems[0].param_index = Some(0);
        let _ = mem;
        let out = simulate(&f, &[ArgValue::Array(vec![10, 20, 30, 40])], 100).unwrap();
        assert_eq!(out.mems[0], vec![-1, 20, 30, 40]);
    }

    use chls_rtl::fsmd::Rv;
}
