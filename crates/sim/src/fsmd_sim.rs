//! Cycle-accurate simulator for FSMD designs.
//!
//! Each simulated cycle evaluates the current state's datapath expressions
//! from the *current* register/memory contents, picks the next state, and
//! then commits all actions simultaneously — matching both the Verilog the
//! emitter produces and real registered hardware. The sampled return value
//! likewise reads pre-commit values, so backends route results through a
//! register that is stable before the `Done` state.
//!
//! # Hot path
//!
//! [`simulate`] does not tree-walk the `Rv` expression trees. At entry it
//! compiles every state once into a flat register-machine *tape* (see
//! [`crate::tape`]) over a dense `i64` slot array: registers, inputs, and
//! constants live in fixed slots, and every hash-consed subexpression
//! computes into its own temp slot at most once per cycle. The per-cycle
//! loop touches only dense arrays: no allocation, no hashing, no pointer
//! chasing.
//!
//! The tape representation is shared with the native x86-64 JIT
//! (`chls-jit`), which compiles the same tapes to machine code; this
//! module remains the reference executor.

use crate::interp::ArgValue;
use crate::tape::{self, Step};
use chls_rtl::fsmd::{BlockedOp, Fsmd};
use std::fmt;

/// Simulation errors.
#[derive(Debug, Clone, PartialEq)]
pub enum FsmdSimError {
    /// Memory access out of range.
    OutOfBounds {
        /// Memory name.
        mem: String,
        /// Offending address.
        addr: i64,
        /// Word count.
        len: usize,
    },
    /// The cycle limit was exceeded.
    CycleLimit(u64),
    /// Missing or mistyped argument.
    BadArgument(usize),
    /// The process network reached a configuration it can never leave:
    /// every live process is blocked on an unmatched rendezvous.
    Deadlock {
        /// Cycle on which the stuck configuration was entered.
        cycle: u64,
        /// Every blocked (process, channel, direction) endpoint.
        blocked: Vec<BlockedOp>,
    },
}

impl fmt::Display for FsmdSimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsmdSimError::OutOfBounds { mem, addr, len } => {
                write!(f, "address {addr} out of range for memory `{mem}` (len {len})")
            }
            FsmdSimError::CycleLimit(n) => write!(f, "exceeded cycle limit of {n}"),
            FsmdSimError::BadArgument(i) => write!(f, "missing or mistyped argument {i}"),
            FsmdSimError::Deadlock { cycle, blocked } => {
                write!(f, "deadlock at cycle {cycle}: ")?;
                let parts: Vec<String> = blocked
                    .iter()
                    .map(|b| format!("{} blocked on {}({})", b.process, b.dir, b.channel))
                    .collect();
                write!(f, "{}", parts.join(", "))
            }
        }
    }
}

impl std::error::Error for FsmdSimError {}

/// Result of simulating an FSMD to completion.
#[derive(Debug, Clone, PartialEq)]
pub struct FsmdSimResult {
    /// Sampled return value.
    pub ret: Option<i64>,
    /// Clock cycles from start to done (each visited state is one cycle).
    pub cycles: u64,
    /// Final contents of every memory.
    pub mems: Vec<Vec<i64>>,
    /// Final (post-commit) register values, in register order.
    pub regs: Vec<i64>,
}

/// Simulates `f` with arguments bound by parameter index.
///
/// # Errors
///
/// See [`FsmdSimError`].
pub fn simulate(
    f: &Fsmd,
    args: &[ArgValue],
    max_cycles: u64,
) -> Result<FsmdSimResult, FsmdSimError> {
    let _span = chls_trace::span("sim.fsmd");
    let r = simulate_inner(f, args, max_cycles);
    if let Ok(r) = &r {
        // One counter add per run, never per cycle — the hot loop is
        // untouched (BENCH_sim.json guards this).
        chls_trace::add("sim.cycles", r.cycles);
    }
    r
}

fn simulate_inner(
    f: &Fsmd,
    args: &[ArgValue],
    max_cycles: u64,
) -> Result<FsmdSimResult, FsmdSimError> {
    let inputs = tape::bind_inputs(f, args)?;
    let mut mems = tape::bind_mems(f, args)?;

    // Compile once; the per-cycle loop is allocation-free.
    let comp = tape::compile(f);
    let mut slots = tape::init_slots(&comp, f, &inputs, 0);
    let mut reg_updates: Vec<(u32, i64)> = Vec::new();
    let mut mem_updates: Vec<(u32, i64, i64)> = Vec::new();

    let mut state = f.entry.0;
    let mut cycles: u64 = 0;
    loop {
        cycles += 1;
        if cycles > max_cycles {
            return Err(FsmdSimError::CycleLimit(max_cycles));
        }
        match tape::exec_state(
            &comp,
            f,
            state,
            &mut slots,
            &mut mems,
            &mut reg_updates,
            &mut mem_updates,
        )
        .map_err(|e| match e {
            // The tape layer has no cycle counter; stamp the deadlock
            // with the cycle that entered the stuck configuration.
            FsmdSimError::Deadlock { blocked, .. } => FsmdSimError::Deadlock { cycle: cycles, blocked },
            other => other,
        })? {
            Step::Next(t) => state = t,
            Step::Done(ret) => {
                let regs = slots[..comp.n_regs].to_vec();
                return Ok(FsmdSimResult {
                    ret,
                    cycles,
                    mems,
                    regs,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chls_frontend::IntType;
    use chls_rtl::builder::FsmdBuilder;

    fn ty32() -> IntType {
        IntType::new(32, true)
    }

    /// GCD built by hand with the Ocapi-style builder, then simulated.
    fn gcd_fsmd() -> Fsmd {
        let mut b = FsmdBuilder::new("gcd");
        let ain = b.input("a_in", ty32(), 0);
        let bin = b.input("b_in", ty32(), 1);
        let a = b.reg("a", ty32(), 0);
        let breg = b.reg("b", ty32(), 0);
        let s_load = b.state();
        let s_loop = b.state();
        let s_done = b.state();
        b.at(s_load).set(a, ain).set(breg, bin).goto(s_loop);
        // loop: if b == 0 -> done else { a <= b; b <= a % b; }. The
        // updates are mux-gated on the exit condition because actions
        // commit in every visited state, including the exiting one.
        let b_is_zero = b.eq(b.get(breg), Rv::konst(0, ty32()));
        let rem = Rv::bin(chls_ir::BinKind::Rem, ty32(), b.get(a), b.get(breg));
        let a_next = b.mux(b_is_zero.clone(), b.get(a), b.get(breg));
        let b_next = b.mux(b_is_zero.clone(), b.get(breg), rem);
        b.at(s_loop)
            .set(a, a_next)
            .set(breg, b_next)
            .branch(b_is_zero, s_done, s_loop);
        b.at(s_done).done();
        let result = b.get(a);
        b.returning(result).finish()
    }

    #[test]
    fn gcd_computes_and_counts_cycles() {
        let f = gcd_fsmd();
        let r = simulate(&f, &[ArgValue::Scalar(48), ArgValue::Scalar(36)], 10_000)
            .expect("simulation ok");
        assert_eq!(r.ret, Some(12));
        assert!(r.cycles >= 4 && r.cycles < 20, "cycles = {}", r.cycles);
    }

    #[test]
    fn simultaneous_commit_swap_semantics() {
        // In s_loop, `a <= b` and `b <= a % b` both see the OLD a and b.
        let f = gcd_fsmd();
        let r = simulate(&f, &[ArgValue::Scalar(7), ArgValue::Scalar(3)], 1000).unwrap();
        assert_eq!(r.ret, Some(1));
    }

    #[test]
    fn memory_write_then_read_next_cycle() {
        let ty = ty32();
        let mut b = FsmdBuilder::new("m");
        let mem = b.mem("buf", ty, 4);
        let r = b.reg("r", ty, 0);
        let s0 = b.state();
        let s1 = b.state();
        b.at(s0)
            .write(mem, Rv::konst(2, ty), Rv::konst(99, ty))
            .goto(s1);
        let rd = b.read(mem, Rv::konst(2, ty));
        b.at(s1).set(r, rd).done();
        let result = b.get(r);
        let f = b.returning(result).finish();
        let out = simulate(&f, &[], 100).unwrap();
        assert_eq!(out.mems[0], vec![0, 0, 99, 0]);
        // ret samples r pre-commit in s1, so it still reads 0.
        assert_eq!(out.ret, Some(0));
        assert_eq!(out.cycles, 2);
        // Post-commit register state is exposed for differential testing.
        assert_eq!(out.regs, vec![99]);
    }

    #[test]
    fn cycle_limit_detects_livelock() {
        let mut b = FsmdBuilder::new("spin");
        let s0 = b.state();
        b.at(s0).goto(s0);
        let f = b.finish();
        let err = simulate(&f, &[], 50).unwrap_err();
        assert!(matches!(err, FsmdSimError::CycleLimit(50)));
    }

    #[test]
    fn stuck_annotation_reports_deadlock() {
        use chls_rtl::fsmd::{BlockedOp, ChanDir, StuckState};
        // Same goto-self shape as the livelock test, but carrying a
        // backend-proved stuck annotation: the simulator must report a
        // first-class deadlock (on entry, cycle 1) instead of spinning.
        let mut b = FsmdBuilder::new("dead");
        let s0 = b.state();
        b.at(s0).goto(s0);
        let mut f = b.finish();
        f.stuck.push(StuckState {
            state: s0,
            blocked: vec![BlockedOp {
                process: "arm 0".into(),
                channel: "c".into(),
                dir: ChanDir::Send,
            }],
        });
        let err = simulate(&f, &[], 50).unwrap_err();
        let FsmdSimError::Deadlock { cycle, blocked } = err else {
            panic!("expected deadlock, got {err:?}");
        };
        assert_eq!(cycle, 1);
        assert_eq!(blocked.len(), 1);
        assert_eq!(blocked[0].channel, "c");
        assert_eq!(blocked[0].dir, ChanDir::Send);
    }

    #[test]
    fn rom_contents_visible() {
        let ty = ty32();
        let mut b = FsmdBuilder::new("rom");
        let rom = b.rom("tab", ty, vec![7, 8, 9]);
        let r = b.reg("r", ty, 0);
        let s0 = b.state();
        let s1 = b.state();
        let rd = b.read(rom, Rv::konst(1, ty));
        b.at(s0).set(r, rd).goto(s1);
        b.at(s1).done();
        let result = b.get(r);
        let f = b.returning(result).finish();
        let out = simulate(&f, &[], 100).unwrap();
        assert_eq!(out.ret, Some(8));
    }

    #[test]
    fn out_of_bounds_write_detected() {
        let ty = ty32();
        let mut b = FsmdBuilder::new("oob");
        let mem = b.mem("buf", ty, 4);
        let s0 = b.state();
        b.at(s0)
            .write(mem, Rv::konst(9, ty), Rv::konst(1, ty))
            .done();
        let f = b.finish();
        let err = simulate(&f, &[], 100).unwrap_err();
        assert!(matches!(err, FsmdSimError::OutOfBounds { .. }));
    }

    #[test]
    fn array_param_binding_initializes_memory() {
        let ty = ty32();
        let mut b = FsmdBuilder::new("arr");
        let mem = b.mem("a", ty, 4);
        let s0 = b.state();
        b.at(s0)
            .write(mem, Rv::konst(0, ty), Rv::konst(-1, ty))
            .done();
        let mut f = b.finish();
        f.mems[0].param_index = Some(0);
        let _ = mem;
        let out = simulate(&f, &[ArgValue::Array(vec![10, 20, 30, 40])], 100).unwrap();
        assert_eq!(out.mems[0], vec![-1, 20, 30, 40]);
    }

    use chls_rtl::fsmd::Rv;
}
