//! The golden-model interpreter for CHL programs.
//!
//! Walks the typed HIR directly (no inlining, no pointer lowering, no
//! scheduling), so it is independent of every transformation the synthesis
//! backends perform — which is what makes it a useful reference. Every
//! backend's simulated hardware is checked against this interpreter.
//!
//! Concurrency: `par` branches run on real threads; channels are
//! rendezvous (CSP): `send` blocks until a matching `recv` arrives and vice
//! versa. Programs whose `par` branches race on shared variables have
//! nondeterministic results here exactly as they would in hardware; the
//! conformance suite only uses race-free programs.
//!
//! All channels share one [`ChanMonitor`], so the last thread to block
//! can see that every live process is now waiting on a channel and
//! declare a first-class [`InterpError::Deadlock`] (naming each blocked
//! process/channel/direction) instead of hanging the scope forever.
//!
//! Arithmetic semantics are shared with the IR executor through
//! [`chls_ir::eval_bin`], so the two golden models cannot drift apart.

use chls_frontend::ast::{BinOp, UnOp};
use chls_frontend::hir::*;
use chls_frontend::{IntType, Type};
use chls_ir::{eval_bin, eval_un, BinKind};
use chls_rtl::fsmd::{BlockedOp, ChanDir};
use std::cell::RefCell;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// An argument bound to an entry-function parameter.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// A scalar value.
    Scalar(i64),
    /// Initial contents of an array parameter.
    Array(Vec<i64>),
}

/// Interpreter errors.
#[derive(Debug, Clone, PartialEq)]
pub enum InterpError {
    /// Array index out of range.
    OutOfBounds {
        /// Array name.
        name: String,
        /// Offending index.
        index: i64,
        /// Length.
        len: usize,
    },
    /// The step limit was exceeded.
    StepLimit(u64),
    /// Wrong argument count or kind at the entry function.
    BadArgument(usize),
    /// `return` inside `par` is not supported.
    ReturnInPar,
    /// A null/dangling pointer operation (should be impossible for
    /// type-checked programs).
    BadPointer,
    /// Entry function not found.
    NoSuchFunction(String),
    /// A `par` branch panicked or deadlocked.
    ParFailure(String),
    /// The process network can never make progress: every live process
    /// is blocked on an unmatched rendezvous.
    Deadlock {
        /// Every blocked (process, channel, direction) endpoint.
        blocked: Vec<BlockedOp>,
    },
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::OutOfBounds { name, index, len } => {
                write!(f, "index {index} out of bounds for `{name}` (len {len})")
            }
            InterpError::StepLimit(n) => write!(f, "exceeded step limit of {n}"),
            InterpError::BadArgument(i) => write!(f, "missing or mistyped argument {i}"),
            InterpError::ReturnInPar => write!(f, "`return` inside `par` is not synthesizable"),
            InterpError::BadPointer => write!(f, "invalid pointer operation"),
            InterpError::NoSuchFunction(n) => write!(f, "no function named `{n}`"),
            InterpError::ParFailure(m) => write!(f, "par branch failed: {m}"),
            InterpError::Deadlock { blocked } => {
                write!(f, "deadlock: ")?;
                let parts: Vec<String> = blocked
                    .iter()
                    .map(|b| format!("{} blocked on {}({})", b.process, b.dir, b.channel))
                    .collect();
                write!(f, "{}", parts.join(", "))
            }
        }
    }
}

impl std::error::Error for InterpError {}

/// Result of interpreting a program.
#[derive(Debug, Clone, PartialEq)]
pub struct InterpResult {
    /// Return value of the entry function.
    pub ret: Option<i64>,
    /// Final contents of array arguments, by parameter index.
    pub arrays: Vec<(usize, Vec<i64>)>,
    /// Number of statements executed.
    pub steps: u64,
}

/// How `par` arms are scheduled.
///
/// The C-like-language problem the paper dwells on: a program whose
/// `par` arms race on shared state has no single meaning, and different
/// (all legal) schedules give different answers. The non-default orders
/// exist to *demonstrate* that divergence deterministically — a
/// lint-clean program must compute the same result under all three.
/// Sequential orders cannot perform a rendezvous (one arm would block
/// forever waiting for a sibling that never runs), so programs using
/// channels inside `par` must use [`ParOrder::Concurrent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ParOrder {
    /// One thread per arm; rendezvous channels synchronize (default).
    #[default]
    Concurrent,
    /// Run arms to completion left-to-right on one thread.
    Sequential,
    /// Run arms to completion right-to-left on one thread.
    Reversed,
}

/// Interpreter options.
#[derive(Debug, Clone)]
pub struct InterpOptions {
    /// Abort after this many executed statements.
    pub step_limit: u64,
    /// `par` arm scheduling.
    pub par_order: ParOrder,
}

impl Default for InterpOptions {
    fn default() -> Self {
        InterpOptions {
            step_limit: 50_000_000,
            par_order: ParOrder::Concurrent,
        }
    }
}

// ----- runtime values and storage -----

/// Storage for one local.
#[derive(Debug)]
enum SlotVal {
    Scalar(i64),
    Array(Vec<i64>),
}

type Slot = Arc<Mutex<SlotVal>>;

/// A runtime value: an integer or a pointer (slot + element offset).
#[derive(Clone)]
enum V {
    Int(i64),
    Ptr { slot: Slot, offset: i64 },
}

impl V {
    fn as_int(&self) -> i64 {
        match self {
            V::Int(v) => *v,
            // A pointer compared against 0 is "non-null".
            V::Ptr { .. } => 1,
        }
    }
}

thread_local! {
    /// Human-readable label of the current process: `main` outside any
    /// `par`, else the arm's position in the `par` nest (`arm 1`,
    /// `arm 1.2`) — matching the labels the handelc backend records in
    /// its stuck-state annotations.
    static PROC_LABEL: RefCell<String> = RefCell::new(String::from("main"));
}

fn current_process() -> String {
    PROC_LABEL.with(|l| l.borrow().clone())
}

/// One rendezvous cell.
#[derive(Debug, Default)]
struct ChanSt {
    /// A sender's value waiting for a receiver.
    value: Option<i64>,
    /// Set by the receiver once it has taken the value.
    taken: bool,
}

#[derive(Debug, Default)]
struct MonState {
    /// One cell per allocated channel (across all frames).
    chans: Vec<ChanSt>,
    /// Threads that can still affect the channel fabric: executing or
    /// blocked on a channel. Parents waiting on a `par` join and
    /// completed arms are excluded.
    live: usize,
    /// One entry per thread currently blocked on a channel.
    blocked: Vec<BlockedOp>,
    /// The declared deadlock: a snapshot of `blocked` at the moment the
    /// last live thread blocked.
    verdict: Option<Vec<BlockedOp>>,
}

/// Deadlock-aware rendezvous fabric. Every channel shares this single
/// monitor so blocking is globally observable: when the set of blocked
/// threads covers every live thread, no rendezvous can ever complete,
/// and the last blocker declares the deadlock and wakes everyone with
/// the blocked set instead of letting the whole scope hang.
#[derive(Debug, Default)]
struct ChanMonitor {
    inner: Mutex<MonState>,
    cv: Condvar,
}

impl ChanMonitor {
    /// A monitor with the entry thread already counted live.
    fn new() -> Self {
        let m = ChanMonitor::default();
        m.inner.lock().expect("monitor").live = 1;
        m
    }

    /// Allocates a fresh channel cell, returning its index.
    fn alloc(&self) -> usize {
        let mut st = self.inner.lock().expect("monitor");
        st.chans.push(ChanSt::default());
        st.chans.len() - 1
    }

    /// `n` arms spawn; the parent leaves the live set to wait on the join.
    fn enter_par(&self, n: usize) {
        let mut st = self.inner.lock().expect("monitor");
        st.live += n;
        st.live -= 1;
        self.check(&mut st);
    }

    /// The parent returns from the join.
    fn exit_par(&self) {
        self.inner.lock().expect("monitor").live += 1;
    }

    /// One arm finished, normally or with an error. Its siblings may now
    /// constitute a deadlock (their partner is gone), so re-check.
    fn exit_arm(&self) {
        let mut st = self.inner.lock().expect("monitor");
        st.live -= 1;
        self.check(&mut st);
    }

    /// Declares the deadlock if every live thread is blocked.
    fn check(&self, st: &mut MonState) {
        if st.verdict.is_none() && !st.blocked.is_empty() && st.blocked.len() >= st.live {
            st.verdict = Some(st.blocked.clone());
            self.cv.notify_all();
        }
    }

    /// Registers this thread as blocked, waits for one wakeup, and
    /// deregisters. Errors if a deadlock has been (or just became)
    /// declared.
    fn block<'a>(
        &'a self,
        mut st: MutexGuard<'a, MonState>,
        who: &str,
        chan: &str,
        dir: ChanDir,
    ) -> Result<MutexGuard<'a, MonState>, InterpError> {
        if let Some(b) = &st.verdict {
            return Err(InterpError::Deadlock { blocked: b.clone() });
        }
        st.blocked.push(BlockedOp {
            process: who.to_string(),
            channel: chan.to_string(),
            dir,
        });
        self.check(&mut st);
        if let Some(b) = &st.verdict {
            return Err(InterpError::Deadlock { blocked: b.clone() });
        }
        st = self.cv.wait(st).expect("monitor");
        // A waker that satisfied us may have already removed our entry.
        if let Some(i) = st
            .blocked
            .iter()
            .position(|b| b.process == who && b.channel == chan && b.dir == dir)
        {
            st.blocked.remove(i);
        }
        if let Some(b) = &st.verdict {
            return Err(InterpError::Deadlock { blocked: b.clone() });
        }
        Ok(st)
    }

    /// Removes blocked entries a state change on channel `chan` just
    /// gave a genuine wakeup chance (they re-register if still stuck),
    /// so a finished partner can't be double-counted as blocked by a
    /// racing [`Self::check`].
    fn unblock(st: &mut MonState, chan: &str, dir: ChanDir) {
        st.blocked.retain(|b| !(b.channel == chan && b.dir == dir));
    }

    /// Rendezvous send: blocks until a receiver takes the value.
    fn send(&self, ch: usize, v: i64, who: &str, chan: &str) -> Result<(), InterpError> {
        let mut st = self.inner.lock().expect("monitor");
        // Wait until no other send is pending on this cell.
        while st.chans[ch].value.is_some() {
            st = self.block(st, who, chan, ChanDir::Send)?;
        }
        st.chans[ch].value = Some(v);
        st.chans[ch].taken = false;
        Self::unblock(&mut st, chan, ChanDir::Recv);
        self.cv.notify_all();
        // Rendezvous: block until the receiver takes it.
        while !st.chans[ch].taken {
            st = self.block(st, who, chan, ChanDir::Send)?;
        }
        st.chans[ch].taken = false;
        self.cv.notify_all();
        Ok(())
    }

    /// Rendezvous receive: blocks until a sender's value arrives.
    fn recv(&self, ch: usize, who: &str, chan: &str) -> Result<i64, InterpError> {
        let mut st = self.inner.lock().expect("monitor");
        loop {
            if let Some(v) = st.chans[ch].value.take() {
                st.chans[ch].taken = true;
                Self::unblock(&mut st, chan, ChanDir::Send);
                self.cv.notify_all();
                return Ok(v);
            }
            st = self.block(st, who, chan, ChanDir::Recv)?;
        }
    }
}

/// One function activation: the slots of its locals, channel table (cell
/// indices into the shared [`ChanMonitor`]), and a side map holding
/// pointer values stored in pointer-typed locals.
#[derive(Clone)]
struct Frame {
    slots: Vec<Slot>,
    chans: Vec<Option<usize>>,
    ptrs: Arc<Mutex<std::collections::HashMap<usize, (Slot, i64)>>>,
}

impl Frame {
    fn set_ptr(&self, idx: usize, slot: Slot, offset: i64) {
        self.ptrs
            .lock()
            .expect("ptr table")
            .insert(idx, (slot, offset));
    }

    fn get_ptr(&self, idx: usize) -> Option<(Slot, i64)> {
        self.ptrs.lock().expect("ptr table").get(&idx).cloned()
    }
}

/// Statement execution outcome.
enum Flow {
    Normal,
    Break,
    Continue,
    Return(Option<i64>),
}

/// Runs `entry` of `prog` with `args`.
///
/// # Errors
///
/// See [`InterpError`].
pub fn run(
    prog: &HirProgram,
    entry: &str,
    args: &[ArgValue],
    opts: &InterpOptions,
) -> Result<InterpResult, InterpError> {
    let (fid, func) = prog
        .func_by_name(entry)
        .ok_or_else(|| InterpError::NoSuchFunction(entry.to_string()))?;
    let steps = AtomicU64::new(0);
    let interp = Interp {
        prog,
        steps: &steps,
        step_limit: opts.step_limit,
        par_order: opts.par_order,
        monitor: ChanMonitor::new(),
    };
    // The entry may run on a reused thread: reset the process label.
    PROC_LABEL.with(|l| *l.borrow_mut() = String::from("main"));

    // Bind the entry frame from the arguments.
    let frame = interp.make_frame(fid)?;
    for (i, local) in func.locals.iter().enumerate().take(func.num_params) {
        match (&local.ty, args.get(i)) {
            (Type::Bool | Type::Int(_), Some(ArgValue::Scalar(v))) => {
                *frame.slots[i].lock().expect("slot") =
                    SlotVal::Scalar(canonical_for(&local.ty, *v));
            }
            (Type::Array(elem, n), Some(ArgValue::Array(a))) => {
                let et = scalar_int_type(elem);
                let mut v = a.clone();
                v.resize(*n, 0);
                v.iter_mut().for_each(|x| *x = et.canonicalize(*x));
                *frame.slots[i].lock().expect("slot") = SlotVal::Array(v);
            }
            _ => return Err(InterpError::BadArgument(i)),
        }
    }

    let flow = interp.exec_block(func, &frame, &func.body, false)?;
    let ret = match flow {
        Flow::Return(v) => v,
        _ => None,
    };

    let mut arrays = Vec::new();
    for (i, local) in func.locals.iter().enumerate().take(func.num_params) {
        if matches!(local.ty, Type::Array(..)) {
            if let SlotVal::Array(a) = &*frame.slots[i].lock().expect("slot") {
                arrays.push((i, a.clone()));
            }
        }
    }
    Ok(InterpResult {
        ret,
        arrays,
        steps: steps.load(Ordering::Relaxed),
    })
}

fn scalar_int_type(ty: &Type) -> IntType {
    match ty {
        Type::Bool => IntType::new(1, false),
        Type::Int(it) => *it,
        _ => IntType::new(64, true),
    }
}

fn canonical_for(ty: &Type, v: i64) -> i64 {
    scalar_int_type(ty).canonicalize(v)
}

fn bin_kind(op: BinOp) -> BinKind {
    match op {
        BinOp::Add => BinKind::Add,
        BinOp::Sub => BinKind::Sub,
        BinOp::Mul => BinKind::Mul,
        BinOp::Div => BinKind::Div,
        BinOp::Rem => BinKind::Rem,
        BinOp::Shl => BinKind::Shl,
        BinOp::Shr => BinKind::Shr,
        BinOp::BitAnd => BinKind::And,
        BinOp::BitOr => BinKind::Or,
        BinOp::BitXor => BinKind::Xor,
        BinOp::Eq => BinKind::Eq,
        BinOp::Ne => BinKind::Ne,
        BinOp::Lt => BinKind::Lt,
        BinOp::Le => BinKind::Le,
        BinOp::Gt => BinKind::Gt,
        BinOp::Ge => BinKind::Ge,
        BinOp::LogAnd | BinOp::LogOr => unreachable!("desugared by sema"),
    }
}

struct Interp<'p> {
    prog: &'p HirProgram,
    steps: &'p AtomicU64,
    step_limit: u64,
    par_order: ParOrder,
    monitor: ChanMonitor,
}

impl<'p> Interp<'p> {
    fn tick(&self) -> Result<(), InterpError> {
        let n = self.steps.fetch_add(1, Ordering::Relaxed) + 1;
        if n > self.step_limit {
            return Err(InterpError::StepLimit(self.step_limit));
        }
        Ok(())
    }

    fn make_frame(&self, fid: FuncId) -> Result<Frame, InterpError> {
        let func = self.prog.func(fid);
        let mut slots = Vec::with_capacity(func.locals.len());
        let mut chans = Vec::with_capacity(func.locals.len());
        for local in &func.locals {
            match &local.ty {
                Type::Array(elem, n) => {
                    let et = scalar_int_type(elem);
                    let contents = match &local.rom {
                        Some(rom) => {
                            let mut v = rom.clone();
                            v.resize(*n, 0);
                            v.iter_mut().for_each(|x| *x = et.canonicalize(*x));
                            v
                        }
                        None => vec![0; *n],
                    };
                    slots.push(Arc::new(Mutex::new(SlotVal::Array(contents))));
                    chans.push(None);
                }
                Type::Chan(_) => {
                    slots.push(Arc::new(Mutex::new(SlotVal::Scalar(0))));
                    chans.push(Some(self.monitor.alloc()));
                }
                _ => {
                    slots.push(Arc::new(Mutex::new(SlotVal::Scalar(0))));
                    chans.push(None);
                }
            }
        }
        Ok(Frame {
            slots,
            chans,
            ptrs: Arc::new(Mutex::new(std::collections::HashMap::new())),
        })
    }

    fn exec_block(
        &self,
        func: &HirFunc,
        frame: &Frame,
        block: &HirBlock,
        in_par: bool,
    ) -> Result<Flow, InterpError> {
        for stmt in &block.stmts {
            match self.exec_stmt(func, frame, stmt, in_par)? {
                Flow::Normal => {}
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_stmt(
        &self,
        func: &HirFunc,
        frame: &Frame,
        stmt: &HirStmt,
        in_par: bool,
    ) -> Result<Flow, InterpError> {
        self.tick()?;
        match stmt {
            HirStmt::Assign { place, value, .. } => {
                let v = self.eval(func, frame, value)?;
                self.store(func, frame, place, v)?;
                Ok(Flow::Normal)
            }
            HirStmt::Call { dst, func: callee, args, .. } => {
                let ret = self.call(func, frame, *callee, args)?;
                if let (Some(dst), Some(v)) = (dst, ret) {
                    self.store(func, frame, dst, V::Int(v))?;
                }
                Ok(Flow::Normal)
            }
            HirStmt::Recv { dst, chan, .. } => {
                let ch = frame.chans[chan.0 as usize].ok_or(InterpError::BadPointer)?;
                let who = current_process();
                let v = self.monitor.recv(ch, &who, &func.local(*chan).name)?;
                self.store(func, frame, dst, V::Int(v))?;
                Ok(Flow::Normal)
            }
            HirStmt::Send { chan, value, .. } => {
                let v = self.eval(func, frame, value)?.as_int();
                let elem = match &func.local(*chan).ty {
                    Type::Chan(e) => (**e).clone(),
                    _ => return Err(InterpError::BadPointer),
                };
                let ch = frame.chans[chan.0 as usize].ok_or(InterpError::BadPointer)?;
                let who = current_process();
                self.monitor
                    .send(ch, canonical_for(&elem, v), &who, &func.local(*chan).name)?;
                Ok(Flow::Normal)
            }
            HirStmt::If { cond, then, els } => {
                if self.eval(func, frame, cond)?.as_int() != 0 {
                    self.exec_block(func, frame, then, in_par)
                } else {
                    self.exec_block(func, frame, els, in_par)
                }
            }
            HirStmt::While { cond, body, .. } => {
                while self.eval(func, frame, cond)?.as_int() != 0 {
                    self.tick()?;
                    match self.exec_block(func, frame, body, in_par)? {
                        Flow::Normal | Flow::Continue => {}
                        Flow::Break => break,
                        r @ Flow::Return(_) => return Ok(r),
                    }
                }
                Ok(Flow::Normal)
            }
            HirStmt::DoWhile { body, cond } => {
                loop {
                    self.tick()?;
                    match self.exec_block(func, frame, body, in_par)? {
                        Flow::Normal | Flow::Continue => {}
                        Flow::Break => break,
                        r @ Flow::Return(_) => return Ok(r),
                    }
                    if self.eval(func, frame, cond)?.as_int() == 0 {
                        break;
                    }
                }
                Ok(Flow::Normal)
            }
            HirStmt::For {
                init,
                cond,
                step,
                body,
                ..
            } => {
                match self.exec_block(func, frame, init, in_par)? {
                    Flow::Normal => {}
                    other => return Ok(other),
                }
                while self.eval(func, frame, cond)?.as_int() != 0 {
                    self.tick()?;
                    match self.exec_block(func, frame, body, in_par)? {
                        Flow::Normal | Flow::Continue => {}
                        Flow::Break => break,
                        r @ Flow::Return(_) => return Ok(r),
                    }
                    match self.exec_block(func, frame, step, in_par)? {
                        Flow::Normal => {}
                        other => return Ok(other),
                    }
                }
                Ok(Flow::Normal)
            }
            HirStmt::Return(v) => {
                if in_par {
                    return Err(InterpError::ReturnInPar);
                }
                let val = match v {
                    Some(e) => Some(self.eval(func, frame, e)?.as_int()),
                    None => None,
                };
                Ok(Flow::Return(val))
            }
            HirStmt::Break => Ok(Flow::Break),
            HirStmt::Continue => Ok(Flow::Continue),
            HirStmt::Block(b) => self.exec_block(func, frame, b, in_par),
            HirStmt::Constraint { body, .. } => self.exec_block(func, frame, body, in_par),
            HirStmt::Delay => Ok(Flow::Normal),
            HirStmt::Par(branches) => {
                match self.par_order {
                    ParOrder::Concurrent => {
                        // Each branch runs on its own thread; rendezvous
                        // channels synchronize them. Shared state is
                        // already behind per-slot mutexes. The monitor
                        // tracks who is live: arms join it on spawn and
                        // leave on exit (even an error exit), while the
                        // parent sits out during the join so a fully
                        // blocked sibling set is recognized as deadlock.
                        let parent = current_process();
                        self.monitor.enter_par(branches.len());
                        let results: Vec<Result<Flow, InterpError>> =
                            std::thread::scope(|scope| {
                                let handles: Vec<_> = branches
                                    .iter()
                                    .enumerate()
                                    .map(|(i, branch)| {
                                        let label = if parent == "main" {
                                            format!("arm {i}")
                                        } else {
                                            format!("{parent}.{i}")
                                        };
                                        scope.spawn(move || {
                                            PROC_LABEL
                                                .with(|l| *l.borrow_mut() = label);
                                            let r = self
                                                .exec_block(func, frame, branch, true);
                                            self.monitor.exit_arm();
                                            r
                                        })
                                    })
                                    .collect();
                                handles
                                    .into_iter()
                                    .map(|h| {
                                        h.join().unwrap_or_else(|_| {
                                            Err(InterpError::ParFailure(
                                                "panic".to_string(),
                                            ))
                                        })
                                    })
                                    .collect()
                            });
                        self.monitor.exit_par();
                        // An arm that died of a real error (step limit,
                        // bounds) strands its siblings' rendezvous as a
                        // side effect; report the root cause, not the
                        // echo.
                        if let Some(e) = results.iter().find_map(|r| match r {
                            Err(e) if !matches!(e, InterpError::Deadlock { .. }) => {
                                Some(e.clone())
                            }
                            _ => None,
                        }) {
                            return Err(e);
                        }
                        for r in results {
                            r?;
                        }
                    }
                    // The sequential orders run arms to completion one at
                    // a time — legal schedules for channel-free `par`,
                    // used to demonstrate racy-program divergence.
                    ParOrder::Sequential => {
                        for branch in branches {
                            self.exec_block(func, frame, branch, true)?;
                        }
                    }
                    ParOrder::Reversed => {
                        for branch in branches.iter().rev() {
                            self.exec_block(func, frame, branch, true)?;
                        }
                    }
                }
                Ok(Flow::Normal)
            }
        }
    }

    fn call(
        &self,
        caller: &HirFunc,
        caller_frame: &Frame,
        callee: FuncId,
        args: &[HirArg],
    ) -> Result<Option<i64>, InterpError> {
        let cfunc = self.prog.func(callee);
        let mut frame = self.make_frame(callee)?;
        for (i, arg) in args.iter().enumerate() {
            match arg {
                HirArg::Value(e) => {
                    match self.eval(caller, caller_frame, e)? {
                        V::Int(x) => {
                            *frame.slots[i].lock().expect("slot") = SlotVal::Scalar(
                                canonical_for(&cfunc.local(LocalId(i as u32)).ty, x),
                            );
                        }
                        V::Ptr { slot, offset } => frame.set_ptr(i, slot, offset),
                    }
                }
                HirArg::Array(place) => {
                    // Arrays pass by reference: alias the caller's slot.
                    frame.slots[i] = self.place_array_slot(caller, caller_frame, place)?;
                }
            }
        }
        self.run_callee(cfunc, frame)
    }

    fn run_callee(&self, cfunc: &HirFunc, frame: Frame) -> Result<Option<i64>, InterpError> {
        match self.exec_block(cfunc, &frame, &cfunc.body, false)? {
            Flow::Return(v) => Ok(v),
            _ => Ok(None),
        }
    }

    // ----- places -----

    fn place_array_slot(
        &self,
        _func: &HirFunc,
        frame: &Frame,
        place: &HirPlace,
    ) -> Result<Slot, InterpError> {
        match place {
            HirPlace::Local(id) => Ok(frame.slots[id.0 as usize].clone()),
            HirPlace::Global(gid) => {
                // Globals are immutable; materialize a fresh copy (callee
                // cannot legally write through it — sema enforces const).
                let g = self.prog.global(*gid);
                Ok(Arc::new(Mutex::new(SlotVal::Array(g.values.clone()))))
            }
            _ => Err(InterpError::BadPointer),
        }
    }

    fn store(
        &self,
        func: &HirFunc,
        frame: &Frame,
        place: &HirPlace,
        value: V,
    ) -> Result<(), InterpError> {
        match place {
            HirPlace::Local(id) => {
                let ty = &func.local(*id).ty;
                match value {
                    V::Int(v) => {
                        *frame.slots[id.0 as usize].lock().expect("slot") =
                            SlotVal::Scalar(canonical_for(ty, v));
                    }
                    V::Ptr { slot, offset } => {
                        // Pointers stored in pointer-typed locals: keep as
                        // a handle in the frame's pointer table.
                        frame.set_ptr(id.0 as usize, slot, offset);
                    }
                }
                Ok(())
            }
            HirPlace::Index { base, index } => {
                let idx = self.eval(func, frame, index)?.as_int();
                let slot = self.place_array_slot(func, frame, base)?;
                let name = base
                    .root_local()
                    .map(|l| func.local(l).name.clone())
                    .unwrap_or_else(|| "array".to_string());
                let mut guard = slot.lock().expect("slot");
                let SlotVal::Array(a) = &mut *guard else {
                    return Err(InterpError::BadPointer);
                };
                if idx < 0 || idx as usize >= a.len() {
                    return Err(InterpError::OutOfBounds {
                        name,
                        index: idx,
                        len: a.len(),
                    });
                }
                let elem_ty = match &self.place_ty(func, base) {
                    Type::Array(e, _) => (**e).clone(),
                    _ => Type::int(),
                };
                a[idx as usize] = canonical_for(&elem_ty, value.as_int());
                Ok(())
            }
            HirPlace::Deref(ptr) => {
                let p = self.eval(func, frame, ptr)?;
                let V::Ptr { slot, offset } = p else {
                    return Err(InterpError::BadPointer);
                };
                let mut guard = slot.lock().expect("slot");
                match &mut *guard {
                    SlotVal::Scalar(s) => {
                        if offset != 0 {
                            return Err(InterpError::BadPointer);
                        }
                        *s = value.as_int();
                    }
                    SlotVal::Array(a) => {
                        if offset < 0 || offset as usize >= a.len() {
                            return Err(InterpError::OutOfBounds {
                                name: "pointer target".to_string(),
                                index: offset,
                                len: a.len(),
                            });
                        }
                        a[offset as usize] = value.as_int();
                    }
                }
                Ok(())
            }
            HirPlace::Global(_) => Err(InterpError::BadPointer),
        }
    }

    fn place_ty(&self, func: &HirFunc, place: &HirPlace) -> Type {
        match place {
            HirPlace::Local(id) => func.local(*id).ty.clone(),
            HirPlace::Global(gid) => self.prog.global(*gid).ty.clone(),
            HirPlace::Index { base, .. } => match self.place_ty(func, base) {
                Type::Array(e, _) => *e,
                other => other,
            },
            HirPlace::Deref(e) => match &e.ty {
                Type::Ptr(t) => (**t).clone(),
                other => other.clone(),
            },
        }
    }

    // ----- expressions -----

    fn eval(&self, func: &HirFunc, frame: &Frame, e: &HirExpr) -> Result<V, InterpError> {
        match &e.kind {
            HirExprKind::Const(v) => Ok(V::Int(*v)),
            HirExprKind::Load(place) => self.load(func, frame, place),
            HirExprKind::Unary(op, a) => {
                let v = self.eval(func, frame, a)?.as_int();
                let ty = scalar_int_type(&e.ty);
                Ok(V::Int(match op {
                    UnOp::Neg => eval_un(chls_ir::UnKind::Neg, ty, v),
                    UnOp::Not => eval_un(chls_ir::UnKind::Not, ty, v),
                    UnOp::LogNot => (v == 0) as i64,
                }))
            }
            HirExprKind::Binary(op, a, b) => {
                let av = self.eval(func, frame, a)?;
                let bv = self.eval(func, frame, b)?;
                // Pointer arithmetic / comparison.
                if let V::Ptr { slot, offset } = &av {
                    return match (op, &bv) {
                        (BinOp::Add, V::Int(k)) => Ok(V::Ptr {
                            slot: slot.clone(),
                            offset: offset + k,
                        }),
                        (BinOp::Sub, V::Int(k)) => Ok(V::Ptr {
                            slot: slot.clone(),
                            offset: offset - k,
                        }),
                        (BinOp::Eq, V::Ptr { slot: s2, offset: o2 }) => {
                            Ok(V::Int((Arc::ptr_eq(slot, s2) && offset == o2) as i64))
                        }
                        (BinOp::Ne, V::Ptr { slot: s2, offset: o2 }) => {
                            Ok(V::Int(!(Arc::ptr_eq(slot, s2) && offset == o2) as i64))
                        }
                        _ => Err(InterpError::BadPointer),
                    };
                }
                let kind = bin_kind(*op);
                let ety = if kind.is_comparison() {
                    scalar_int_type(&a.ty)
                } else {
                    scalar_int_type(&e.ty)
                };
                Ok(V::Int(eval_bin(kind, ety, av.as_int(), bv.as_int())))
            }
            HirExprKind::Select(c, t, f) => {
                if self.eval(func, frame, c)?.as_int() != 0 {
                    self.eval(func, frame, t)
                } else {
                    self.eval(func, frame, f)
                }
            }
            HirExprKind::Cast(inner) => {
                let v = self.eval(func, frame, inner)?;
                match v {
                    V::Int(x) => Ok(V::Int(canonical_for(&e.ty, x))),
                    p @ V::Ptr { .. } => Ok(p),
                }
            }
            HirExprKind::AddrOf(place) => match &**place {
                HirPlace::Local(id) => Ok(V::Ptr {
                    slot: frame.slots[id.0 as usize].clone(),
                    offset: 0,
                }),
                HirPlace::Index { base, index } => {
                    let idx = self.eval(func, frame, index)?.as_int();
                    let slot = self.place_array_slot(func, frame, base)?;
                    Ok(V::Ptr { slot, offset: idx })
                }
                _ => Err(InterpError::BadPointer),
            },
        }
    }

    fn load(&self, func: &HirFunc, frame: &Frame, place: &HirPlace) -> Result<V, InterpError> {
        match place {
            HirPlace::Local(id) => {
                if let Some((slot, offset)) = frame.get_ptr(id.0 as usize) {
                    return Ok(V::Ptr { slot, offset });
                }
                let guard = frame.slots[id.0 as usize].lock().expect("slot");
                match &*guard {
                    SlotVal::Scalar(v) => Ok(V::Int(*v)),
                    SlotVal::Array(_) => Err(InterpError::BadPointer),
                }
            }
            HirPlace::Index { base, index } => {
                let idx = self.eval(func, frame, index)?.as_int();
                let slot = self.place_array_slot(func, frame, base)?;
                let name = base
                    .root_local()
                    .map(|l| func.local(l).name.clone())
                    .unwrap_or_else(|| "array".to_string());
                let guard = slot.lock().expect("slot");
                let SlotVal::Array(a) = &*guard else {
                    return Err(InterpError::BadPointer);
                };
                if idx < 0 || idx as usize >= a.len() {
                    return Err(InterpError::OutOfBounds {
                        name,
                        index: idx,
                        len: a.len(),
                    });
                }
                Ok(V::Int(a[idx as usize]))
            }
            HirPlace::Deref(ptr) => {
                let p = self.eval(func, frame, ptr)?;
                let V::Ptr { slot, offset } = p else {
                    return Err(InterpError::BadPointer);
                };
                let guard = slot.lock().expect("slot");
                match &*guard {
                    SlotVal::Scalar(v) => {
                        if offset != 0 {
                            return Err(InterpError::BadPointer);
                        }
                        Ok(V::Int(*v))
                    }
                    SlotVal::Array(a) => {
                        if offset < 0 || offset as usize >= a.len() {
                            return Err(InterpError::OutOfBounds {
                                name: "pointer target".to_string(),
                                index: offset,
                                len: a.len(),
                            });
                        }
                        Ok(V::Int(a[offset as usize]))
                    }
                }
            }
            HirPlace::Global(_) => Err(InterpError::BadPointer),
        }
    }
}
