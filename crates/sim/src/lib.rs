//! # chls-sim
//!
//! Simulators for the `chls` laboratory:
//!
//! * [`interp`] — the golden-model interpreter executing typed HIR
//!   directly, including `par` (threads) and rendezvous channels;
//! * [`netlist_sim`] — a levelized two-phase cycle simulator for word-level
//!   netlists;
//! * [`fsmd_sim`] — a cycle simulator for FSMD (finite-state machine +
//!   datapath) designs, the form most clocked backends emit;
//! * [`token_sim`] — an event-driven token simulator for asynchronous
//!   dataflow graphs (the CASH backend's output).
//!
//! ## Example
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use chls_sim::interp::{run, ArgValue, InterpOptions};
//!
//! let hir = chls_frontend::compile_to_hir(
//!     "int square(int x) { return x * x; }",
//! )?;
//! let r = run(&hir, "square", &[ArgValue::Scalar(9)], &InterpOptions::default())?;
//! assert_eq!(r.ret, Some(81));
//! # Ok(())
//! # }
//! ```

pub mod fsmd_sim;
pub mod interp;
pub mod netlist_sim;
pub mod tape;
pub mod token_sim;

pub use interp::{run, ArgValue, InterpError, InterpOptions, InterpResult, ParOrder};

#[cfg(test)]
mod interp_tests {
    use crate::interp::*;
    use chls_frontend::compile_to_hir;

    fn golden(src: &str, entry: &str, args: &[ArgValue]) -> InterpResult {
        let hir = compile_to_hir(src).expect("frontend ok");
        run(&hir, entry, args, &InterpOptions::default()).expect("interp ok")
    }

    #[test]
    fn scalar_arithmetic() {
        let r = golden(
            "int f(int a, int b) { return (a + b) * (a - b) / 2; }",
            "f",
            &[ArgValue::Scalar(7), ArgValue::Scalar(3)],
        );
        assert_eq!(r.ret, Some(20));
    }

    #[test]
    fn function_calls_native() {
        let r = golden(
            "int sq(int x) { return x * x; }
             int f(int a) { return sq(a) + sq(a + 1); }",
            "f",
            &[ArgValue::Scalar(3)],
        );
        assert_eq!(r.ret, Some(25));
    }

    #[test]
    fn arrays_by_reference_through_calls() {
        let r = golden(
            "void fill(int a[4], int v) { for (int i = 0; i < 4; i++) a[i] = v + i; }
             int f(int a[4]) { fill(a, 10); return a[3]; }",
            "f",
            &[ArgValue::Array(vec![0; 4])],
        );
        assert_eq!(r.ret, Some(13));
        assert_eq!(r.arrays[0].1, vec![10, 11, 12, 13]);
    }

    #[test]
    fn pointer_roundtrip() {
        let r = golden(
            "void bump(int *p) { *p = *p + 1; }
             int f() { int x = 41; bump(&x); return x; }",
            "f",
            &[],
        );
        assert_eq!(r.ret, Some(42));
    }

    #[test]
    fn pointer_walk_over_array() {
        let r = golden(
            "int f() {
                int a[4];
                for (int i = 0; i < 4; i++) a[i] = i * 10;
                int *p = &a[1];
                p = p + 2;
                return *p;
            }",
            "f",
            &[],
        );
        assert_eq!(r.ret, Some(30));
    }

    #[test]
    fn par_branches_share_state() {
        let r = golden(
            "int f() {
                int a = 0;
                int b = 0;
                par {
                    a = 3;
                    b = 4;
                }
                return a * 10 + b;
            }",
            "f",
            &[],
        );
        assert_eq!(r.ret, Some(34));
    }

    #[test]
    fn channel_rendezvous_producer_consumer() {
        let r = golden(
            "int f() {
                chan<int> c;
                int sum = 0;
                par {
                    { for (int i = 1; i <= 4; i++) send(c, i * i); }
                    { for (int j = 0; j < 4; j++) sum += recv(c); }
                }
                return sum;
            }",
            "f",
            &[],
        );
        assert_eq!(r.ret, Some(30));
    }

    #[test]
    fn channel_pipeline_two_stages() {
        let r = golden(
            "int f() {
                chan<int> c1;
                chan<int> c2;
                int out = 0;
                par {
                    { for (int i = 0; i < 3; i++) send(c1, i + 1); }
                    { for (int j = 0; j < 3; j++) send(c2, recv(c1) * 2); }
                    { for (int k = 0; k < 3; k++) out += recv(c2); }
                }
                return out;
            }",
            "f",
            &[],
        );
        assert_eq!(r.ret, Some(12));
    }

    #[test]
    fn rom_and_crc_style_table() {
        let r = golden(
            "const int tab[8] = {1, 2, 4, 8, 16, 32, 64, 128};
             int f(int n) {
                int acc = 0;
                for (int i = 0; i < n; i++) acc ^= tab[i];
                return acc;
             }",
            "f",
            &[ArgValue::Scalar(5)],
        );
        assert_eq!(r.ret, Some(31));
    }

    #[test]
    fn delay_is_functionally_inert() {
        let r = golden(
            "int f() { int x = 1; delay; x = x + 1; delay; return x; }",
            "f",
            &[],
        );
        assert_eq!(r.ret, Some(2));
    }

    #[test]
    fn bit_precise_wrapping() {
        let r = golden(
            "uint<4> f(uint<4> x) { return x + 15; }",
            "f",
            &[ArgValue::Scalar(3)],
        );
        assert_eq!(r.ret, Some(2));
    }

    #[test]
    fn out_of_bounds_reported_with_name() {
        let hir = compile_to_hir("int f(int a[4], int i) { return a[i]; }").unwrap();
        let err = run(
            &hir,
            "f",
            &[ArgValue::Array(vec![0; 4]), ArgValue::Scalar(4)],
            &InterpOptions::default(),
        )
        .unwrap_err();
        match err {
            InterpError::OutOfBounds { name, index, len } => {
                assert_eq!(name, "a");
                assert_eq!(index, 4);
                assert_eq!(len, 4);
            }
            other => panic!("expected OutOfBounds, got {other:?}"),
        }
    }

    #[test]
    fn step_limit_enforced() {
        let hir = compile_to_hir("void f() { while (true) { } }").unwrap();
        let err = run(&hir, "f", &[], &InterpOptions { step_limit: 100, ..InterpOptions::default() }).unwrap_err();
        assert!(matches!(err, InterpError::StepLimit(_)));
    }

    #[test]
    fn missing_entry_reported() {
        let hir = compile_to_hir("int f() { return 0; }").unwrap();
        let err = run(&hir, "nope", &[], &InterpOptions::default()).unwrap_err();
        assert!(matches!(err, InterpError::NoSuchFunction(_)));
    }

    #[test]
    fn interp_matches_ir_executor() {
        // Cross-validation of the two golden models on a nontrivial kernel.
        let src = "int f(int a[8], int n) {
            int best = a[0];
            for (int i = 1; i < n; i++) {
                if (a[i] > best) best = a[i];
            }
            int sum = 0;
            for (int i = 0; i < n; i++) sum += a[i] * 2;
            return best * 1000 + sum;
        }";
        let data = vec![3, -1, 4, 1, -5, 9, 2, 6];
        let hir = compile_to_hir(src).unwrap();
        let ir_args = [
            chls_ir::exec::ArgValue::Array(data.clone()),
            chls_ir::exec::ArgValue::Scalar(8),
        ];
        let (id, _) = hir.func_by_name("f").unwrap();
        let f = chls_ir::lower_function(&hir, id).unwrap();
        let ir_r =
            chls_ir::exec::execute(&f, &ir_args, &chls_ir::exec::ExecOptions::default()).unwrap();
        let hir_r = run(
            &hir,
            "f",
            &[ArgValue::Array(data), ArgValue::Scalar(8)],
            &InterpOptions::default(),
        )
        .unwrap();
        assert_eq!(ir_r.ret, hir_r.ret);
        assert_eq!(ir_r.ret, Some(9038));
    }
}
