//! Asynchronous (clockless) timing models.
//!
//! Two levels of fidelity:
//!
//! * [`trace_completion_time`] — the *dataflow limit*: given a dynamic
//!   dependence trace from the IR executor and per-operation latencies, the
//!   completion time if every operation fired the instant its inputs were
//!   ready (an ideal asynchronous machine with unlimited units). CASH's
//!   dataflow circuits approach this bound.
//! * The full token-level simulator for CASH dataflow graphs lives in
//!   `chls-dataflow` (it needs the graph structure itself).
//!
//! The same trace scored with a *clocked* model (every op takes one cycle
//! of the worst-case period) gives the synchronous baseline for the
//! async-vs-sync experiment.

use chls_ir::exec::TraceEntry;
use chls_ir::{Function, InstKind, UnKind};
use chls_rtl::cost::{CostModel, OpClass};
use chls_rtl::netlist::bin_class;

/// Latency assignment for trace scoring.
pub trait LatencyModel {
    /// Latency of one executed instruction, in abstract time units.
    fn latency(&self, f: &Function, e: &TraceEntry) -> u64;
}

/// Latencies from the shared cost model (delay-proportional).
#[derive(Debug, Clone)]
pub struct CostLatency<'m> {
    /// The cost model supplying delays.
    pub model: &'m CostModel,
}

/// The cost class of an executed instruction.
pub fn inst_op_class(f: &Function, e: &TraceEntry) -> (OpClass, u16) {
    let inst = f.inst(e.inst);
    match &inst.kind {
        InstKind::Bin(op, a, _) => {
            let w = if op.is_comparison() {
                f.inst(*a).ty.width
            } else {
                inst.ty.width
            };
            (bin_class(*op), w)
        }
        InstKind::Un(UnKind::Neg, _) => (OpClass::AddSub, inst.ty.width),
        InstKind::Un(UnKind::Not, _) => (OpClass::Logic, inst.ty.width),
        InstKind::Select { .. } => (OpClass::Mux, inst.ty.width),
        InstKind::Cast { .. } => (OpClass::Cast, inst.ty.width),
        InstKind::Load { .. } => (OpClass::MemRead, inst.ty.width),
        InstKind::Store { .. } => (OpClass::MemWrite, inst.ty.width),
        InstKind::Param(_) | InstKind::Const(_) | InstKind::Phi(_) => {
            (OpClass::Const, inst.ty.width)
        }
    }
}

impl LatencyModel for CostLatency<'_> {
    fn latency(&self, f: &Function, e: &TraceEntry) -> u64 {
        let (class, width) = inst_op_class(f, e);
        self.model.async_latency(class, width)
    }
}

/// Uniform latency for every operation (the synchronous strawman).
#[derive(Debug, Clone, Copy)]
pub struct UniformLatency(pub u64);

impl LatencyModel for UniformLatency {
    fn latency(&self, _f: &Function, _e: &TraceEntry) -> u64 {
        self.0
    }
}

/// Both trace scores, computed in one pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceMetrics {
    /// Async completion time (the dataflow limit), in model time units.
    pub completion_time: u64,
    /// Longest dependence chain, in operations.
    pub critical_path_len: u64,
}

/// Scores a dynamic trace in a single pass: each entry finishes at
/// `max(dep finish times) + latency`, and its depth is one more than its
/// deepest dependence. Traces run to millions of entries, so the two
/// per-entry arrays are folded into one and filled in the same sweep
/// instead of walking the trace once per metric.
pub fn trace_metrics(f: &Function, trace: &[TraceEntry], model: &impl LatencyModel) -> TraceMetrics {
    // (finish time, chain depth) per entry.
    let mut scores: Vec<(u64, u64)> = Vec::with_capacity(trace.len());
    let mut completion: u64 = 0;
    let mut worst_depth: u64 = 0;
    for e in trace {
        let (mut ready, mut depth) = (0, 0);
        for &d in &e.deps {
            let (df, dd) = scores[d as usize];
            ready = ready.max(df);
            depth = depth.max(dd);
        }
        let t = ready + model.latency(f, e);
        let d = depth + 1;
        scores.push((t, d));
        completion = completion.max(t);
        worst_depth = worst_depth.max(d);
    }
    TraceMetrics {
        completion_time: completion,
        critical_path_len: worst_depth,
    }
}

/// Completion time of a dynamic trace on an ideal asynchronous dataflow
/// machine. Thin wrapper over [`trace_metrics`].
pub fn trace_completion_time(
    f: &Function,
    trace: &[TraceEntry],
    model: &impl LatencyModel,
) -> u64 {
    trace_metrics(f, trace, model).completion_time
}

/// The length of the longest dependence chain (in operations) — the
/// critical path that bounds ILP.
pub fn trace_critical_path_len(trace: &[TraceEntry]) -> u64 {
    let mut depth: Vec<u64> = Vec::with_capacity(trace.len());
    let mut worst = 0;
    for e in trace {
        let d = e
            .deps
            .iter()
            .map(|&x| depth[x as usize])
            .max()
            .unwrap_or(0)
            + 1;
        depth.push(d);
        worst = worst.max(d);
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use chls_ir::exec::{execute, ArgValue, ExecOptions};
    use chls_ir::lower_function;

    fn trace_of(src: &str, name: &str, args: &[ArgValue]) -> (Function, Vec<TraceEntry>) {
        let hir = chls_frontend::compile_to_hir(src).expect("frontend ok");
        let (id, _) = hir.func_by_name(name).expect("function exists");
        let f = lower_function(&hir, id).expect("lowering ok");
        let r = execute(
            &f,
            args,
            &ExecOptions {
                record_trace: true,
                ..Default::default()
            },
        )
        .expect("exec ok");
        (f, r.trace)
    }

    #[test]
    fn independent_ops_overlap() {
        // (a+b) and (a-b) run in parallel; the multiply waits for both.
        let (f, trace) = trace_of(
            "int f(int a, int b) { return (a + b) * (a - b); }",
            "f",
            &[ArgValue::Scalar(5), ArgValue::Scalar(2)],
        );
        let t = trace_completion_time(&f, &trace, &UniformLatency(10));
        // Two levels: {add, sub} then mul = 20, not 30.
        assert_eq!(t, 20);
        assert_eq!(trace_critical_path_len(&trace), 2);
        // The combined single pass agrees with both wrappers.
        let m = trace_metrics(&f, &trace, &UniformLatency(10));
        assert_eq!(m.completion_time, 20);
        assert_eq!(m.critical_path_len, 2);
    }

    #[test]
    fn chain_is_serial() {
        let (f, trace) = trace_of(
            "int f(int a) { int x = a + 1; x = x + 2; x = x + 3; return x; }",
            "f",
            &[ArgValue::Scalar(0)],
        );
        let t = trace_completion_time(&f, &trace, &UniformLatency(10));
        assert_eq!(t, 30);
        assert_eq!(trace_critical_path_len(&trace), 3);
    }

    #[test]
    fn cost_latency_penalizes_division() {
        let (f, trace) = trace_of(
            "int f(int a, int b) { return a / (b + 1); }",
            "f",
            &[ArgValue::Scalar(100), ArgValue::Scalar(3)],
        );
        let model = CostModel::new();
        let t = trace_completion_time(&f, &trace, &CostLatency { model: &model });
        let add_only = model.async_latency(OpClass::AddSub, 32);
        let div = model.async_latency(OpClass::DivRem, 32);
        assert_eq!(t, add_only + div);
        assert!(div > 10 * add_only);
    }

    #[test]
    fn unbalanced_latencies_favor_async() {
        // One slow op (div) on an off-critical path: async overlaps it with
        // the chain of adds; a one-size-fits-all clock cannot.
        let src = "int f(int a, int b) {
            int slow = a / 3;
            int fast = b + 1; fast = fast + 2; fast = fast + 3;
            return slow + fast;
        }";
        let (f, trace) = trace_of(src, "f", &[ArgValue::Scalar(9), ArgValue::Scalar(0)]);
        let model = CostModel::new();
        let async_t = trace_completion_time(&f, &trace, &CostLatency { model: &model });
        // Synchronous: every op takes one clock at the divider's latency.
        let div = model.async_latency(OpClass::DivRem, 32);
        let sync_t = trace_critical_path_len(&trace) * div;
        assert!(async_t < sync_t, "async {async_t} should beat sync {sync_t}");
    }
}
