//! Two-phase levelized simulator for word-level netlists.
//!
//! Each [`NetlistSim::step`] evaluates all combinational cells in
//! topological order from the current register/RAM state and inputs, then
//! commits registers and RAM writes at the simulated clock edge. Purely
//! combinational netlists (the Cones backend's output) use
//! [`NetlistSim::eval`] alone.

use chls_ir::{eval_bin, eval_cast, eval_un};
use chls_rtl::netlist::{CellId, CellKind, Netlist};
use std::collections::HashMap;
use std::fmt;

/// Simulation errors.
#[derive(Debug, Clone, PartialEq)]
pub enum NetlistSimError {
    /// RAM access out of range.
    OutOfBounds {
        /// RAM name.
        ram: String,
        /// Offending address.
        addr: i64,
        /// Word count.
        len: usize,
    },
    /// The combinational cells contain a cycle.
    CombinationalCycle(CellId),
    /// An input port was not driven.
    MissingInput(String),
}

impl fmt::Display for NetlistSimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistSimError::OutOfBounds { ram, addr, len } => {
                write!(f, "address {addr} out of range for ram `{ram}` (len {len})")
            }
            NetlistSimError::CombinationalCycle(c) => {
                write!(f, "combinational cycle through {c}")
            }
            NetlistSimError::MissingInput(n) => write!(f, "input `{n}` not driven"),
        }
    }
}

impl std::error::Error for NetlistSimError {}

/// Stateful netlist simulator.
#[derive(Debug, Clone)]
pub struct NetlistSim<'n> {
    nl: &'n Netlist,
    /// Current register values (indexed by cell).
    reg_state: HashMap<CellId, i64>,
    /// Current RAM contents.
    rams: Vec<Vec<i64>>,
    /// Input port values.
    inputs: HashMap<String, i64>,
    /// Topological order of all cells (registers treated as sources).
    topo: Vec<CellId>,
}

impl<'n> NetlistSim<'n> {
    /// Creates a simulator with registers at their init values and RAMs at
    /// their initial contents (zeros if none).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistSimError::CombinationalCycle`] for cyclic netlists.
    pub fn new(nl: &'n Netlist) -> Result<Self, NetlistSimError> {
        let mut reg_state = HashMap::new();
        for (i, c) in nl.cells.iter().enumerate() {
            if let CellKind::Reg { init, .. } = &c.kind {
                reg_state.insert(CellId(i as u32), c.ty.canonicalize(*init));
            }
        }
        let rams = nl
            .rams
            .iter()
            .map(|r| {
                let mut v = r.init.clone().unwrap_or_default();
                v.resize(r.len, 0);
                v
            })
            .collect();
        let topo = topo_order(nl)?;
        Ok(NetlistSim {
            nl,
            reg_state,
            rams,
            inputs: HashMap::new(),
            topo,
        })
    }

    /// Drives an input port.
    pub fn set_input(&mut self, name: impl Into<String>, value: i64) {
        self.inputs.insert(name.into(), value);
    }

    /// Evaluates all combinational logic and returns the value of every
    /// net, without advancing the clock.
    ///
    /// # Errors
    ///
    /// See [`NetlistSimError`].
    pub fn eval(&self) -> Result<Vec<i64>, NetlistSimError> {
        let mut values = vec![0i64; self.nl.cells.len()];
        for &id in &self.topo {
            let cell = self.nl.cell(id);
            let v = match &cell.kind {
                CellKind::Input { name } => *self
                    .inputs
                    .get(name)
                    .ok_or_else(|| NetlistSimError::MissingInput(name.clone()))?,
                CellKind::Const(c) => *c,
                CellKind::Un(op, a) => eval_un(*op, cell.ty, values[a.0 as usize]),
                CellKind::Bin(op, a, b) => {
                    let ety = if op.is_comparison() {
                        self.nl.cell(*a).ty
                    } else {
                        cell.ty
                    };
                    eval_bin(*op, ety, values[a.0 as usize], values[b.0 as usize])
                }
                CellKind::Mux { sel, a, b } => {
                    if values[sel.0 as usize] != 0 {
                        values[a.0 as usize]
                    } else {
                        values[b.0 as usize]
                    }
                }
                CellKind::Cast { from, val } => {
                    eval_cast(*from, cell.ty, values[val.0 as usize])
                }
                CellKind::Reg { .. } => self.reg_state[&id],
                CellKind::RamRead { ram, addr } => {
                    let a = values[addr.0 as usize];
                    let storage = &self.rams[ram.0 as usize];
                    if a < 0 || a as usize >= storage.len() {
                        return Err(NetlistSimError::OutOfBounds {
                            ram: self.nl.rams[ram.0 as usize].name.clone(),
                            addr: a,
                            len: storage.len(),
                        });
                    }
                    storage[a as usize]
                }
                // Write ports produce no value.
                CellKind::RamWrite { .. } => 0,
            };
            values[id.0 as usize] = cell.ty.canonicalize(v);
        }
        Ok(values)
    }

    /// Evaluates combinational logic and commits one clock edge.
    ///
    /// # Errors
    ///
    /// See [`NetlistSimError`].
    pub fn step(&mut self) -> Result<(), NetlistSimError> {
        let values = self.eval()?;
        // Commit registers.
        let mut new_regs = self.reg_state.clone();
        for (i, c) in self.nl.cells.iter().enumerate() {
            match &c.kind {
                CellKind::Reg { next, en, .. } => {
                    let enabled = en.map(|e| values[e.0 as usize] != 0).unwrap_or(true);
                    if enabled {
                        new_regs.insert(
                            CellId(i as u32),
                            c.ty.canonicalize(values[next.0 as usize]),
                        );
                    }
                }
                CellKind::RamWrite { ram, addr, data, en } => {
                    if values[en.0 as usize] != 0 {
                        let a = values[addr.0 as usize];
                        let storage = &mut self.rams[ram.0 as usize];
                        if a < 0 || a as usize >= storage.len() {
                            return Err(NetlistSimError::OutOfBounds {
                                ram: self.nl.rams[ram.0 as usize].name.clone(),
                                addr: a,
                                len: storage.len(),
                            });
                        }
                        let elem = self.nl.rams[ram.0 as usize].elem;
                        storage[a as usize] = elem.canonicalize(values[data.0 as usize]);
                    }
                }
                _ => {}
            }
        }
        self.reg_state = new_regs;
        Ok(())
    }

    /// Value of a named output after [`NetlistSim::eval`].
    ///
    /// # Errors
    ///
    /// See [`NetlistSimError`]; also fails if no such output exists.
    pub fn output(&self, name: &str) -> Result<i64, NetlistSimError> {
        let values = self.eval()?;
        let (_, net) = self
            .nl
            .outputs
            .iter()
            .find(|(n, _)| n == name)
            .ok_or_else(|| NetlistSimError::MissingInput(format!("output {name}")))?;
        Ok(values[net.0 as usize])
    }

    /// Current RAM contents.
    pub fn ram(&self, index: usize) -> &[i64] {
        &self.rams[index]
    }
}

/// Topological order with registers as sources (their `next` inputs are
/// not traversed) and everything else ordered after its inputs.
fn topo_order(nl: &Netlist) -> Result<Vec<CellId>, NetlistSimError> {
    let n = nl.cells.len();
    let mut order = Vec::with_capacity(n);
    let mut state = vec![0u8; n];
    // Iterative DFS.
    for start in 0..n {
        if state[start] != 0 {
            continue;
        }
        let mut stack: Vec<(u32, bool)> = vec![(start as u32, false)];
        while let Some((i, expanded)) = stack.pop() {
            if expanded {
                state[i as usize] = 2;
                order.push(CellId(i));
                continue;
            }
            if state[i as usize] == 2 {
                continue;
            }
            if state[i as usize] == 1 {
                return Err(NetlistSimError::CombinationalCycle(CellId(i)));
            }
            state[i as usize] = 1;
            stack.push((i, true));
            let cell = &nl.cells[i as usize];
            // Registers are sequential sources: do not traverse inputs for
            // ordering (their inputs are still evaluated as ordinary cells
            // elsewhere in the same pass — the commit uses post-eval
            // values).
            if matches!(cell.kind, CellKind::Reg { .. }) {
                continue;
            }
            cell.kind.for_each_input(|inp| {
                if state[inp.0 as usize] != 2 {
                    stack.push((inp.0, false));
                }
            });
        }
    }
    Ok(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chls_frontend::IntType;
    use chls_ir::BinKind;
    use chls_rtl::netlist::Ram;

    fn u(w: u16) -> IntType {
        IntType::new(w, false)
    }

    #[test]
    fn combinational_adder() {
        let mut nl = Netlist::new("add");
        let a = nl.add(CellKind::Input { name: "a".into() }, u(8));
        let b = nl.add(CellKind::Input { name: "b".into() }, u(8));
        let s = nl.add(CellKind::Bin(BinKind::Add, a, b), u(8));
        nl.set_output("s", s);
        let mut sim = NetlistSim::new(&nl).unwrap();
        sim.set_input("a", 200);
        sim.set_input("b", 100);
        assert_eq!(sim.output("s").unwrap(), 44); // wraps at 8 bits
    }

    #[test]
    fn register_holds_and_updates() {
        let mut nl = Netlist::new("cnt");
        let one = nl.add(CellKind::Const(1), u(8));
        // Placeholder next; patch after creating the register.
        let reg = nl.add(
            CellKind::Reg {
                next: one,
                init: 0,
                en: None,
            },
            u(8),
        );
        let next = nl.add(CellKind::Bin(BinKind::Add, reg, one), u(8));
        nl.cells[reg.0 as usize].kind = CellKind::Reg {
            next,
            init: 0,
            en: None,
        };
        nl.set_output("q", reg);
        let mut sim = NetlistSim::new(&nl).unwrap();
        assert_eq!(sim.output("q").unwrap(), 0);
        sim.step().unwrap();
        assert_eq!(sim.output("q").unwrap(), 1);
        sim.step().unwrap();
        sim.step().unwrap();
        assert_eq!(sim.output("q").unwrap(), 3);
    }

    #[test]
    fn enabled_register_gates_updates() {
        let mut nl = Netlist::new("en");
        let en = nl.add(CellKind::Input { name: "en".into() }, u(1));
        let one = nl.add(CellKind::Const(1), u(8));
        let reg = nl.add(
            CellKind::Reg {
                next: one,
                init: 0,
                en: Some(en),
            },
            u(8),
        );
        let next = nl.add(CellKind::Bin(BinKind::Add, reg, one), u(8));
        nl.cells[reg.0 as usize].kind = CellKind::Reg {
            next,
            init: 0,
            en: Some(en),
        };
        nl.set_output("q", reg);
        let mut sim = NetlistSim::new(&nl).unwrap();
        sim.set_input("en", 0);
        sim.step().unwrap();
        assert_eq!(sim.output("q").unwrap(), 0);
        sim.set_input("en", 1);
        sim.step().unwrap();
        assert_eq!(sim.output("q").unwrap(), 1);
    }

    #[test]
    fn ram_write_then_read() {
        let mut nl = Netlist::new("ram");
        let ram = nl.add_ram(Ram {
            name: "m".into(),
            elem: u(8),
            len: 4,
            init: None,
        });
        let addr = nl.add(CellKind::Input { name: "addr".into() }, u(8));
        let data = nl.add(CellKind::Input { name: "data".into() }, u(8));
        let we = nl.add(CellKind::Input { name: "we".into() }, u(1));
        nl.add(
            CellKind::RamWrite {
                ram,
                addr,
                data,
                en: we,
            },
            u(8),
        );
        let rd = nl.add(CellKind::RamRead { ram, addr }, u(8));
        nl.set_output("rd", rd);
        let mut sim = NetlistSim::new(&nl).unwrap();
        sim.set_input("addr", 2);
        sim.set_input("data", 77);
        sim.set_input("we", 1);
        // Async read sees old contents before the edge...
        assert_eq!(sim.output("rd").unwrap(), 0);
        sim.step().unwrap();
        // ...and the written value after.
        sim.set_input("we", 0);
        assert_eq!(sim.output("rd").unwrap(), 77);
        assert_eq!(sim.ram(0), &[0, 0, 77, 0]);
    }

    #[test]
    fn rom_initialized() {
        let mut nl = Netlist::new("rom");
        let rom = nl.add_ram(Ram {
            name: "t".into(),
            elem: u(8),
            len: 3,
            init: Some(vec![5, 6, 7]),
        });
        let addr = nl.add(CellKind::Input { name: "addr".into() }, u(8));
        let rd = nl.add(CellKind::RamRead { ram: rom, addr }, u(8));
        nl.set_output("rd", rd);
        let mut sim = NetlistSim::new(&nl).unwrap();
        sim.set_input("addr", 1);
        assert_eq!(sim.output("rd").unwrap(), 6);
    }

    #[test]
    fn missing_input_is_error() {
        let mut nl = Netlist::new("x");
        let a = nl.add(CellKind::Input { name: "a".into() }, u(8));
        nl.set_output("o", a);
        let sim = NetlistSim::new(&nl).unwrap();
        assert!(matches!(
            sim.output("o"),
            Err(NetlistSimError::MissingInput(_))
        ));
    }

    #[test]
    fn cycle_reported_at_construction() {
        let mut nl = Netlist::new("cyc");
        let a = nl.add(CellKind::Input { name: "a".into() }, u(8));
        let fake = nl.add(CellKind::Const(0), u(8));
        let s = nl.add(CellKind::Bin(BinKind::Add, a, fake), u(8));
        nl.cells[s.0 as usize].kind = CellKind::Bin(BinKind::Add, a, s);
        nl.set_output("o", s);
        assert!(matches!(
            NetlistSim::new(&nl),
            Err(NetlistSimError::CombinationalCycle(_))
        ));
    }

    #[test]
    fn signed_comparison_in_netlist() {
        let mut nl = Netlist::new("cmp");
        let a = nl.add(CellKind::Input { name: "a".into() }, IntType::new(8, true));
        let b = nl.add(CellKind::Input { name: "b".into() }, IntType::new(8, true));
        let lt = nl.add(CellKind::Bin(BinKind::Lt, a, b), u(1));
        nl.set_output("lt", lt);
        let mut sim = NetlistSim::new(&nl).unwrap();
        sim.set_input("a", -5);
        sim.set_input("b", 3);
        assert_eq!(sim.output("lt").unwrap(), 1);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use chls_frontend::IntType;
    use chls_ir::BinKind;
    use proptest::prelude::*;

    /// Builds a random layered combinational netlist over two inputs and
    /// returns it with the expected evaluation closure inputs.
    fn arb_netlist() -> impl Strategy<Value = Netlist> {
        (2usize..24, any::<u64>()).prop_map(|(n, seed)| {
            let ty = IntType::new(16, false);
            let mut nl = Netlist::new("rand");
            let a = nl.add(CellKind::Input { name: "a".into() }, ty);
            let b = nl.add(CellKind::Input { name: "b".into() }, ty);
            let mut state = seed | 1;
            let mut next = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            let mut nets = vec![a, b];
            for _ in 0..n {
                let x = nets[(next() as usize) % nets.len()];
                let y = nets[(next() as usize) % nets.len()];
                let cell = match next() % 6 {
                    0 => CellKind::Bin(BinKind::Add, x, y),
                    1 => CellKind::Bin(BinKind::Xor, x, y),
                    2 => CellKind::Bin(BinKind::And, x, y),
                    3 => CellKind::Bin(BinKind::Mul, x, y),
                    4 => CellKind::Const((next() % 1000) as i64),
                    _ => {
                        let s = nl.add(CellKind::Bin(BinKind::Lt, x, y), IntType::new(1, false));
                        CellKind::Mux { sel: s, a: x, b: y }
                    }
                };
                let id = nl.add(cell, ty);
                nets.push(id);
            }
            let out = *nets.last().expect("nonempty");
            nl.set_output("o", out);
            nl
        })
    }

    proptest! {
        /// Constant folding plus dead-cell sweeping never changes the
        /// simulated output of a combinational netlist.
        #[test]
        fn fold_and_sweep_preserve_semantics(
            nl in arb_netlist(),
            a in 0i64..65_536,
            b in 0i64..65_536,
        ) {
            let mut sim = NetlistSim::new(&nl).expect("builds");
            sim.set_input("a", a);
            sim.set_input("b", b);
            let before = sim.output("o").expect("evaluates");

            let mut optimized = nl.clone();
            optimized.fold_constants();
            optimized.sweep_dead();
            let mut sim2 = NetlistSim::new(&optimized).expect("builds");
            sim2.set_input("a", a);
            sim2.set_input("b", b);
            let after = sim2.output("o").expect("evaluates");
            prop_assert_eq!(before, after);
            prop_assert!(optimized.cells.len() <= nl.cells.len());
        }

        /// The Verilog emitter produces one assign/always per live cell —
        /// smoke structural invariant.
        #[test]
        fn verilog_emission_total(nl in arb_netlist()) {
            let mut nl = nl;
            nl.sweep_dead();
            let v = chls_rtl::netlist_to_verilog(&nl);
            prop_assert!(v.contains("module rand"));
            prop_assert!(v.contains("endmodule"));
            // Every non-input cell appears as a driven net.
            for (i, c) in nl.cells.iter().enumerate() {
                if !matches!(c.kind, CellKind::Input { .. }) {
                    prop_assert!(
                        v.contains(&format!("n{i} =")) || v.contains(&format!("n{i} <=")),
                        "cell n{i} missing from Verilog"
                    );
                }
            }
        }
    }
}
