//! Two-phase levelized simulator for word-level netlists.
//!
//! Each [`NetlistSim::step`] evaluates all combinational cells in
//! topological order from the current register/RAM state and inputs, then
//! commits registers and RAM writes at the simulated clock edge. Purely
//! combinational netlists (the Cones backend's output) use
//! [`NetlistSim::eval`] alone.

use chls_ir::{eval_bin, eval_cast, eval_un};
use chls_rtl::netlist::{CellId, CellKind, Netlist};
use std::collections::HashMap;
use std::fmt;

/// Simulation errors.
#[derive(Debug, Clone, PartialEq)]
pub enum NetlistSimError {
    /// RAM access out of range.
    OutOfBounds {
        /// RAM name.
        ram: String,
        /// Offending address.
        addr: i64,
        /// Word count.
        len: usize,
    },
    /// The combinational cells contain a cycle.
    CombinationalCycle(CellId),
    /// An input port was not driven.
    MissingInput(String),
}

impl fmt::Display for NetlistSimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistSimError::OutOfBounds { ram, addr, len } => {
                write!(f, "address {addr} out of range for ram `{ram}` (len {len})")
            }
            NetlistSimError::CombinationalCycle(c) => {
                write!(f, "combinational cycle through {c}")
            }
            NetlistSimError::MissingInput(n) => write!(f, "input `{n}` not driven"),
        }
    }
}

impl std::error::Error for NetlistSimError {}

/// A register cell's commit ports, precomputed at construction so
/// [`NetlistSim::step`] does not rescan every cell.
#[derive(Debug, Clone, Copy)]
struct RegPort {
    /// The register cell.
    cell: u32,
    /// Cell driving the next value.
    next: u32,
    /// Clock-enable cell, or `u32::MAX` for always-enabled.
    en: u32,
}

/// A RAM write port, precomputed at construction. Kept in cell-index
/// order: simultaneous writes to one address commit last-cell-wins.
#[derive(Debug, Clone, Copy)]
struct WritePort {
    ram: u32,
    addr: u32,
    data: u32,
    en: u32,
}

/// Stateful netlist simulator.
///
/// State is held densely: register values live in a `Vec<i64>` indexed by
/// cell id, and one combinational-value buffer is reused across
/// [`NetlistSim::step`] calls, so the per-cycle cost is two passes over
/// flat arrays with no allocation and no hashing.
#[derive(Debug, Clone)]
pub struct NetlistSim<'n> {
    nl: &'n Netlist,
    /// Current register values, indexed by cell id (non-register slots
    /// are unused and stay 0).
    reg_state: Vec<i64>,
    /// Current RAM contents.
    rams: Vec<Vec<i64>>,
    /// Driven value of each `Input` cell, indexed by cell id.
    input_vals: Vec<Option<i64>>,
    /// Cell ids of each named input, for [`NetlistSim::set_input`].
    input_cells: HashMap<String, Vec<u32>>,
    /// Topological order of all cells (registers treated as sources).
    topo: Vec<CellId>,
    /// Register commit list.
    reg_ports: Vec<RegPort>,
    /// RAM write ports, in cell-index order.
    write_ports: Vec<WritePort>,
    /// Scratch buffer of combinational values, reused across cycles.
    values: Vec<i64>,
}

impl<'n> NetlistSim<'n> {
    /// Creates a simulator with registers at their init values and RAMs at
    /// their initial contents (zeros if none).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistSimError::CombinationalCycle`] for cyclic netlists.
    pub fn new(nl: &'n Netlist) -> Result<Self, NetlistSimError> {
        let _span = chls_trace::span("sim.netlist.build");
        let n = nl.cells.len();
        let mut reg_state = vec![0i64; n];
        let mut reg_ports = Vec::new();
        let mut write_ports = Vec::new();
        let mut input_cells: HashMap<String, Vec<u32>> = HashMap::new();
        for (i, c) in nl.cells.iter().enumerate() {
            match &c.kind {
                CellKind::Reg { next, init, en } => {
                    reg_state[i] = c.ty.canonicalize(*init);
                    reg_ports.push(RegPort {
                        cell: i as u32,
                        next: next.0,
                        en: en.map_or(u32::MAX, |e| e.0),
                    });
                }
                CellKind::RamWrite { ram, addr, data, en } => {
                    write_ports.push(WritePort {
                        ram: ram.0,
                        addr: addr.0,
                        data: data.0,
                        en: en.0,
                    });
                }
                CellKind::Input { name } => {
                    input_cells.entry(name.clone()).or_default().push(i as u32);
                }
                _ => {}
            }
        }
        let rams = nl
            .rams
            .iter()
            .map(|r| {
                let mut v = r.init.clone().unwrap_or_default();
                v.resize(r.len, 0);
                v
            })
            .collect();
        let topo = topo_order(nl)?;
        Ok(NetlistSim {
            nl,
            reg_state,
            rams,
            input_vals: vec![None; n],
            input_cells,
            topo,
            reg_ports,
            write_ports,
            values: vec![0i64; n],
        })
    }

    /// Drives an input port.
    pub fn set_input(&mut self, name: impl Into<String>, value: i64) {
        let name = name.into();
        if let Some(cells) = self.input_cells.get(&name) {
            for &c in cells {
                self.input_vals[c as usize] = Some(value);
            }
        }
    }

    /// Evaluates every combinational cell in topological order into
    /// `values`, which must be `cells.len()` long.
    fn eval_into(&self, values: &mut [i64]) -> Result<(), NetlistSimError> {
        debug_assert_eq!(values.len(), self.nl.cells.len());
        for &id in &self.topo {
            let cell = self.nl.cell(id);
            let v = match &cell.kind {
                CellKind::Input { name } => {
                    self.input_vals[id.0 as usize].ok_or_else(|| {
                        NetlistSimError::MissingInput(name.clone())
                    })?
                }
                CellKind::Const(c) => *c,
                CellKind::Un(op, a) => eval_un(*op, cell.ty, values[a.0 as usize]),
                CellKind::Bin(op, a, b) => {
                    let ety = if op.is_comparison() {
                        self.nl.cell(*a).ty
                    } else {
                        cell.ty
                    };
                    eval_bin(*op, ety, values[a.0 as usize], values[b.0 as usize])
                }
                CellKind::Mux { sel, a, b } => {
                    if values[sel.0 as usize] != 0 {
                        values[a.0 as usize]
                    } else {
                        values[b.0 as usize]
                    }
                }
                CellKind::Cast { from, val } => {
                    eval_cast(*from, cell.ty, values[val.0 as usize])
                }
                CellKind::Reg { .. } => self.reg_state[id.0 as usize],
                CellKind::RamRead { ram, addr } => {
                    let a = values[addr.0 as usize];
                    let storage = &self.rams[ram.0 as usize];
                    if a < 0 || a as usize >= storage.len() {
                        return Err(NetlistSimError::OutOfBounds {
                            ram: self.nl.rams[ram.0 as usize].name.clone(),
                            addr: a,
                            len: storage.len(),
                        });
                    }
                    storage[a as usize]
                }
                // Write ports produce no value.
                CellKind::RamWrite { .. } => 0,
            };
            values[id.0 as usize] = cell.ty.canonicalize(v);
        }
        Ok(())
    }

    /// Evaluates all combinational logic and returns the value of every
    /// net, without advancing the clock.
    ///
    /// # Errors
    ///
    /// See [`NetlistSimError`].
    pub fn eval(&self) -> Result<Vec<i64>, NetlistSimError> {
        let mut values = vec![0i64; self.nl.cells.len()];
        self.eval_into(&mut values)?;
        Ok(values)
    }

    /// Commits one clock edge from the evaluated `values`: RAM writes in
    /// cell order first (an out-of-bounds write aborts before any
    /// register commits, matching the original interleaved-scan
    /// semantics), then registers.
    fn commit(&mut self, values: &[i64]) -> Result<(), NetlistSimError> {
        for w in &self.write_ports {
            if values[w.en as usize] != 0 {
                let a = values[w.addr as usize];
                let storage = &mut self.rams[w.ram as usize];
                if a < 0 || a as usize >= storage.len() {
                    return Err(NetlistSimError::OutOfBounds {
                        ram: self.nl.rams[w.ram as usize].name.clone(),
                        addr: a,
                        len: storage.len(),
                    });
                }
                let elem = self.nl.rams[w.ram as usize].elem;
                storage[a as usize] = elem.canonicalize(values[w.data as usize]);
            }
        }
        for r in &self.reg_ports {
            let enabled = r.en == u32::MAX || values[r.en as usize] != 0;
            if enabled {
                let ty = self.nl.cells[r.cell as usize].ty;
                self.reg_state[r.cell as usize] = ty.canonicalize(values[r.next as usize]);
            }
        }
        Ok(())
    }

    /// Evaluates combinational logic and commits one clock edge.
    ///
    /// # Errors
    ///
    /// See [`NetlistSimError`].
    pub fn step(&mut self) -> Result<(), NetlistSimError> {
        let mut values = std::mem::take(&mut self.values);
        let r = self
            .eval_into(&mut values)
            .and_then(|()| self.commit(&values));
        self.values = values;
        r
    }

    /// Value of a named output after [`NetlistSim::eval`].
    ///
    /// Re-evaluates the whole netlist; when reading many ports, prefer
    /// [`NetlistSim::eval_outputs`], which evaluates once.
    ///
    /// # Errors
    ///
    /// See [`NetlistSimError`]; also fails if no such output exists.
    pub fn output(&self, name: &str) -> Result<i64, NetlistSimError> {
        let values = self.eval()?;
        let (_, net) = self
            .nl
            .outputs
            .iter()
            .find(|(n, _)| n == name)
            .ok_or_else(|| NetlistSimError::MissingInput(format!("output {name}")))?;
        Ok(values[net.0 as usize])
    }

    /// Evaluates the netlist **once** and serves every named output port
    /// from that single snapshot, in declaration order.
    ///
    /// # Errors
    ///
    /// See [`NetlistSimError`].
    pub fn eval_outputs(&mut self) -> Result<Vec<(&'n str, i64)>, NetlistSimError> {
        let _span = chls_trace::span("sim.netlist.eval");
        chls_trace::add("sim.evals", 1);
        let mut values = std::mem::take(&mut self.values);
        let r = self.eval_into(&mut values);
        let out = r.map(|()| {
            self.nl
                .outputs
                .iter()
                .map(|(n, net)| (n.as_str(), values[net.0 as usize]))
                .collect()
        });
        self.values = values;
        out
    }

    /// Current RAM contents.
    pub fn ram(&self, index: usize) -> &[i64] {
        &self.rams[index]
    }
}

/// Topological order with registers as sources (their `next` inputs are
/// not traversed) and everything else ordered after its inputs.
fn topo_order(nl: &Netlist) -> Result<Vec<CellId>, NetlistSimError> {
    let n = nl.cells.len();
    let mut order = Vec::with_capacity(n);
    let mut state = vec![0u8; n];
    // Iterative DFS.
    for start in 0..n {
        if state[start] != 0 {
            continue;
        }
        let mut stack: Vec<(u32, bool)> = vec![(start as u32, false)];
        while let Some((i, expanded)) = stack.pop() {
            if expanded {
                state[i as usize] = 2;
                order.push(CellId(i));
                continue;
            }
            if state[i as usize] == 2 {
                continue;
            }
            if state[i as usize] == 1 {
                return Err(NetlistSimError::CombinationalCycle(CellId(i)));
            }
            state[i as usize] = 1;
            stack.push((i, true));
            let cell = &nl.cells[i as usize];
            // Registers are sequential sources: do not traverse inputs for
            // ordering (their inputs are still evaluated as ordinary cells
            // elsewhere in the same pass — the commit uses post-eval
            // values).
            if matches!(cell.kind, CellKind::Reg { .. }) {
                continue;
            }
            cell.kind.for_each_input(|inp| {
                if state[inp.0 as usize] != 2 {
                    stack.push((inp.0, false));
                }
            });
        }
    }
    Ok(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chls_frontend::IntType;
    use chls_ir::BinKind;
    use chls_rtl::netlist::Ram;

    fn u(w: u16) -> IntType {
        IntType::new(w, false)
    }

    #[test]
    fn combinational_adder() {
        let mut nl = Netlist::new("add");
        let a = nl.add(CellKind::Input { name: "a".into() }, u(8));
        let b = nl.add(CellKind::Input { name: "b".into() }, u(8));
        let s = nl.add(CellKind::Bin(BinKind::Add, a, b), u(8));
        nl.set_output("s", s);
        let mut sim = NetlistSim::new(&nl).unwrap();
        sim.set_input("a", 200);
        sim.set_input("b", 100);
        assert_eq!(sim.output("s").unwrap(), 44); // wraps at 8 bits
    }

    #[test]
    fn register_holds_and_updates() {
        let mut nl = Netlist::new("cnt");
        let one = nl.add(CellKind::Const(1), u(8));
        // Placeholder next; patch after creating the register.
        let reg = nl.add(
            CellKind::Reg {
                next: one,
                init: 0,
                en: None,
            },
            u(8),
        );
        let next = nl.add(CellKind::Bin(BinKind::Add, reg, one), u(8));
        nl.cells[reg.0 as usize].kind = CellKind::Reg {
            next,
            init: 0,
            en: None,
        };
        nl.set_output("q", reg);
        let mut sim = NetlistSim::new(&nl).unwrap();
        assert_eq!(sim.output("q").unwrap(), 0);
        sim.step().unwrap();
        assert_eq!(sim.output("q").unwrap(), 1);
        sim.step().unwrap();
        sim.step().unwrap();
        assert_eq!(sim.output("q").unwrap(), 3);
    }

    #[test]
    fn enabled_register_gates_updates() {
        let mut nl = Netlist::new("en");
        let en = nl.add(CellKind::Input { name: "en".into() }, u(1));
        let one = nl.add(CellKind::Const(1), u(8));
        let reg = nl.add(
            CellKind::Reg {
                next: one,
                init: 0,
                en: Some(en),
            },
            u(8),
        );
        let next = nl.add(CellKind::Bin(BinKind::Add, reg, one), u(8));
        nl.cells[reg.0 as usize].kind = CellKind::Reg {
            next,
            init: 0,
            en: Some(en),
        };
        nl.set_output("q", reg);
        let mut sim = NetlistSim::new(&nl).unwrap();
        sim.set_input("en", 0);
        sim.step().unwrap();
        assert_eq!(sim.output("q").unwrap(), 0);
        sim.set_input("en", 1);
        sim.step().unwrap();
        assert_eq!(sim.output("q").unwrap(), 1);
    }

    #[test]
    fn ram_write_then_read() {
        let mut nl = Netlist::new("ram");
        let ram = nl.add_ram(Ram {
            name: "m".into(),
            elem: u(8),
            len: 4,
            init: None,
        });
        let addr = nl.add(CellKind::Input { name: "addr".into() }, u(8));
        let data = nl.add(CellKind::Input { name: "data".into() }, u(8));
        let we = nl.add(CellKind::Input { name: "we".into() }, u(1));
        nl.add(
            CellKind::RamWrite {
                ram,
                addr,
                data,
                en: we,
            },
            u(8),
        );
        let rd = nl.add(CellKind::RamRead { ram, addr }, u(8));
        nl.set_output("rd", rd);
        let mut sim = NetlistSim::new(&nl).unwrap();
        sim.set_input("addr", 2);
        sim.set_input("data", 77);
        sim.set_input("we", 1);
        // Async read sees old contents before the edge...
        assert_eq!(sim.output("rd").unwrap(), 0);
        sim.step().unwrap();
        // ...and the written value after.
        sim.set_input("we", 0);
        assert_eq!(sim.output("rd").unwrap(), 77);
        assert_eq!(sim.ram(0), &[0, 0, 77, 0]);
    }

    #[test]
    fn rom_initialized() {
        let mut nl = Netlist::new("rom");
        let rom = nl.add_ram(Ram {
            name: "t".into(),
            elem: u(8),
            len: 3,
            init: Some(vec![5, 6, 7]),
        });
        let addr = nl.add(CellKind::Input { name: "addr".into() }, u(8));
        let rd = nl.add(CellKind::RamRead { ram: rom, addr }, u(8));
        nl.set_output("rd", rd);
        let mut sim = NetlistSim::new(&nl).unwrap();
        sim.set_input("addr", 1);
        assert_eq!(sim.output("rd").unwrap(), 6);
    }

    #[test]
    fn missing_input_is_error() {
        let mut nl = Netlist::new("x");
        let a = nl.add(CellKind::Input { name: "a".into() }, u(8));
        nl.set_output("o", a);
        let sim = NetlistSim::new(&nl).unwrap();
        assert!(matches!(
            sim.output("o"),
            Err(NetlistSimError::MissingInput(_))
        ));
    }

    #[test]
    fn cycle_reported_at_construction() {
        let mut nl = Netlist::new("cyc");
        let a = nl.add(CellKind::Input { name: "a".into() }, u(8));
        let fake = nl.add(CellKind::Const(0), u(8));
        let s = nl.add(CellKind::Bin(BinKind::Add, a, fake), u(8));
        nl.cells[s.0 as usize].kind = CellKind::Bin(BinKind::Add, a, s);
        nl.set_output("o", s);
        assert!(matches!(
            NetlistSim::new(&nl),
            Err(NetlistSimError::CombinationalCycle(_))
        ));
    }

    #[test]
    fn signed_comparison_in_netlist() {
        let mut nl = Netlist::new("cmp");
        let a = nl.add(CellKind::Input { name: "a".into() }, IntType::new(8, true));
        let b = nl.add(CellKind::Input { name: "b".into() }, IntType::new(8, true));
        let lt = nl.add(CellKind::Bin(BinKind::Lt, a, b), u(1));
        nl.set_output("lt", lt);
        let mut sim = NetlistSim::new(&nl).unwrap();
        sim.set_input("a", -5);
        sim.set_input("b", 3);
        assert_eq!(sim.output("lt").unwrap(), 1);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use chls_frontend::IntType;
    use chls_ir::BinKind;
    use proptest::prelude::*;

    /// Builds a random layered combinational netlist over two inputs and
    /// returns it with the expected evaluation closure inputs.
    fn arb_netlist() -> impl Strategy<Value = Netlist> {
        (2usize..24, any::<u64>()).prop_map(|(n, seed)| {
            let ty = IntType::new(16, false);
            let mut nl = Netlist::new("rand");
            let a = nl.add(CellKind::Input { name: "a".into() }, ty);
            let b = nl.add(CellKind::Input { name: "b".into() }, ty);
            let mut state = seed | 1;
            let mut next = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            let mut nets = vec![a, b];
            for _ in 0..n {
                let x = nets[(next() as usize) % nets.len()];
                let y = nets[(next() as usize) % nets.len()];
                let cell = match next() % 6 {
                    0 => CellKind::Bin(BinKind::Add, x, y),
                    1 => CellKind::Bin(BinKind::Xor, x, y),
                    2 => CellKind::Bin(BinKind::And, x, y),
                    3 => CellKind::Bin(BinKind::Mul, x, y),
                    4 => CellKind::Const((next() % 1000) as i64),
                    _ => {
                        let s = nl.add(CellKind::Bin(BinKind::Lt, x, y), IntType::new(1, false));
                        CellKind::Mux { sel: s, a: x, b: y }
                    }
                };
                let id = nl.add(cell, ty);
                nets.push(id);
            }
            let out = *nets.last().expect("nonempty");
            nl.set_output("o", out);
            nl
        })
    }

    proptest! {
        /// Constant folding plus dead-cell sweeping never changes the
        /// simulated output of a combinational netlist.
        #[test]
        fn fold_and_sweep_preserve_semantics(
            nl in arb_netlist(),
            a in 0i64..65_536,
            b in 0i64..65_536,
        ) {
            let mut sim = NetlistSim::new(&nl).expect("builds");
            sim.set_input("a", a);
            sim.set_input("b", b);
            let before = sim.output("o").expect("evaluates");

            let mut optimized = nl.clone();
            optimized.fold_constants();
            optimized.sweep_dead();
            let mut sim2 = NetlistSim::new(&optimized).expect("builds");
            sim2.set_input("a", a);
            sim2.set_input("b", b);
            let after = sim2.output("o").expect("evaluates");
            prop_assert_eq!(before, after);
            prop_assert!(optimized.cells.len() <= nl.cells.len());
        }

        /// The Verilog emitter produces one assign/always per live cell —
        /// smoke structural invariant.
        #[test]
        fn verilog_emission_total(nl in arb_netlist()) {
            let mut nl = nl;
            nl.sweep_dead();
            let v = chls_rtl::netlist_to_verilog(&nl);
            prop_assert!(v.contains("module rand"));
            prop_assert!(v.contains("endmodule"));
            // Every non-input cell appears as a driven net.
            for (i, c) in nl.cells.iter().enumerate() {
                if !matches!(c.kind, CellKind::Input { .. }) {
                    prop_assert!(
                        v.contains(&format!("n{i} =")) || v.contains(&format!("n{i} <=")),
                        "cell n{i} missing from Verilog"
                    );
                }
            }
        }
    }
}
