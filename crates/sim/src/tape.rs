//! The FSMD register-machine *tape* compiler — the shared micro-op
//! representation behind both the interpreting simulator
//! ([`crate::fsmd_sim`]) and the native x86-64 JIT (`chls-jit`).
//!
//! [`compile`] turns every state of an [`Fsmd`] into a flat sequence of
//! [`TInst`] micro-ops over a dense `i64` slot array laid out as
//! `[regs | inputs | consts | temps]`. Registers, inputs, and constants
//! live in fixed slots; every hash-consed subexpression computes into
//! its own temp slot at most once per cycle.
//!
//! Side-effect-free subexpressions are evaluated *eagerly* in a
//! per-state preamble — sound because every datapath operation is total
//! ([`eval_bin`] defines division by zero, clamps shifts, etc.), so
//! evaluating an untaken mux arm or a false-guarded value is
//! unobservable. Only *effectful* nodes — those containing a bounds-
//! checked [`RvKind::MemRead`] — keep the source's lazy structure, via
//! forward skips: the untaken branch of a mux and the body of a
//! false-guarded action are never evaluated, so an out-of-bounds read on
//! a dead path never fires.
//!
//! Consumers that execute tapes by other means (the JIT) must preserve
//! these semantics exactly; [`run_tape`] and [`exec_state`] are the
//! reference executors, and every arithmetic corner case defers to
//! [`eval_bin`]/[`eval_un`] so the definitions cannot drift.

use crate::fsmd_sim::FsmdSimError;
use crate::interp::ArgValue;
use chls_frontend::IntType;
use chls_ir::{eval_bin, eval_un, BinKind, UnKind};
use chls_rtl::fsmd::{ActionKind, Fsmd, NextState, Rv, RvKind};
use std::collections::HashMap;

/// Index into the dense slot array: `[regs | inputs | consts | temps]`.
pub type Slot = u32;

/// One instruction of a compiled state tape. Operands and destinations
/// are [`Slot`]s; there is no operand stack.
#[derive(Debug, Clone, Copy)]
pub enum TInst {
    /// `slots[dst] = eval_un(op, ty, slots[a])`.
    Un {
        /// Operation.
        op: UnKind,
        /// Evaluation type.
        ty: IntType,
        /// Destination slot.
        dst: Slot,
        /// Operand slot.
        a: Slot,
    },
    /// `slots[dst] = eval_bin(op, ty, slots[a], slots[b])` — `ty` is the
    /// evaluation type (the operand type for comparisons). Only the cold
    /// ops (div/rem/shifts) go through this generic form; the hot ones
    /// get the dedicated variants below.
    Bin {
        /// Operation (only `Div`/`Rem`/`Shl`/`Shr` in compiled tapes).
        op: BinKind,
        /// Evaluation type.
        ty: IntType,
        /// Destination slot.
        dst: Slot,
        /// Left operand slot.
        a: Slot,
        /// Right operand slot.
        b: Slot,
    },
    /// Wrapping add, canonicalized to `ty`.
    Add {
        /// Evaluation type.
        ty: IntType,
        /// Destination slot.
        dst: Slot,
        /// Left operand slot.
        a: Slot,
        /// Right operand slot.
        b: Slot,
    },
    /// Wrapping subtract, canonicalized to `ty`.
    Sub {
        /// Evaluation type.
        ty: IntType,
        /// Destination slot.
        dst: Slot,
        /// Left operand slot.
        a: Slot,
        /// Right operand slot.
        b: Slot,
    },
    /// Wrapping multiply, canonicalized to `ty`.
    Mul {
        /// Evaluation type.
        ty: IntType,
        /// Destination slot.
        dst: Slot,
        /// Left operand slot.
        a: Slot,
        /// Right operand slot.
        b: Slot,
    },
    /// Bitwise and (canonical operands stay canonical — no re-canon).
    And {
        /// Destination slot.
        dst: Slot,
        /// Left operand slot.
        a: Slot,
        /// Right operand slot.
        b: Slot,
    },
    /// Bitwise or.
    Or {
        /// Destination slot.
        dst: Slot,
        /// Left operand slot.
        a: Slot,
        /// Right operand slot.
        b: Slot,
    },
    /// Bitwise xor.
    Xor {
        /// Destination slot.
        dst: Slot,
        /// Left operand slot.
        a: Slot,
        /// Right operand slot.
        b: Slot,
    },
    /// `slots[dst] = (slots[a] == slots[b]) as i64`.
    CmpEq {
        /// Destination slot.
        dst: Slot,
        /// Left operand slot.
        a: Slot,
        /// Right operand slot.
        b: Slot,
    },
    /// `slots[dst] = (slots[a] != slots[b]) as i64`.
    CmpNe {
        /// Destination slot.
        dst: Slot,
        /// Left operand slot.
        a: Slot,
        /// Right operand slot.
        b: Slot,
    },
    /// Signed `<` on canonical operands; result is 0 or 1.
    CmpLtS {
        /// Destination slot.
        dst: Slot,
        /// Left operand slot.
        a: Slot,
        /// Right operand slot.
        b: Slot,
    },
    /// Unsigned `<` on canonical operands; result is 0 or 1.
    CmpLtU {
        /// Destination slot.
        dst: Slot,
        /// Left operand slot.
        a: Slot,
        /// Right operand slot.
        b: Slot,
    },
    /// Signed `<=`.
    CmpLeS {
        /// Destination slot.
        dst: Slot,
        /// Left operand slot.
        a: Slot,
        /// Right operand slot.
        b: Slot,
    },
    /// Unsigned `<=`.
    CmpLeU {
        /// Destination slot.
        dst: Slot,
        /// Left operand slot.
        a: Slot,
        /// Right operand slot.
        b: Slot,
    },
    /// Signed `>`.
    CmpGtS {
        /// Destination slot.
        dst: Slot,
        /// Left operand slot.
        a: Slot,
        /// Right operand slot.
        b: Slot,
    },
    /// Unsigned `>`.
    CmpGtU {
        /// Destination slot.
        dst: Slot,
        /// Left operand slot.
        a: Slot,
        /// Right operand slot.
        b: Slot,
    },
    /// Signed `>=`.
    CmpGeS {
        /// Destination slot.
        dst: Slot,
        /// Left operand slot.
        a: Slot,
        /// Right operand slot.
        b: Slot,
    },
    /// Unsigned `>=`.
    CmpGeU {
        /// Destination slot.
        dst: Slot,
        /// Left operand slot.
        a: Slot,
        /// Right operand slot.
        b: Slot,
    },
    /// `slots[dst] = ty.canonicalize(slots[a])`.
    Cast {
        /// Target type.
        ty: IntType,
        /// Destination slot.
        dst: Slot,
        /// Operand slot.
        a: Slot,
    },
    /// Eager mux over pure, already-computed arms.
    Select {
        /// Destination slot.
        dst: Slot,
        /// Condition slot (nonzero selects `t`).
        cond: Slot,
        /// Taken-arm slot.
        t: Slot,
        /// Else-arm slot.
        f: Slot,
    },
    /// Bounds-checked memory read.
    MemRead {
        /// Memory index.
        mem: u32,
        /// Destination slot.
        dst: Slot,
        /// Address slot.
        addr: Slot,
    },
    /// `slots[dst] = slots[a]` (joins lazy mux arms on a common slot).
    Copy {
        /// Destination slot.
        dst: Slot,
        /// Source slot.
        a: Slot,
    },
    /// `slots[dst] = val` (lazy case-chain selection).
    SetImm {
        /// Destination slot.
        dst: Slot,
        /// Immediate value.
        val: i64,
    },
    /// Skip forward to `target` when `slots[cond] == 0`.
    SkipIfZero {
        /// Condition slot.
        cond: Slot,
        /// Forward tape index to resume at when the condition is zero.
        target: u32,
    },
    /// Unconditional forward skip.
    Skip {
        /// Forward tape index to resume at.
        target: u32,
    },
    /// Stage a register update, canonicalized to the register's type.
    StageReg {
        /// Register index (= slot index).
        reg: u32,
        /// The register's declared type.
        ty: IntType,
        /// Value slot.
        val: Slot,
    },
    /// Bounds-check and stage a memory write, canonicalized to the
    /// element type.
    StageMemWrite {
        /// Memory index.
        mem: u32,
        /// Element type.
        elem: IntType,
        /// Address slot.
        addr: Slot,
        /// Value slot.
        val: Slot,
    },
}

/// Lowers a binary op at evaluation type `ety` to its most specialized
/// tape instruction (matching [`eval_bin`]'s semantics on canonical
/// operands).
fn bin_inst(op: BinKind, ety: IntType, dst: Slot, a: Slot, b: Slot) -> TInst {
    match op {
        BinKind::Add => TInst::Add { ty: ety, dst, a, b },
        BinKind::Sub => TInst::Sub { ty: ety, dst, a, b },
        BinKind::Mul => TInst::Mul { ty: ety, dst, a, b },
        BinKind::And => TInst::And { dst, a, b },
        BinKind::Or => TInst::Or { dst, a, b },
        BinKind::Xor => TInst::Xor { dst, a, b },
        BinKind::Eq => TInst::CmpEq { dst, a, b },
        BinKind::Ne => TInst::CmpNe { dst, a, b },
        BinKind::Lt if ety.signed => TInst::CmpLtS { dst, a, b },
        BinKind::Lt => TInst::CmpLtU { dst, a, b },
        BinKind::Le if ety.signed => TInst::CmpLeS { dst, a, b },
        BinKind::Le => TInst::CmpLeU { dst, a, b },
        BinKind::Gt if ety.signed => TInst::CmpGtS { dst, a, b },
        BinKind::Gt => TInst::CmpGtU { dst, a, b },
        BinKind::Ge if ety.signed => TInst::CmpGeS { dst, a, b },
        BinKind::Ge => TInst::CmpGeU { dst, a, b },
        BinKind::Div | BinKind::Rem | BinKind::Shl | BinKind::Shr => TInst::Bin {
            op,
            ty: ety,
            dst,
            a,
            b,
        },
    }
}

/// Interned expression node: [`RvKind`] with children by id. Structural
/// identity (including the result type) ⇒ same id.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum NodeKind {
    Const(i64),
    Reg(u32),
    Input(u32),
    Un(UnKind, u32),
    Bin(BinKind, u32, u32),
    Mux(u32, u32, u32),
    Cast(u32),
    MemRead(u32, u32),
}

/// Compiled control transfer. Condition slots are filled by the state's
/// tape before the transfer is read.
#[derive(Debug, Clone)]
pub enum CNext {
    /// Unconditional transfer.
    Goto(u32),
    /// Two-way branch on a condition slot.
    Branch {
        /// Condition slot (nonzero takes `then`).
        cond: Slot,
        /// Target when nonzero.
        then: u32,
        /// Target when zero.
        els: u32,
    },
    /// All conditions pure: read the (eagerly computed) slots in order.
    Cases {
        /// `(condition slot, target)` pairs; the first nonzero wins.
        conds: Box<[(Slot, u32)]>,
        /// Target when every condition is zero.
        default: u32,
    },
    /// Some condition is effectful: the tape's lazy skip-chain wrote the
    /// matching case index (or -1) into `sel`.
    CasesLazy {
        /// Slot holding the selected case index, or -1 for default.
        sel: Slot,
        /// Case targets by index.
        targets: Box<[u32]>,
        /// Target when `sel` is -1.
        default: u32,
    },
    /// Terminal state.
    Done,
    /// Statically proved deadlock: entering this state can never make
    /// progress again. The payload indexes [`Fsmd::stuck`] so the
    /// simulator can report which processes block on which channels.
    Stuck(u32),
}

/// One compiled state: a tape range plus the control transfer.
#[derive(Debug, Clone)]
pub struct CState {
    /// Half-open `[start, end)` range into [`Tape::code`].
    pub tape: (u32, u32),
    /// Control transfer out of this state.
    pub next: CNext,
    /// Slot holding the (pre-commit) return value, for `Done` states.
    pub ret: Option<Slot>,
}

/// The whole FSMD, compiled to micro-op tapes.
#[derive(Debug, Clone)]
pub struct Tape {
    /// All states' instructions, concatenated.
    pub code: Vec<TInst>,
    /// Per-state tape ranges and transfers, indexed by `StateId`.
    pub states: Vec<CState>,
    /// Total slot count (`regs + inputs + consts + temps`).
    pub n_slots: usize,
    /// Register count (registers occupy slots `0..n_regs`).
    pub n_regs: usize,
    /// Input count (inputs occupy slots `n_regs..n_regs + n_inputs`).
    pub n_inputs: usize,
    /// Constant slots and their (pre-canonicalized) values.
    pub const_init: Vec<(Slot, i64)>,
}

/// The expression compiler: interns `Rv` trees into a DAG, then emits
/// one tape per state.
struct Compiler<'f> {
    f: &'f Fsmd,
    nodes: Vec<(NodeKind, IntType)>,
    effectful: Vec<bool>,
    interned: HashMap<(NodeKind, IntType), u32>,
    consts: HashMap<i64, Slot>,
    code: Vec<TInst>,
    n_regs: u32,
    n_inputs: u32,
    temp_base: u32,
    next_temp: u32,
    max_slots: u32,
    /// Per-state: pure node → preamble slot.
    pure_slots: HashMap<u32, Slot>,
    /// Per-state: effectful node → emissions as (context, slot) pairs.
    eff_slots: HashMap<u32, Vec<(u32, Slot)>>,
    /// Per-state preamble visit marks (epoch = state index + 1).
    visited: Vec<u32>,
    epoch: u32,
    /// Per-state conditional-context tree; context 0 is the root and a
    /// slot computed in context `c` is reusable wherever `c` is an
    /// ancestor (i.e. guaranteed already executed).
    ctx_parent: Vec<u32>,
    cur_ctx: u32,
}

impl<'f> Compiler<'f> {
    fn new(f: &'f Fsmd) -> Self {
        Compiler {
            f,
            nodes: Vec::new(),
            effectful: Vec::new(),
            interned: HashMap::new(),
            consts: HashMap::new(),
            code: Vec::new(),
            n_regs: f.regs.len() as u32,
            n_inputs: f.inputs.len() as u32,
            temp_base: 0,
            next_temp: 0,
            max_slots: 0,
            pure_slots: HashMap::new(),
            eff_slots: HashMap::new(),
            visited: Vec::new(),
            epoch: 0,
            ctx_parent: vec![u32::MAX],
            cur_ctx: 0,
        }
    }

    /// Interns a tree, returning its DAG id.
    fn intern(&mut self, rv: &Rv) -> u32 {
        let kind = match &rv.kind {
            // Constants are canonicalized once, here.
            RvKind::Const(v) => NodeKind::Const(rv.ty.canonicalize(*v)),
            RvKind::Reg(r) => NodeKind::Reg(r.0),
            RvKind::Input(i) => NodeKind::Input(*i as u32),
            RvKind::Un(op, a) => NodeKind::Un(*op, self.intern(a)),
            RvKind::Bin(op, a, b) => {
                let (a, b) = (self.intern(a), self.intern(b));
                NodeKind::Bin(*op, a, b)
            }
            RvKind::Mux(s, a, b) => {
                let s = self.intern(s);
                let (a, b) = (self.intern(a), self.intern(b));
                NodeKind::Mux(s, a, b)
            }
            RvKind::Cast(a) => NodeKind::Cast(self.intern(a)),
            RvKind::MemRead { mem, addr } => NodeKind::MemRead(mem.0, self.intern(addr)),
        };
        let key = (kind, rv.ty);
        if let Some(&id) = self.interned.get(&key) {
            return id;
        }
        let eff = match &key.0 {
            NodeKind::MemRead(..) => true,
            NodeKind::Const(v) => {
                if !self.consts.contains_key(v) {
                    let slot = self.n_regs + self.n_inputs + self.consts.len() as u32;
                    self.consts.insert(*v, slot);
                }
                false
            }
            NodeKind::Reg(_) | NodeKind::Input(_) => false,
            NodeKind::Un(_, a) | NodeKind::Cast(a) => self.effectful[*a as usize],
            NodeKind::Bin(_, a, b) => {
                self.effectful[*a as usize] || self.effectful[*b as usize]
            }
            NodeKind::Mux(s, a, b) => {
                self.effectful[*s as usize]
                    || self.effectful[*a as usize]
                    || self.effectful[*b as usize]
            }
        };
        let id = self.nodes.len() as u32;
        self.nodes.push(key.clone());
        self.effectful.push(eff);
        self.interned.insert(key, id);
        id
    }

    fn children(&self, id: u32) -> [Option<u32>; 3] {
        match self.nodes[id as usize].0 {
            NodeKind::Const(_) | NodeKind::Reg(_) | NodeKind::Input(_) => [None, None, None],
            NodeKind::Un(_, a) | NodeKind::Cast(a) | NodeKind::MemRead(_, a) => {
                [Some(a), None, None]
            }
            NodeKind::Bin(_, a, b) => [Some(a), Some(b), None],
            NodeKind::Mux(s, a, b) => [Some(s), Some(a), Some(b)],
        }
    }

    fn alloc_temp(&mut self) -> Slot {
        let s = self.next_temp;
        self.next_temp += 1;
        self.max_slots = self.max_slots.max(self.next_temp);
        s
    }

    /// The slot of a pure node: a fixed leaf slot or its preamble temp.
    fn slot_of(&self, id: u32) -> Slot {
        match self.nodes[id as usize].0 {
            NodeKind::Const(v) => self.consts[&v],
            NodeKind::Reg(r) => r,
            NodeKind::Input(i) => self.n_regs + i,
            _ => self.pure_slots[&id],
        }
    }

    fn is_leaf(&self, id: u32) -> bool {
        matches!(
            self.nodes[id as usize].0,
            NodeKind::Const(_) | NodeKind::Reg(_) | NodeKind::Input(_)
        )
    }

    /// Emits every pure non-leaf node under `id` (including those inside
    /// mux arms and guarded values — they are total, so eager evaluation
    /// is unobservable), each exactly once, in dependency order.
    fn preamble(&mut self, id: u32) {
        if self.is_leaf(id) || self.visited[id as usize] == self.epoch {
            return;
        }
        self.visited[id as usize] = self.epoch;
        for c in self.children(id).into_iter().flatten() {
            self.preamble(c);
        }
        if self.effectful[id as usize] {
            return;
        }
        let (kind, ty) = self.nodes[id as usize].clone();
        let dst = self.alloc_temp();
        let inst = match kind {
            NodeKind::Un(op, a) => TInst::Un {
                op,
                ty,
                dst,
                a: self.slot_of(a),
            },
            NodeKind::Bin(op, a, b) => {
                // Comparisons evaluate at the operand type, not u1.
                let ety = if op.is_comparison() {
                    self.nodes[a as usize].1
                } else {
                    ty
                };
                bin_inst(op, ety, dst, self.slot_of(a), self.slot_of(b))
            }
            NodeKind::Cast(a) => TInst::Cast {
                ty,
                dst,
                a: self.slot_of(a),
            },
            NodeKind::Mux(s, a, b) => TInst::Select {
                dst,
                cond: self.slot_of(s),
                t: self.slot_of(a),
                f: self.slot_of(b),
            },
            NodeKind::Const(_) | NodeKind::Reg(_) | NodeKind::Input(_) | NodeKind::MemRead(..) => {
                unreachable!("leaves and effectful nodes are not preamble ops")
            }
        };
        self.code.push(inst);
        self.pure_slots.insert(id, dst);
    }

    fn new_ctx(&mut self, parent: u32) -> u32 {
        self.ctx_parent.push(parent);
        (self.ctx_parent.len() - 1) as u32
    }

    fn is_ancestor(&self, a: u32, mut b: u32) -> bool {
        loop {
            if a == b {
                return true;
            }
            b = self.ctx_parent[b as usize];
            if b == u32::MAX {
                return false;
            }
        }
    }

    /// Emits `id` lazily (pure nodes resolve to their preamble slots)
    /// and returns the slot holding its value at this program point.
    fn emit(&mut self, id: u32) -> Slot {
        if !self.effectful[id as usize] {
            return self.slot_of(id);
        }
        if let Some(entries) = self.eff_slots.get(&id) {
            // Reusable only where the defining emission is guaranteed to
            // have already executed.
            for &(ctx, slot) in entries {
                if self.is_ancestor(ctx, self.cur_ctx) {
                    return slot;
                }
            }
        }
        let def_ctx = self.cur_ctx;
        let (kind, ty) = self.nodes[id as usize].clone();
        let dst = match kind {
            NodeKind::MemRead(mem, addr) => {
                let a = self.emit(addr);
                let dst = self.alloc_temp();
                self.code.push(TInst::MemRead { mem, dst, addr: a });
                dst
            }
            NodeKind::Un(op, a) => {
                let a = self.emit(a);
                let dst = self.alloc_temp();
                self.code.push(TInst::Un { op, ty, dst, a });
                dst
            }
            NodeKind::Bin(op, a, b) => {
                let ety = if op.is_comparison() {
                    self.nodes[a as usize].1
                } else {
                    ty
                };
                let (sa, sb) = (self.emit(a), self.emit(b));
                let dst = self.alloc_temp();
                self.code.push(bin_inst(op, ety, dst, sa, sb));
                dst
            }
            NodeKind::Cast(a) => {
                let a = self.emit(a);
                let dst = self.alloc_temp();
                self.code.push(TInst::Cast { ty, dst, a });
                dst
            }
            NodeKind::Mux(s, a, b) => {
                let sc = self.emit(s);
                let dst = self.alloc_temp();
                let skip_at = self.code.len();
                self.code.push(TInst::SkipIfZero { cond: sc, target: 0 });
                self.cur_ctx = self.new_ctx(def_ctx);
                let sa = self.emit(a);
                self.code.push(TInst::Copy { dst, a: sa });
                let jmp_at = self.code.len();
                self.code.push(TInst::Skip { target: 0 });
                let els = self.code.len() as u32;
                if let TInst::SkipIfZero { target, .. } = &mut self.code[skip_at] {
                    *target = els;
                }
                self.cur_ctx = self.new_ctx(def_ctx);
                let sb = self.emit(b);
                self.code.push(TInst::Copy { dst, a: sb });
                let end = self.code.len() as u32;
                if let TInst::Skip { target } = &mut self.code[jmp_at] {
                    *target = end;
                }
                self.cur_ctx = def_ctx;
                dst
            }
            NodeKind::Const(_) | NodeKind::Reg(_) | NodeKind::Input(_) => {
                unreachable!("leaves are pure")
            }
        };
        self.eff_slots.entry(id).or_default().push((def_ctx, dst));
        dst
    }

    /// Compiles one state's actions, control transfer, and return value
    /// into a tape.
    fn compile_state(&mut self, si: usize) -> CState {
        // Per-state reset: temps, slot maps, visit marks, contexts.
        self.next_temp = self.temp_base;
        self.pure_slots.clear();
        self.eff_slots.clear();
        self.ctx_parent.truncate(1);
        self.cur_ctx = 0;
        self.epoch = si as u32 + 1;
        let start = self.code.len() as u32;

        let st = &self.f.states[si];
        let is_done = matches!(st.next, NextState::Done);

        // Intern this state's roots in evaluation order.
        let mut action_roots: Vec<(Option<u32>, ActionRoots)> = Vec::new();
        for a in &st.actions {
            let guard = a.guard.as_ref().map(|g| self.intern(g));
            let roots = match &a.kind {
                ActionKind::SetReg(r, rv) => ActionRoots::SetReg(r.0, self.intern(rv)),
                ActionKind::MemWrite { mem, addr, value } => {
                    let a = self.intern(addr);
                    let v = self.intern(value);
                    ActionRoots::MemWrite(mem.0, a, v)
                }
            };
            action_roots.push((guard, roots));
        }
        let next_roots: Vec<u32> = match &st.next {
            NextState::Branch { cond, .. } => vec![self.intern(cond)],
            NextState::Cases { cases, .. } => {
                cases.iter().map(|(c, _)| self.intern(c)).collect()
            }
            NextState::Goto(_) | NextState::Done => Vec::new(),
        };
        let ret_root = if is_done {
            self.f.ret.clone().map(|rv| self.intern(&rv))
        } else {
            None
        };
        self.visited.resize(self.nodes.len(), 0);

        // Eager preamble over every root's pure subgraph.
        for (g, roots) in &action_roots {
            if let Some(g) = g {
                self.preamble(*g);
            }
            match roots {
                ActionRoots::SetReg(_, v) => self.preamble(*v),
                ActionRoots::MemWrite(_, a, v) => {
                    self.preamble(*a);
                    self.preamble(*v);
                }
            }
        }
        for &c in &next_roots {
            self.preamble(c);
        }
        if let Some(r) = ret_root {
            self.preamble(r);
        }

        // Effectful evaluation and staging, in action order.
        for (g, roots) in &action_roots {
            let skip_at = g.map(|g| {
                let gs = self.emit(g);
                let at = self.code.len();
                self.code.push(TInst::SkipIfZero { cond: gs, target: 0 });
                at
            });
            let saved = self.cur_ctx;
            if skip_at.is_some() {
                self.cur_ctx = self.new_ctx(saved);
            }
            match *roots {
                ActionRoots::SetReg(reg, v) => {
                    let val = self.emit(v);
                    let ty = self.f.regs[reg as usize].ty;
                    self.code.push(TInst::StageReg { reg, ty, val });
                }
                ActionRoots::MemWrite(mem, a, v) => {
                    let addr = self.emit(a);
                    let val = self.emit(v);
                    let elem = self.f.mems[mem as usize].elem;
                    self.code.push(TInst::StageMemWrite {
                        mem,
                        elem,
                        addr,
                        val,
                    });
                }
            }
            if let Some(at) = skip_at {
                let end = self.code.len() as u32;
                if let TInst::SkipIfZero { target, .. } = &mut self.code[at] {
                    *target = end;
                }
                self.cur_ctx = saved;
            }
        }

        // Control transfer.
        let next = match &st.next {
            NextState::Goto(t) => CNext::Goto(t.0),
            NextState::Done => CNext::Done,
            NextState::Branch { then, els, .. } => CNext::Branch {
                cond: self.emit(next_roots[0]),
                then: then.0,
                els: els.0,
            },
            NextState::Cases { cases, default } => {
                if next_roots.iter().all(|&c| !self.effectful[c as usize]) {
                    CNext::Cases {
                        conds: next_roots
                            .iter()
                            .zip(cases.iter())
                            .map(|(&c, (_, t))| (self.slot_of(c), t.0))
                            .collect(),
                        default: default.0,
                    }
                } else {
                    // Lazy chain preserving short-circuit: condition k is
                    // only evaluated when conditions 0..k were all zero.
                    let sel = self.alloc_temp();
                    self.code.push(TInst::SetImm { dst: sel, val: -1 });
                    let mut end_patches = Vec::new();
                    let root_ctx = self.cur_ctx;
                    for (k, &c) in next_roots.iter().enumerate() {
                        let cs = self.emit(c);
                        let skip_at = self.code.len();
                        self.code.push(TInst::SkipIfZero { cond: cs, target: 0 });
                        self.code.push(TInst::SetImm {
                            dst: sel,
                            val: k as i64,
                        });
                        end_patches.push(self.code.len());
                        self.code.push(TInst::Skip { target: 0 });
                        let here = self.code.len() as u32;
                        if let TInst::SkipIfZero { target, .. } = &mut self.code[skip_at] {
                            *target = here;
                        }
                        // Everything after this point runs only when the
                        // condition above was zero.
                        let prev = self.cur_ctx;
                        self.cur_ctx = self.new_ctx(prev);
                    }
                    let end = self.code.len() as u32;
                    for at in end_patches {
                        if let TInst::Skip { target } = &mut self.code[at] {
                            *target = end;
                        }
                    }
                    self.cur_ctx = root_ctx;
                    CNext::CasesLazy {
                        sel,
                        targets: cases.iter().map(|(_, t)| t.0).collect(),
                        default: default.0,
                    }
                }
            }
        };

        let ret = ret_root.map(|r| self.emit(r));
        CState {
            tape: (start, self.code.len() as u32),
            next,
            ret,
        }
    }
}

/// Per-action interned roots (register index or memory index plus
/// expression node ids).
enum ActionRoots {
    SetReg(u32, u32),
    MemWrite(u32, u32, u32),
}

/// Compiles every state of `f`.
pub fn compile(f: &Fsmd) -> Tape {
    let mut c = Compiler::new(f);
    // First intern the whole design so the constant pool (and with it
    // the temp-slot base) is final before any tape is emitted.
    for st in &f.states {
        for a in &st.actions {
            if let Some(g) = &a.guard {
                c.intern(g);
            }
            match &a.kind {
                ActionKind::SetReg(_, rv) => {
                    c.intern(rv);
                }
                ActionKind::MemWrite { addr, value, .. } => {
                    c.intern(addr);
                    c.intern(value);
                }
            }
        }
        match &st.next {
            NextState::Branch { cond, .. } => {
                c.intern(cond);
            }
            NextState::Cases { cases, .. } => {
                for (cond, _) in cases {
                    c.intern(cond);
                }
            }
            NextState::Goto(_) | NextState::Done => {}
        }
    }
    if let Some(rv) = f.ret.clone() {
        c.intern(&rv);
    }
    c.temp_base = c.n_regs + c.n_inputs + c.consts.len() as u32;
    c.max_slots = c.temp_base;

    let mut states: Vec<CState> = (0..f.states.len()).map(|si| c.compile_state(si)).collect();
    // Backend-proved stuck configurations become first-class deadlock
    // transfers so the executor reports them instead of spinning.
    for (k, s) in f.stuck.iter().enumerate() {
        if let Some(st) = states.get_mut(s.state.0 as usize) {
            st.next = CNext::Stuck(k as u32);
        }
    }
    let const_init = c.consts.iter().map(|(&v, &s)| (s, v)).collect();
    Tape {
        code: c.code,
        states,
        n_slots: c.max_slots as usize,
        n_regs: c.n_regs as usize,
        n_inputs: c.n_inputs as usize,
        const_init,
    }
}

/// Runs one state's tape against the slot array, staging updates.
///
/// # Errors
///
/// Returns [`FsmdSimError::OutOfBounds`] when a memory access falls
/// outside its extent.
#[inline]
pub fn run_tape(
    code: &[TInst],
    tape: (u32, u32),
    f: &Fsmd,
    slots: &mut [i64],
    mems: &[Vec<i64>],
    reg_updates: &mut Vec<(u32, i64)>,
    mem_updates: &mut Vec<(u32, i64, i64)>,
) -> Result<(), FsmdSimError> {
    let mut pc = tape.0 as usize;
    let end = tape.1 as usize;
    while pc < end {
        match code[pc] {
            TInst::Un { op, ty, dst, a } => {
                slots[dst as usize] = eval_un(op, ty, slots[a as usize]);
            }
            TInst::Bin { op, ty, dst, a, b } => {
                slots[dst as usize] = eval_bin(op, ty, slots[a as usize], slots[b as usize]);
            }
            TInst::Add { ty, dst, a, b } => {
                slots[dst as usize] =
                    ty.canonicalize(slots[a as usize].wrapping_add(slots[b as usize]));
            }
            TInst::Sub { ty, dst, a, b } => {
                slots[dst as usize] =
                    ty.canonicalize(slots[a as usize].wrapping_sub(slots[b as usize]));
            }
            TInst::Mul { ty, dst, a, b } => {
                slots[dst as usize] =
                    ty.canonicalize(slots[a as usize].wrapping_mul(slots[b as usize]));
            }
            TInst::And { dst, a, b } => {
                slots[dst as usize] = slots[a as usize] & slots[b as usize];
            }
            TInst::Or { dst, a, b } => {
                slots[dst as usize] = slots[a as usize] | slots[b as usize];
            }
            TInst::Xor { dst, a, b } => {
                slots[dst as usize] = slots[a as usize] ^ slots[b as usize];
            }
            TInst::CmpEq { dst, a, b } => {
                slots[dst as usize] = (slots[a as usize] == slots[b as usize]) as i64;
            }
            TInst::CmpNe { dst, a, b } => {
                slots[dst as usize] = (slots[a as usize] != slots[b as usize]) as i64;
            }
            TInst::CmpLtS { dst, a, b } => {
                slots[dst as usize] = (slots[a as usize] < slots[b as usize]) as i64;
            }
            TInst::CmpLtU { dst, a, b } => {
                slots[dst as usize] =
                    ((slots[a as usize] as u64) < (slots[b as usize] as u64)) as i64;
            }
            TInst::CmpLeS { dst, a, b } => {
                slots[dst as usize] = (slots[a as usize] <= slots[b as usize]) as i64;
            }
            TInst::CmpLeU { dst, a, b } => {
                slots[dst as usize] =
                    ((slots[a as usize] as u64) <= (slots[b as usize] as u64)) as i64;
            }
            TInst::CmpGtS { dst, a, b } => {
                slots[dst as usize] = (slots[a as usize] > slots[b as usize]) as i64;
            }
            TInst::CmpGtU { dst, a, b } => {
                slots[dst as usize] =
                    ((slots[a as usize] as u64) > (slots[b as usize] as u64)) as i64;
            }
            TInst::CmpGeS { dst, a, b } => {
                slots[dst as usize] = (slots[a as usize] >= slots[b as usize]) as i64;
            }
            TInst::CmpGeU { dst, a, b } => {
                slots[dst as usize] =
                    ((slots[a as usize] as u64) >= (slots[b as usize] as u64)) as i64;
            }
            TInst::Cast { ty, dst, a } => {
                slots[dst as usize] = ty.canonicalize(slots[a as usize]);
            }
            TInst::Select { dst, cond, t, f } => {
                slots[dst as usize] = if slots[cond as usize] != 0 {
                    slots[t as usize]
                } else {
                    slots[f as usize]
                };
            }
            TInst::MemRead { mem, dst, addr } => {
                let a = slots[addr as usize];
                let storage = &mems[mem as usize];
                if a < 0 || a as usize >= storage.len() {
                    return Err(FsmdSimError::OutOfBounds {
                        mem: f.mems[mem as usize].name.clone(),
                        addr: a,
                        len: storage.len(),
                    });
                }
                slots[dst as usize] = storage[a as usize];
            }
            TInst::Copy { dst, a } => slots[dst as usize] = slots[a as usize],
            TInst::SetImm { dst, val } => slots[dst as usize] = val,
            TInst::SkipIfZero { cond, target } => {
                if slots[cond as usize] == 0 {
                    pc = target as usize;
                    continue;
                }
            }
            TInst::Skip { target } => {
                pc = target as usize;
                continue;
            }
            TInst::StageReg { reg, ty, val } => {
                reg_updates.push((reg, ty.canonicalize(slots[val as usize])));
            }
            TInst::StageMemWrite {
                mem,
                elem,
                addr,
                val,
            } => {
                let a = slots[addr as usize];
                let mi = mem as usize;
                if a < 0 || a as usize >= mems[mi].len() {
                    return Err(FsmdSimError::OutOfBounds {
                        mem: f.mems[mi].name.clone(),
                        addr: a,
                        len: mems[mi].len(),
                    });
                }
                mem_updates.push((mem, a, elem.canonicalize(slots[val as usize])));
            }
        }
        pc += 1;
    }
    Ok(())
}

/// Outcome of executing one state to completion (tape + transfer +
/// simultaneous commit).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Step {
    /// Transfer to the given state next cycle.
    Next(u32),
    /// The FSMD finished; the sampled (pre-commit) return value.
    Done(Option<i64>),
}

/// Executes one state exactly as the interpreting simulator does: run
/// the tape, pick the transfer from pre-commit values, sample the return
/// value (pre-commit) in `Done` states, then commit all staged register
/// and memory updates simultaneously.
///
/// `reg_updates`/`mem_updates` are caller-provided scratch so the hot
/// loop stays allocation-free; they are cleared on entry.
///
/// # Errors
///
/// Returns [`FsmdSimError::OutOfBounds`] when a memory access falls
/// outside its extent.
pub fn exec_state(
    tape: &Tape,
    f: &Fsmd,
    state: u32,
    slots: &mut [i64],
    mems: &mut [Vec<i64>],
    reg_updates: &mut Vec<(u32, i64)>,
    mem_updates: &mut Vec<(u32, i64, i64)>,
) -> Result<Step, FsmdSimError> {
    let st = &tape.states[state as usize];

    // Fast path: a pure control state evaluates no datapath at all.
    if st.tape.0 == st.tape.1 {
        if let CNext::Goto(t) = st.next {
            return Ok(Step::Next(t));
        }
    }

    // Evaluate everything against the current state.
    reg_updates.clear();
    mem_updates.clear();
    run_tape(
        &tape.code,
        st.tape,
        f,
        slots,
        mems,
        reg_updates,
        mem_updates,
    )?;
    let next = match &st.next {
        CNext::Goto(t) => Some(*t),
        CNext::Branch { cond, then, els } => Some(if slots[*cond as usize] != 0 {
            *then
        } else {
            *els
        }),
        CNext::Cases { conds, default } => {
            let mut target = *default;
            for &(c, t) in conds.iter() {
                if slots[c as usize] != 0 {
                    target = t;
                    break;
                }
            }
            Some(target)
        }
        CNext::CasesLazy {
            sel,
            targets,
            default,
        } => {
            let k = slots[*sel as usize];
            Some(if k >= 0 {
                targets[k as usize]
            } else {
                *default
            })
        }
        CNext::Done => None,
        CNext::Stuck(k) => {
            return Err(FsmdSimError::Deadlock {
                cycle: 0,
                blocked: f.stuck[*k as usize].blocked.clone(),
            })
        }
    };
    // The return value samples pre-commit state (its slot was filled
    // by this cycle's tape).
    let ret = if next.is_none() {
        st.ret.map(|s| slots[s as usize])
    } else {
        None
    };

    // Commit simultaneously (registers live at the base of `slots`).
    for &(r, v) in reg_updates.iter() {
        slots[r as usize] = v;
    }
    for &(m, a, v) in mem_updates.iter() {
        mems[m as usize][a as usize] = v;
    }

    Ok(match next {
        Some(t) => Step::Next(t),
        None => Step::Done(ret),
    })
}

/// Binds scalar arguments to the FSMD's inputs (canonicalized to each
/// input's type), in input order.
///
/// # Errors
///
/// Returns [`FsmdSimError::BadArgument`] for a missing or mistyped
/// argument.
pub fn bind_inputs(f: &Fsmd, args: &[ArgValue]) -> Result<Vec<i64>, FsmdSimError> {
    let mut inputs = vec![0i64; f.inputs.len()];
    for (i, (_, ty)) in f.inputs.iter().enumerate() {
        let p = f.input_params[i];
        match args.get(p) {
            Some(ArgValue::Scalar(v)) => inputs[i] = ty.canonicalize(*v),
            _ => return Err(FsmdSimError::BadArgument(p)),
        }
    }
    Ok(inputs)
}

/// Builds the initial contents of every memory: ROM contents, a bound
/// array argument (canonicalized to the element type), or zeros.
///
/// # Errors
///
/// Returns [`FsmdSimError::BadArgument`] for a missing or mistyped
/// array argument.
pub fn bind_mems(f: &Fsmd, args: &[ArgValue]) -> Result<Vec<Vec<i64>>, FsmdSimError> {
    let mut mems: Vec<Vec<i64>> = Vec::with_capacity(f.mems.len());
    for m in &f.mems {
        let contents = if let Some(rom) = &m.rom {
            let mut v = rom.clone();
            v.resize(m.len, 0);
            v
        } else if let Some(p) = m.param_index {
            match args.get(p) {
                Some(ArgValue::Array(a)) => {
                    let mut v = a.clone();
                    v.resize(m.len, 0);
                    v.iter_mut().for_each(|x| *x = m.elem.canonicalize(*x));
                    v
                }
                _ => return Err(FsmdSimError::BadArgument(p)),
            }
        } else {
            vec![0; m.len]
        };
        mems.push(contents);
    }
    Ok(mems)
}

/// Builds the initial slot array for a run: register init values, bound
/// inputs, and the constant pool, with temps zeroed. `extra_slots`
/// appends zero-initialized scratch past the tape's own slots (the JIT
/// uses this for its staging shadows).
pub fn init_slots(tape: &Tape, f: &Fsmd, inputs: &[i64], extra_slots: usize) -> Vec<i64> {
    let mut slots = vec![0i64; tape.n_slots + extra_slots];
    for (i, r) in f.regs.iter().enumerate() {
        slots[i] = r.init;
    }
    for (i, v) in inputs.iter().enumerate() {
        slots[f.regs.len() + i] = *v;
    }
    for &(s, v) in &tape.const_init {
        slots[s as usize] = v;
    }
    slots
}
