//! Shared backend infrastructure: the [`Backend`] trait, taxonomy
//! metadata (the paper's Table 1), synthesis options, design containers,
//! and the sequential preparation pipeline (inline → unroll → pointer
//! elimination → IR → simplify) that compiler-scheduled backends share.

use chls_frontend::hir::{FuncId, HirProgram};
use chls_ir::Function;
use chls_opt::dep::AliasPrecision;
use chls_opt::ptr::PtrStats;
use chls_opt::unroll::{UnrollOptions, UnrollStats};
use chls_rtl::cost::CostModel;
use chls_rtl::fsmd::Fsmd;
use chls_rtl::netlist::Netlist;
use chls_sched::Resources;
use std::fmt;

/// The concurrency model a language exposes (paper, Section on
/// concurrency).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConcurrencyModel {
    /// The compiler finds all parallelism in sequential C.
    CompilerDriven,
    /// The programmer writes explicit parallel constructs.
    Explicit,
    /// Structural: the user instantiates parallel hardware directly.
    Structural,
}

impl fmt::Display for ConcurrencyModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ConcurrencyModel::CompilerDriven => "compiler-driven",
            ConcurrencyModel::Explicit => "explicit (par/channels)",
            ConcurrencyModel::Structural => "structural",
        })
    }
}

/// How a language divides time into cycles (paper, Section on time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimingModel {
    /// No clock at all: a combinational network.
    Combinational,
    /// No clock: asynchronous/self-timed dataflow.
    Asynchronous,
    /// Implicit rule: each assignment takes exactly one cycle.
    RulePerAssignment,
    /// Implicit rule: each loop iteration (and call) takes one cycle.
    RulePerIteration,
    /// The compiler schedules under constraints outside the language.
    CompilerScheduled,
    /// In-language relative timing constraints drive the schedule.
    ConstraintDriven,
    /// The designer states the cycles explicitly (one state = one cycle).
    ExplicitStates,
}

impl fmt::Display for TimingModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TimingModel::Combinational => "none (combinational)",
            TimingModel::Asynchronous => "none (asynchronous)",
            TimingModel::RulePerAssignment => "rule: 1 cycle per assignment",
            TimingModel::RulePerIteration => "rule: 1 cycle per loop iteration/call",
            TimingModel::CompilerScheduled => "compiler-scheduled (external constraints)",
            TimingModel::ConstraintDriven => "in-language timing constraints",
            TimingModel::ExplicitStates => "explicit states (1 cycle each)",
        })
    }
}

/// Taxonomy metadata — one row of the paper's Table 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BackendInfo {
    /// Our backend name.
    pub name: &'static str,
    /// The surveyed language/compiler it models.
    pub models: &'static str,
    /// Publication year of the modeled system.
    pub year: u16,
    /// The paper's one-line characterization (Table 1 column 2).
    pub comment: &'static str,
    /// Concurrency model.
    pub concurrency: ConcurrencyModel,
    /// Timing model.
    pub timing: TimingModel,
    /// Supports pointers (possibly via monolithic memory).
    pub pointers: bool,
    /// Supports data-dependent (unbounded) loops.
    pub data_dependent_loops: bool,
    /// Supports `par`/channels.
    pub parallel_constructs: bool,
}

/// Synthesis options shared by all backends.
#[derive(Debug, Clone)]
pub struct SynthOptions {
    /// Target clock period in ns (ignored by combinational/async backends).
    pub clock_period_ns: f64,
    /// The cost model.
    pub model: CostModel,
    /// Functional-unit and memory-port limits for scheduled backends.
    pub resources: Resources,
    /// Memory-dependence precision.
    pub precision: AliasPrecision,
    /// Enable loop pipelining (modulo scheduling) where supported.
    pub pipeline_loops: bool,
    /// If-convert pure branchy loop bodies before pipelining (on by
    /// default; an ablation knob — turning it off leaves conditional
    /// bodies to the sequential fallback).
    pub pipeline_if_convert: bool,
    /// Narrow every datapath register to the bit-width the value-range
    /// analysis proves sufficient (the "compiler recovers bit-precision
    /// from C types" escape hatch of E8). Sound: a register narrower than
    /// its value never occurs, by the analysis' soundness property.
    pub narrow_widths: bool,
    /// Run the word-level logic optimizer (`chls-logic`) over the
    /// synthesized design. Backends ignore this themselves — the driver
    /// applies the pass after synthesis so every backend benefits
    /// uniformly.
    pub opt_netlist: bool,
    /// Unroll factor for canonical counted loops without a
    /// `#pragma unroll` of their own (`Some(0)` = fully; pragmas always
    /// win). The `--unroll N` design-space knob.
    pub unroll_factor: Option<u32>,
}

impl Default for SynthOptions {
    fn default() -> Self {
        SynthOptions {
            clock_period_ns: 2.0,
            model: CostModel::new(),
            resources: Resources::typical(),
            precision: AliasPrecision::Basic,
            pipeline_loops: false,
            pipeline_if_convert: true,
            narrow_widths: false,
            opt_netlist: false,
            unroll_factor: None,
        }
    }
}

/// A synthesized design.
#[derive(Debug, Clone)]
pub enum Design {
    /// A purely combinational netlist (Cones).
    Comb(Netlist),
    /// A clocked FSMD.
    Fsmd(Fsmd),
    /// An asynchronous dataflow circuit (CASH).
    Dataflow(chls_dataflow::graph::DataflowGraph),
}

impl Design {
    /// The design's area in NAND2-equivalent gates.
    pub fn area(&self, model: &CostModel) -> f64 {
        match self {
            Design::Comb(nl) => nl.area(model),
            Design::Fsmd(f) => f.area(model),
            Design::Dataflow(g) => g.area(model),
        }
    }

    /// The FSMD, if this is one.
    pub fn as_fsmd(&self) -> Option<&Fsmd> {
        match self {
            Design::Fsmd(f) => Some(f),
            _ => None,
        }
    }

    /// The netlist, if this is one.
    pub fn as_netlist(&self) -> Option<&Netlist> {
        match self {
            Design::Comb(nl) => Some(nl),
            _ => None,
        }
    }
}

/// Synthesis errors.
#[derive(Debug, Clone, PartialEq)]
pub enum SynthError {
    /// The entry function was not found.
    NoSuchFunction(String),
    /// A frontend-level transformation failed.
    Transform(String),
    /// The program uses a construct this backend's language lacks.
    Unsupported {
        /// Which backend.
        backend: &'static str,
        /// What was not supported.
        what: String,
    },
    /// A loop could not be handled (e.g. Cones needs full unrolling).
    Loop(String),
    /// A HardwareC timing constraint could not be met.
    ConstraintInfeasible {
        /// Requested budget in cycles.
        requested: u32,
        /// Best achievable cycles.
        achieved: u32,
    },
}

impl fmt::Display for SynthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthError::NoSuchFunction(n) => write!(f, "no function named `{n}`"),
            SynthError::Transform(m) => write!(f, "transformation failed: {m}"),
            SynthError::Unsupported { backend, what } => {
                write!(f, "{backend} does not support {what}")
            }
            SynthError::Loop(m) => write!(f, "loop not synthesizable: {m}"),
            SynthError::ConstraintInfeasible {
                requested,
                achieved,
            } => write!(
                f,
                "timing constraint of {requested} cycles infeasible; best is {achieved}"
            ),
        }
    }
}

impl std::error::Error for SynthError {}

/// A synthesis backend — one row of Table 1, implemented.
pub trait Backend {
    /// Taxonomy metadata.
    fn info(&self) -> BackendInfo;

    /// Synthesizes `entry` of `prog` into hardware.
    ///
    /// # Errors
    ///
    /// See [`SynthError`].
    fn synthesize(
        &self,
        prog: &HirProgram,
        entry: &str,
        opts: &SynthOptions,
    ) -> Result<Design, SynthError>;
}

/// Result of the shared sequential preparation pipeline.
#[derive(Debug, Clone)]
pub struct Prepared {
    /// Inlined, pointer-free, simplified IR of the entry function.
    pub func: Function,
    /// Pointer-analysis statistics.
    pub ptr_stats: PtrStats,
    /// Unrolling statistics.
    pub unroll_stats: UnrollStats,
}

/// Runs the sequential pipeline: inline → unroll (per `force_full_unroll`)
/// → pointer elimination → IR lowering → simplify.
///
/// # Errors
///
/// See [`SynthError`].
pub fn prepare_sequential(
    prog: &HirProgram,
    entry: &str,
    force_full_unroll: bool,
) -> Result<Prepared, SynthError> {
    prepare_sequential_opts(prog, entry, force_full_unroll, false, None)
}

/// [`prepare_sequential`] with the width-narrowing transform optionally
/// appended (narrow → re-simplify) before verification, and an optional
/// unroll-factor override for unpragma'd counted loops.
///
/// # Errors
///
/// See [`SynthError`].
pub fn prepare_sequential_opts(
    prog: &HirProgram,
    entry: &str,
    force_full_unroll: bool,
    narrow: bool,
    unroll_factor: Option<u32>,
) -> Result<Prepared, SynthError> {
    let _span = chls_trace::span("backend.prepare");
    let (entry_id, _) = prog
        .func_by_name(entry)
        .ok_or_else(|| SynthError::NoSuchFunction(entry.to_string()))?;
    let mut inlined = chls_opt::inline_program(prog, entry_id)
        .map_err(|e| SynthError::Transform(e.to_string()))?;
    let (unrolled, unroll_stats) = chls_opt::unroll::unroll_function(
        &inlined.funcs[0],
        UnrollOptions {
            force_full: force_full_unroll,
            factor_override: unroll_factor,
        },
    );
    inlined.funcs[0] = unrolled;
    let mut ptr_stats = PtrStats::default();
    chls_opt::ptr::lower_pointers(&mut inlined.funcs[0], &mut ptr_stats)
        .map_err(|e| SynthError::Transform(e.to_string()))?;
    let mut func = chls_trace::time("ir.lower", || chls_ir::lower_function(&inlined, FuncId(0)))
        .map_err(|e| SynthError::Transform(e.to_string()))?;
    chls_opt::memory::merge_monolithic(&mut func);
    chls_opt::memory::split_banks(&mut func);
    chls_opt::simplify::simplify(&mut func);
    if narrow {
        chls_opt::narrow::narrow(&mut func);
        chls_opt::simplify::simplify(&mut func);
    }
    chls_ir::verify::verify(&func).map_err(|e| SynthError::Transform(e.to_string()))?;
    Ok(Prepared {
        func,
        ptr_stats,
        unroll_stats,
    })
}

/// How one paradigm treats one CHL construct — the static half of a
/// [`SynthError::Unsupported`], declared up front instead of discovered
/// mid-pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Support {
    /// Synthesized faithfully.
    Ok,
    /// Accepted, but at a cost the paper calls out (the reason says which).
    Penalized(&'static str),
    /// Refused; synthesis will fail with this reason.
    Rejected(&'static str),
}

impl Support {
    /// Short machine-readable tag (`ok` / `penalized` / `rejected`).
    pub fn tag(&self) -> &'static str {
        match self {
            Support::Ok => "ok",
            Support::Penalized(_) => "penalized",
            Support::Rejected(_) => "rejected",
        }
    }

    /// The reason, when there is one.
    pub fn reason(&self) -> Option<&'static str> {
        match self {
            Support::Ok => None,
            Support::Penalized(r) | Support::Rejected(r) => Some(r),
        }
    }
}

/// One paradigm's construct-support row: what it does with each feature a
/// CHL program can exercise. Covers the paper's nine paradigms — the
/// seven executable backends plus the two structural rows (`ocapi`,
/// `specc`) that have no compiler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConstructSupport {
    /// Backend / paradigm name (matches [`BackendInfo::name`] for the
    /// executable seven).
    pub backend: &'static str,
    /// `par { ... }` blocks.
    pub par: Support,
    /// Rendezvous channels (`chan<T>`, `send`/`recv`).
    pub channels: Support,
    /// Explicit `delay;` statements.
    pub delay: Support,
    /// Any pointer use at all.
    pub pointers: Support,
    /// Pointers whose points-to set has more than one target.
    pub multi_target_pointers: Support,
    /// Loops whose trip count depends on run-time data.
    pub data_dependent_loops: Support,
    /// `#pragma constraint` cycle budgets.
    pub timing_constraints: Support,
}

/// The construct-support matrix, one row per Table-1 paradigm, in
/// registry (chronological) order.
///
/// Each entry mirrors what the corresponding backend actually does: the
/// sequential five (cones, transmogrifier, c2v, cyber, cash) lower
/// through the SSA IR, which refuses `par`/channels/`delay` outright;
/// the structured two (hardwarec, handelc) walk the HIR and keep them.
pub const CONSTRUCT_MATRIX: &[ConstructSupport] = &[
    ConstructSupport {
        backend: "cones",
        par: Support::Rejected("combinational target; parallelism is implicit in the netlist"),
        channels: Support::Rejected("no clock, so no rendezvous"),
        delay: Support::Rejected("no clock to wait on"),
        pointers: Support::Ok,
        multi_target_pointers: Support::Penalized(
            "targets merge into one monolithic memory, then scalarize into mux trees",
        ),
        data_dependent_loops: Support::Rejected(
            "every loop must fully unroll into the combinational network",
        ),
        timing_constraints: Support::Rejected("no cycles to budget"),
    },
    ConstructSupport {
        backend: "hardwarec",
        par: Support::Penalized("straight-line arms only; control flow inside par is refused"),
        channels: Support::Rejected("no channel hardware; use the handelc backend"),
        delay: Support::Ok,
        pointers: Support::Ok,
        multi_target_pointers: Support::Penalized(
            "targets merge into one monolithic memory with a single port",
        ),
        data_dependent_loops: Support::Ok,
        timing_constraints: Support::Ok,
    },
    ConstructSupport {
        backend: "transmogrifier",
        par: Support::Rejected("sequential-only: one cycle per loop iteration, no processes"),
        channels: Support::Rejected("sequential-only"),
        delay: Support::Rejected("timing is the per-iteration rule, not explicit waits"),
        pointers: Support::Ok,
        multi_target_pointers: Support::Penalized(
            "targets merge into one monolithic memory with a single port",
        ),
        data_dependent_loops: Support::Penalized(
            "accepted, but the implicit rule charges one cycle per iteration",
        ),
        timing_constraints: Support::Penalized("ignored; timing comes from the iteration rule"),
    },
    ConstructSupport {
        backend: "c2v",
        par: Support::Rejected("compiler-driven concurrency only; explicit par is refused"),
        channels: Support::Rejected("plain C subset has no channels"),
        delay: Support::Rejected("scheduling is the compiler's, not the program's"),
        pointers: Support::Ok,
        multi_target_pointers: Support::Penalized(
            "C2Verilog strategy: all targets share one monolithic memory and contend for its port",
        ),
        data_dependent_loops: Support::Ok,
        timing_constraints: Support::Penalized("ignored; constraints live outside the language"),
    },
    ConstructSupport {
        backend: "cyber",
        par: Support::Rejected("BDL is sequential; the scheduler finds the parallelism"),
        channels: Support::Rejected("BDL has no channels"),
        delay: Support::Rejected("cycles come from behavioral scheduling"),
        pointers: Support::Rejected("BDL prohibits pointers outright"),
        multi_target_pointers: Support::Rejected("BDL prohibits pointers outright"),
        data_dependent_loops: Support::Ok,
        timing_constraints: Support::Penalized("ignored; scheduling constraints are external"),
    },
    ConstructSupport {
        backend: "handelc",
        par: Support::Ok,
        channels: Support::Ok,
        delay: Support::Ok,
        pointers: Support::Ok,
        multi_target_pointers: Support::Penalized(
            "targets merge into one monolithic memory with a single port",
        ),
        data_dependent_loops: Support::Penalized(
            "accepted, but a body with no assignment or delay is a zero-cycle loop and is refused",
        ),
        timing_constraints: Support::Penalized("ignored; timing is the per-assignment rule"),
    },
    ConstructSupport {
        backend: "cash",
        par: Support::Rejected("pure ANSI C input; concurrency is extracted, never written"),
        channels: Support::Rejected("pure ANSI C input"),
        delay: Support::Rejected("asynchronous target has no clock"),
        pointers: Support::Ok,
        multi_target_pointers: Support::Penalized(
            "targets merge into one monolithic memory; token-serialized access",
        ),
        data_dependent_loops: Support::Ok,
        timing_constraints: Support::Rejected("no cycles to budget in an asynchronous circuit"),
    },
    ConstructSupport {
        backend: "ocapi",
        par: Support::Penalized("parallelism is structural: you instantiate it, nothing is inferred"),
        channels: Support::Penalized("hand-built as wires and handshakes"),
        delay: Support::Ok,
        pointers: Support::Rejected("structural descriptions have no memory model for pointers"),
        multi_target_pointers: Support::Rejected("structural descriptions have no memory model"),
        data_dependent_loops: Support::Penalized("written as explicit FSM states by hand"),
        timing_constraints: Support::Penalized("implicit: one state is one cycle, by construction"),
    },
    ConstructSupport {
        backend: "specc",
        par: Support::Ok,
        channels: Support::Ok,
        delay: Support::Ok,
        pointers: Support::Rejected("the synthesizable subset excludes pointers"),
        multi_target_pointers: Support::Rejected("the synthesizable subset excludes pointers"),
        data_dependent_loops: Support::Ok,
        timing_constraints: Support::Penalized("refined manually into explicit states"),
    },
];

/// Looks up the construct-support row for `backend`.
pub fn construct_support(backend: &str) -> Option<&'static ConstructSupport> {
    CONSTRUCT_MATRIX.iter().find(|r| r.backend == backend)
}

/// Runs inline → unroll (pragmas) → pointer elimination, staying at HIR
/// (for the structured backends: Handel-C, HardwareC).
///
/// # Errors
///
/// See [`SynthError`].
pub fn prepare_structured(prog: &HirProgram, entry: &str) -> Result<HirProgram, SynthError> {
    prepare_structured_opts(prog, entry, None)
}

/// [`prepare_structured`] with an optional unroll-factor override for
/// unpragma'd counted loops (the `--unroll N` knob).
///
/// # Errors
///
/// See [`SynthError`].
pub fn prepare_structured_opts(
    prog: &HirProgram,
    entry: &str,
    unroll_factor: Option<u32>,
) -> Result<HirProgram, SynthError> {
    let _span = chls_trace::span("backend.prepare");
    let (entry_id, _) = prog
        .func_by_name(entry)
        .ok_or_else(|| SynthError::NoSuchFunction(entry.to_string()))?;
    let mut inlined = chls_opt::inline_program(prog, entry_id)
        .map_err(|e| SynthError::Transform(e.to_string()))?;
    let (unrolled, _) = chls_opt::unroll::unroll_function(
        &inlined.funcs[0],
        UnrollOptions {
            force_full: false,
            factor_override: unroll_factor,
        },
    );
    inlined.funcs[0] = unrolled;
    let mut ptr_stats = PtrStats::default();
    chls_opt::ptr::lower_pointers(&mut inlined.funcs[0], &mut ptr_stats)
        .map_err(|e| SynthError::Transform(e.to_string()))?;
    Ok(inlined)
}
