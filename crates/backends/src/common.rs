//! Shared backend infrastructure: the [`Backend`] trait, taxonomy
//! metadata (the paper's Table 1), synthesis options, design containers,
//! and the sequential preparation pipeline (inline → unroll → pointer
//! elimination → IR → simplify) that compiler-scheduled backends share.

use chls_frontend::hir::{FuncId, HirProgram};
use chls_ir::Function;
use chls_opt::dep::AliasPrecision;
use chls_opt::ptr::PtrStats;
use chls_opt::unroll::{UnrollOptions, UnrollStats};
use chls_rtl::cost::CostModel;
use chls_rtl::fsmd::Fsmd;
use chls_rtl::netlist::Netlist;
use chls_sched::Resources;
use std::fmt;

/// The concurrency model a language exposes (paper, Section on
/// concurrency).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConcurrencyModel {
    /// The compiler finds all parallelism in sequential C.
    CompilerDriven,
    /// The programmer writes explicit parallel constructs.
    Explicit,
    /// Structural: the user instantiates parallel hardware directly.
    Structural,
}

impl fmt::Display for ConcurrencyModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ConcurrencyModel::CompilerDriven => "compiler-driven",
            ConcurrencyModel::Explicit => "explicit (par/channels)",
            ConcurrencyModel::Structural => "structural",
        })
    }
}

/// How a language divides time into cycles (paper, Section on time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimingModel {
    /// No clock at all: a combinational network.
    Combinational,
    /// No clock: asynchronous/self-timed dataflow.
    Asynchronous,
    /// Implicit rule: each assignment takes exactly one cycle.
    RulePerAssignment,
    /// Implicit rule: each loop iteration (and call) takes one cycle.
    RulePerIteration,
    /// The compiler schedules under constraints outside the language.
    CompilerScheduled,
    /// In-language relative timing constraints drive the schedule.
    ConstraintDriven,
    /// The designer states the cycles explicitly (one state = one cycle).
    ExplicitStates,
}

impl fmt::Display for TimingModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TimingModel::Combinational => "none (combinational)",
            TimingModel::Asynchronous => "none (asynchronous)",
            TimingModel::RulePerAssignment => "rule: 1 cycle per assignment",
            TimingModel::RulePerIteration => "rule: 1 cycle per loop iteration/call",
            TimingModel::CompilerScheduled => "compiler-scheduled (external constraints)",
            TimingModel::ConstraintDriven => "in-language timing constraints",
            TimingModel::ExplicitStates => "explicit states (1 cycle each)",
        })
    }
}

/// Taxonomy metadata — one row of the paper's Table 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BackendInfo {
    /// Our backend name.
    pub name: &'static str,
    /// The surveyed language/compiler it models.
    pub models: &'static str,
    /// Publication year of the modeled system.
    pub year: u16,
    /// The paper's one-line characterization (Table 1 column 2).
    pub comment: &'static str,
    /// Concurrency model.
    pub concurrency: ConcurrencyModel,
    /// Timing model.
    pub timing: TimingModel,
    /// Supports pointers (possibly via monolithic memory).
    pub pointers: bool,
    /// Supports data-dependent (unbounded) loops.
    pub data_dependent_loops: bool,
    /// Supports `par`/channels.
    pub parallel_constructs: bool,
}

/// Synthesis options shared by all backends.
#[derive(Debug, Clone)]
pub struct SynthOptions {
    /// Target clock period in ns (ignored by combinational/async backends).
    pub clock_period_ns: f64,
    /// The cost model.
    pub model: CostModel,
    /// Functional-unit and memory-port limits for scheduled backends.
    pub resources: Resources,
    /// Memory-dependence precision.
    pub precision: AliasPrecision,
    /// Enable loop pipelining (modulo scheduling) where supported.
    pub pipeline_loops: bool,
    /// If-convert pure branchy loop bodies before pipelining (on by
    /// default; an ablation knob — turning it off leaves conditional
    /// bodies to the sequential fallback).
    pub pipeline_if_convert: bool,
    /// Narrow every datapath register to the bit-width the value-range
    /// analysis proves sufficient (the "compiler recovers bit-precision
    /// from C types" escape hatch of E8). Sound: a register narrower than
    /// its value never occurs, by the analysis' soundness property.
    pub narrow_widths: bool,
}

impl Default for SynthOptions {
    fn default() -> Self {
        SynthOptions {
            clock_period_ns: 2.0,
            model: CostModel::new(),
            resources: Resources::typical(),
            precision: AliasPrecision::Basic,
            pipeline_loops: false,
            pipeline_if_convert: true,
            narrow_widths: false,
        }
    }
}

/// A synthesized design.
#[derive(Debug, Clone)]
pub enum Design {
    /// A purely combinational netlist (Cones).
    Comb(Netlist),
    /// A clocked FSMD.
    Fsmd(Fsmd),
    /// An asynchronous dataflow circuit (CASH).
    Dataflow(chls_dataflow::graph::DataflowGraph),
}

impl Design {
    /// The design's area in NAND2-equivalent gates.
    pub fn area(&self, model: &CostModel) -> f64 {
        match self {
            Design::Comb(nl) => nl.area(model),
            Design::Fsmd(f) => f.area(model),
            Design::Dataflow(g) => g.area(model),
        }
    }

    /// The FSMD, if this is one.
    pub fn as_fsmd(&self) -> Option<&Fsmd> {
        match self {
            Design::Fsmd(f) => Some(f),
            _ => None,
        }
    }

    /// The netlist, if this is one.
    pub fn as_netlist(&self) -> Option<&Netlist> {
        match self {
            Design::Comb(nl) => Some(nl),
            _ => None,
        }
    }
}

/// Synthesis errors.
#[derive(Debug, Clone, PartialEq)]
pub enum SynthError {
    /// The entry function was not found.
    NoSuchFunction(String),
    /// A frontend-level transformation failed.
    Transform(String),
    /// The program uses a construct this backend's language lacks.
    Unsupported {
        /// Which backend.
        backend: &'static str,
        /// What was not supported.
        what: String,
    },
    /// A loop could not be handled (e.g. Cones needs full unrolling).
    Loop(String),
    /// A HardwareC timing constraint could not be met.
    ConstraintInfeasible {
        /// Requested budget in cycles.
        requested: u32,
        /// Best achievable cycles.
        achieved: u32,
    },
}

impl fmt::Display for SynthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthError::NoSuchFunction(n) => write!(f, "no function named `{n}`"),
            SynthError::Transform(m) => write!(f, "transformation failed: {m}"),
            SynthError::Unsupported { backend, what } => {
                write!(f, "{backend} does not support {what}")
            }
            SynthError::Loop(m) => write!(f, "loop not synthesizable: {m}"),
            SynthError::ConstraintInfeasible {
                requested,
                achieved,
            } => write!(
                f,
                "timing constraint of {requested} cycles infeasible; best is {achieved}"
            ),
        }
    }
}

impl std::error::Error for SynthError {}

/// A synthesis backend — one row of Table 1, implemented.
pub trait Backend {
    /// Taxonomy metadata.
    fn info(&self) -> BackendInfo;

    /// Synthesizes `entry` of `prog` into hardware.
    ///
    /// # Errors
    ///
    /// See [`SynthError`].
    fn synthesize(
        &self,
        prog: &HirProgram,
        entry: &str,
        opts: &SynthOptions,
    ) -> Result<Design, SynthError>;
}

/// Result of the shared sequential preparation pipeline.
#[derive(Debug, Clone)]
pub struct Prepared {
    /// Inlined, pointer-free, simplified IR of the entry function.
    pub func: Function,
    /// Pointer-analysis statistics.
    pub ptr_stats: PtrStats,
    /// Unrolling statistics.
    pub unroll_stats: UnrollStats,
}

/// Runs the sequential pipeline: inline → unroll (per `force_full_unroll`)
/// → pointer elimination → IR lowering → simplify.
///
/// # Errors
///
/// See [`SynthError`].
pub fn prepare_sequential(
    prog: &HirProgram,
    entry: &str,
    force_full_unroll: bool,
) -> Result<Prepared, SynthError> {
    let (entry_id, _) = prog
        .func_by_name(entry)
        .ok_or_else(|| SynthError::NoSuchFunction(entry.to_string()))?;
    let mut inlined = chls_opt::inline_program(prog, entry_id)
        .map_err(|e| SynthError::Transform(e.to_string()))?;
    let (unrolled, unroll_stats) = chls_opt::unroll::unroll_function(
        &inlined.funcs[0],
        UnrollOptions {
            force_full: force_full_unroll,
        },
    );
    inlined.funcs[0] = unrolled;
    let mut ptr_stats = PtrStats::default();
    chls_opt::ptr::lower_pointers(&mut inlined.funcs[0], &mut ptr_stats)
        .map_err(|e| SynthError::Transform(e.to_string()))?;
    let mut func = chls_ir::lower_function(&inlined, FuncId(0))
        .map_err(|e| SynthError::Transform(e.to_string()))?;
    chls_opt::memory::merge_monolithic(&mut func);
    chls_opt::memory::split_banks(&mut func);
    chls_opt::simplify::simplify(&mut func);
    chls_ir::verify::verify(&func).map_err(|e| SynthError::Transform(e.to_string()))?;
    Ok(Prepared {
        func,
        ptr_stats,
        unroll_stats,
    })
}

/// Runs inline → unroll (pragmas) → pointer elimination, staying at HIR
/// (for the structured backends: Handel-C, HardwareC).
///
/// # Errors
///
/// See [`SynthError`].
pub fn prepare_structured(prog: &HirProgram, entry: &str) -> Result<HirProgram, SynthError> {
    let (entry_id, _) = prog
        .func_by_name(entry)
        .ok_or_else(|| SynthError::NoSuchFunction(entry.to_string()))?;
    let mut inlined = chls_opt::inline_program(prog, entry_id)
        .map_err(|e| SynthError::Transform(e.to_string()))?;
    let (unrolled, _) = chls_opt::unroll::unroll_function(
        &inlined.funcs[0],
        UnrollOptions { force_full: false },
    );
    inlined.funcs[0] = unrolled;
    let mut ptr_stats = PtrStats::default();
    chls_opt::ptr::lower_pointers(&mut inlined.funcs[0], &mut ptr_stats)
        .map_err(|e| SynthError::Transform(e.to_string()))?;
    Ok(inlined)
}
