//! The Transmogrifier C backend.
//!
//! Galloway's Transmogrifier C (FCCM 1995) "places cycle boundaries at
//! function calls and at the beginning of *while* loops": everything
//! between loop-iteration boundaries executes combinationally in a single
//! clock cycle. The paper's point: "only loop iterations and function
//! calls take a cycle. While simple to understand, such rules can require
//! recoding to meet timing … loops may need to be unrolled."
//!
//! Model here: the CFG is partitioned into *regions* anchored at the
//! entry block, every natural-loop header, and any block entered from
//! more than one region. Each region executes in exactly one state (one
//! cycle): its acyclic block DAG is flattened with predicates into
//! combinational expression trees; a loop iteration is one trip through
//! its header's region. Values crossing regions live in registers; stores
//! commit at cycle end with store-to-load forwarding inside the region.
//! Calls are fully inlined (our whole-program pipeline), so the
//! call-boundary rule does not arise — noted in DESIGN.md.
//!
//! The flip side the paper highlights is visible in the numbers: big
//! unrolled regions produce long critical paths (slow clocks) and wide
//! multi-ported memory access, while small regions waste cycles.

use crate::common::*;
use chls_frontend::hir::HirProgram;
use chls_frontend::IntType;
use chls_ir::ir::{BlockId, Function, InstKind, MemSource, Term, Value};
use chls_ir::BinKind;
use chls_rtl::fsmd::{Action, Fsmd, FsmdMem, MemId, NextState, RegId, Rv, RvKind, StateId};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// The Transmogrifier C backend.
#[derive(Debug, Clone, Copy, Default)]
pub struct Transmogrifier;

/// Largest single-cycle expression (in Rv nodes) the backend will
/// build. Inlined per-cycle expressions are *trees* — a value feeding
/// several consumers is cloned into each — so mux chains over a fully
/// unrolled loop grow exponentially; past this bound the design is not
/// a circuit anyone would accept from a one-cycle-per-iteration rule,
/// and building it would hang the compiler.
const MAX_RV_NODES: usize = 1 << 17;

/// Counts the nodes of `rv`, giving up (`None`) once the count exceeds
/// `cap` — the early abort is what keeps the guard itself from paying
/// the exponential cost it exists to detect.
fn rv_nodes_capped(rv: &Rv, cap: usize) -> Option<usize> {
    let mut stack = vec![rv];
    let mut n = 0usize;
    while let Some(r) = stack.pop() {
        n += 1;
        if n > cap {
            return None;
        }
        match &r.kind {
            RvKind::Const(_) | RvKind::Reg(_) | RvKind::Input(_) => {}
            RvKind::Un(_, a) | RvKind::Cast(a) => stack.push(a),
            RvKind::Bin(_, a, b) => {
                stack.push(a);
                stack.push(b);
            }
            RvKind::Mux(a, b, c) => {
                stack.push(a);
                stack.push(b);
                stack.push(c);
            }
            RvKind::MemRead { addr, .. } => stack.push(addr),
        }
    }
    Some(n)
}

impl Backend for Transmogrifier {
    fn info(&self) -> BackendInfo {
        BackendInfo {
            name: "transmogrifier",
            models: "Transmogrifier C (Galloway)",
            year: 1995,
            comment: "Limited scope",
            concurrency: ConcurrencyModel::CompilerDriven,
            timing: TimingModel::RulePerIteration,
            pointers: true,
            data_dependent_loops: true,
            parallel_constructs: false,
        }
    }

    fn synthesize(
        &self,
        prog: &HirProgram,
        entry: &str,
        opts: &SynthOptions,
    ) -> Result<Design, SynthError> {
        let prepared = prepare_sequential_opts(prog, entry, false, opts.narrow_widths, opts.unroll_factor)?;
        let fsmd = build(&prepared.func)?;
        Ok(Design::Fsmd(fsmd))
    }
}

fn u1() -> IntType {
    IntType::new(1, false)
}

/// Region assignment: every block belongs to the region of exactly one
/// head. Returns (region head of each block, ordered head list).
fn assign_regions(f: &Function) -> (Vec<BlockId>, Vec<BlockId>) {
    let forest = chls_ir::loops::LoopForest::compute(f);
    let mut heads: BTreeSet<BlockId> = BTreeSet::new();
    heads.insert(f.entry);
    for l in &forest.loops {
        heads.insert(l.header);
    }
    loop {
        // Assign by BFS from each head, not entering other heads.
        let mut region: Vec<Option<BlockId>> = vec![None; f.blocks.len()];
        for &h in &heads {
            let mut queue = vec![h];
            region[h.0 as usize] = Some(h);
            while let Some(b) = queue.pop() {
                for s in f.block(b).term.successors() {
                    if heads.contains(&s) || region[s.0 as usize].is_some() {
                        continue;
                    }
                    region[s.0 as usize] = Some(h);
                    queue.push(s);
                }
            }
        }
        // A block reached from two different regions must become a head.
        let mut changed = false;
        for (bi, block) in f.blocks.iter().enumerate() {
            let Some(rb) = region[bi] else { continue };
            for s in block.term.successors() {
                if heads.contains(&s) {
                    continue;
                }
                if let Some(rs) = region[s.0 as usize] {
                    if rs != rb {
                        heads.insert(s);
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            let assigned: Vec<BlockId> = region
                .iter()
                .enumerate()
                .map(|(bi, r)| r.unwrap_or(BlockId(bi as u32)))
                .collect();
            return (assigned, heads.into_iter().collect());
        }
    }
}

fn build(f: &Function) -> Result<Fsmd, SynthError> {
    let (region_of, heads) = assign_regions(f);
    let mut out = Fsmd::new(f.name.clone());

    // Inputs and memories.
    let mut input_idx: HashMap<usize, usize> = HashMap::new();
    for inst in &f.insts {
        if let InstKind::Param(p) = &inst.kind {
            input_idx
                .entry(*p)
                .or_insert_with(|| out.add_input(format!("arg{p}"), inst.ty, *p));
        }
    }
    for m in &f.mems {
        out.add_mem(FsmdMem {
            name: m.name.clone(),
            elem: m.elem,
            len: m.len,
            rom: m.rom.clone(),
            param_index: match m.source {
                MemSource::Param(p) => Some(p),
                _ => None,
            },
        });
    }

    // Registers: values used outside their defining region, plus phis at
    // region heads.
    let mut needs_reg: BTreeSet<Value> = BTreeSet::new();
    for (i, inst) in f.insts.iter().enumerate() {
        let v = Value(i as u32);
        let def_region = region_of[inst.block.0 as usize];
        if matches!(inst.kind, InstKind::Phi(_)) && heads.contains(&inst.block) {
            needs_reg.insert(v);
            continue;
        }
        if matches!(inst.kind, InstKind::Const(_) | InstKind::Param(_)) {
            continue;
        }
        // Used in another region?
        for (j, other) in f.insts.iter().enumerate() {
            let mut used = false;
            match &other.kind {
                InstKind::Phi(args) => {
                    for (pred, pv) in args {
                        if *pv == v && region_of[pred.0 as usize] != def_region {
                            used = true;
                        }
                    }
                }
                kind => kind.for_each_operand(|o| used |= o == v),
            }
            if used {
                let use_region = match &other.kind {
                    InstKind::Phi(_) => def_region, // handled above per-edge
                    _ => region_of[f.insts[j].block.0 as usize],
                };
                if use_region != def_region {
                    needs_reg.insert(v);
                }
            }
        }
        // Terminator uses in other regions.
        for (bi, block) in f.blocks.iter().enumerate() {
            let r = region_of[bi];
            if r == def_region {
                continue;
            }
            match &block.term {
                Term::Br { cond, .. } if *cond == v => {
                    needs_reg.insert(v);
                }
                Term::Ret(Some(rv)) if *rv == v => {
                    needs_reg.insert(v);
                }
                _ => {}
            }
        }
    }
    let mut reg_of: HashMap<Value, RegId> = HashMap::new();
    for &v in &needs_reg {
        let ty = f.inst(v).ty;
        reg_of.insert(v, out.add_reg(format!("v{}", v.0), ty, 0));
    }
    let ret_reg = f.ret_ty.map(|ty| out.add_reg("ret_value", ty, 0));

    // One state per region + done.
    let mut state_of: HashMap<BlockId, StateId> = HashMap::new();
    for &h in &heads {
        state_of.insert(h, out.add_state());
    }
    let done_state = out.add_state();
    out.state_mut(done_state).next = NextState::Done;
    out.entry = state_of[&f.entry];

    // Flatten each region.
    let rpo = f.reverse_postorder();
    for &head in &heads {
        let region_blocks: Vec<BlockId> = rpo
            .iter()
            .copied()
            .filter(|b| region_of[b.0 as usize] == head)
            .collect();
        let state = state_of[&head];
        let mut values: HashMap<Value, Rv> = HashMap::new();
        let mut block_pred: HashMap<BlockId, Rv> = HashMap::new();
        let mut edge_pred: HashMap<(BlockId, BlockId), Rv> = HashMap::new();
        // Pending (uncommitted) stores for in-region forwarding:
        // (guard, addr, value) per memory, in program order.
        let mut pending: BTreeMap<u32, Vec<(Rv, Rv, Rv)>> = BTreeMap::new();
        // Exit edges: (guard predicate, target head or Ret value).
        enum Exit {
            To(BlockId, Rv),
            Ret(Option<Value>, Rv, BlockId),
        }
        let mut exits: Vec<Exit> = Vec::new();

        // Helper to read a value inside this region.
        let rv_of = |v: Value,
                     values: &HashMap<Value, Rv>,
                     reg_of: &HashMap<Value, RegId>,
                     input_idx: &HashMap<usize, usize>|
         -> Rv {
            let inst = f.inst(v);
            match &inst.kind {
                InstKind::Const(c) => Rv::konst(*c, inst.ty),
                InstKind::Param(p) => Rv {
                    kind: RvKind::Input(input_idx[p]),
                    ty: inst.ty,
                },
                _ => {
                    if let Some(rv) = values.get(&v) {
                        rv.clone()
                    } else {
                        Rv::reg(reg_of[&v], inst.ty)
                    }
                }
            }
        };

        for &b in &region_blocks {
            // Block predicate.
            let pred = if b == head {
                Rv::konst(1, u1())
            } else {
                let mut acc: Option<Rv> = None;
                for (edge, p) in &edge_pred {
                    if edge.1 == b {
                        acc = Some(match acc {
                            None => p.clone(),
                            Some(a) => Rv::bin(BinKind::Or, u1(), a, p.clone()),
                        });
                    }
                }
                acc.unwrap_or_else(|| Rv::konst(0, u1()))
            };
            block_pred.insert(b, pred.clone());

            // Instructions.
            for &v in &f.block(b).insts {
                let inst = f.inst(v);
                let rv = match &inst.kind {
                    InstKind::Const(_) | InstKind::Param(_) => continue,
                    InstKind::Phi(args) => {
                        if b == head {
                            // Head phi: lives in its register.
                            Rv::reg(reg_of[&v], inst.ty)
                        } else {
                            // Interior join: priority mux over edges.
                            let mut acc: Option<Rv> = None;
                            for (p, pv) in args {
                                let ep = edge_pred
                                    .get(&(*p, b))
                                    .cloned()
                                    .unwrap_or_else(|| Rv::konst(0, u1()));
                                let src = rv_of(*pv, &values, &reg_of, &input_idx);
                                acc = Some(match acc {
                                    None => src,
                                    Some(prev) => Rv {
                                        kind: RvKind::Mux(
                                            Box::new(ep),
                                            Box::new(src),
                                            Box::new(prev),
                                        ),
                                        ty: inst.ty,
                                    },
                                });
                            }
                            acc.ok_or_else(|| {
                                SynthError::Transform("empty phi".to_string())
                            })?
                        }
                    }
                    InstKind::Bin(op, a, bb) => Rv {
                        kind: RvKind::Bin(
                            *op,
                            Box::new(rv_of(*a, &values, &reg_of, &input_idx)),
                            Box::new(rv_of(*bb, &values, &reg_of, &input_idx)),
                        ),
                        ty: if op.is_comparison() { u1() } else { inst.ty },
                    },
                    InstKind::Un(op, a) => Rv {
                        kind: RvKind::Un(*op, Box::new(rv_of(*a, &values, &reg_of, &input_idx))),
                        ty: inst.ty,
                    },
                    InstKind::Select { cond, t, f: fv } => Rv {
                        kind: RvKind::Mux(
                            Box::new(rv_of(*cond, &values, &reg_of, &input_idx)),
                            Box::new(rv_of(*t, &values, &reg_of, &input_idx)),
                            Box::new(rv_of(*fv, &values, &reg_of, &input_idx)),
                        ),
                        ty: inst.ty,
                    },
                    InstKind::Cast { val, .. } => Rv {
                        kind: RvKind::Cast(Box::new(rv_of(*val, &values, &reg_of, &input_idx))),
                        ty: inst.ty,
                    },
                    InstKind::Load { mem, addr } => {
                        let raw = rv_of(*addr, &values, &reg_of, &input_idx);
                        // Loads evaluate speculatively even on not-taken
                        // paths; gate the address so a dead path cannot
                        // read out of bounds (one mux of hardware).
                        let a = if matches!(pred.kind, RvKind::Const(1)) {
                            raw
                        } else {
                            Rv {
                                kind: RvKind::Mux(
                                    Box::new(pred.clone()),
                                    Box::new(raw),
                                    Box::new(Rv::konst(0, f.inst(*addr).ty)),
                                ),
                                ty: f.inst(*addr).ty,
                            }
                        };
                        // Base read, then forward pending same-cycle stores.
                        let mut rv = Rv {
                            kind: RvKind::MemRead {
                                mem: MemId(mem.0),
                                addr: Box::new(a.clone()),
                            },
                            ty: inst.ty,
                        };
                        if let Some(writes) = pending.get(&mem.0) {
                            for (g, wa, wv) in writes {
                                let same = Rv {
                                    kind: RvKind::Bin(
                                        BinKind::Eq,
                                        Box::new(wa.clone()),
                                        Box::new(a.clone()),
                                    ),
                                    ty: u1(),
                                };
                                let hit = Rv::bin(BinKind::And, u1(), g.clone(), same);
                                rv = Rv {
                                    kind: RvKind::Mux(
                                        Box::new(hit),
                                        Box::new(wv.clone()),
                                        Box::new(rv),
                                    ),
                                    ty: inst.ty,
                                };
                            }
                        }
                        rv
                    }
                    InstKind::Store { mem, addr, value } => {
                        let a = rv_of(*addr, &values, &reg_of, &input_idx);
                        let val = rv_of(*value, &values, &reg_of, &input_idx);
                        pending.entry(mem.0).or_default().push((
                            pred.clone(),
                            a,
                            val,
                        ));
                        continue;
                    }
                };
                if rv_nodes_capped(&rv, MAX_RV_NODES).is_none() {
                    return Err(SynthError::Unsupported {
                        backend: "transmogrifier",
                        what: format!(
                            "a single-cycle expression of more than {MAX_RV_NODES} \
                             operators (fully unrolled loop bodies chain combinationally \
                             under the one-cycle-per-iteration rule; reduce --unroll)"
                        ),
                    });
                }
                values.insert(v, rv);
            }

            // Terminator: edge predicates within the region, exits across.
            let mk_and = |a: Rv, b: Rv| Rv::bin(BinKind::And, u1(), a, b);
            match &f.block(b).term {
                Term::Jump(t) => {
                    if region_of[t.0 as usize] == head && !heads.contains(t) {
                        merge_edge(&mut edge_pred, (b, *t), pred.clone());
                    } else {
                        exits.push(Exit::To(*t, pred.clone()));
                    }
                }
                Term::Br { cond, then, els } => {
                    let c = rv_of(*cond, &values, &reg_of, &input_idx);
                    let not_c = Rv {
                        kind: RvKind::Bin(
                            BinKind::Eq,
                            Box::new(c.clone()),
                            Box::new(Rv::konst(0, u1())),
                        ),
                        ty: u1(),
                    };
                    for (target, gate) in [(*then, c), (*els, not_c)] {
                        let ep = mk_and(pred.clone(), gate);
                        if region_of[target.0 as usize] == head && !heads.contains(&target) {
                            merge_edge(&mut edge_pred, (b, target), ep);
                        } else {
                            exits.push(Exit::To(target, ep));
                        }
                    }
                }
                Term::Ret(v) => exits.push(Exit::Ret(*v, pred.clone(), b)),
                Term::Unreachable => {}
            }
        }

        // Commit pending stores (guarded).
        for (m, writes) in pending {
            for (g, a, val) in writes {
                out.state_mut(state)
                    .actions
                    .push(Action::write_if(g, MemId(m), a, val));
            }
        }
        // Commit registers for cross-region values defined here.
        for (&v, &r) in &reg_of {
            let inst = f.inst(v);
            if region_of[inst.block.0 as usize] != head {
                continue;
            }
            if matches!(inst.kind, InstKind::Phi(_)) && inst.block == head {
                continue; // head phis are written by incoming edges below
            }
            if let Some(rv) = values.get(&v) {
                let guard = block_pred[&inst.block].clone();
                out.state_mut(state)
                    .actions
                    .push(Action::set_if(guard, r, rv.clone()));
            }
        }
        // Head-phi updates for every exit edge targeting a head, plus the
        // head's own phis fed by in-region back edges.
        let mut cases: Vec<(Rv, StateId)> = Vec::new();
        for exit in &exits {
            match exit {
                Exit::To(target, guard) => {
                    // The target is a head (or becomes one): write its phis.
                    let tgt_head = if heads.contains(target) {
                        *target
                    } else {
                        region_of[target.0 as usize]
                    };
                    for &pv in &f.block(tgt_head).insts {
                        if let InstKind::Phi(args) = &f.inst(pv).kind {
                            for (pred_blk, incoming) in args {
                                if region_of[pred_blk.0 as usize] == head
                                    && edge_sources_match(f, *pred_blk, *target)
                                {
                                    let src = rv_of(*incoming, &values, &reg_of, &input_idx);
                                    out.state_mut(state).actions.push(Action::set_if(
                                        guard.clone(),
                                        reg_of[&pv],
                                        src,
                                    ));
                                }
                            }
                        }
                    }
                    cases.push((guard.clone(), state_of[&tgt_head]));
                }
                Exit::Ret(v, guard, _b) => {
                    if let (Some(rr), Some(v)) = (ret_reg, v) {
                        let src = rv_of(*v, &values, &reg_of, &input_idx);
                        out.state_mut(state)
                            .actions
                            .push(Action::set_if(guard.clone(), rr, src));
                    }
                    cases.push((guard.clone(), done_state));
                }
            }
        }
        out.state_mut(state).next = match cases.len() {
            0 => NextState::Goto(done_state),
            1 => NextState::Goto(cases[0].1),
            _ => {
                let default = cases.last().expect("nonempty").1;
                NextState::Cases {
                    cases: cases[..cases.len() - 1].to_vec(),
                    default,
                }
            }
        };
    }

    out.ret = ret_reg.map(|rr| Rv::reg(rr, f.ret_ty.expect("typed")));
    Ok(out)
}

/// True when `pred_blk`'s terminator actually targets `target` (a phi arg
/// records the predecessor block; the exit edge we are processing may be a
/// different edge out of the same region).
fn edge_sources_match(f: &Function, pred_blk: BlockId, target: BlockId) -> bool {
    f.block(pred_blk).term.successors().contains(&target)
}

fn merge_edge(
    edge_pred: &mut HashMap<(BlockId, BlockId), Rv>,
    key: (BlockId, BlockId),
    pred: Rv,
) {
    match edge_pred.remove(&key) {
        Some(existing) => {
            edge_pred.insert(key, Rv::bin(BinKind::Or, u1(), existing, pred));
        }
        None => {
            edge_pred.insert(key, pred);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chls_frontend::compile_to_hir;
    use chls_sim::fsmd_sim::simulate;
    use chls_sim::interp::ArgValue;

    fn synth(src: &str, entry: &str) -> Fsmd {
        let prog = compile_to_hir(src).expect("frontend ok");
        let d = Transmogrifier
            .synthesize(&prog, entry, &SynthOptions::default())
            .expect("synthesis ok");
        match d {
            Design::Fsmd(f) => f,
            _ => panic!("transmogrifier must produce an FSMD"),
        }
    }

    #[test]
    fn straight_line_is_one_cycle() {
        let f = synth("int f(int a, int b) { return a * b + a - b; }", "f");
        let r = simulate(&f, &[ArgValue::Scalar(6), ArgValue::Scalar(7)], 100).unwrap();
        assert_eq!(r.ret, Some(41));
        // One region state + done.
        assert_eq!(r.cycles, 2);
    }

    #[test]
    fn loop_costs_one_cycle_per_iteration() {
        let f = synth(
            "int f(int n) { int s = 0; for (int i = 0; i < n; i++) s += i; return s; }",
            "f",
        );
        let r10 = simulate(&f, &[ArgValue::Scalar(10)], 1000).unwrap();
        let r20 = simulate(&f, &[ArgValue::Scalar(20)], 1000).unwrap();
        assert_eq!(r10.ret, Some(45));
        assert_eq!(r20.ret, Some(190));
        // Cycle counts grow ~1 per iteration.
        let d = r20.cycles as i64 - r10.cycles as i64;
        assert!((d - 10).abs() <= 2, "delta {d}");
    }

    #[test]
    fn unrolling_buys_cycles_transmogrifier_style() {
        let plain = synth(
            "int f(int a[16]) {
                int s = 0;
                for (int i = 0; i < 16; i++) s += a[i];
                return s;
            }",
            "f",
        );
        let unrolled = synth(
            "int f(int a[16]) {
                int s = 0;
                #pragma unroll 4
                for (int i = 0; i < 16; i++) s += a[i];
                return s;
            }",
            "f",
        );
        let args = [ArgValue::Array((1..=16).collect())];
        let rp = simulate(&plain, &args, 1000).unwrap();
        let ru = simulate(&unrolled, &args, 1000).unwrap();
        assert_eq!(rp.ret, Some(136));
        assert_eq!(ru.ret, Some(136));
        // Unrolled by 4: roughly a quarter of the loop cycles.
        assert!(
            ru.cycles * 2 < rp.cycles,
            "unrolled {} vs plain {}",
            ru.cycles,
            rp.cycles
        );
        // ... but the clock must slow down (longer critical path) and the
        // memory needs more ports: the paper's recoding trade-off.
        let m = chls_rtl::CostModel::new();
        assert!(unrolled.critical_path(&m) > plain.critical_path(&m));
        let ports_plain = plain.mem_port_usage()[0].0;
        let ports_unrolled = unrolled.mem_port_usage()[0].0;
        assert!(ports_unrolled > ports_plain);
    }

    #[test]
    fn gcd_matches_golden() {
        let f = synth(
            "int f(int a, int b) { while (b != 0) { int t = b; b = a % b; a = t; } return a; }",
            "f",
        );
        let r = simulate(&f, &[ArgValue::Scalar(48), ArgValue::Scalar(36)], 1000).unwrap();
        assert_eq!(r.ret, Some(12));
    }

    #[test]
    fn memory_store_then_load_same_cycle_forwards() {
        let f = synth(
            "int f(int a[4]) {
                a[1] = 42;
                return a[1];
            }",
            "f",
        );
        let r = simulate(&f, &[ArgValue::Array(vec![0; 4])], 100).unwrap();
        assert_eq!(r.ret, Some(42));
        assert_eq!(r.mems[0][1], 42);
    }

    #[test]
    fn post_loop_merge_blocks() {
        let f = synth(
            "int f(int a, int n) {
                int x;
                if (a > 0) {
                    int s = 0;
                    for (int i = 0; i < n; i++) s += i;
                    x = s;
                } else {
                    x = -a;
                }
                return x * 2;
            }",
            "f",
        );
        let r = simulate(&f, &[ArgValue::Scalar(1), ArgValue::Scalar(5)], 1000).unwrap();
        assert_eq!(r.ret, Some(20));
        let r = simulate(&f, &[ArgValue::Scalar(-21), ArgValue::Scalar(5)], 1000).unwrap();
        assert_eq!(r.ret, Some(42));
    }

    #[test]
    fn nested_loops_cycle_structure() {
        let f = synth(
            "int f(int n) {
                int s = 0;
                for (int i = 0; i < n; i++)
                    for (int j = 0; j < n; j++)
                        s += 1;
                return s;
            }",
            "f",
        );
        let r = simulate(&f, &[ArgValue::Scalar(4)], 10_000).unwrap();
        assert_eq!(r.ret, Some(16));
        // At least n*n cycles (each inner iteration is one).
        assert!(r.cycles >= 16, "cycles {}", r.cycles);
    }

    #[test]
    fn bubble_sort_conformance() {
        let f = synth(
            "void f(int a[6]) {
                for (int i = 0; i < 5; i++) {
                    for (int j = 0; j < 5 - i; j++) {
                        if (a[j] > a[j + 1]) {
                            int t = a[j];
                            a[j] = a[j + 1];
                            a[j + 1] = t;
                        }
                    }
                }
            }",
            "f",
        );
        let r = simulate(
            &f,
            &[ArgValue::Array(vec![5, 2, 9, 1, 7, 3])],
            100_000,
        )
        .unwrap();
        assert_eq!(r.mems[0], vec![1, 2, 3, 5, 7, 9]);
    }

    #[test]
    fn info_row() {
        let info = Transmogrifier.info();
        assert_eq!(info.timing, TimingModel::RulePerIteration);
        assert_eq!(info.year, 1995);
    }
}
