//! Hardware loop pipelining for the C2Verilog backend.
//!
//! When [`SynthOptions::pipeline_loops`] is set, innermost loops of the
//! canonical shape (header with the exit branch + a jump-chain body) are
//! modulo-scheduled and emitted as an *overlapped* FSMD kernel: `II`
//! cycling states issue one iteration per initiation interval, with
//! per-stage valid bits guarding each operation and a drain sequence on
//! exit. The canonical shape is manufactured where possible: c2v runs
//! redundant-load elimination and if-conversion first (branchy bodies
//! predicate into `Select`s), and `loop_dfg` drops provably-independent
//! carried memory edges via induction-relative affine analysis. Values
//! whose lifetime crosses window boundaries — boundary-updated phis and
//! long-lived same-iteration values alike — get per-stage shadow
//! registers (modulo variable expansion). Loops that still violate a
//! window condition (late exit conditions, multi-cycle operations,
//! unshadowable lifetimes) fall back to the sequential schedule.
//!
//! Control discipline (no speculation): the exit condition for iteration
//! *i+1* is computed during iteration *i*'s stage-0 window, strictly after
//! the loop-carried registers update, so the issue decision for the next
//! window is always resolved by the window boundary.

use crate::common::SynthOptions;
use chls_frontend::IntType;
use chls_ir::ir::{BlockId, Function, InstKind, Term, Value};
use chls_ir::loops::NaturalLoop;
use chls_rtl::fsmd::{Action, Fsmd, MemId, NextState, RegId, Rv, RvKind, StateId};
use chls_sched::modulo::{loop_dfg, modulo_schedule};
use chls_sched::NodeId;
use chls_ir::BinKind;
use std::collections::HashMap;

fn u1() -> IntType {
    IntType::new(1, false)
}

macro_rules! reject {
    ($why:expr) => {{
        if std::env::var("CHLS_PIPE_DEBUG").is_ok() {
            eprintln!("pipeline rejected: {}", $why);
        }
        return None;
    }};
}

/// The canonical loop shape the pipeliner handles.
struct LoopShape {
    header: BlockId,
    /// Body blocks in execution order (jump chain ending at the header).
    body: Vec<BlockId>,
    /// Loop entry target of the header branch.
    body_first: BlockId,
    /// Exit target of the header branch.
    exit: BlockId,
    /// The branch condition value.
    cond: Value,
    /// Branch polarity: `true` when the `then` arm enters the body.
    enter_on_true: bool,
}

fn recognize_shape(f: &Function, l: &NaturalLoop) -> Option<LoopShape> {
    let Term::Br { cond, then, els } = &f.block(l.header).term else {
        return None;
    };
    let (body_first, exit, enter_on_true) = if l.contains(*then) && !l.contains(*els) {
        (*then, *els, true)
    } else if l.contains(*els) && !l.contains(*then) {
        (*els, *then, false)
    } else {
        return None;
    };
    // Body: jump chain from body_first back to the header.
    let mut body = Vec::new();
    let mut cur = body_first;
    let mut guard = 0;
    loop {
        guard += 1;
        if guard > 1_000 {
            return None;
        }
        if !l.contains(cur) || cur == l.header {
            return None;
        }
        body.push(cur);
        match &f.block(cur).term {
            Term::Jump(t) if *t == l.header => break,
            Term::Jump(t) => cur = *t,
            _ => return None,
        }
    }
    Some(LoopShape {
        header: l.header,
        body,
        body_first,
        exit,
        cond: *cond,
        enter_on_true,
    })
}

/// Everything the emitter needs from c2v.
pub(crate) struct PipelineCtx<'a> {
    pub f: &'a Function,
    pub reg_of: &'a HashMap<Value, RegId>,
    pub input_idx: &'a HashMap<usize, usize>,
    pub opts: &'a SynthOptions,
}

/// Result: the state preds should jump to, and where the loop exits to
/// (caller connects the returned exit-state's `next`).
pub(crate) struct PipelinedLoop {
    pub entry: StateId,
    pub exit_state: StateId,
    pub exit_block: BlockId,
    pub covered: Vec<BlockId>,
    /// Achieved initiation interval (for reports).
    #[allow(dead_code)]
    pub ii: u32,
}

/// Attempts to emit `l` as a pipelined kernel into `out`.
/// Returns `None` (emitting nothing) when any applicability check fails.
pub(crate) fn try_pipeline(
    out: &mut Fsmd,
    ctx: &PipelineCtx<'_>,
    l: &NaturalLoop,
) -> Option<PipelinedLoop> {
    let f = ctx.f;
    let shape = recognize_shape(f, l)?;
    let (dfg, vals) = loop_dfg(
        f,
        shape.header,
        &shape.body,
        ctx.opts.precision,
        &ctx.opts.model,
    );
    if dfg.nodes.is_empty() {
        return None;
    }
    let sched = modulo_schedule(&dfg, ctx.opts.clock_period_ns, &ctx.opts.resources);
    let ii = sched.ii;
    let t_len = sched.iteration_length;
    // C2: single-cycle operations only.
    if sched.duration.iter().any(|&d| d != 1) {
        reject!("multi-cycle operation");
    }
    // C3: profitable — compare II against what the *sequential emission*
    // actually costs per iteration: one list-scheduled state group per
    // block (the per-block path cannot chain across block boundaries).
    let serial: u32 = std::iter::once(shape.header)
        .chain(shape.body.iter().copied())
        .map(|b| {
            let (bdfg, _) = chls_sched::dfg_from_block(f, b, ctx.opts.precision, &ctx.opts.model);
            chls_sched::list_schedule(&bdfg, ctx.opts.clock_period_ns, &ctx.opts.resources)
                .length
                .max(1)
        })
        .sum();
    if ii >= serial.max(1) {
        reject!(format!("not profitable: II {ii} vs serial {serial}"));
    }

    let node_of: HashMap<Value, NodeId> = vals
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, NodeId(i as u32)))
        .collect();
    let slot = |v: Value| node_of.get(&v).map(|n| sched.slot[n.0 as usize]);

    // Header phis and their latch (in-loop incoming) values.
    let mut phi_latch: Vec<(Value, Value)> = Vec::new();
    for &pv in &f.block(shape.header).insts {
        if let InstKind::Phi(args) = &f.inst(pv).kind {
            for (pred, inc) in args {
                if l.contains(*pred) {
                    phi_latch.push((pv, *inc));
                }
            }
        }
    }
    // C4: latches of the phis that feed the exit condition must resolve
    // within the first window, so each boundary can decide the next issue.
    // (Other phis — e.g. accumulators — may commit in later stages; their
    // readers are bounded by the carried-edge window check below.)
    let mut cond_phis: Vec<Value> = Vec::new();
    f.inst(shape.cond).kind.for_each_operand(|o| {
        if matches!(f.inst(o).kind, InstKind::Phi(_)) {
            cond_phis.push(o);
        }
    });
    for (phi, inc) in &phi_latch {
        if !cond_phis.contains(phi) {
            continue;
        }
        match slot(*inc) {
            Some(t) if t < ii => {}
            None => {} // constant/extern: fine
            _ => reject!("condition-feeding latch outside stage 0"),
        }
    }
    // C5: the exit condition is evaluated separately — combinationally at
    // the window boundary over *post-latch* values (see `expand_new`
    // below). For that to be possible it must be used only by the header
    // branch (its kernel-scheduled copy would mix old and new values), and
    // its operands must be phis, constants, parameters, or loop-external
    // values.
    {
        let mut other_uses = false;
        for inst in &f.insts {
            inst.kind.for_each_operand(|o| other_uses |= o == shape.cond);
        }
        for (bi, blk) in f.blocks.iter().enumerate() {
            let _ = bi;
            match &blk.term {
                Term::Br { cond, .. } if *cond == shape.cond => {}
                Term::Br { cond, .. } => other_uses |= *cond == shape.cond,
                Term::Ret(Some(v)) => other_uses |= *v == shape.cond,
                _ => {}
            }
        }
        if other_uses {
            reject!("condition has non-branch uses");
        }
        let mut bad_operand = false;
        f.inst(shape.cond).kind.for_each_operand(|o| {
            let ok = match &f.inst(o).kind {
                InstKind::Phi(_) => f.inst(o).block == shape.header,
                InstKind::Const(_) | InstKind::Param(_) => true,
                // Loop-external values are registers stable for the run.
                _ => !node_of.contains_key(&o),
            };
            bad_operand |= !ok;
        });
        if bad_operand {
            reject!("condition operand not phi/const/param/external");
        }
    }
    // C6: same-iteration values whose lifetime crosses window boundaries
    // need per-stage shadow copies (modulo variable expansion). For a
    // reader of iteration 0 at cycle `t_u` of a producer committing at
    // `t_d` each window, the producer's register holds instance
    // `floor((t_u - 1 - t_d)/II)`; shadow `s_m` (shifted at each boundary)
    // holds instance `floor((s_u*II - (m-1)*II - 2 - t_d)/II)`. Pick the
    // source holding instance 0, or bail out.
    let source_index = |t_d: u32, t_u: u32| -> Option<usize> {
        let (t_d, t_u, iiw) = (t_d as i64, t_u as i64, ii as i64);
        if (t_u - 1 - t_d).div_euclid(iiw) == 0 {
            return Some(0); // the register itself
        }
        let s_u = t_u / iiw;
        for m in 1..=16i64 {
            let inst = (s_u * iiw - (m - 1) * iiw - 2 - t_d).div_euclid(iiw);
            if inst == 0 {
                return Some(m as usize);
            }
        }
        None
    };
    // Per-value shadow depth for same-iteration cross-window lifetimes.
    let mut value_shadow_depth: HashMap<Value, usize> = HashMap::new();
    for e in &dfg.edges {
        if e.distance == 0 {
            let (t_d, t_u) = (sched.slot[e.from.0 as usize], sched.slot[e.to.0 as usize]);
            match source_index(t_d, t_u) {
                Some(0) => {}
                Some(m) => {
                    let v = vals[e.from.0 as usize];
                    let entry = value_shadow_depth.entry(v).or_insert(0);
                    *entry = (*entry).max(m);
                }
                None => reject!("no shadow depth covers a value lifetime"),
            }
        }
    }
    // C7: loop-carried (phi) values. A phi whose latch commits in stage 0
    // is boundary-updated and *shadowed* per stage (modulo variable
    // expansion), so any reader stage works. A late latch keeps its value
    // in the latch node's own register; readers must come no later in the
    // window than the latch writes (single-register lifetime).
    let latch_of: HashMap<Value, Value> = phi_latch.iter().cloned().collect();
    let stage_of = |t: u32| (t / ii) as usize;
    let mut shadow_depth: HashMap<Value, usize> = HashMap::new();
    for (ni, &v) in vals.iter().enumerate() {
        let t_u = sched.slot[ni];
        let mut bad = false;
        f.inst(v).kind.for_each_operand(|o| {
            if bad {
                return;
            }
            if let Some(&l) = latch_of.get(&o) {
                match slot(l) {
                    Some(t_l) if stage_of(t_l) == 0 => {
                        let d = shadow_depth.entry(o).or_insert(0);
                        *d = (*d).max(stage_of(t_u));
                    }
                    // Late latch: reader must beat the overwrite.
                    Some(t_l) if t_u > t_l => bad = true,
                    Some(_) => {}
                    None => {} // const/extern latch: phi is stable enough
                }
            }
        });
        if bad {
            reject!("carried value read after its late latch overwrite");
        }
    }

    // ---- emission ----
    let stages = t_len.div_ceil(ii).max(1) as usize;
    // Validity: stage 0 is `running`; stages 1.. have their own bits.
    let running = out.add_reg(format!("pipe{}_running", shape.header.0), u1(), 0);
    let valids: Vec<RegId> = (1..stages)
        .map(|j| out.add_reg(format!("pipe{}_v{j}", shape.header.0), u1(), 0))
        .collect();
    // Stage shadows for boundary-updated phis (modulo variable expansion).
    let mut shadows: HashMap<Value, Vec<RegId>> = HashMap::new();
    for (&phi, &depth) in &shadow_depth {
        if depth == 0 {
            continue;
        }
        let ty = f.inst(phi).ty;
        let regs = (1..=depth)
            .map(|j| out.add_reg(format!("pipe{}_phi{}_s{j}", shape.header.0, phi.0), ty, 0))
            .collect();
        shadows.insert(phi, regs);
    }
    // Shadows for long-lived same-iteration values.
    let mut vshadows: HashMap<Value, Vec<RegId>> = HashMap::new();
    for (&v, &depth) in &value_shadow_depth {
        let ty = f.inst(v).ty;
        let regs = (1..=depth)
            .map(|j| out.add_reg(format!("pipe{}_v{}_s{j}", shape.header.0, v.0), ty, 0))
            .collect();
        vshadows.insert(v, regs);
    }

    // Base resolution ignoring pipeline staging (entry/exit contexts).
    let rv_operand = |v: Value| -> Rv {
        let inst = f.inst(v);
        match &inst.kind {
            InstKind::Const(c) => Rv::konst(*c, inst.ty),
            InstKind::Param(p) => Rv {
                kind: RvKind::Input(ctx.input_idx[p]),
                ty: inst.ty,
            },
            _ => Rv::reg(ctx.reg_of[&v], inst.ty),
        }
    };
    // In-kernel resolution for a reader at slot `t_u` (stage `ustage`):
    // boundary-updated phis read their stage shadow; late-latched phis
    // read the latch's own register (checked above); long-lived values
    // read their instance-matched shadow; everything else reads its
    // register.
    let rv_kernel = |v: Value,
                     t_u: u32,
                     shadows: &HashMap<Value, Vec<RegId>>,
                     vshadows: &HashMap<Value, Vec<RegId>>|
     -> Rv {
        let inst = f.inst(v);
        let ustage = stage_of(t_u);
        match &inst.kind {
            InstKind::Const(c) => Rv::konst(*c, inst.ty),
            InstKind::Param(p) => Rv {
                kind: RvKind::Input(ctx.input_idx[p]),
                ty: inst.ty,
            },
            InstKind::Phi(_) if inst.block == shape.header => {
                if let Some(&l) = latch_of.get(&v) {
                    if let Some(t_l) = slot(l) {
                        if stage_of(t_l) > 0 {
                            return Rv::reg(ctx.reg_of[&l], inst.ty);
                        }
                    }
                }
                if ustage > 0 {
                    if let Some(regs) = shadows.get(&v) {
                        return Rv::reg(regs[ustage - 1], inst.ty);
                    }
                }
                Rv::reg(ctx.reg_of[&v], inst.ty)
            }
            _ => {
                if let Some(t_d) = slot(v) {
                    if let Some(m) = source_index(t_d, t_u) {
                        if m > 0 {
                            if let Some(regs) = vshadows.get(&v) {
                                return Rv::reg(regs[m - 1], inst.ty);
                            }
                        }
                    }
                }
                Rv::reg(ctx.reg_of[&v], inst.ty)
            }
        }
    };

    let build_rv_at = |v: Value,
                       t_u: u32,
                       shadows: &HashMap<Value, Vec<RegId>>,
                       vshadows: &HashMap<Value, Vec<RegId>>|
     -> Rv {
        let inst = f.inst(v);
        let op_rv = |o: &Value| rv_kernel(*o, t_u, shadows, vshadows);
        match &inst.kind {
            InstKind::Bin(op, a, b) => Rv {
                kind: RvKind::Bin(*op, Box::new(op_rv(a)), Box::new(op_rv(b))),
                ty: if op.is_comparison() { u1() } else { inst.ty },
            },
            InstKind::Un(op, a) => Rv {
                kind: RvKind::Un(*op, Box::new(op_rv(a))),
                ty: inst.ty,
            },
            InstKind::Select { cond, t, f: fv } => Rv {
                kind: RvKind::Mux(Box::new(op_rv(cond)), Box::new(op_rv(t)), Box::new(op_rv(fv))),
                ty: inst.ty,
            },
            InstKind::Cast { val, .. } => Rv {
                kind: RvKind::Cast(Box::new(op_rv(val))),
                ty: inst.ty,
            },
            InstKind::Load { mem, addr } => Rv {
                kind: RvKind::MemRead {
                    mem: MemId(mem.0),
                    addr: Box::new(op_rv(addr)),
                },
                ty: inst.ty,
            },
            other => unreachable!("not a datapath op: {other:?}"),
        }
    };

    // States.
    let entry = out.add_state();
    let kernels: Vec<StateId> = (0..ii).map(|_| out.add_state()).collect();
    let exit_state = out.add_state();

    // Entry: zero-trip check from the current phi registers; prime the
    // pipeline.
    let cond_entry = build_rv_at(shape.cond, 0, &shadows, &vshadows);
    let cond_entry = if shape.enter_on_true {
        cond_entry
    } else {
        Rv {
            kind: RvKind::Bin(
                BinKind::Eq,
                Box::new(cond_entry),
                Box::new(Rv::konst(0, u1())),
            ),
            ty: u1(),
        }
    };
    out.state_mut(entry)
        .actions
        .push(Action::set(running, cond_entry.clone()));
    for &vj in &valids {
        out.state_mut(entry).actions.push(Action::set(vj, Rv::konst(0, u1())));
    }
    // Late-latch phis are *read* through their latch register inside the
    // kernel; on (re-)entry that register still holds the previous run's
    // final value, so seed it from the phi register (which the preheader
    // set to this run's init).
    for (phi, inc) in &phi_latch {
        if let Some(t_l) = slot(*inc) {
            if stage_of(t_l) > 0 {
                out.state_mut(entry).actions.push(Action::set(
                    ctx.reg_of[inc],
                    Rv::reg(ctx.reg_of[phi], f.inst(*phi).ty),
                ));
            }
        }
    }
    out.state_mut(entry).next = NextState::Branch {
        cond: cond_entry,
        then: kernels[0],
        els: exit_state,
    };

    // Kernel ops.
    let stage_valid = |j: usize| -> Rv {
        if j == 0 {
            Rv::reg(running, u1())
        } else {
            Rv::reg(valids[j - 1], u1())
        }
    };
    for (ni, &v) in vals.iter().enumerate() {
        let t = sched.slot[ni];
        let phase = (t % ii) as usize;
        let stage = (t / ii) as usize;
        let guard = stage_valid(stage);
        let st = kernels[phase];
        match &f.inst(v).kind {
            InstKind::Store { mem, addr, value } => {
                out.state_mut(st).actions.push(Action::write_if(
                    guard,
                    MemId(mem.0),
                    rv_kernel(*addr, t, &shadows, &vshadows),
                    rv_kernel(*value, t, &shadows, &vshadows),
                ));
            }
            _ => {
                let rv = build_rv_at(v, t, &shadows, &vshadows);
                out.state_mut(st)
                    .actions
                    .push(Action::set_if(guard, ctx.reg_of[&v], rv));
            }
        }
    }
    // Boundary phi updates (all phi registers hold their OLD value during
    // the window; shadows shift the old value down the stages).
    let boundary = kernels[(ii - 1) as usize];
    for (phi, inc) in &phi_latch {
        match slot(*inc) {
            Some(t_l) if stage_of(t_l) == 0 => {
                // New value: the latch register if committed, else its
                // expression inline (operands committed earlier).
                let newv = if t_l + 1 < ii {
                    Rv::reg(ctx.reg_of[inc], f.inst(*inc).ty)
                } else {
                    build_rv_at(*inc, t_l, &shadows, &vshadows)
                };
                out.state_mut(boundary)
                    .actions
                    .push(Action::set_if(stage_valid(0), ctx.reg_of[phi], newv));
            }
            Some(t_l) => {
                // Late latch: readers use the latch register; the phi
                // register still tracks it for the exit path. If the latch
                // commits in the boundary state itself, its register is
                // not yet visible — inline the expression.
                let j = stage_of(t_l);
                let newv = if t_l % ii == ii - 1 {
                    build_rv_at(*inc, t_l, &shadows, &vshadows)
                } else {
                    Rv::reg(ctx.reg_of[inc], f.inst(*inc).ty)
                };
                out.state_mut(boundary)
                    .actions
                    .push(Action::set_if(stage_valid(j), ctx.reg_of[phi], newv));
            }
            None => {
                out.state_mut(boundary).actions.push(Action::set_if(
                    stage_valid(0),
                    ctx.reg_of[phi],
                    rv_operand(*inc),
                ));
            }
        }
    }
    // Shadow shifts (simultaneous commit: shadow 1 samples the pre-update
    // phi value).
    for (&phi, regs) in &shadows {
        let ty = f.inst(phi).ty;
        let mut prev_rv = Rv::reg(ctx.reg_of[&phi], ty);
        for &sreg in regs {
            out.state_mut(boundary)
                .actions
                .push(Action::set(sreg, prev_rv.clone()));
            prev_rv = Rv::reg(sreg, ty);
        }
    }
    for (&v, regs) in &vshadows {
        let ty = f.inst(v).ty;
        let mut prev_rv = Rv::reg(ctx.reg_of[&v], ty);
        for &sreg in regs {
            out.state_mut(boundary)
                .actions
                .push(Action::set(sreg, prev_rv.clone()));
            prev_rv = Rv::reg(sreg, ty);
        }
    }

    // Boundary control in the last kernel state. The next-iteration
    // decision needs *post-latch* values: a phi operand whose latch has
    // already committed (slot <= II-2) reads its register; one that
    // commits at the boundary itself is inlined as its latch expression
    // (whose own operands are committed registers by then).
    let expand_phi_new = |phi: Value| -> Rv {
        let inc = phi_latch
            .iter()
            .find(|(p, _)| *p == phi)
            .map(|(_, inc)| *inc);
        match inc {
            None => rv_operand(phi), // no in-loop update: register is current
            Some(inc) => match slot(inc) {
                Some(t_l) if t_l as i64 >= ii as i64 - 1 => {
                    // Commits at the boundary: inline its expression with
                    // register operands (all committed earlier).
                    build_rv_at(inc, 0, &shadows, &vshadows)
                }
                _ => rv_operand(inc),
            },
        }
    };
    let cond_new = {
        let inst = f.inst(shape.cond);
        let mut ops: Vec<Value> = Vec::new();
        inst.kind.for_each_operand(|o| ops.push(o));
        let resolve = |o: Value| -> Rv {
            match &f.inst(o).kind {
                InstKind::Phi(_) => expand_phi_new(o),
                _ => rv_operand(o),
            }
        };
        match &inst.kind {
            InstKind::Bin(op, a, b) => Rv {
                kind: RvKind::Bin(*op, Box::new(resolve(*a)), Box::new(resolve(*b))),
                ty: u1(),
            },
            InstKind::Un(op, a) => Rv {
                kind: RvKind::Un(*op, Box::new(resolve(*a))),
                ty: u1(),
            },
            _ => reject!("condition is not a unary/binary op"),
        }
    };
    let last = kernels[(ii - 1) as usize];
    let cond_ok = if shape.enter_on_true {
        cond_new
    } else {
        Rv {
            kind: RvKind::Bin(
                BinKind::Eq,
                Box::new(cond_new),
                Box::new(Rv::konst(0, u1())),
            ),
            ty: u1(),
        }
    };
    let next_running = Rv::bin(BinKind::And, u1(), Rv::reg(running, u1()), cond_ok);
    out.state_mut(last)
        .actions
        .push(Action::set(running, next_running.clone()));
    // Shift stage valids.
    let mut prev = Rv::reg(running, u1());
    for &vj in &valids {
        out.state_mut(last).actions.push(Action::set(vj, prev.clone()));
        prev = Rv::reg(vj, u1());
    }
    // Keep cycling while anything will be in flight next window.
    let mut any_next = next_running;
    any_next = Rv::bin(BinKind::Or, u1(), any_next, Rv::reg(running, u1()));
    for &vj in valids.iter().take(stages.saturating_sub(2)) {
        any_next = Rv::bin(BinKind::Or, u1(), any_next, Rv::reg(vj, u1()));
    }
    out.state_mut(last).next = NextState::Branch {
        cond: any_next,
        then: kernels[0],
        els: exit_state,
    };
    // Chain kernel states.
    for w in kernels.windows(2) {
        out.state_mut(w[0]).next = NextState::Goto(w[1]);
    }

    // Exit state: write the exit block's phis fed from the header.
    for &pv in &f.block(shape.exit).insts {
        if let InstKind::Phi(args) = &f.inst(pv).kind {
            for (pred, inc) in args {
                if *pred == shape.header {
                    out.state_mut(exit_state)
                        .actions
                        .push(Action::set(ctx.reg_of[&pv], rv_operand(*inc)));
                }
            }
        }
    }

    let mut covered = vec![shape.header];
    covered.extend_from_slice(&shape.body);
    let _ = shape.body_first;
    Some(PipelinedLoop {
        entry,
        exit_state,
        exit_block: shape.exit,
        covered,
        ii,
    })
}

#[cfg(test)]
mod tests {
    use crate::common::*;
    use crate::C2Verilog;
    use chls_frontend::compile_to_hir;
    use chls_sim::fsmd_sim::simulate;
    use chls_sim::interp::ArgValue;
    use chls_sched::Resources;

    fn synth(src: &str, entry: &str, pipeline: bool) -> chls_rtl::Fsmd {
        let prog = compile_to_hir(src).expect("frontend ok");
        let opts = SynthOptions {
            pipeline_loops: pipeline,
            resources: {
                let mut r = Resources::unlimited();
                r.default_mem_ports = 1;
                r
            },
            ..Default::default()
        };
        match C2Verilog.synthesize(&prog, entry, &opts).expect("synthesizes") {
            Design::Fsmd(f) => f,
            _ => unreachable!(),
        }
    }

    const SUM: &str = "
        int f(int a[64], int n) {
            int s = 0;
            for (int i = 0; i < n; i++) s += a[i];
            return s;
        }
    ";

    #[test]
    fn pipelined_sum_is_correct_and_faster() {
        let plain = synth(SUM, "f", false);
        let piped = synth(SUM, "f", true);
        let args = [ArgValue::Array((1..=64).collect()), ArgValue::Scalar(64)];
        let rp = simulate(&plain, &args, 100_000).unwrap();
        let rq = simulate(&piped, &args, 100_000).unwrap();
        assert_eq!(rp.ret, Some(2080));
        assert_eq!(rq.ret, Some(2080));
        assert!(
            rq.cycles < rp.cycles,
            "pipelined {} vs plain {}",
            rq.cycles,
            rp.cycles
        );
        // II should be small: roughly n + overhead cycles total.
        assert!(rq.cycles <= 64 * 2 + 16, "cycles {}", rq.cycles);
    }

    #[test]
    fn pipelined_zero_trip_loop() {
        let piped = synth(SUM, "f", true);
        let r = simulate(&piped, &[ArgValue::Array(vec![0; 64]), ArgValue::Scalar(0)], 1000)
            .unwrap();
        assert_eq!(r.ret, Some(0));
    }

    #[test]
    fn pipelined_one_trip_loop() {
        let piped = synth(SUM, "f", true);
        let r = simulate(&piped, &[ArgValue::Array(vec![7; 64]), ArgValue::Scalar(1)], 1000)
            .unwrap();
        assert_eq!(r.ret, Some(7));
    }

    #[test]
    fn pipelined_stores_write_back() {
        let src = "
            void f(int a[32], int b[32], int n) {
                for (int i = 0; i < n; i++) b[i] = a[i] * 3 + 1;
            }
        ";
        let piped = synth(src, "f", true);
        let plain = synth(src, "f", false);
        let args = [
            ArgValue::Array((0..32).collect()),
            ArgValue::Array(vec![0; 32]),
            ArgValue::Scalar(32),
        ];
        let rq = simulate(&piped, &args, 100_000).unwrap();
        let rp = simulate(&plain, &args, 100_000).unwrap();
        let expect: Vec<i64> = (0..32).map(|i| i * 3 + 1).collect();
        assert_eq!(rq.mems[1], expect);
        assert_eq!(rp.mems[1], expect);
        assert!(rq.cycles < rp.cycles, "{} vs {}", rq.cycles, rp.cycles);
    }

    #[test]
    fn reentered_kernel_reseeds_late_latch_registers() {
        // A pipelined inner loop that runs repeatedly (one run per outer
        // iteration): the accumulator phi is read through its latch
        // register, which must be re-seeded on every entry — otherwise
        // run 2's iteration 0 starts from run 1's final value.
        let src = "
            const int coeff[8] = {1, 2, 3, 4, 4, 3, 2, 1};
            int f(int x[16], int n) {
                int s = 0;
                for (int m = 0; m < 2; m++) {
                    int acc = 0;
                    for (int k = 0; k < 8; k++) {
                        acc += coeff[k] * x[n + m - k];
                    }
                    s += acc >> 4;
                }
                return s;
            }
        ";
        let xs: Vec<i64> = (0..16).map(|i| (i * 7 + 3) % 50).collect();
        let golden: i64 = (0..2)
            .map(|m| {
                (0..8)
                    .map(|k| [1, 2, 3, 4, 4, 3, 2, 1][k as usize] * xs[(9 + m - k) as usize])
                    .sum::<i64>()
                    >> 4
            })
            .sum();
        let args = [ArgValue::Array(xs), ArgValue::Scalar(9)];
        let plain = synth(src, "f", false);
        let piped = synth(src, "f", true);
        let rp = simulate(&plain, &args, 100_000).unwrap();
        let rq = simulate(&piped, &args, 100_000).unwrap();
        assert_eq!(rp.ret, Some(golden));
        assert_eq!(rq.ret, Some(golden));
        assert!(rq.cycles < rp.cycles, "{} vs {}", rq.cycles, rp.cycles);
    }

    #[test]
    fn if_converted_branchy_loop_pipelines() {
        // The saturating-accumulate body contains nested conditionals;
        // if-conversion predicates them into Selects, after which the
        // loop modulo-schedules.
        let src = "
            int f(int a[16], int lo, int hi) {
                int acc = 0;
                for (int i = 0; i < 16; i++) {
                    int v = a[i];
                    if (v < lo) { v = lo; } else { if (v > hi) { v = hi; } }
                    acc = acc + v;
                }
                return acc;
            }
        ";
        let vals: Vec<i64> = vec![-9, 3, 120, 45, -1, 0, 200, 7, 99, 101, -50, 60, 33, 8, 150, 2];
        let golden: i64 = vals.iter().map(|&v| v.clamp(0, 100)).sum();
        let args = [
            ArgValue::Array(vals),
            ArgValue::Scalar(0),
            ArgValue::Scalar(100),
        ];
        let plain = synth(src, "f", false);
        let piped = synth(src, "f", true);
        let rp = simulate(&plain, &args, 100_000).unwrap();
        let rq = simulate(&piped, &args, 100_000).unwrap();
        assert_eq!(rp.ret, Some(golden));
        assert_eq!(rq.ret, Some(golden));
        assert!(rq.cycles < rp.cycles, "{} vs {}", rq.cycles, rp.cycles);
    }

    #[test]
    fn affine_disambiguation_pipelines_inplace_update() {
        // `a[i] = f(a[i])`: the carried store->load pair never aliases
        // across iterations (addresses differ by the stride), so the
        // pipeline need not serialize on it.
        let src = "
            void f(int a[32]) {
                for (int i = 0; i < 32; i++) a[i] = (a[i] * 5) >> 1;
            }
        ";
        let plain = synth(src, "f", false);
        let piped = synth(src, "f", true);
        let args = [ArgValue::Array((0..32).map(|i| i - 7).collect())];
        let rp = simulate(&plain, &args, 100_000).unwrap();
        let rq = simulate(&piped, &args, 100_000).unwrap();
        let expect: Vec<i64> = (0..32).map(|i| ((i - 7) * 5) >> 1).collect();
        assert_eq!(rp.mems[0], expect);
        assert_eq!(rq.mems[0], expect);
        assert!(rq.cycles < rp.cycles, "{} vs {}", rq.cycles, rp.cycles);
    }

    #[test]
    fn pipelined_design_emits_verilog() {
        // The pipelined kernel uses guarded actions and Cases dispatch;
        // the Verilog emitter must handle all of it.
        let piped = synth(SUM, "f", true);
        let v = chls_rtl::fsmd_to_verilog(&piped);
        assert!(v.contains("module f"), "{v}");
        assert!(v.contains("pipe"), "no pipeline registers emitted:\n{v}");
        assert!(v.contains("endmodule"), "{v}");
        // Balanced begin/end (a cheap structural sanity check).
        let begins = v.matches("begin").count();
        let ends = v.matches("end").count() - v.matches("endmodule").count()
            - v.matches("endcase").count();
        assert_eq!(begins, ends, "unbalanced begin/end:\n{v}");
    }

    #[test]
    fn irregular_loop_falls_back() {
        // GCD's recurrence cannot pipeline; result must still be correct.
        let src = "int f(int a, int b) { while (b != 0) { int t = b; b = a % b; a = t; } return a; }";
        let piped = synth(src, "f", true);
        let r = simulate(&piped, &[ArgValue::Scalar(48), ArgValue::Scalar(36)], 10_000).unwrap();
        assert_eq!(r.ret, Some(12));
    }

    #[test]
    fn conformance_with_pipelining_enabled() {
        // The whole benchmark suite must still match the golden model with
        // pipelining switched on (pipelined or fallen back alike).
        for bench in chls_core_shim::benchmarks() {
            let prog = compile_to_hir(bench.0).expect("frontend ok");
            let opts = SynthOptions {
                pipeline_loops: true,
                ..Default::default()
            };
            let design = match C2Verilog.synthesize(&prog, bench.1, &opts) {
                Ok(d) => d,
                Err(e) => panic!("c2v+pipeline refused {}: {e}", bench.1),
            };
            let Design::Fsmd(f) = design else { unreachable!() };
            let r = simulate(&f, &bench.2, 5_000_000)
                .unwrap_or_else(|e| panic!("{}: {e}", bench.1));
            assert_eq!(r.ret, bench.3, "{} return mismatch", bench.1);
        }
    }

    /// Inline copies of a few benchmark kernels with expected results
    /// (chls-backends cannot depend on the chls facade crate).
    mod chls_core_shim {
        use chls_sim::interp::ArgValue;

        pub fn benchmarks() -> Vec<(&'static str, &'static str, Vec<ArgValue>, Option<i64>)> {
            vec![
                (
                    "int dot(int a[8], int b[8]) {
                        int s = 0;
                        for (int i = 0; i < 8; i++) s += a[i] * b[i];
                        return s;
                    }",
                    "dot",
                    vec![
                        ArgValue::Array(vec![1, 2, 3, 4, 5, 6, 7, 8]),
                        ArgValue::Array(vec![8, 7, 6, 5, 4, 3, 2, 1]),
                    ],
                    Some(120),
                ),
                (
                    "int fib(int n) {
                        int a = 0;
                        int b = 1;
                        for (int i = 0; i < n; i++) { int t = a + b; a = b; b = t; }
                        return a;
                    }",
                    "fib",
                    vec![ArgValue::Scalar(16)],
                    Some(987),
                ),
                (
                    "int maxv(int a[8]) {
                        int best = a[0];
                        for (int i = 1; i < 8; i++) { if (a[i] > best) best = a[i]; }
                        return best;
                    }",
                    "maxv",
                    vec![ArgValue::Array(vec![3, -1, 4, 1, -5, 9, 2, 6])],
                    Some(9),
                ),
                (
                    "int pc(int x) {
                        int c = 0;
                        for (int i = 0; i < 32; i++) c += (x >> i) & 1;
                        return c;
                    }",
                    "pc",
                    vec![ArgValue::Scalar(0x5A5A_5A5A)],
                    Some(16),
                ),
            ]
        }
    }
}
