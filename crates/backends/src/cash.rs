//! The CASH backend.
//!
//! Budiu & Goldstein's CASH is "unique because it generates asynchronous
//! hardware. It identifies instruction-level parallelism in ANSI C and
//! generates asynchronous dataflow circuits." This backend runs the
//! sequential pipeline (inline, unroll pragmas, pointer elimination,
//! simplify) and hands the SSA CFG to `chls-dataflow`, which produces the
//! Pegasus-style circuit: mu/eta steering for control, per-memory token
//! chains for ordering, sticky tokens for loop invariants.
//!
//! There is no clock: performance comes out of the token simulator as a
//! completion *time*, which the async-vs-sync experiment compares against
//! clocked backends' cycles × period.

use crate::common::*;
use chls_dataflow::build_dataflow;
use chls_frontend::hir::HirProgram;

/// The CASH backend.
#[derive(Debug, Clone, Copy, Default)]
pub struct Cash;

impl Backend for Cash {
    fn info(&self) -> BackendInfo {
        BackendInfo {
            name: "cash",
            models: "CASH (Budiu & Goldstein)",
            year: 2002,
            comment: "Synthesizes asynchronous circuits",
            concurrency: ConcurrencyModel::CompilerDriven,
            timing: TimingModel::Asynchronous,
            pointers: true,
            data_dependent_loops: true,
            parallel_constructs: false,
        }
    }

    fn synthesize(
        &self,
        prog: &HirProgram,
        entry: &str,
        opts: &SynthOptions,
    ) -> Result<Design, SynthError> {
        let prepared = prepare_sequential_opts(prog, entry, false, opts.narrow_widths, opts.unroll_factor)?;
        let g = build_dataflow(&prepared.func)
            .map_err(|e| SynthError::Transform(e.to_string()))?;
        Ok(Design::Dataflow(g))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chls_dataflow::sim::{simulate, ArgValue, TokenSimOptions};
    use chls_frontend::compile_to_hir;

    fn synth(src: &str, entry: &str) -> chls_dataflow::DataflowGraph {
        let prog = compile_to_hir(src).expect("frontend ok");
        match Cash
            .synthesize(&prog, entry, &SynthOptions::default())
            .expect("synthesis ok")
        {
            Design::Dataflow(g) => g,
            _ => panic!("cash must produce a dataflow circuit"),
        }
    }

    #[test]
    fn crc_style_kernel() {
        let g = synth(
            "const int poly[1] = {0xEDB88320};
             int f(int data, int rounds) {
                int crc = data;
                for (int i = 0; i < rounds; i++) {
                    bool lsb = (crc & 1) != 0;
                    crc = crc >> 1;
                    if (lsb) crc = crc ^ poly[0];
                }
                return crc;
             }",
            "f",
        );
        let r = simulate(
            &g,
            &[ArgValue::Scalar(0x1234), ArgValue::Scalar(8)],
            &TokenSimOptions::default(),
        )
        .unwrap();
        // Golden from the interpreter.
        let hir = compile_to_hir(
            "const int poly[1] = {0xEDB88320};
             int f(int data, int rounds) {
                int crc = data;
                for (int i = 0; i < rounds; i++) {
                    bool lsb = (crc & 1) != 0;
                    crc = crc >> 1;
                    if (lsb) crc = crc ^ poly[0];
                }
                return crc;
             }",
        )
        .unwrap();
        let golden = chls_sim::interp::run(
            &hir,
            "f",
            &[
                chls_sim::interp::ArgValue::Scalar(0x1234),
                chls_sim::interp::ArgValue::Scalar(8),
            ],
            &chls_sim::interp::InterpOptions::default(),
        )
        .unwrap();
        assert_eq!(r.ret, golden.ret);
    }

    #[test]
    fn calls_are_inlined_first() {
        let g = synth(
            "int sq(int x) { return x * x; }
             int f(int a) { return sq(a) + sq(a + 1); }",
            "f",
        );
        let r = simulate(&g, &[ArgValue::Scalar(3)], &TokenSimOptions::default()).unwrap();
        assert_eq!(r.ret, Some(25));
    }

    #[test]
    fn pointer_programs_resolve() {
        let g = synth(
            "void bump(int *p) { *p = *p + 1; }
             int f() { int x = 41; bump(&x); return x; }",
            "f",
        );
        let r = simulate(&g, &[], &TokenSimOptions::default()).unwrap();
        assert_eq!(r.ret, Some(42));
    }

    #[test]
    fn par_rejected_as_sequential_c() {
        let prog = compile_to_hir("void f() { par { delay; delay; } }").unwrap();
        let err = Cash
            .synthesize(&prog, "f", &SynthOptions::default())
            .unwrap_err();
        assert!(matches!(err, SynthError::Transform(_)), "{err}");
    }

    #[test]
    fn circuit_has_pegasus_structure() {
        let g = synth(
            "int f(int n) { int s = 0; for (int i = 0; i < n; i++) s += i; return s; }",
            "f",
        );
        let h = g.histogram();
        assert!(h.get("mu").copied().unwrap_or(0) >= 2, "{h:?}");
        assert!(h.get("eta").copied().unwrap_or(0) >= 2, "{h:?}");
        // Area accounting includes handshake overhead.
        assert!(g.area(&chls_rtl::CostModel::new()) > 0.0);
    }

    #[test]
    fn info_row() {
        let info = Cash.info();
        assert_eq!(info.timing, TimingModel::Asynchronous);
        assert_eq!(info.year, 2002);
    }
}
