//! The Cones backend.
//!
//! Stroud, Munoz & Pierce's Cones (1988) "synthesized each function in a
//! combinational block": a strict C subset where loops are fully unrolled,
//! calls flattened, conditionals become multiplexers, and arrays become
//! bit vectors — producing one clockless network per function.
//!
//! This backend reproduces that pipeline: full inlining and unrolling,
//! pointer elimination, then *predicated flattening* of the (acyclic) CFG
//! into a word-level netlist. Memories are **scalarized** — every array
//! element is an individual net; loads become mux trees over the elements
//! and stores become per-element enables — which is precisely why
//! experiment E7's area explodes with trip count and array size.

use crate::common::*;
use chls_frontend::hir::HirProgram;
use chls_frontend::IntType;
use chls_ir::ir::{BlockId, Function, InstKind, MemSource, Term, Value};
use chls_ir::BinKind;
use chls_rtl::netlist::{CellId, CellKind, Netlist};
use std::collections::HashMap;

/// The Cones backend.
#[derive(Debug, Clone, Copy, Default)]
pub struct Cones;

impl Backend for Cones {
    fn info(&self) -> BackendInfo {
        BackendInfo {
            name: "cones",
            models: "Cones (Stroud, Munoz & Pierce)",
            year: 1988,
            comment: "Early, combinational only",
            concurrency: ConcurrencyModel::CompilerDriven,
            timing: TimingModel::Combinational,
            pointers: true,
            data_dependent_loops: false,
            parallel_constructs: false,
        }
    }

    fn synthesize(
        &self,
        prog: &HirProgram,
        entry: &str,
        opts: &SynthOptions,
    ) -> Result<Design, SynthError> {
        let prepared = prepare_sequential_opts(prog, entry, true, opts.narrow_widths, opts.unroll_factor)?;
        let f = &prepared.func;
        // Any remaining loop is fatal: Cones has no clock to wait with.
        let loops = chls_ir::loops::LoopForest::compute(f);
        if !loops.loops.is_empty() {
            let why = prepared
                .unroll_stats
                .skipped
                .first()
                .cloned()
                .unwrap_or_else(|| "loop with unknown bounds".to_string());
            return Err(SynthError::Loop(format!(
                "cones requires fully unrollable loops: {why}"
            )));
        }
        let nl = flatten(f)?;
        Ok(Design::Comb(nl))
    }
}

fn u1() -> IntType {
    IntType::new(1, false)
}

/// Name of the `i`-th scalar input port.
pub fn scalar_port(i: usize) -> String {
    format!("arg{i}")
}

/// Name of element `j` of array parameter `i`'s input port.
pub fn array_port(i: usize, j: usize) -> String {
    format!("arg{i}_{j}")
}

/// Name of element `j` of array parameter `i`'s output port.
pub fn array_out_port(i: usize, j: usize) -> String {
    format!("out{i}_{j}")
}

/// Predicated flattening of an acyclic CFG into a combinational netlist.
fn flatten(f: &Function) -> Result<Netlist, SynthError> {
    let mut nl = Netlist::new(f.name.clone());
    let rpo = f.reverse_postorder();
    let preds = f.predecessors();

    // Memory state per block entry: mems[m] = element cells.
    let mut mem_in: HashMap<(BlockId, usize), Vec<CellId>> = HashMap::new();
    let mut mem_out: HashMap<(BlockId, usize), Vec<CellId>> = HashMap::new();
    // Block and edge predicates.
    let mut block_pred: HashMap<BlockId, CellId> = HashMap::new();
    let mut edge_pred: HashMap<(BlockId, BlockId), CellId> = HashMap::new();
    let mut values: HashMap<Value, CellId> = HashMap::new();

    // Initial memory contents.
    let mut init_mems: Vec<Vec<CellId>> = Vec::new();
    for (mi, m) in f.mems.iter().enumerate() {
        let mut elems = Vec::with_capacity(m.len);
        match (&m.source, &m.rom) {
            (_, Some(rom)) => {
                for j in 0..m.len {
                    let v = rom.get(j).copied().unwrap_or(0);
                    elems.push(nl.add(CellKind::Const(v), m.elem));
                }
            }
            (MemSource::Param(p), None) => {
                for j in 0..m.len {
                    elems.push(nl.add(
                        CellKind::Input {
                            name: array_port(*p, j),
                        },
                        m.elem,
                    ));
                }
            }
            (_, None) => {
                for _ in 0..m.len {
                    elems.push(nl.add(CellKind::Const(0), m.elem));
                }
            }
        }
        let _ = mi;
        init_mems.push(elems);
    }

    let true_cell = nl.add(CellKind::Const(1), u1());
    // Return accumulation: (pred, value, mem state) per ret block.
    let mut rets: Vec<(CellId, Option<CellId>, Vec<Vec<CellId>>)> = Vec::new();

    for &b in &rpo {
        // Block predicate and incoming memory state.
        let (pred, mem_state) = if b == f.entry {
            (true_cell, init_mems.clone())
        } else {
            let ps = &preds[b.0 as usize];
            let mut pred_cell: Option<CellId> = None;
            for &p in ps {
                let ep = edge_pred[&(p, b)];
                pred_cell = Some(match pred_cell {
                    None => ep,
                    Some(acc) => nl.add(CellKind::Bin(BinKind::Or, acc, ep), u1()),
                });
            }
            // Merge memory state: fold over predecessors with muxes.
            let mut state: Option<Vec<Vec<CellId>>> = None;
            for &p in ps {
                let ep = edge_pred[&(p, b)];
                let incoming: Vec<Vec<CellId>> = (0..f.mems.len())
                    .map(|m| mem_out[&(p, m)].clone())
                    .collect();
                state = Some(match state {
                    None => incoming,
                    Some(acc) => acc
                        .into_iter()
                        .zip(incoming)
                        .map(|(old, new)| {
                            old.into_iter()
                                .zip(new)
                                .map(|(o, nv)| {
                                    if o == nv {
                                        o
                                    } else {
                                        let ty = nl.cell(o).ty;
                                        nl.add(CellKind::Mux { sel: ep, a: nv, b: o }, ty)
                                    }
                                })
                                .collect()
                        })
                        .collect(),
                });
            }
            (
                pred_cell.expect("reachable non-entry block has predecessors"),
                state.unwrap_or_else(|| init_mems.clone()),
            )
        };
        block_pred.insert(b, pred);
        for (m, elems) in mem_state.iter().enumerate() {
            mem_in.insert((b, m), elems.clone());
        }
        let mut cur_mems = mem_state;

        // Evaluate instructions.
        for &v in &f.block(b).insts {
            let inst = f.inst(v);
            let cell = match &inst.kind {
                InstKind::Param(i) => nl.add(
                    CellKind::Input {
                        name: scalar_port(*i),
                    },
                    inst.ty,
                ),
                InstKind::Const(c) => nl.add(CellKind::Const(*c), inst.ty),
                InstKind::Bin(op, a, bb) => {
                    nl.add(CellKind::Bin(*op, values[a], values[bb]), inst.ty)
                }
                InstKind::Un(op, a) => nl.add(CellKind::Un(*op, values[a]), inst.ty),
                InstKind::Select { cond, t, f: fv } => nl.add(
                    CellKind::Mux {
                        sel: values[cond],
                        a: values[t],
                        b: values[fv],
                    },
                    inst.ty,
                ),
                InstKind::Cast { from, val } => nl.add(
                    CellKind::Cast {
                        from: *from,
                        val: values[val],
                    },
                    inst.ty,
                ),
                InstKind::Load { mem, addr } => {
                    let a = values[addr];
                    let elems = &cur_mems[mem.0 as usize];
                    // Mux tree indexed by the address.
                    let mut acc = elems[0];
                    let aty = nl.cell(a).ty;
                    for (j, &e) in elems.iter().enumerate().skip(1) {
                        let idx = nl.add(CellKind::Const(j as i64), aty);
                        let eq = nl.add(CellKind::Bin(BinKind::Eq, a, idx), u1());
                        acc = nl.add(CellKind::Mux { sel: eq, a: e, b: acc }, inst.ty);
                    }
                    acc
                }
                InstKind::Store { mem, addr, value } => {
                    let a = values[addr];
                    let val = values[value];
                    let aty = nl.cell(a).ty;
                    let mi = mem.0 as usize;
                    let elems = cur_mems[mi].clone();
                    let mut new_elems = Vec::with_capacity(elems.len());
                    for (j, &e) in elems.iter().enumerate() {
                        let idx = nl.add(CellKind::Const(j as i64), aty);
                        let eq = nl.add(CellKind::Bin(BinKind::Eq, a, idx), u1());
                        let en = nl.add(CellKind::Bin(BinKind::And, eq, pred), u1());
                        let ty = nl.cell(e).ty;
                        new_elems.push(nl.add(CellKind::Mux { sel: en, a: val, b: e }, ty));
                    }
                    cur_mems[mi] = new_elems;
                    // Stores define no value.
                    continue;
                }
                InstKind::Phi(args) => {
                    // Priority mux over incoming edges.
                    let mut acc: Option<CellId> = None;
                    for (p, pv) in args {
                        let ep = edge_pred[&(*p, b)];
                        let src = values[pv];
                        acc = Some(match acc {
                            None => src,
                            Some(prev) => nl.add(
                                CellKind::Mux {
                                    sel: ep,
                                    a: src,
                                    b: prev,
                                },
                                inst.ty,
                            ),
                        });
                    }
                    acc.ok_or_else(|| {
                        SynthError::Transform("phi with no incoming edges".to_string())
                    })?
                }
            };
            values.insert(v, cell);
        }
        for (m, elems) in cur_mems.iter().enumerate() {
            mem_out.insert((b, m), elems.clone());
        }

        // Terminator: edge predicates / return collection.
        match &f.block(b).term {
            Term::Jump(t) => {
                merge_edge_pred(&mut nl, &mut edge_pred, (b, *t), pred);
            }
            Term::Br { cond, then, els } => {
                let c = values[cond];
                let not_c = {
                    let zero = nl.add(CellKind::Const(0), u1());
                    nl.add(CellKind::Bin(BinKind::Eq, c, zero), u1())
                };
                let pt = nl.add(CellKind::Bin(BinKind::And, pred, c), u1());
                let pf = nl.add(CellKind::Bin(BinKind::And, pred, not_c), u1());
                merge_edge_pred(&mut nl, &mut edge_pred, (b, *then), pt);
                merge_edge_pred(&mut nl, &mut edge_pred, (b, *els), pf);
            }
            Term::Ret(v) => {
                rets.push((pred, v.map(|v| values[&v]), cur_mems.clone()));
                continue;
            }
            Term::Unreachable => {
                return Err(SynthError::Transform("unreachable block".to_string()));
            }
        }
        // Shadowing: rebind cur_mems (moved above for Ret).
    }

    // Outputs: priority-mux over return sites.
    if rets.is_empty() {
        return Err(SynthError::Transform("no return paths".to_string()));
    }
    if let Some(rt) = f.ret_ty {
        let mut acc: Option<CellId> = None;
        for (pred, val, _) in &rets {
            let val = val.ok_or_else(|| {
                SynthError::Transform("missing return value".to_string())
            })?;
            acc = Some(match acc {
                None => val,
                Some(prev) => nl.add(
                    CellKind::Mux {
                        sel: *pred,
                        a: val,
                        b: prev,
                    },
                    rt,
                ),
            });
        }
        nl.set_output("ret", acc.expect("at least one return"));
    }
    // Visible array-parameter outputs.
    for (mi, m) in f.mems.iter().enumerate() {
        let MemSource::Param(p) = m.source else {
            continue;
        };
        for j in 0..m.len {
            let mut acc: Option<CellId> = None;
            for (pred, _, mems) in &rets {
                let e = mems[mi][j];
                acc = Some(match acc {
                    None => e,
                    Some(prev) => {
                        if prev == e {
                            prev
                        } else {
                            nl.add(
                                CellKind::Mux {
                                    sel: *pred,
                                    a: e,
                                    b: prev,
                                },
                                m.elem,
                            )
                        }
                    }
                });
            }
            nl.set_output(array_out_port(p, j), acc.expect("return exists"));
        }
    }

    nl.fold_constants();
    nl.sweep_dead();
    Ok(nl)
}

/// Accumulates (ORs) an edge predicate — two terminator arms can target
/// the same block.
fn merge_edge_pred(
    nl: &mut Netlist,
    edge_pred: &mut HashMap<(BlockId, BlockId), CellId>,
    key: (BlockId, BlockId),
    pred: CellId,
) {
    match edge_pred.get(&key) {
        Some(&existing) => {
            let merged = nl.add(CellKind::Bin(BinKind::Or, existing, pred), u1());
            edge_pred.insert(key, merged);
        }
        None => {
            edge_pred.insert(key, pred);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chls_frontend::compile_to_hir;
    use chls_sim::netlist_sim::NetlistSim;

    fn synth(src: &str, entry: &str) -> Netlist {
        let prog = compile_to_hir(src).expect("frontend ok");
        let d = Cones
            .synthesize(&prog, entry, &SynthOptions::default())
            .expect("synthesis ok");
        match d {
            Design::Comb(nl) => nl,
            _ => panic!("cones must produce a combinational netlist"),
        }
    }

    #[test]
    fn expression_becomes_combinational() {
        let nl = synth("int f(int a, int b) { return (a + b) * (a - b); }", "f");
        assert!(nl.is_combinational());
        let mut sim = NetlistSim::new(&nl).unwrap();
        sim.set_input("arg0", 7);
        sim.set_input("arg1", 3);
        assert_eq!(sim.output("ret").unwrap(), 40);
    }

    #[test]
    fn conditional_becomes_mux() {
        let nl = synth(
            "int f(int a) { if (a > 0) { return a * 2; } return -a; }",
            "f",
        );
        let mut sim = NetlistSim::new(&nl).unwrap();
        sim.set_input("arg0", 5);
        assert_eq!(sim.output("ret").unwrap(), 10);
        sim.set_input("arg0", -4);
        assert_eq!(sim.output("ret").unwrap(), 4);
    }

    #[test]
    fn constant_loop_unrolls_flat() {
        let nl = synth(
            "int f(int x) {
                int s = 0;
                for (int i = 0; i < 8; i++) s += x;
                return s;
            }",
            "f",
        );
        assert!(nl.is_combinational());
        let mut sim = NetlistSim::new(&nl).unwrap();
        sim.set_input("arg0", 5);
        assert_eq!(sim.output("ret").unwrap(), 40);
    }

    #[test]
    fn data_dependent_loop_rejected() {
        let prog = compile_to_hir(
            "int f(int n) { int s = 0; for (int i = 0; i < n; i++) s += i; return s; }",
        )
        .unwrap();
        let err = Cones
            .synthesize(&prog, "f", &SynthOptions::default())
            .unwrap_err();
        assert!(matches!(err, SynthError::Loop(_)), "{err}");
    }

    #[test]
    fn array_scalarizes_and_writes_back() {
        let nl = synth(
            "void f(int a[3]) {
                for (int i = 0; i < 3; i++) a[i] = a[i] * 2;
            }",
            "f",
        );
        assert!(nl.is_combinational());
        let mut sim = NetlistSim::new(&nl).unwrap();
        sim.set_input("arg0_0", 1);
        sim.set_input("arg0_1", 2);
        sim.set_input("arg0_2", 3);
        assert_eq!(sim.output("out0_0").unwrap(), 2);
        assert_eq!(sim.output("out0_1").unwrap(), 4);
        assert_eq!(sim.output("out0_2").unwrap(), 6);
    }

    #[test]
    fn dynamic_index_builds_mux_tree() {
        let nl = synth(
            "int f(int a[4], int i) { return a[i]; }",
            "f",
        );
        let mut sim = NetlistSim::new(&nl).unwrap();
        for (j, v) in [10, 20, 30, 40].iter().enumerate() {
            sim.set_input(format!("arg0_{j}"), *v);
        }
        sim.set_input("arg1", 2);
        assert_eq!(sim.output("ret").unwrap(), 30);
    }

    #[test]
    fn rom_folds_to_constants() {
        let nl = synth(
            "const int t[4] = {9, 8, 7, 6}; int f() { return t[1] + t[2]; }",
            "f",
        );
        // Entirely constant: after folding, only a constant drives ret.
        let sim = NetlistSim::new(&nl).unwrap();
        assert_eq!(sim.output("ret").unwrap(), 15);
        assert!(nl.cells.len() <= 3, "expected tiny netlist, got {}", nl.cells.len());
    }

    #[test]
    fn area_explodes_with_trip_count() {
        let model = chls_rtl::CostModel::new();
        let area_of = |n: usize| {
            let src = format!(
                "int f(int x) {{
                    int s = 0;
                    for (int i = 0; i < {n}; i++) s += x * i;
                    return s;
                }}"
            );
            synth(&src, "f").area(&model)
        };
        let a4 = area_of(4);
        let a16 = area_of(16);
        let a64 = area_of(64);
        assert!(a16 > a4 * 2.0, "a4={a4} a16={a16}");
        assert!(a64 > a16 * 2.0, "a16={a16} a64={a64}");
    }

    #[test]
    fn pointer_programs_synthesize() {
        let nl = synth(
            "void swap(int *a, int *b) { int t = *a; *a = *b; *b = t; }
             int f() {
                int x = 3;
                int y = 5;
                swap(&x, &y);
                return x * 10 + y;
             }",
            "f",
        );
        let sim = NetlistSim::new(&nl).unwrap();
        assert_eq!(sim.output("ret").unwrap(), 53);
    }

    #[test]
    fn info_matches_table_one() {
        let info = Cones.info();
        assert_eq!(info.year, 1988);
        assert_eq!(info.timing, TimingModel::Combinational);
        assert!(!info.data_dependent_loops);
    }
}
