//! # chls-backends
//!
//! One synthesis backend per paradigm in the paper's Table 1:
//!
//! | module | models | timing rule |
//! |---|---|---|
//! | [`cones`] | Cones (1988) | none — pure combinational flattening |
//! | [`transmogrifier`] | Transmogrifier C (1995) | 1 cycle per loop iteration |
//! | [`handelc`] | Handel-C (Celoxica) | 1 cycle per assignment; `par`/channels |
//! | [`hardwarec`] | HardwareC / Bach C | in-language timing constraints |
//! | [`c2v`] | C2Verilog (CompiLogic) | compiler-scheduled cycles |
//! | [`cash`] | CASH (2002) | asynchronous dataflow |
//! | [`cyber`] | Cyber/BDL (NEC) | compiler-scheduled; pointers prohibited |
//!
//! (The seventh paradigm — Ocapi/PDL++-style structural construction —
//! is `chls_rtl::builder`, since its whole point is that *you* write the
//! structure.)
//!
//! All backends implement [`common::Backend`] and produce a
//! [`common::Design`] that the simulators in `chls-sim` can execute, so
//! every backend is conformance-tested against the golden interpreter.

pub mod c2v;
pub mod cash;
pub mod common;
pub mod cones;
pub mod cyber;
pub mod handelc;
pub mod hardwarec;
pub(crate) mod pipeline;
pub mod transmogrifier;

pub use common::{
    construct_support, prepare_sequential, prepare_sequential_opts, prepare_structured, Backend,
    BackendInfo, ConcurrencyModel, ConstructSupport, Design, Prepared, Support, SynthError,
    SynthOptions, TimingModel, CONSTRUCT_MATRIX,
};
pub use c2v::C2Verilog;
pub use cash::Cash;
pub use cones::Cones;
pub use cyber::Cyber;
pub use handelc::HandelC;
pub use hardwarec::HardwareC;
pub use transmogrifier::Transmogrifier;
