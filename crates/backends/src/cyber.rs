//! The Cyber backend.
//!
//! NEC's Cyber "accepts a C variant dubbed BDL that contains hardware
//! extensions but prohibits recursive functions and pointers. Timing can
//! be implicit or explicit." Its scheduling machinery is conventional
//! behavioral synthesis; its distinctive row in Table 1 is the *language
//! restriction*. This backend models exactly that: the compiler-scheduled
//! flow (shared with C2Verilog) behind a BDL-style acceptance check that
//! rejects any program whose source uses pointers — at the language
//! level, before analysis could have resolved them.

use crate::common::*;
use chls_frontend::hir::{HirProgram, HirStmt};
use chls_frontend::Type;

/// The Cyber backend.
#[derive(Debug, Clone, Copy, Default)]
pub struct Cyber;

impl Backend for Cyber {
    fn info(&self) -> BackendInfo {
        BackendInfo {
            name: "cyber",
            models: "Cyber / BDL (NEC, Wakabayashi)",
            year: 1999,
            comment: "Restricted C with extensions",
            concurrency: ConcurrencyModel::CompilerDriven,
            timing: TimingModel::CompilerScheduled,
            pointers: false,
            data_dependent_loops: true,
            parallel_constructs: false,
        }
    }

    fn synthesize(
        &self,
        prog: &HirProgram,
        entry: &str,
        opts: &SynthOptions,
    ) -> Result<Design, SynthError> {
        // BDL prohibits pointers outright (recursion is already rejected
        // by semantic analysis, as Cyber itself would).
        for func in &prog.funcs {
            for local in &func.locals {
                if matches!(local.ty, Type::Ptr(_)) {
                    return Err(SynthError::Unsupported {
                        backend: "cyber",
                        what: format!(
                            "pointers (BDL prohibits them; `{}` in `{}`)",
                            local.name, func.name
                        ),
                    });
                }
            }
            if block_has_addrof(&func.body) {
                return Err(SynthError::Unsupported {
                    backend: "cyber",
                    what: "address-of expressions (BDL prohibits pointers)".to_string(),
                });
            }
        }
        // Behind the language gate, Cyber is conventional behavioral
        // synthesis — reuse the compiler-scheduled flow.
        let prepared = prepare_sequential_opts(prog, entry, false, opts.narrow_widths, opts.unroll_factor)?;
        let fsmd = crate::c2v::schedule_to_fsmd(&prepared.func, opts)?;
        Ok(Design::Fsmd(fsmd))
    }
}

fn block_has_addrof(block: &chls_frontend::hir::HirBlock) -> bool {
    use chls_frontend::hir::{HirExpr, HirExprKind};
    fn expr_has(e: &HirExpr) -> bool {
        match &e.kind {
            HirExprKind::AddrOf(_) => true,
            HirExprKind::Const(_) | HirExprKind::Load(_) => false,
            HirExprKind::Unary(_, a) | HirExprKind::Cast(a) => expr_has(a),
            HirExprKind::Binary(_, a, b) => expr_has(a) || expr_has(b),
            HirExprKind::Select(c, t, f) => expr_has(c) || expr_has(t) || expr_has(f),
        }
    }
    block.stmts.iter().any(|s| match s {
        HirStmt::Assign { value, .. } | HirStmt::Send { value, .. } => expr_has(value),
        HirStmt::If { cond, then, els } => {
            expr_has(cond) || block_has_addrof(then) || block_has_addrof(els)
        }
        HirStmt::While { cond, body, .. } => expr_has(cond) || block_has_addrof(body),
        HirStmt::DoWhile { body, cond } => block_has_addrof(body) || expr_has(cond),
        HirStmt::For {
            init,
            cond,
            step,
            body,
            ..
        } => {
            block_has_addrof(init)
                || expr_has(cond)
                || block_has_addrof(step)
                || block_has_addrof(body)
        }
        HirStmt::Return(Some(e)) => expr_has(e),
        HirStmt::Block(b) | HirStmt::Constraint { body: b, .. } => block_has_addrof(b),
        HirStmt::Par(bs) => bs.iter().any(block_has_addrof),
        _ => false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use chls_frontend::compile_to_hir;
    use chls_sim::fsmd_sim::simulate;
    use chls_sim::interp::ArgValue;

    #[test]
    fn pointer_free_programs_synthesize() {
        let prog = compile_to_hir(
            "int f(int a[8], int n) {
                int s = 0;
                for (int i = 0; i < n; i++) s += a[i];
                return s;
            }",
        )
        .unwrap();
        let d = Cyber
            .synthesize(&prog, "f", &SynthOptions::default())
            .expect("synthesizes");
        let Design::Fsmd(f) = d else { unreachable!() };
        let r = simulate(
            &f,
            &[ArgValue::Array((1..=8).collect()), ArgValue::Scalar(8)],
            10_000,
        )
        .unwrap();
        assert_eq!(r.ret, Some(36));
    }

    #[test]
    fn pointers_rejected_at_the_language_level() {
        let prog = compile_to_hir(
            "int f() { int x = 1; int *p = &x; return *p; }",
        )
        .unwrap();
        let err = Cyber
            .synthesize(&prog, "f", &SynthOptions::default())
            .unwrap_err();
        match err {
            SynthError::Unsupported { backend, what } => {
                assert_eq!(backend, "cyber");
                assert!(what.contains("pointer"), "{what}");
            }
            other => panic!("expected Unsupported, got {other}"),
        }
    }

    #[test]
    fn pointer_in_helper_function_rejected_too() {
        let prog = compile_to_hir(
            "void bump(int *p) { *p = *p + 1; }
             int f() { int x = 1; bump(&x); return x; }",
        )
        .unwrap();
        assert!(Cyber
            .synthesize(&prog, "f", &SynthOptions::default())
            .is_err());
    }

    #[test]
    fn info_row() {
        let info = Cyber.info();
        assert!(!info.pointers);
        assert_eq!(info.year, 1999);
    }
}
