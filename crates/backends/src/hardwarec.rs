//! The HardwareC / Bach C backend.
//!
//! Ku & De Micheli's HardwareC (the Olympus system's input) is a
//! behavioral language whose defining feature the paper highlights is
//! **in-language relative timing constraints**: "these three statements
//! must execute in two cycles". The compiler owns the schedule; the
//! constraints steer it — which "allows easier design-space
//! exploration". Sharp's Bach C works the same way ("the compiler does
//! the scheduling; the number of cycles taken by each construct is not
//! set by a rule").
//!
//! Implementation: straight-line runs of assignments ("chunks") become
//! dataflow graphs scheduled by
//!
//! * resource-constrained **list scheduling** normally, or
//! * **force-directed scheduling** under a cycle budget inside
//!   `#pragma constraint N { ... }` blocks — infeasible budgets are
//!   reported with the best achievable latency ([`SynthError::ConstraintInfeasible`]);
//!
//! `par` branches of straight-line assignments merge into a single chunk,
//! so the scheduler extracts their parallelism (HardwareC's process-level
//! concurrency at chunk granularity; branches must not race). Loop and
//! branch decisions are scheduled into their preceding chunk's last
//! cycle; a loop's condition re-evaluates in a dedicated header chunk.

use crate::common::*;
use chls_frontend::ast::{BinOp, UnOp};
use chls_frontend::hir::*;
use chls_frontend::{IntType, Type};
use chls_ir::{BinKind, UnKind};
use chls_rtl::fsmd::{Action, Fsmd, FsmdMem, MemId, NextState, RegId, Rv, RvKind, StateId};
use chls_sched::dfg::{Dfg, DfgNode, NodeId};
use chls_sched::schedule::Schedule;
use chls_sched::{force_directed, list_schedule};
use chls_rtl::cost::OpClass;
use chls_rtl::netlist::bin_class;
use std::collections::HashMap;

/// The HardwareC backend.
#[derive(Debug, Clone, Copy, Default)]
pub struct HardwareC;

impl Backend for HardwareC {
    fn info(&self) -> BackendInfo {
        BackendInfo {
            name: "hardwarec",
            models: "HardwareC (Ku & De Micheli) / Bach C (Sharp)",
            year: 1990,
            comment: "Behavioral synthesis-centric",
            concurrency: ConcurrencyModel::Explicit,
            timing: TimingModel::ConstraintDriven,
            pointers: true,
            data_dependent_loops: true,
            parallel_constructs: true,
        }
    }

    fn synthesize(
        &self,
        prog: &HirProgram,
        entry: &str,
        opts: &SynthOptions,
    ) -> Result<Design, SynthError> {
        let prepared = prepare_structured_opts(prog, entry, opts.unroll_factor)?;
        let fsmd = Compiler::new(&prepared, opts)?.run()?;
        Ok(Design::Fsmd(fsmd))
    }
}

fn u1() -> IntType {
    IntType::new(1, false)
}

fn scalar_ty(ty: &Type) -> IntType {
    match ty {
        Type::Bool => u1(),
        Type::Int(it) => *it,
        _ => IntType::new(32, true),
    }
}

/// An operand of a chunk node.
#[derive(Debug, Clone, PartialEq)]
enum In {
    Node(NodeId),
    Reg(RegId, IntType),
    Const(i64, IntType),
    /// FSMD primary input (reserved for future non-latched parameters).
    #[allow(dead_code)]
    Input(usize, IntType),
}

/// Payload of a chunk node (parallel to the DFG node).
#[derive(Debug, Clone)]
enum CNode {
    Bin(BinKind, In, In, IntType),
    Un(UnKind, In, IntType),
    Mux(In, In, In, IntType),
    Cast(In, IntType),
    Load(MemId, In, IntType),
    Store(MemId, In, In),
}

/// One straight-line scheduling unit.
#[derive(Default)]
struct Chunk {
    dfg: Dfg,
    payload: Vec<CNode>,
    /// Final register commits: node -> destination register.
    commits: Vec<(In, RegId)>,
    /// Current symbolic value of each local inside the chunk.
    cur: HashMap<LocalId, In>,
    /// Last access node per memory (for ordering edges).
    last_mem: HashMap<u32, NodeId>,
}

struct Compiler<'p> {
    prog: &'p HirProgram,
    opts: &'p SynthOptions,
    fsmd: Fsmd,
    reg_of: HashMap<LocalId, RegId>,
    mem_of: HashMap<LocalId, MemId>,
    global_mem: HashMap<GlobalId, MemId>,
    ret_reg: Option<RegId>,
    done_state: StateId,
    /// Temp registers per emitted chunk node.
    temp_count: u32,
}

impl<'p> Compiler<'p> {
    fn new(prog: &'p HirProgram, opts: &'p SynthOptions) -> Result<Self, SynthError> {
        let func = &prog.funcs[0];
        let mut fsmd = Fsmd::new(func.name.clone());
        let mut reg_of = HashMap::new();
        let mut mem_of = HashMap::new();
        for (i, local) in func.locals.iter().enumerate() {
            let id = LocalId(i as u32);
            match &local.ty {
                Type::Bool | Type::Int(_) => {
                    let r = fsmd.add_reg(
                        format!("{}_{i}", local.name.replace('$', "t")),
                        scalar_ty(&local.ty),
                        0,
                    );
                    reg_of.insert(id, r);
                }
                Type::Array(elem, n) => {
                    let m = fsmd.add_mem(FsmdMem {
                        name: local.name.clone(),
                        elem: scalar_ty(elem),
                        len: *n,
                        rom: local.rom.clone(),
                        param_index: if local.is_param { Some(i) } else { None },
                    });
                    mem_of.insert(id, m);
                }
                Type::Chan(_) => {
                    return Err(SynthError::Unsupported {
                        backend: "hardwarec",
                        what: "channels (use the handelc backend)".to_string(),
                    });
                }
                Type::Ptr(_) => {
                    return Err(SynthError::Transform("pointer survived".to_string()));
                }
                Type::Void => {}
            }
        }
        let mut global_mem = HashMap::new();
        for (gi, g) in prog.globals.iter().enumerate() {
            if let Type::Array(elem, _) = &g.ty {
                let m = fsmd.add_mem(FsmdMem {
                    name: g.name.clone(),
                    elem: scalar_ty(elem),
                    len: g.values.len(),
                    rom: Some(g.values.clone()),
                    param_index: None,
                });
                global_mem.insert(GlobalId(gi as u32), m);
            }
        }
        let ret_reg = match &func.ret_ty {
            Type::Void => None,
            other => Some(fsmd.add_reg("ret_value", scalar_ty(other), 0)),
        };
        let done_state = fsmd.add_state();
        fsmd.state_mut(done_state).next = NextState::Done;
        Ok(Compiler {
            prog,
            opts,
            fsmd,
            reg_of,
            mem_of,
            global_mem,
            ret_reg,
            done_state,
            temp_count: 0,
        })
    }

    fn run(mut self) -> Result<Fsmd, SynthError> {
        let func = &self.prog.funcs[0];
        // Entry state latches parameters.
        let entry_state = self.fsmd.add_state();
        self.fsmd.entry = entry_state;
        for (i, local) in func.locals.iter().enumerate() {
            if local.is_param && local.ty.is_scalar() {
                let idx = self
                    .fsmd
                    .add_input(format!("arg{i}"), scalar_ty(&local.ty), i);
                let r = self.reg_of[&LocalId(i as u32)];
                let ty = scalar_ty(&local.ty);
                self.fsmd.state_mut(entry_state).actions.push(Action::set(
                    r,
                    Rv {
                        kind: RvKind::Input(idx),
                        ty,
                    },
                ));
            }
        }
        let body = func.body.clone();
        let exit = self.compile_block(&body, entry_state, None)?;
        // Fall off the end: done.
        self.fsmd.state_mut(exit).next = NextState::Done;
        self.fsmd.ret = self
            .ret_reg
            .map(|rr| Rv::reg(rr, scalar_ty(&func.ret_ty)));
        // The placeholder done_state may be unreachable; harmless.
        Ok(self.fsmd)
    }

    /// Compiles a block starting after `prev` (a state whose `next` we may
    /// set). Returns the last state of the compiled sequence, whose `next`
    /// the caller must set. `budget` carries an enclosing `#pragma
    /// constraint` cycle budget.
    fn compile_block(
        &mut self,
        block: &HirBlock,
        prev: StateId,
        budget: Option<u32>,
    ) -> Result<StateId, SynthError> {
        let mut cur = prev;
        let mut chunk = Chunk::default();
        for stmt in &block.stmts {
            match stmt {
                HirStmt::Assign { place, value, .. } => {
                    self.chunk_assign(&mut chunk, place, value)?;
                }
                HirStmt::Par(branches) => {
                    self.chunk_par(&mut chunk, branches)?;
                }
                HirStmt::Delay => {
                    // Flush and insert one idle state.
                    cur = self.flush(chunk, cur, budget)?;
                    chunk = Chunk::default();
                    let idle = self.fsmd.add_state();
                    self.fsmd.state_mut(cur).next = NextState::Goto(idle);
                    cur = idle;
                }
                HirStmt::Block(b) => {
                    cur = self.flush(chunk, cur, budget)?;
                    chunk = Chunk::default();
                    cur = self.compile_block(b, cur, budget)?;
                }
                HirStmt::Constraint { cycles, body } => {
                    cur = self.flush(chunk, cur, budget)?;
                    chunk = Chunk::default();
                    cur = self.compile_block(body, cur, Some(*cycles))?;
                }
                HirStmt::If { cond, then, els } => {
                    // Schedule the condition with the preceding chunk.
                    let c_in = self.chunk_expr(&mut chunk, cond)?;
                    let (last, cond_rv) = self.flush_with_value(chunk, cur, budget, c_in)?;
                    chunk = Chunk::default();
                    let join = self.fsmd.add_state();
                    let t_entry = self.fsmd.add_state();
                    let e_entry = self.fsmd.add_state();
                    self.fsmd.state_mut(last).next = NextState::Branch {
                        cond: cond_rv,
                        then: t_entry,
                        els: e_entry,
                    };
                    let t_last = self.compile_block(then, t_entry, budget)?;
                    self.fsmd.state_mut(t_last).next = NextState::Goto(join);
                    let e_last = self.compile_block(els, e_entry, budget)?;
                    self.fsmd.state_mut(e_last).next = NextState::Goto(join);
                    cur = join;
                }
                HirStmt::While { cond, body, .. } => {
                    cur = self.flush(chunk, cur, budget)?;
                    chunk = Chunk::default();
                    // Header chunk evaluates the condition each iteration.
                    let header_entry = self.fsmd.add_state();
                    self.fsmd.state_mut(cur).next = NextState::Goto(header_entry);
                    let mut header_chunk = Chunk::default();
                    let c_in = self.chunk_expr(&mut header_chunk, cond)?;
                    let (header_last, cond_rv) =
                        self.flush_with_value(header_chunk, header_entry, None, c_in)?;
                    let body_entry = self.fsmd.add_state();
                    let exit = self.fsmd.add_state();
                    self.fsmd.state_mut(header_last).next = NextState::Branch {
                        cond: cond_rv,
                        then: body_entry,
                        els: exit,
                    };
                    let body_last = self.compile_block(body, body_entry, budget)?;
                    self.fsmd.state_mut(body_last).next = NextState::Goto(header_entry);
                    cur = exit;
                }
                HirStmt::DoWhile { body, cond } => {
                    cur = self.flush(chunk, cur, budget)?;
                    chunk = Chunk::default();
                    let body_entry = self.fsmd.add_state();
                    self.fsmd.state_mut(cur).next = NextState::Goto(body_entry);
                    let body_last = self.compile_block(body, body_entry, budget)?;
                    let mut cond_chunk = Chunk::default();
                    let c_in = self.chunk_expr(&mut cond_chunk, cond)?;
                    let (cond_last, cond_rv) =
                        self.flush_with_value(cond_chunk, body_last, None, c_in)?;
                    let exit = self.fsmd.add_state();
                    self.fsmd.state_mut(cond_last).next = NextState::Branch {
                        cond: cond_rv,
                        then: body_entry,
                        els: exit,
                    };
                    cur = exit;
                }
                HirStmt::For {
                    init,
                    cond,
                    step,
                    body,
                    ..
                } => {
                    cur = self.flush(chunk, cur, budget)?;
                    chunk = Chunk::default();
                    cur = self.compile_block(init, cur, budget)?;
                    let header_entry = self.fsmd.add_state();
                    self.fsmd.state_mut(cur).next = NextState::Goto(header_entry);
                    let mut header_chunk = Chunk::default();
                    let c_in = self.chunk_expr(&mut header_chunk, cond)?;
                    let (header_last, cond_rv) =
                        self.flush_with_value(header_chunk, header_entry, None, c_in)?;
                    let body_entry = self.fsmd.add_state();
                    let exit = self.fsmd.add_state();
                    self.fsmd.state_mut(header_last).next = NextState::Branch {
                        cond: cond_rv,
                        then: body_entry,
                        els: exit,
                    };
                    let body_last = self.compile_block(body, body_entry, budget)?;
                    let step_last = self.compile_block(step, body_last, budget)?;
                    self.fsmd.state_mut(step_last).next = NextState::Goto(header_entry);
                    cur = exit;
                }
                HirStmt::Return(v) => {
                    if let (Some(e), Some(rr)) = (v, self.ret_reg) {
                        let val = self.chunk_expr(&mut chunk, e)?;
                        chunk.commits.push((val, rr));
                    }
                    cur = self.flush(chunk, cur, budget)?;
                    chunk = Chunk::default();
                    self.fsmd.state_mut(cur).next = NextState::Goto(self.done_state);
                    // Statements after a return are dead; a fresh state
                    // keeps the builder well-formed.
                    cur = self.fsmd.add_state();
                }
                HirStmt::Break | HirStmt::Continue => {
                    return Err(SynthError::Unsupported {
                        backend: "hardwarec",
                        what: "break/continue (restructure the loop)".to_string(),
                    });
                }
                HirStmt::Send { .. } | HirStmt::Recv { .. } => {
                    return Err(SynthError::Unsupported {
                        backend: "hardwarec",
                        what: "channels (use the handelc backend)".to_string(),
                    });
                }
                HirStmt::Call { .. } => {
                    return Err(SynthError::Transform("call survived inlining".to_string()));
                }
            }
        }
        self.flush(chunk, cur, budget)
    }

    // ---- chunk construction ----

    fn in_ty(&self, i: &In, chunk: &Chunk) -> IntType {
        match i {
            In::Node(n) => match &chunk.payload[n.0 as usize] {
                CNode::Bin(_, _, _, t)
                | CNode::Un(_, _, t)
                | CNode::Mux(_, _, _, t)
                | CNode::Cast(_, t)
                | CNode::Load(_, _, t) => *t,
                CNode::Store(..) => u1(),
            },
            In::Reg(_, t) | In::Const(_, t) | In::Input(_, t) => *t,
        }
    }

    fn add_chunk_node(&self, chunk: &mut Chunk, cn: CNode) -> NodeId {
        let (class, width, mem) = match &cn {
            CNode::Bin(op, a, _, t) => {
                let w = if op.is_comparison() {
                    self.in_ty(a, chunk).width
                } else {
                    t.width
                };
                (bin_class(*op), w, None)
            }
            CNode::Un(UnKind::Neg, _, t) => (OpClass::AddSub, t.width, None),
            CNode::Un(UnKind::Not, _, t) => (OpClass::Logic, t.width, None),
            CNode::Mux(_, _, _, t) => (OpClass::Mux, t.width, None),
            CNode::Cast(_, t) => (OpClass::Cast, t.width, None),
            CNode::Load(m, _, t) => (OpClass::MemRead, t.width, Some(m.0)),
            CNode::Store(m, _, _) => (OpClass::MemWrite, 32, Some(m.0)),
        };
        let delay = match class {
            OpClass::MemRead | OpClass::MemWrite => self.opts.model.ram_read_delay(64),
            other => self.opts.model.delay(other, width),
        };
        let chainable = !matches!(class, OpClass::MemRead | OpClass::MemWrite);
        let id = chunk.dfg.add_node(DfgNode {
            op: class,
            width,
            delay_ns: delay,
            mem,
            chainable,
            tag: chunk.payload.len() as u32,
        });
        // Data edges from node operands.
        let link = |i: &In, chunk: &mut Chunk| {
            if let In::Node(src) = i {
                chunk.dfg.add_edge(*src, id);
            }
        };
        match &cn {
            CNode::Bin(_, a, b, _) => {
                link(a, chunk);
                link(b, chunk);
            }
            CNode::Un(_, a, _) | CNode::Cast(a, _) => link(a, chunk),
            CNode::Mux(s, a, b, _) => {
                link(s, chunk);
                link(a, chunk);
                link(b, chunk);
            }
            CNode::Load(_, a, _) => link(a, chunk),
            CNode::Store(_, a, v) => {
                link(a, chunk);
                link(v, chunk);
            }
        }
        // Conservative memory ordering.
        if let Some(m) = mem {
            if let Some(&prev) = chunk.last_mem.get(&m) {
                chunk.dfg.add_edge(prev, id);
            }
            chunk.last_mem.insert(m, id);
        }
        chunk.payload.push(cn);
        id
    }

    fn chunk_assign(
        &mut self,
        chunk: &mut Chunk,
        place: &HirPlace,
        value: &HirExpr,
    ) -> Result<(), SynthError> {
        let v = self.chunk_expr(chunk, value)?;
        match place {
            HirPlace::Local(id) => {
                chunk.cur.insert(*id, v);
            }
            HirPlace::Index { base, index } => {
                let mem = self.place_mem(base)?;
                let addr = self.chunk_expr(chunk, index)?;
                self.add_chunk_node(chunk, CNode::Store(mem, addr, v));
            }
            _ => return Err(SynthError::Transform("bad place".to_string())),
        }
        Ok(())
    }

    fn chunk_par(&mut self, chunk: &mut Chunk, branches: &[HirBlock]) -> Result<(), SynthError> {
        let base = chunk.cur.clone();
        let mut merged: HashMap<LocalId, In> = HashMap::new();
        for b in branches {
            chunk.cur = base.clone();
            for stmt in &b.stmts {
                match stmt {
                    HirStmt::Assign { place, value, .. } => {
                        self.chunk_assign(chunk, place, value)?;
                    }
                    HirStmt::Block(inner) => {
                        for s in &inner.stmts {
                            let HirStmt::Assign { place, value, .. } = s else {
                                return Err(SynthError::Unsupported {
                                    backend: "hardwarec",
                                    what: "control flow inside par (straight-line only)"
                                        .to_string(),
                                });
                            };
                            self.chunk_assign(chunk, place, value)?;
                        }
                    }
                    _ => {
                        return Err(SynthError::Unsupported {
                            backend: "hardwarec",
                            what: "control flow inside par (straight-line only)".to_string(),
                        });
                    }
                }
            }
            for (k, v) in chunk.cur.clone() {
                if base.get(&k) != Some(&v) {
                    merged.insert(k, v);
                }
            }
        }
        chunk.cur = base;
        chunk.cur.extend(merged);
        Ok(())
    }

    fn place_mem(&self, place: &HirPlace) -> Result<MemId, SynthError> {
        match place {
            HirPlace::Local(id) => self
                .mem_of
                .get(id)
                .copied()
                .ok_or_else(|| SynthError::Transform("indexing a scalar".to_string())),
            HirPlace::Global(g) => self
                .global_mem
                .get(g)
                .copied()
                .ok_or_else(|| SynthError::Transform("unknown global".to_string())),
            _ => Err(SynthError::Transform("bad memory place".to_string())),
        }
    }

    fn chunk_expr(&mut self, chunk: &mut Chunk, e: &HirExpr) -> Result<In, SynthError> {
        let ty = scalar_ty(&e.ty);
        Ok(match &e.kind {
            HirExprKind::Const(v) => In::Const(*v, ty),
            HirExprKind::Load(place) => match &**place {
                HirPlace::Local(id) => {
                    if let Some(cur) = chunk.cur.get(id) {
                        cur.clone()
                    } else {
                        In::Reg(self.reg_of[id], ty)
                    }
                }
                HirPlace::Index { base, index } => {
                    let mem = self.place_mem(base)?;
                    let addr = self.chunk_expr(chunk, index)?;
                    In::Node(self.add_chunk_node(chunk, CNode::Load(mem, addr, ty)))
                }
                _ => return Err(SynthError::Transform("bad place".to_string())),
            },
            HirExprKind::Unary(op, a) => {
                let ar = self.chunk_expr(chunk, a)?;
                match op {
                    UnOp::Neg => In::Node(self.add_chunk_node(chunk, CNode::Un(UnKind::Neg, ar, ty))),
                    UnOp::Not => In::Node(self.add_chunk_node(chunk, CNode::Un(UnKind::Not, ar, ty))),
                    UnOp::LogNot => In::Node(self.add_chunk_node(
                        chunk,
                        CNode::Bin(BinKind::Eq, ar, In::Const(0, u1()), u1()),
                    )),
                }
            }
            HirExprKind::Binary(op, a, b) => {
                let ar = self.chunk_expr(chunk, a)?;
                let br = self.chunk_expr(chunk, b)?;
                let kind = match op {
                    BinOp::Add => BinKind::Add,
                    BinOp::Sub => BinKind::Sub,
                    BinOp::Mul => BinKind::Mul,
                    BinOp::Div => BinKind::Div,
                    BinOp::Rem => BinKind::Rem,
                    BinOp::Shl => BinKind::Shl,
                    BinOp::Shr => BinKind::Shr,
                    BinOp::BitAnd => BinKind::And,
                    BinOp::BitOr => BinKind::Or,
                    BinOp::BitXor => BinKind::Xor,
                    BinOp::Eq => BinKind::Eq,
                    BinOp::Ne => BinKind::Ne,
                    BinOp::Lt => BinKind::Lt,
                    BinOp::Le => BinKind::Le,
                    BinOp::Gt => BinKind::Gt,
                    BinOp::Ge => BinKind::Ge,
                    BinOp::LogAnd | BinOp::LogOr => unreachable!("desugared"),
                };
                let rty = if kind.is_comparison() { u1() } else { ty };
                In::Node(self.add_chunk_node(chunk, CNode::Bin(kind, ar, br, rty)))
            }
            HirExprKind::Select(c, t, f) => {
                let (cr, tr, fr) = (
                    self.chunk_expr(chunk, c)?,
                    self.chunk_expr(chunk, t)?,
                    self.chunk_expr(chunk, f)?,
                );
                In::Node(self.add_chunk_node(chunk, CNode::Mux(cr, tr, fr, ty)))
            }
            HirExprKind::Cast(a) => {
                let ar = self.chunk_expr(chunk, a)?;
                In::Node(self.add_chunk_node(chunk, CNode::Cast(ar, ty)))
            }
            HirExprKind::AddrOf(_) => {
                return Err(SynthError::Transform("address-of survived".to_string()));
            }
        })
    }

    // ---- chunk emission ----

    /// Schedules and emits a chunk after `prev`. Returns the last state.
    fn flush(
        &mut self,
        mut chunk: Chunk,
        prev: StateId,
        budget: Option<u32>,
    ) -> Result<StateId, SynthError> {
        // Final local values commit to their registers.
        let cur = std::mem::take(&mut chunk.cur);
        for (local, v) in cur {
            let r = self.reg_of[&local];
            chunk.commits.push((v, r));
        }
        let (last, _) = self.emit(chunk, prev, budget, None)?;
        Ok(last)
    }

    /// Like [`flush`], also returning an Rv for `want` readable in the
    /// final state (used for branch conditions).
    fn flush_with_value(
        &mut self,
        mut chunk: Chunk,
        prev: StateId,
        budget: Option<u32>,
        want: In,
    ) -> Result<(StateId, Rv), SynthError> {
        let cur = std::mem::take(&mut chunk.cur);
        for (local, v) in cur {
            let r = self.reg_of[&local];
            chunk.commits.push((v, r));
        }
        let (last, rv) = self.emit(chunk, prev, budget, Some(want))?;
        Ok((last, rv.expect("want produces a value")))
    }

    fn emit(
        &mut self,
        chunk: Chunk,
        prev: StateId,
        budget: Option<u32>,
        want: Option<In>,
    ) -> Result<(StateId, Option<Rv>), SynthError> {
        // Schedule.
        let sched: Schedule = match budget {
            Some(cycles) => {
                let s = force_directed(&chunk.dfg, self.opts.clock_period_ns, cycles);
                let achieved = s
                    .cycle
                    .iter()
                    .zip(&s.duration)
                    .map(|(c, d)| c + d)
                    .max()
                    .unwrap_or(0);
                if achieved > cycles.max(1) {
                    return Err(SynthError::ConstraintInfeasible {
                        requested: cycles,
                        achieved,
                    });
                }
                s
            }
            None => list_schedule(&chunk.dfg, self.opts.clock_period_ns, &self.opts.resources),
        };
        let n_states = sched.length.max(if chunk.payload.is_empty() && want.is_none() {
            0
        } else {
            1
        }) as usize;
        if n_states == 0 && chunk.commits.is_empty() {
            return Ok((prev, None));
        }
        let n_states = n_states.max(1);
        let states: Vec<StateId> = (0..n_states).map(|_| self.fsmd.add_state()).collect();
        self.fsmd.state_mut(prev).next = NextState::Goto(states[0]);
        for w in states.windows(2) {
            self.fsmd.state_mut(w[0]).next = NextState::Goto(w[1]);
        }
        let last = *states.last().expect("nonempty");

        // Temp registers per node.
        let mut temp_of: HashMap<NodeId, RegId> = HashMap::new();
        for (ni, cn) in chunk.payload.iter().enumerate() {
            if matches!(cn, CNode::Store(..)) {
                continue;
            }
            let ty = self.in_ty(&In::Node(NodeId(ni as u32)), &chunk);
            let r = self
                .fsmd
                .add_reg(format!("hc_t{}", self.temp_count), ty, 0);
            self.temp_count += 1;
            temp_of.insert(NodeId(ni as u32), r);
        }

        // Completion cycle per node.
        let end_cycle: Vec<u32> = (0..chunk.payload.len())
            .map(|i| sched.cycle[i] + sched.duration[i] - 1)
            .collect();

        // Rv for an In at a consumer in `cycle`.
        fn in_rv(
            this: &Compiler,
            chunk: &Chunk,
            temp_of: &HashMap<NodeId, RegId>,
            end_cycle: &[u32],
            i: &In,
            cycle: u32,
        ) -> Rv {
            match i {
                In::Const(v, t) => Rv::konst(*v, *t),
                In::Reg(r, t) => Rv::reg(*r, *t),
                In::Input(idx, t) => Rv {
                    kind: RvKind::Input(*idx),
                    ty: *t,
                },
                In::Node(n) => {
                    if end_cycle[n.0 as usize] == cycle {
                        node_rv(this, chunk, temp_of, end_cycle, *n, cycle)
                    } else {
                        let ty = this.in_ty(i, chunk);
                        Rv::reg(temp_of[n], ty)
                    }
                }
            }
        }

        fn node_rv(
            this: &Compiler,
            chunk: &Chunk,
            temp_of: &HashMap<NodeId, RegId>,
            end_cycle: &[u32],
            n: NodeId,
            cycle: u32,
        ) -> Rv {
            match &chunk.payload[n.0 as usize] {
                CNode::Bin(op, a, b, t) => Rv {
                    kind: RvKind::Bin(
                        *op,
                        Box::new(in_rv(this, chunk, temp_of, end_cycle, a, cycle)),
                        Box::new(in_rv(this, chunk, temp_of, end_cycle, b, cycle)),
                    ),
                    ty: *t,
                },
                CNode::Un(op, a, t) => Rv {
                    kind: RvKind::Un(
                        *op,
                        Box::new(in_rv(this, chunk, temp_of, end_cycle, a, cycle)),
                    ),
                    ty: *t,
                },
                CNode::Mux(s, a, b, t) => Rv {
                    kind: RvKind::Mux(
                        Box::new(in_rv(this, chunk, temp_of, end_cycle, s, cycle)),
                        Box::new(in_rv(this, chunk, temp_of, end_cycle, a, cycle)),
                        Box::new(in_rv(this, chunk, temp_of, end_cycle, b, cycle)),
                    ),
                    ty: *t,
                },
                CNode::Cast(a, t) => Rv {
                    kind: RvKind::Cast(Box::new(in_rv(
                        this, chunk, temp_of, end_cycle, a, cycle,
                    ))),
                    ty: *t,
                },
                CNode::Load(m, a, t) => Rv {
                    kind: RvKind::MemRead {
                        mem: *m,
                        addr: Box::new(in_rv(this, chunk, temp_of, end_cycle, a, cycle)),
                    },
                    ty: *t,
                },
                CNode::Store(..) => unreachable!("stores produce no value"),
            }
        }

        // Emit node register writes and stores.
        for (ni, cn) in chunk.payload.iter().enumerate() {
            let n = NodeId(ni as u32);
            let c = end_cycle[ni];
            let st = states[c as usize];
            match cn {
                CNode::Store(m, a, v) => {
                    let addr = in_rv(self, &chunk, &temp_of, &end_cycle, a, c);
                    let val = in_rv(self, &chunk, &temp_of, &end_cycle, v, c);
                    self.fsmd.state_mut(st).actions.push(Action::write(*m, addr, val));
                }
                _ => {
                    let rv = node_rv(self, &chunk, &temp_of, &end_cycle, n, c);
                    self.fsmd
                        .state_mut(st)
                        .actions
                        .push(Action::set(temp_of[&n], rv));
                }
            }
        }
        // Commits in the last state (values read from temps or inline if
        // completing in the last cycle).
        let last_cycle = (n_states - 1) as u32;
        let commits = chunk.commits.clone();
        for (src, reg) in commits {
            let rv = in_rv(self, &chunk, &temp_of, &end_cycle, &src, last_cycle);
            self.fsmd.state_mut(last).actions.push(Action::set(reg, rv));
        }
        let want_rv =
            want.map(|w| in_rv(self, &chunk, &temp_of, &end_cycle, &w, last_cycle));
        Ok((last, want_rv))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chls_frontend::compile_to_hir;
    use chls_sim::fsmd_sim::simulate;
    use chls_sim::interp::ArgValue;

    fn synth_opts(src: &str, entry: &str, opts: &SynthOptions) -> Result<Fsmd, SynthError> {
        let prog = compile_to_hir(src).expect("frontend ok");
        HardwareC.synthesize(&prog, entry, opts).map(|d| match d {
            Design::Fsmd(f) => f,
            _ => panic!("hardwarec must produce an FSMD"),
        })
    }

    fn synth(src: &str, entry: &str) -> Fsmd {
        synth_opts(src, entry, &SynthOptions::default()).expect("synthesis ok")
    }

    #[test]
    fn straight_line_schedules() {
        let f = synth("int f(int a, int b) { return (a + b) * (a - b); }", "f");
        let r = simulate(&f, &[ArgValue::Scalar(7), ArgValue::Scalar(3)], 100).unwrap();
        assert_eq!(r.ret, Some(40));
    }

    #[test]
    fn loop_and_memory() {
        let f = synth(
            "int f(int a[8], int n) {
                int s = 0;
                for (int i = 0; i < n; i++) s = s + a[i];
                return s;
            }",
            "f",
        );
        let r = simulate(
            &f,
            &[ArgValue::Array((1..=8).collect()), ArgValue::Scalar(8)],
            10_000,
        )
        .unwrap();
        assert_eq!(r.ret, Some(36));
    }

    #[test]
    fn constraint_met_when_feasible() {
        // Two independent multiplies in 1 cycle: needs 2 multipliers but
        // is latency-feasible.
        let f = synth(
            "int f(int a, int b, int c, int d) {
                int x = 0;
                int y = 0;
                #pragma constraint 1
                { x = a * b; y = c * d; }
                return x + y;
            }",
            "f",
        );
        let r = simulate(
            &f,
            &[
                ArgValue::Scalar(2),
                ArgValue::Scalar(3),
                ArgValue::Scalar(4),
                ArgValue::Scalar(5),
            ],
            100,
        )
        .unwrap();
        assert_eq!(r.ret, Some(26));
    }

    #[test]
    fn infeasible_constraint_reported() {
        // A chain of 3 dependent multiplies cannot fit 1 cycle at a short
        // clock period.
        let err = synth_opts(
            "int f(int a) {
                int x = 0;
                #pragma constraint 1
                { x = a * a; x = x * a; x = x * a; }
                return x;
            }",
            "f",
            &SynthOptions {
                clock_period_ns: 0.9,
                ..Default::default()
            },
        )
        .unwrap_err();
        match err {
            SynthError::ConstraintInfeasible { requested, achieved } => {
                assert_eq!(requested, 1);
                assert!(achieved >= 3, "achieved {achieved}");
            }
            other => panic!("expected infeasible, got {other}"),
        }
    }

    #[test]
    fn par_merges_into_one_chunk() {
        let f = synth(
            "int f(int a, int b) {
                int x = 0;
                int y = 0;
                par { x = a * 2; y = b * 3; }
                return x + y;
            }",
            "f",
        );
        let r = simulate(&f, &[ArgValue::Scalar(5), ArgValue::Scalar(7)], 100).unwrap();
        assert_eq!(r.ret, Some(31));
    }

    #[test]
    fn par_with_control_rejected() {
        let prog = compile_to_hir(
            "int f(int a) {
                int x = 0;
                par {
                    { while (x < a) { x = x + 1; } }
                    x = 2;
                }
                return x;
            }",
        )
        .unwrap();
        let err = HardwareC
            .synthesize(&prog, "f", &SynthOptions::default())
            .unwrap_err();
        assert!(matches!(err, SynthError::Unsupported { .. }), "{err}");
    }

    #[test]
    fn constraint_dse_latency_vs_resources() {
        // The same four multiplies under different budgets: tighter budget
        // -> more multipliers (the HardwareC design-space exploration).
        let src = |budget: u32| {
            format!(
                "int f(int a, int b, int c, int d) {{
                    int x = 0;
                    int y = 0;
                    int z = 0;
                    int w = 0;
                    #pragma constraint {budget}
                    {{ x = a * a; y = b * b; z = c * c; w = d * d; }}
                    return x + y + z + w;
                }}"
            )
        };
        let tight = synth(&src(1), "f");
        let relaxed = synth(&src(4), "f");
        let m = chls_rtl::CostModel::new();
        let mul_tight = tight
            .fu_requirements()
            .iter()
            .filter(|((c, _), _)| *c == OpClass::Mul)
            .map(|(_, n)| *n)
            .max()
            .unwrap_or(0);
        let mul_relaxed = relaxed
            .fu_requirements()
            .iter()
            .filter(|((c, _), _)| *c == OpClass::Mul)
            .map(|(_, n)| *n)
            .max()
            .unwrap_or(0);
        assert!(
            mul_tight > mul_relaxed,
            "tight {mul_tight} vs relaxed {mul_relaxed}"
        );
        let _ = m;
        // Both still compute correctly.
        let args = [
            ArgValue::Scalar(1),
            ArgValue::Scalar(2),
            ArgValue::Scalar(3),
            ArgValue::Scalar(4),
        ];
        assert_eq!(simulate(&tight, &args, 100).unwrap().ret, Some(30));
        assert_eq!(simulate(&relaxed, &args, 100).unwrap().ret, Some(30));
    }

    #[test]
    fn gcd_conformance() {
        let f = synth(
            "int f(int a, int b) { while (b != 0) { int t = b; b = a % b; a = t; } return a; }",
            "f",
        );
        let r = simulate(&f, &[ArgValue::Scalar(48), ArgValue::Scalar(36)], 10_000).unwrap();
        assert_eq!(r.ret, Some(12));
    }

    #[test]
    fn nested_ifs() {
        let f = synth(
            "int f(int x) {
                int r = 0;
                if (x > 10) { if (x > 100) { r = 3; } else { r = 2; } } else { r = 1; }
                return r;
            }",
            "f",
        );
        assert_eq!(simulate(&f, &[ArgValue::Scalar(5)], 100).unwrap().ret, Some(1));
        assert_eq!(simulate(&f, &[ArgValue::Scalar(50)], 100).unwrap().ret, Some(2));
        assert_eq!(simulate(&f, &[ArgValue::Scalar(500)], 100).unwrap().ret, Some(3));
    }

    #[test]
    fn info_row() {
        let info = HardwareC.info();
        assert_eq!(info.timing, TimingModel::ConstraintDriven);
        assert_eq!(info.year, 1990);
    }
}
