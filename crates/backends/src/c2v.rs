//! The C2Verilog backend.
//!
//! CompiLogic's C2Verilog had "truly broad support for ANSI C" — pointers,
//! recursion, dynamic allocation — and "inserts cycles using complex
//! rules", with timing constraints imposed *outside* the language. This
//! backend models that flow as classic compiler-scheduled HLS:
//!
//! * the sequential pipeline (inline → unroll pragmas → pointer
//!   elimination, with multi-target pointers forced into a monolithic
//!   memory — C2Verilog's general strategy) produces clean SSA IR;
//! * each basic block's DFG is **list-scheduled** under the clock period
//!   and the resource set (functional units, memory ports) given outside
//!   the language in [`SynthOptions`];
//! * each schedule cycle becomes one FSMD state; chained operations share
//!   a state, multi-cycle operations (wide dividers) occupy several;
//! * SSA values crossing cycles or blocks live in registers, committed
//!   with register semantics so parallel transfers are safe.
//!
//! One simplification: a multi-cycle operation's datapath is evaluated in
//! its final state rather than being internally pipelined, so the
//! reported critical path for divider-heavy designs is pessimistic while
//! the cycle count is faithful.

use crate::common::*;
use chls_frontend::hir::HirProgram;
use chls_frontend::IntType;
use chls_ir::ir::{Function, InstKind, MemSource, Term, Value};
use chls_rtl::fsmd::{Action, Fsmd, FsmdMem, NextState, RegId, Rv, RvKind, StateId};
use chls_sched::dfg::dfg_from_block;
use chls_sched::list_schedule;
use std::collections::HashMap;

/// The C2Verilog backend.
#[derive(Debug, Clone, Copy, Default)]
pub struct C2Verilog;

impl Backend for C2Verilog {
    fn info(&self) -> BackendInfo {
        BackendInfo {
            name: "c2v",
            models: "C2Verilog (CompiLogic / C Level Design)",
            year: 1998,
            comment: "Comprehensive; company defunct",
            concurrency: ConcurrencyModel::CompilerDriven,
            timing: TimingModel::CompilerScheduled,
            pointers: true,
            data_dependent_loops: true,
            parallel_constructs: false,
        }
    }

    fn synthesize(
        &self,
        prog: &HirProgram,
        entry: &str,
        opts: &SynthOptions,
    ) -> Result<Design, SynthError> {
        let mut prepared = prepare_sequential_opts(prog, entry, false, opts.narrow_widths, opts.unroll_factor)?;
        if opts.pipeline_loops && opts.pipeline_if_convert {
            // Modulo scheduling wants single-block loop bodies: forward
            // duplicated loads (so re-loading arms become pure), then
            // predicate small data-dependent branches (if-conversion).
            chls_opt::loadcse::eliminate_redundant_loads(&mut prepared.func);
            chls_opt::ifconv::if_convert(&mut prepared.func);
        }
        let fsmd = schedule_to_fsmd(&prepared.func, opts)?;
        Ok(Design::Fsmd(fsmd))
    }
}

/// Shared FSMD construction from scheduled IR; also used by the
/// Transmogrifier backend for its in-region datapaths.
pub(crate) fn schedule_to_fsmd(f: &Function, opts: &SynthOptions) -> Result<Fsmd, SynthError> {
    let mut out = Fsmd::new(f.name.clone());

    // Inputs: one per scalar parameter, discovered from Param insts.
    let mut input_idx: HashMap<usize, usize> = HashMap::new();
    for inst in &f.insts {
        if let InstKind::Param(p) = &inst.kind {
            input_idx
                .entry(*p)
                .or_insert_with(|| out.add_input(format!("arg{p}"), inst.ty, *p));
        }
    }
    // Memories.
    for m in &f.mems {
        out.add_mem(FsmdMem {
            name: m.name.clone(),
            elem: m.elem,
            len: m.len,
            rom: m.rom.clone(),
            param_index: match m.source {
                MemSource::Param(p) => Some(p),
                _ => None,
            },
        });
    }

    // Registers for every value that needs one: phis and every scheduled
    // op result (cross-cycle/cross-block uses read the register; same
    // cycle chained uses inline the expression). With `narrow_widths`,
    // each register shrinks to the bit-width the value-range analysis
    // proves sufficient — transparent to readers because register values
    // are canonical integers.
    let widths = opts.narrow_widths.then(|| chls_opt::width::analyze(f));
    let mut reg_of: HashMap<Value, RegId> = HashMap::new();
    for (i, inst) in f.insts.iter().enumerate() {
        let v = Value(i as u32);
        let needs_reg = !matches!(
            &inst.kind,
            InstKind::Const(_) | InstKind::Param(_) | InstKind::Store { .. }
        );
        if needs_reg {
            let ty = match &widths {
                Some(wa) => {
                    let w = wa.needed_width(f, v).clamp(1, inst.ty.width);
                    IntType::new(w, inst.ty.signed)
                }
                None => inst.ty,
            };
            let r = out.add_reg(format!("v{i}"), ty, 0);
            reg_of.insert(v, r);
        }
    }
    let ret_reg = f.ret_ty.map(|ty| out.add_reg("ret_value", ty, 0));

    // Optional loop pipelining: innermost canonical loops become
    // modulo-scheduled overlapped kernels; their blocks are not emitted
    // by the per-block path below.
    let mut pipelined: Vec<crate::pipeline::PipelinedLoop> = Vec::new();
    let mut covered: std::collections::HashSet<u32> = std::collections::HashSet::new();
    if opts.pipeline_loops {
        let forest = chls_ir::loops::LoopForest::compute(f);
        let max_depth = forest.loops.iter().map(|l| l.depth).max().unwrap_or(0);
        let ctx = crate::pipeline::PipelineCtx {
            f,
            reg_of: &reg_of,
            input_idx: &input_idx,
            opts,
        };
        for l in forest.loops.iter().filter(|l| l.depth == max_depth) {
            if l.blocks.iter().any(|b| covered.contains(&b.0)) {
                continue;
            }
            if let Some(p) = crate::pipeline::try_pipeline(&mut out, &ctx, l) {
                for b in &p.covered {
                    covered.insert(b.0);
                }
                pipelined.push(p);
            }
        }
    }

    // Per block: schedule and allocate states.
    let mut sched_of = Vec::with_capacity(f.blocks.len());
    let mut dfg_of = Vec::with_capacity(f.blocks.len());
    let mut block_states: Vec<Vec<StateId>> = Vec::with_capacity(f.blocks.len());
    for bi in 0..f.blocks.len() {
        if covered.contains(&(bi as u32)) {
            // Covered blocks are entered only through their loop header,
            // which maps to the pipeline's entry state.
            let entry = pipelined
                .iter()
                .find(|p| p.covered.first() == Some(&chls_ir::BlockId(bi as u32)))
                .map(|p| vec![p.entry])
                .unwrap_or_default();
            block_states.push(entry);
            sched_of.push((
                list_schedule(&chls_sched::Dfg::default(), opts.clock_period_ns, &opts.resources),
                Vec::new(),
            ));
            dfg_of.push(chls_sched::Dfg::default());
            continue;
        }
        let (dfg, vals) = dfg_from_block(
            f,
            chls_ir::BlockId(bi as u32),
            opts.precision,
            &opts.model,
        );
        let sched = list_schedule(&dfg, opts.clock_period_ns, &opts.resources);
        let n_states = sched.length.max(1) as usize;
        block_states.push((0..n_states).map(|_| out.add_state()).collect());
        sched_of.push((sched, vals));
        dfg_of.push(dfg);
    }
    let done_state = out.add_state();
    out.state_mut(done_state).next = NextState::Done;
    out.entry = block_states[f.entry.0 as usize][0];
    // Connect pipeline exits to their successor blocks.
    for p in &pipelined {
        let target = block_states[p.exit_block.0 as usize][0];
        out.state_mut(p.exit_state).next = NextState::Goto(target);
    }

    // Expression construction.
    struct Ctx<'a> {
        f: &'a Function,
        reg_of: &'a HashMap<Value, RegId>,
        input_idx: &'a HashMap<usize, usize>,
        /// Cycle of each value in the current block (None = other block).
        cycle_of: HashMap<Value, u32>,
        /// When narrowing, the value-range analysis.
        widths: Option<&'a chls_opt::width::WidthAnalysis>,
    }
    impl Ctx<'_> {
        /// The datapath type for `v`: its IR type, or the proven-narrower
        /// width under `narrow_widths`. Sound for recomputation of
        /// low-bit-determined operations (add/sub/mul/logic/shl/not/neg:
        /// result bits below `w` depend only on operand bits below `w`);
        /// any width-sensitive wrap forces the analysis range up to the
        /// full type width, which disables narrowing for that value.
        fn vty(&self, v: Value) -> IntType {
            let ty = self.f.inst(v).ty;
            match self.widths {
                Some(wa) => {
                    let w = wa.needed_width(self.f, v).clamp(1, ty.width);
                    IntType::new(w, ty.signed)
                }
                None => ty,
            }
        }

        /// The datapath type for ops whose low result bits depend on
        /// operand *high* bits (right shift, division, remainder): the
        /// width must cover the operands as well as the result.
        fn vty_covering(&self, v: Value, a: Value, b: Value) -> IntType {
            let ty = self.f.inst(v).ty;
            match self.widths {
                Some(wa) => {
                    let w = wa
                        .needed_width(self.f, v)
                        .max(wa.needed_width(self.f, a))
                        .max(wa.needed_width(self.f, b))
                        .clamp(1, ty.width);
                    IntType::new(w, ty.signed)
                }
                None => ty,
            }
        }

        /// The Rv for using `v` from an op scheduled at `cycle`.
        fn rv_use(&self, v: Value, cycle: u32) -> Rv {
            let inst = self.f.inst(v);
            match &inst.kind {
                InstKind::Const(c) => Rv::konst(*c, inst.ty),
                InstKind::Param(p) => Rv {
                    kind: RvKind::Input(self.input_idx[p]),
                    ty: inst.ty,
                },
                _ => {
                    if self.cycle_of.get(&v) == Some(&cycle) {
                        // Chained: inline the producing expression.
                        self.rv_def(v, cycle)
                    } else {
                        Rv::reg(self.reg_of[&v], self.vty(v))
                    }
                }
            }
        }

        /// The Rv computing `v` itself (at its own cycle).
        fn rv_def(&self, v: Value, cycle: u32) -> Rv {
            let inst = self.f.inst(v);
            match &inst.kind {
                InstKind::Const(c) => Rv::konst(*c, inst.ty),
                InstKind::Param(p) => Rv {
                    kind: RvKind::Input(self.input_idx[p]),
                    ty: inst.ty,
                },
                InstKind::Bin(op, a, b) => Rv {
                    kind: RvKind::Bin(
                        *op,
                        Box::new(self.rv_use(*a, cycle)),
                        Box::new(self.rv_use(*b, cycle)),
                    ),
                    ty: if op.is_comparison() {
                        IntType::new(1, false)
                    } else if matches!(
                        op,
                        chls_ir::BinKind::Shr | chls_ir::BinKind::Div | chls_ir::BinKind::Rem
                    ) {
                        self.vty_covering(v, *a, *b)
                    } else {
                        self.vty(v)
                    },
                },
                InstKind::Un(op, a) => Rv {
                    kind: RvKind::Un(*op, Box::new(self.rv_use(*a, cycle))),
                    ty: self.vty(v),
                },
                InstKind::Select { cond, t, f: fv } => Rv {
                    kind: RvKind::Mux(
                        Box::new(self.rv_use(*cond, cycle)),
                        Box::new(self.rv_use(*t, cycle)),
                        Box::new(self.rv_use(*fv, cycle)),
                    ),
                    ty: self.vty(v),
                },
                InstKind::Cast { val, .. } => Rv {
                    kind: RvKind::Cast(Box::new(self.rv_use(*val, cycle))),
                    ty: self.vty(v),
                },
                InstKind::Load { mem, addr } => Rv {
                    kind: RvKind::MemRead {
                        mem: chls_rtl::fsmd::MemId(mem.0),
                        addr: Box::new(self.rv_use(*addr, cycle)),
                    },
                    ty: inst.ty,
                },
                InstKind::Store { .. } | InstKind::Phi(_) => {
                    unreachable!("stores/phis are not expression defs")
                }
            }
        }
    }

    // Emit each block.
    for bi in 0..f.blocks.len() {
        if covered.contains(&(bi as u32)) {
            continue;
        }
        let b = chls_ir::BlockId(bi as u32);
        let (sched, vals) = &sched_of[bi];
        let states = &block_states[bi];
        // Value -> completion cycle (start + duration - 1).
        let mut cycle_of: HashMap<Value, u32> = HashMap::new();
        for (ni, &v) in vals.iter().enumerate() {
            cycle_of.insert(v, sched.cycle[ni] + sched.duration[ni] - 1);
        }
        let ctx = Ctx {
            f,
            reg_of: &reg_of,
            input_idx: &input_idx,
            cycle_of,
            widths: widths.as_ref(),
        };

        // Ops commit their registers at the end of their completion cycle.
        for (ni, &v) in vals.iter().enumerate() {
            let c = sched.cycle[ni] + sched.duration[ni] - 1;
            let st = states[c as usize];
            match &f.inst(v).kind {
                InstKind::Store { mem, addr, value } => {
                    out.state_mut(st).actions.push(Action::write(
                        chls_rtl::fsmd::MemId(mem.0),
                        ctx.rv_use(*addr, c),
                        ctx.rv_use(*value, c),
                    ));
                }
                _ => {
                    let rv = ctx.rv_def(v, c);
                    out.state_mut(st)
                        .actions
                        .push(Action::set(reg_of[&v], rv));
                }
            }
        }

        // Chain the sub-states.
        for w in states.windows(2) {
            out.state_mut(w[0]).next = NextState::Goto(w[1]);
        }
        let last = *states.last().expect("at least one state");

        // Phi updates for successors happen in our last state; the
        // simultaneous-commit semantics make parallel swaps safe.
        for succ in f.block(b).term.successors() {
            for &pv in &f.block(succ).insts {
                if let InstKind::Phi(args) = &f.inst(pv).kind {
                    for (pred, incoming) in args {
                        if *pred == b {
                            let last_cycle = (states.len() - 1) as u32;
                            let rv = ctx.rv_use(*incoming, last_cycle);
                            out.state_mut(last)
                                .actions
                                .push(Action::set(reg_of[&pv], rv));
                        }
                    }
                }
            }
        }

        // Terminator.
        let last_cycle = (states.len() - 1) as u32;
        match &f.block(b).term {
            Term::Jump(t) => {
                out.state_mut(last).next =
                    NextState::Goto(block_states[t.0 as usize][0]);
            }
            Term::Br { cond, then, els } => {
                let c = ctx.rv_use(*cond, last_cycle);
                out.state_mut(last).next = NextState::Branch {
                    cond: c,
                    then: block_states[then.0 as usize][0],
                    els: block_states[els.0 as usize][0],
                };
            }
            Term::Ret(v) => {
                if let (Some(rr), Some(v)) = (ret_reg, v) {
                    let rv = ctx.rv_use(*v, last_cycle);
                    out.state_mut(last).actions.push(Action::set(rr, rv));
                }
                out.state_mut(last).next = NextState::Goto(done_state);
            }
            Term::Unreachable => {
                out.state_mut(last).next = NextState::Goto(done_state);
            }
        }
    }

    out.ret = ret_reg.map(|rr| Rv::reg(rr, f.ret_ty.expect("ret reg implies type")));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chls_frontend::compile_to_hir;
    use chls_sim::fsmd_sim::simulate;
    use chls_sim::interp::ArgValue;
    use chls_sched::Resources;

    fn synth(src: &str, entry: &str, opts: &SynthOptions) -> Fsmd {
        let prog = compile_to_hir(src).expect("frontend ok");
        let d = C2Verilog.synthesize(&prog, entry, opts).expect("synthesis ok");
        match d {
            Design::Fsmd(f) => f,
            _ => panic!("c2v must produce an FSMD"),
        }
    }

    #[test]
    fn straight_line_single_state() {
        let f = synth(
            "int f(int a, int b) { return a + b; }",
            "f",
            &SynthOptions::default(),
        );
        let r = simulate(&f, &[ArgValue::Scalar(20), ArgValue::Scalar(22)], 100).unwrap();
        assert_eq!(r.ret, Some(42));
        // One compute state + done.
        assert_eq!(r.cycles, 2, "{:?}", f.states.len());
    }

    #[test]
    fn gcd_loops_until_done() {
        let f = synth(
            "int f(int a, int b) { while (b != 0) { int t = b; b = a % b; a = t; } return a; }",
            "f",
            &SynthOptions::default(),
        );
        let r = simulate(&f, &[ArgValue::Scalar(48), ArgValue::Scalar(36)], 10_000).unwrap();
        assert_eq!(r.ret, Some(12));
        assert!(r.cycles > 3 && r.cycles < 100, "cycles {}", r.cycles);
    }

    #[test]
    fn array_sum_with_memory_port_limit() {
        let f = synth(
            "int f(int a[8], int n) {
                int s = 0;
                for (int i = 0; i < n; i++) s += a[i];
                return s;
            }",
            "f",
            &SynthOptions::default(),
        );
        let r = simulate(
            &f,
            &[ArgValue::Array((1..=8).collect()), ArgValue::Scalar(8)],
            10_000,
        )
        .unwrap();
        assert_eq!(r.ret, Some(36));
        // Single memory port is never exceeded.
        for (reads, writes) in f.mem_port_usage() {
            assert!(reads <= 1 && writes <= 1, "ports {reads}/{writes}");
        }
    }

    #[test]
    fn stores_write_back() {
        let f = synth(
            "void f(int a[4]) { for (int i = 0; i < 4; i++) a[i] = i * i; }",
            "f",
            &SynthOptions::default(),
        );
        let r = simulate(&f, &[ArgValue::Array(vec![0; 4])], 10_000).unwrap();
        assert_eq!(r.mems[0], vec![0, 1, 4, 9]);
    }

    #[test]
    fn longer_period_means_fewer_cycles() {
        // Chained adds fit one cycle at a long period, several at a short.
        let src = "int f(int a) {
            int x = a + 1;
            x = x + 2;
            x = x + 3;
            x = x + 4;
            return x;
        }";
        let slow_clock = SynthOptions {
            clock_period_ns: 4.0,
            resources: Resources::unlimited(),
            ..Default::default()
        };
        let fast_clock = SynthOptions {
            clock_period_ns: 0.4,
            resources: Resources::unlimited(),
            ..Default::default()
        };
        let f_slow = synth(src, "f", &slow_clock);
        let f_fast = synth(src, "f", &fast_clock);
        let r_slow = simulate(&f_slow, &[ArgValue::Scalar(0)], 100).unwrap();
        let r_fast = simulate(&f_fast, &[ArgValue::Scalar(0)], 100).unwrap();
        assert_eq!(r_slow.ret, Some(10));
        assert_eq!(r_fast.ret, Some(10));
        assert!(
            r_fast.cycles > r_slow.cycles,
            "fast {} vs slow {}",
            r_fast.cycles,
            r_slow.cycles
        );
        // And the fast clock's critical path is shorter.
        let m = chls_rtl::CostModel::new();
        assert!(f_fast.critical_path(&m) < f_slow.critical_path(&m) + 1e-9);
    }

    #[test]
    fn multiplier_limit_serializes() {
        let src = "int f(int a, int b, int c, int d) { return a * b + c * d; }";
        let one_mul = SynthOptions {
            resources: {
                let mut r = Resources::unlimited();
                r.units.insert(chls_rtl::OpClass::Mul, 1);
                r
            },
            ..Default::default()
        };
        let many_mul = SynthOptions {
            resources: Resources::unlimited(),
            ..Default::default()
        };
        let f1 = synth(src, "f", &one_mul);
        let f2 = synth(src, "f", &many_mul);
        let args = [
            ArgValue::Scalar(2),
            ArgValue::Scalar(3),
            ArgValue::Scalar(4),
            ArgValue::Scalar(5),
        ];
        let r1 = simulate(&f1, &args, 100).unwrap();
        let r2 = simulate(&f2, &args, 100).unwrap();
        assert_eq!(r1.ret, Some(26));
        assert_eq!(r2.ret, Some(26));
        assert!(r1.cycles > r2.cycles, "{} vs {}", r1.cycles, r2.cycles);
    }

    #[test]
    fn pointer_heavy_program_via_monolithic_memory() {
        let f = synth(
            "int f(bool pick) {
                int x = 10;
                int y = 20;
                int *p = pick ? &x : &y;
                *p = *p + 1;
                return x * 100 + y;
            }",
            "f",
            &SynthOptions::default(),
        );
        let r = simulate(&f, &[ArgValue::Scalar(1)], 1000).unwrap();
        assert_eq!(r.ret, Some(1120));
        let r = simulate(&f, &[ArgValue::Scalar(0)], 1000).unwrap();
        assert_eq!(r.ret, Some(1021));
    }

    #[test]
    fn emits_verilog() {
        let f = synth(
            "int f(int a) { return a * 3; }",
            "f",
            &SynthOptions::default(),
        );
        let v = chls_rtl::fsmd_to_verilog(&f);
        assert!(v.contains("module f"), "{v}");
        assert!(v.contains("case (state)"), "{v}");
    }
}
