//! The Handel-C backend.
//!
//! Celoxica's Handel-C "adds constructs for parallel statements and
//! OCCAM-like rendezvous communication. Each assignment statement runs in
//! one cycle." The timing rule is the whole language: assignments and
//! `delay` take exactly one cycle, control decisions are free
//! (combinational), `par` runs branches in lockstep, and channel
//! `send`/`recv` block until both sides are ready.
//!
//! Implementation: statements compile to a small control graph whose
//! *cycle nodes* (assignment, delay, send, recv) each cost one cycle and
//! whose decision nodes cost nothing. A breadth-first **product
//! construction** then turns (possibly nested) `par` compositions into a
//! single FSMD: a state is a tuple of branch positions; blocked
//! channel ends stall their branch; a rendezvous transfers the value in
//! the cycle both ends are ready. Branch decisions for the *next* cycle
//! are evaluated over post-commit values (registers written this cycle
//! are substituted by their new expressions), matching Handel-C's
//! "condition checked after the assignment" semantics.
//!
//! Two bookkeeping cycles are added per run: an entry state latching the
//! scalar parameters into registers (Handel-C variables are mutable) and
//! the final `Done` state.

use crate::common::*;
use chls_frontend::ast::{BinOp, UnOp};
use chls_frontend::hir::*;
use chls_frontend::{IntType, Type};
use chls_ir::{BinKind, UnKind};
use chls_rtl::fsmd::{
    Action, BlockedOp, ChanDir, Fsmd, FsmdMem, MemId, NextState, RegId, Rv, RvKind, StateId,
    StuckState,
};
use std::collections::HashMap;

/// The Handel-C backend.
#[derive(Debug, Clone, Copy, Default)]
pub struct HandelC;

impl Backend for HandelC {
    fn info(&self) -> BackendInfo {
        BackendInfo {
            name: "handelc",
            models: "Handel-C (Celoxica)",
            year: 2003,
            comment: "C with CSP",
            concurrency: ConcurrencyModel::Explicit,
            timing: TimingModel::RulePerAssignment,
            pointers: true,
            data_dependent_loops: true,
            parallel_constructs: true,
        }
    }

    fn synthesize(
        &self,
        prog: &HirProgram,
        entry: &str,
        opts: &SynthOptions,
    ) -> Result<Design, SynthError> {
        let prepared = prepare_structured_opts(prog, entry, opts.unroll_factor)?;
        let fsmd = Compile::new(&prepared)?.run()?;
        Ok(Design::Fsmd(fsmd))
    }
}

fn u1() -> IntType {
    IntType::new(1, false)
}

fn scalar_ty(ty: &Type) -> IntType {
    match ty {
        Type::Bool => u1(),
        Type::Int(it) => *it,
        _ => IntType::new(32, true),
    }
}

/// End-of-program marker.
const END: usize = usize::MAX;

/// A write destination.
#[derive(Debug, Clone, PartialEq)]
enum Dst {
    Reg(RegId),
    Mem(MemId, Rv),
}

/// Control-graph nodes. Cycle nodes cost one cycle; `Decision` is free.
#[derive(Debug, Clone, PartialEq)]
enum HcNode {
    /// One cycle: commit all actions simultaneously.
    Step { actions: Vec<(Dst, Rv)>, next: usize },
    /// One idle cycle.
    Delay { next: usize },
    /// Blocking send.
    Send { chan: u32, value: Rv, next: usize },
    /// Blocking receive.
    Recv { chan: u32, dst: Dst, next: usize },
    /// Free branch.
    Decision { cond: Rv, then: usize, els: usize },
    /// Parallel composition; each branch entry, then continue at `next`.
    Par { branches: Vec<usize>, next: usize },
}

/// A product-machine configuration.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum Cfg {
    Leaf(usize),
    Par { branches: Vec<Cfg>, next: usize },
}

struct Compile<'p> {
    func: &'p HirFunc,
    nodes: Vec<HcNode>,
    fsmd: Fsmd,
    reg_of: HashMap<LocalId, RegId>,
    mem_of: HashMap<LocalId, MemId>,
    global_mem: HashMap<GlobalId, MemId>,
    chan_of: HashMap<LocalId, u32>,
    ret_reg: Option<RegId>,
    /// (continue target, break target) per enclosing loop.
    loop_stack: Vec<(usize, usize)>,
}

impl<'p> Compile<'p> {
    fn new(prog: &'p HirProgram) -> Result<Self, SynthError> {
        let func = &prog.funcs[0];
        let mut fsmd = Fsmd::new(func.name.clone());
        let mut reg_of = HashMap::new();
        let mut mem_of = HashMap::new();
        let mut chan_of = HashMap::new();
        let mut chan_count = 0u32;
        for (i, local) in func.locals.iter().enumerate() {
            let id = LocalId(i as u32);
            match &local.ty {
                Type::Bool | Type::Int(_) => {
                    let r = fsmd.add_reg(
                        format!("{}_{i}", local.name.replace('$', "t")),
                        scalar_ty(&local.ty),
                        0,
                    );
                    reg_of.insert(id, r);
                }
                Type::Array(elem, n) => {
                    let m = fsmd.add_mem(FsmdMem {
                        name: local.name.clone(),
                        elem: scalar_ty(elem),
                        len: *n,
                        rom: local.rom.clone(),
                        param_index: if local.is_param { Some(i) } else { None },
                    });
                    mem_of.insert(id, m);
                }
                Type::Chan(_) => {
                    chan_of.insert(id, chan_count);
                    chan_count += 1;
                }
                Type::Ptr(_) => {
                    return Err(SynthError::Transform(
                        "pointer survived lowering".to_string(),
                    ));
                }
                Type::Void => {}
            }
        }
        // Globals become ROMs on demand.
        let mut global_mem = HashMap::new();
        for (gi, g) in prog.globals.iter().enumerate() {
            if let Type::Array(elem, _) = &g.ty {
                let m = fsmd.add_mem(FsmdMem {
                    name: g.name.clone(),
                    elem: scalar_ty(elem),
                    len: g.values.len(),
                    rom: Some(g.values.clone()),
                    param_index: None,
                });
                global_mem.insert(GlobalId(gi as u32), m);
            }
        }
        let ret_reg = match &func.ret_ty {
            Type::Void => None,
            other => Some(fsmd.add_reg("ret_value", scalar_ty(other), 0)),
        };
        Ok(Compile {
            func,
            nodes: Vec::new(),
            fsmd,
            reg_of,
            mem_of,
            global_mem,
            chan_of,
            ret_reg,
            loop_stack: Vec::new(),
        })
    }

    // ---- expression compilation ----

    fn rv(&self, e: &HirExpr) -> Result<Rv, SynthError> {
        let ty = scalar_ty(&e.ty);
        Ok(match &e.kind {
            HirExprKind::Const(v) => Rv::konst(*v, ty),
            HirExprKind::Load(place) => self.load_place(place, ty)?,
            HirExprKind::Unary(op, a) => {
                let ar = self.rv(a)?;
                match op {
                    UnOp::Neg => Rv {
                        kind: RvKind::Un(UnKind::Neg, Box::new(ar)),
                        ty,
                    },
                    UnOp::Not => Rv {
                        kind: RvKind::Un(UnKind::Not, Box::new(ar)),
                        ty,
                    },
                    UnOp::LogNot => Rv {
                        kind: RvKind::Bin(
                            BinKind::Eq,
                            Box::new(ar),
                            Box::new(Rv::konst(0, u1())),
                        ),
                        ty: u1(),
                    },
                }
            }
            HirExprKind::Binary(op, a, b) => {
                let (ar, br) = (self.rv(a)?, self.rv(b)?);
                let kind = hir_bin(*op);
                Rv {
                    kind: RvKind::Bin(kind, Box::new(ar), Box::new(br)),
                    ty: if kind.is_comparison() { u1() } else { ty },
                }
            }
            HirExprKind::Select(c, t, f) => Rv {
                kind: RvKind::Mux(
                    Box::new(self.rv(c)?),
                    Box::new(self.rv(t)?),
                    Box::new(self.rv(f)?),
                ),
                ty,
            },
            HirExprKind::Cast(a) => Rv {
                kind: RvKind::Cast(Box::new(self.rv(a)?)),
                ty,
            },
            HirExprKind::AddrOf(_) => {
                return Err(SynthError::Transform("address-of survived".to_string()));
            }
        })
    }

    fn load_place(&self, place: &HirPlace, ty: IntType) -> Result<Rv, SynthError> {
        Ok(match place {
            HirPlace::Local(id) => Rv::reg(self.reg_of[id], ty),
            HirPlace::Index { base, index } => {
                let mem = self.place_mem(base)?;
                Rv {
                    kind: RvKind::MemRead {
                        mem,
                        addr: Box::new(self.rv(index)?),
                    },
                    ty,
                }
            }
            HirPlace::Global(_) | HirPlace::Deref(_) => {
                return Err(SynthError::Transform("bad place".to_string()));
            }
        })
    }

    fn place_mem(&self, place: &HirPlace) -> Result<MemId, SynthError> {
        match place {
            HirPlace::Local(id) => self.mem_of.get(id).copied().ok_or_else(|| {
                SynthError::Transform("indexing a scalar".to_string())
            }),
            HirPlace::Global(g) => self.global_mem.get(g).copied().ok_or_else(|| {
                SynthError::Transform("unknown global".to_string())
            }),
            _ => Err(SynthError::Transform("bad memory place".to_string())),
        }
    }

    fn dst(&self, place: &HirPlace) -> Result<Dst, SynthError> {
        Ok(match place {
            HirPlace::Local(id) => Dst::Reg(self.reg_of[id]),
            HirPlace::Index { base, index } => {
                Dst::Mem(self.place_mem(base)?, self.rv(index)?)
            }
            _ => return Err(SynthError::Transform("bad destination".to_string())),
        })
    }

    // ---- statement graph ----

    fn add(&mut self, n: HcNode) -> usize {
        self.nodes.push(n);
        self.nodes.len() - 1
    }

    /// Compiles a block with continuation `next`, returning its entry.
    fn block(&mut self, b: &HirBlock, next: usize) -> Result<usize, SynthError> {
        let mut entry = next;
        for stmt in b.stmts.iter().rev() {
            entry = self.stmt(stmt, entry)?;
        }
        Ok(entry)
    }

    fn stmt(&mut self, s: &HirStmt, next: usize) -> Result<usize, SynthError> {
        match s {
            HirStmt::Assign { place, value, .. } => {
                let d = self.dst(place)?;
                let v = self.rv(value)?;
                Ok(self.add(HcNode::Step {
                    actions: vec![(d, v)],
                    next,
                }))
            }
            HirStmt::Delay => Ok(self.add(HcNode::Delay { next })),
            HirStmt::Send { chan, value, .. } => {
                let v = self.rv(value)?;
                Ok(self.add(HcNode::Send {
                    chan: self.chan_of[chan],
                    value: v,
                    next,
                }))
            }
            HirStmt::Recv { dst, chan, .. } => {
                let d = self.dst(dst)?;
                Ok(self.add(HcNode::Recv {
                    chan: self.chan_of[chan],
                    dst: d,
                    next,
                }))
            }
            HirStmt::If { cond, then, els } => {
                let c = self.rv(cond)?;
                let t = self.block(then, next)?;
                let e = self.block(els, next)?;
                Ok(self.add(HcNode::Decision {
                    cond: c,
                    then: t,
                    els: e,
                }))
            }
            HirStmt::While { cond, body, .. } => {
                let c = self.rv(cond)?;
                // Placeholder decision; patch after compiling the body.
                let dec = self.add(HcNode::Decision {
                    cond: c,
                    then: 0,
                    els: next,
                });
                self.loop_stack.push((dec, next));
                let body_entry = self.block(body, dec)?;
                self.loop_stack.pop();
                if let HcNode::Decision { then, .. } = &mut self.nodes[dec] {
                    *then = body_entry;
                }
                Ok(dec)
            }
            HirStmt::DoWhile { body, cond } => {
                let c = self.rv(cond)?;
                let dec = self.add(HcNode::Decision {
                    cond: c,
                    then: 0,
                    els: next,
                });
                self.loop_stack.push((dec, next));
                let body_entry = self.block(body, dec)?;
                self.loop_stack.pop();
                if let HcNode::Decision { then, .. } = &mut self.nodes[dec] {
                    *then = body_entry;
                }
                Ok(body_entry)
            }
            HirStmt::For {
                init,
                cond,
                step,
                body,
                ..
            } => {
                let c = self.rv(cond)?;
                let dec = self.add(HcNode::Decision {
                    cond: c,
                    then: 0,
                    els: next,
                });
                let step_entry = self.block(step, dec)?;
                self.loop_stack.push((step_entry, next));
                let body_entry = self.block(body, step_entry)?;
                self.loop_stack.pop();
                if let HcNode::Decision { then, .. } = &mut self.nodes[dec] {
                    *then = body_entry;
                }
                self.block(init, dec)
            }
            HirStmt::Return(v) => {
                match (v, self.ret_reg) {
                    (Some(e), Some(rr)) => {
                        let rv = self.rv(e)?;
                        Ok(self.add(HcNode::Step {
                            actions: vec![(Dst::Reg(rr), rv)],
                            next: END,
                        }))
                    }
                    // A bare return still consumes its cycle.
                    _ => Ok(self.add(HcNode::Delay { next: END })),
                }
            }
            // Control transfers are free: redirect the continuation.
            HirStmt::Break => Ok(self
                .loop_stack
                .last()
                .map(|&(_, brk)| brk)
                .ok_or_else(|| SynthError::Transform("break outside loop".to_string()))?),
            HirStmt::Continue => Ok(self
                .loop_stack
                .last()
                .map(|&(cont, _)| cont)
                .ok_or_else(|| SynthError::Transform("continue outside loop".to_string()))?),
            HirStmt::Block(b) | HirStmt::Constraint { body: b, .. } => self.block(b, next),
            HirStmt::Par(branches) => {
                let entries: Result<Vec<usize>, _> =
                    branches.iter().map(|b| self.block(b, END)).collect();
                Ok(self.add(HcNode::Par {
                    branches: entries?,
                    next,
                }))
            }
            HirStmt::Call { .. } => Err(SynthError::Transform(
                "call survived inlining".to_string(),
            )),
        }
    }

    // ---- product construction ----

    fn run(mut self) -> Result<Fsmd, SynthError> {
        let entry_node = self.block(&self.func.body.clone(), END)?;

        // Entry state: latch scalar parameters.
        let entry_state = self.fsmd.add_state();
        self.fsmd.entry = entry_state;
        let mut param_actions = Vec::new();
        for (i, local) in self.func.locals.iter().enumerate() {
            if local.is_param && local.ty.is_scalar() {
                let idx =
                    self.fsmd
                        .add_input(format!("arg{i}"), scalar_ty(&local.ty), i);
                param_actions.push(Action::set(
                    self.reg_of[&LocalId(i as u32)],
                    Rv {
                        kind: RvKind::Input(idx),
                        ty: scalar_ty(&local.ty),
                    },
                ));
            }
        }
        // The first decisions (evaluated while leaving the entry state)
        // must see the latched parameter values.
        let mut entry_subst = Subst::default();
        for a in &param_actions {
            if let chls_rtl::fsmd::ActionKind::SetReg(r, rv) = &a.kind {
                entry_subst.regs.insert(*r, rv.clone());
            }
        }
        self.fsmd.state_mut(entry_state).actions = param_actions;

        let done_state = self.fsmd.add_state();
        self.fsmd.state_mut(done_state).next = NextState::Done;

        // BFS over configurations.
        let mut state_of: HashMap<Cfg, StateId> = HashMap::new();
        let mut worklist: Vec<Cfg> = Vec::new();
        let get_state = |cfg: &Cfg,
                             fsmd: &mut Fsmd,
                             state_of: &mut HashMap<Cfg, StateId>,
                             worklist: &mut Vec<Cfg>|
         -> StateId {
            if *cfg == Cfg::Leaf(END) {
                return done_state;
            }
            if let Some(&s) = state_of.get(cfg) {
                return s;
            }
            let s = fsmd.add_state();
            state_of.insert(cfg.clone(), s);
            worklist.push(cfg.clone());
            s
        };

        // Initial advance from the entry node over post-latch values.
        let initial = self.advance(entry_node, &entry_subst, &mut Vec::new())?;
        let init_cases: Vec<(Rv, StateId)> = initial
            .iter()
            .map(|(cond, cfg)| {
                let st = get_state(cfg, &mut self.fsmd, &mut state_of, &mut worklist);
                (cond.clone().unwrap_or_else(|| Rv::konst(1, u1())), st)
            })
            .collect();
        self.fsmd.state_mut(entry_state).next = cases_to_next(init_cases, done_state);

        let mut guard = 0usize;
        while let Some(cfg) = worklist.pop() {
            guard += 1;
            if guard > 16_384 {
                return Err(SynthError::Transform(
                    "handelc product machine exceeds 16384 states".to_string(),
                ));
            }
            let state = state_of[&cfg];
            // 1. Leaves and channel matching.
            let mut leaves: Vec<usize> = Vec::new();
            collect_leaves(&cfg, &mut leaves);
            let mut senders: HashMap<u32, Vec<usize>> = HashMap::new();
            let mut receivers: HashMap<u32, Vec<usize>> = HashMap::new();
            for &l in &leaves {
                if l == END {
                    continue;
                }
                match &self.nodes[l] {
                    HcNode::Send { chan, .. } => senders.entry(*chan).or_default().push(l),
                    HcNode::Recv { chan, .. } => receivers.entry(*chan).or_default().push(l),
                    _ => {}
                }
            }
            let mut matched: HashMap<usize, usize> = HashMap::new(); // recv node -> send node
            let mut active_comm: Vec<usize> = Vec::new();
            for (ch, ss) in &senders {
                if let Some(rs) = receivers.get(ch) {
                    for (s, r) in ss.iter().zip(rs.iter()) {
                        matched.insert(*r, *s);
                        active_comm.push(*s);
                        active_comm.push(*r);
                    }
                }
            }

            // 2. Actions and the substitution map for next-cycle decisions.
            let mut actions: Vec<Action> = Vec::new();
            let mut subst = Subst::default();
            let mut leaf_active: HashMap<usize, bool> = HashMap::new();
            for &l in &leaves {
                if l == END {
                    continue;
                }
                match &self.nodes[l] {
                    HcNode::Step { actions: acts, .. } => {
                        for (d, v) in acts {
                            push_action(&mut actions, &mut subst, d.clone(), v.clone());
                        }
                        leaf_active.insert(l, true);
                    }
                    HcNode::Delay { .. } => {
                        leaf_active.insert(l, true);
                    }
                    HcNode::Send { .. } => {
                        leaf_active.insert(l, active_comm.contains(&l));
                    }
                    HcNode::Recv { chan: _, dst, .. } => {
                        let active = matched.contains_key(&l);
                        if active {
                            let sender = matched[&l];
                            let HcNode::Send { value, .. } = &self.nodes[sender] else {
                                unreachable!("matched sender is a send");
                            };
                            push_action(&mut actions, &mut subst, dst.clone(), value.clone());
                        }
                        leaf_active.insert(l, active);
                    }
                    HcNode::Decision { .. } | HcNode::Par { .. } => {
                        unreachable!("configurations rest at cycle nodes only")
                    }
                }
            }
            self.fsmd.state_mut(state).actions = actions;

            // 2b. A configuration in which every live process sits on an
            // unmatched rendezvous can never advance — no assignment or
            // delay will ever fire again. Record it so the simulators
            // report a first-class deadlock instead of spinning here
            // until the cycle limit.
            let live: Vec<usize> = leaves.iter().copied().filter(|&l| l != END).collect();
            if !live.is_empty()
                && live.iter().all(|l| !leaf_active.get(l).copied().unwrap_or(false))
            {
                let mut blocked = Vec::new();
                self.collect_blocked(&cfg, &mut Vec::new(), &mut blocked);
                self.fsmd.stuck.push(StuckState { state, blocked });
            }

            // 3. Successor configurations.
            let options = self.cfg_step(&cfg, &subst, &leaf_active)?;
            let cases: Vec<(Rv, StateId)> = options
                .iter()
                .map(|(cond, next_cfg)| {
                    let st = get_state(next_cfg, &mut self.fsmd, &mut state_of, &mut worklist);
                    (cond.clone().unwrap_or_else(|| Rv::konst(1, u1())), st)
                })
                .collect();
            self.fsmd.state_mut(state).next = cases_to_next(cases, done_state);
        }

        self.fsmd.ret = self
            .ret_reg
            .map(|rr| Rv::reg(rr, scalar_ty(&self.func.ret_ty)));
        Ok(self.fsmd)
    }

    /// Names every blocked channel endpoint in a stuck configuration,
    /// labelling each process by its position in the `par` nest
    /// (`arm 0`, `arm 1.2`, or `main` outside any `par`).
    fn collect_blocked(&self, cfg: &Cfg, path: &mut Vec<usize>, out: &mut Vec<BlockedOp>) {
        match cfg {
            Cfg::Leaf(END) => {}
            Cfg::Leaf(n) => {
                let (chan, dir) = match &self.nodes[*n] {
                    HcNode::Send { chan, .. } => (*chan, ChanDir::Send),
                    HcNode::Recv { chan, .. } => (*chan, ChanDir::Recv),
                    _ => return,
                };
                let process = if path.is_empty() {
                    "main".to_string()
                } else {
                    let ix: Vec<String> = path.iter().map(ToString::to_string).collect();
                    format!("arm {}", ix.join("."))
                };
                out.push(BlockedOp {
                    process,
                    channel: self.chan_name(chan),
                    dir,
                });
            }
            Cfg::Par { branches, .. } => {
                for (i, b) in branches.iter().enumerate() {
                    path.push(i);
                    self.collect_blocked(b, path, out);
                    path.pop();
                }
            }
        }
    }

    /// The source name of channel `chan` (reverse of `chan_of`).
    fn chan_name(&self, chan: u32) -> String {
        self.chan_of
            .iter()
            .find(|(_, c)| **c == chan)
            .map_or_else(
                || format!("chan{chan}"),
                |(l, _)| self.func.local(*l).name.clone(),
            )
    }

    /// Successor options of one configuration: stalled leaves stay, active
    /// leaves advance through decision nodes with path conditions.
    fn cfg_step(
        &self,
        cfg: &Cfg,
        subst: &Subst,
        leaf_active: &HashMap<usize, bool>,
    ) -> Result<Vec<(Option<Rv>, Cfg)>, SynthError> {
        match cfg {
            Cfg::Leaf(END) => Ok(vec![(None, Cfg::Leaf(END))]),
            Cfg::Leaf(node) => {
                if !leaf_active.get(node).copied().unwrap_or(false) {
                    return Ok(vec![(None, Cfg::Leaf(*node))]);
                }
                let next = match &self.nodes[*node] {
                    HcNode::Step { next, .. }
                    | HcNode::Delay { next }
                    | HcNode::Send { next, .. }
                    | HcNode::Recv { next, .. } => *next,
                    _ => unreachable!("cycle node"),
                };
                self.advance(next, subst, &mut Vec::new())
            }
            Cfg::Par { branches, next } => {
                // Cross product of branch options.
                let mut combos: Vec<(Option<Rv>, Vec<Cfg>)> = vec![(None, Vec::new())];
                for b in branches {
                    let opts = self.cfg_step(b, subst, leaf_active)?;
                    let mut new_combos = Vec::new();
                    for (c0, partial) in &combos {
                        for (c1, sub) in &opts {
                            let mut p = partial.clone();
                            p.push(sub.clone());
                            new_combos.push((and_opt(c0.clone(), c1.clone()), p));
                        }
                    }
                    combos = new_combos;
                }
                let mut out = Vec::new();
                for (cond, branch_cfgs) in combos {
                    if branch_cfgs.iter().all(|c| *c == Cfg::Leaf(END)) {
                        // Join: continue after the par in the same step.
                        for (c2, cont) in self.advance(*next, subst, &mut Vec::new())? {
                            out.push((and_opt(cond.clone(), c2), cont));
                        }
                    } else {
                        out.push((
                            cond,
                            Cfg::Par {
                                branches: branch_cfgs,
                                next: *next,
                            },
                        ));
                    }
                }
                Ok(out)
            }
        }
    }

    /// Walks decision/par nodes from `node` until cycle nodes, collecting
    /// path conditions (over post-commit values via `subst`).
    fn advance(
        &self,
        node: usize,
        subst: &Subst,
        visiting: &mut Vec<usize>,
    ) -> Result<Vec<(Option<Rv>, Cfg)>, SynthError> {
        if node == END {
            return Ok(vec![(None, Cfg::Leaf(END))]);
        }
        if visiting.contains(&node) {
            return Err(SynthError::Loop(
                "zero-cycle loop: a loop body with no assignment or delay".to_string(),
            ));
        }
        match &self.nodes[node] {
            HcNode::Decision { cond, then, els } => {
                visiting.push(node);
                let c = subst.apply(cond);
                let not_c = Rv {
                    kind: RvKind::Bin(
                        BinKind::Eq,
                        Box::new(c.clone()),
                        Box::new(Rv::konst(0, u1())),
                    ),
                    ty: u1(),
                };
                let mut out = Vec::new();
                for (gate, target) in [(c, *then), (not_c, *els)] {
                    for (c2, cfg) in self.advance(target, subst, visiting)? {
                        out.push((and_opt(Some(gate.clone()), c2), cfg));
                    }
                }
                visiting.pop();
                Ok(out)
            }
            HcNode::Par { branches, next } => {
                visiting.push(node);
                let mut combos: Vec<(Option<Rv>, Vec<Cfg>)> = vec![(None, Vec::new())];
                for &b in branches {
                    let opts = self.advance(b, subst, visiting)?;
                    let mut new_combos = Vec::new();
                    for (c0, partial) in &combos {
                        for (c1, sub) in &opts {
                            let mut p = partial.clone();
                            p.push(sub.clone());
                            new_combos.push((and_opt(c0.clone(), c1.clone()), p));
                        }
                    }
                    combos = new_combos;
                }
                let mut out = Vec::new();
                for (cond, branch_cfgs) in combos {
                    if branch_cfgs.iter().all(|c| *c == Cfg::Leaf(END)) {
                        for (c2, cont) in self.advance(*next, subst, visiting)? {
                            out.push((and_opt(cond.clone(), c2), cont));
                        }
                    } else {
                        out.push((
                            cond,
                            Cfg::Par {
                                branches: branch_cfgs,
                                next: *next,
                            },
                        ));
                    }
                }
                visiting.pop();
                Ok(out)
            }
            _ => Ok(vec![(None, Cfg::Leaf(node))]),
        }
    }
}

/// Substitution of this-cycle register writes into next-cycle decisions.
#[derive(Default)]
struct Subst {
    regs: HashMap<RegId, Rv>,
    /// (mem, addr, value) writes this cycle, for load forwarding.
    mem_writes: Vec<(MemId, Rv, Rv)>,
}

impl Subst {
    fn apply(&self, rv: &Rv) -> Rv {
        let kind = match &rv.kind {
            RvKind::Reg(r) => {
                if let Some(repl) = self.regs.get(r) {
                    return repl.clone();
                }
                RvKind::Reg(*r)
            }
            RvKind::Const(c) => RvKind::Const(*c),
            RvKind::Input(i) => RvKind::Input(*i),
            RvKind::Un(op, a) => RvKind::Un(*op, Box::new(self.apply(a))),
            RvKind::Bin(op, a, b) => {
                RvKind::Bin(*op, Box::new(self.apply(a)), Box::new(self.apply(b)))
            }
            RvKind::Mux(s, a, b) => RvKind::Mux(
                Box::new(self.apply(s)),
                Box::new(self.apply(a)),
                Box::new(self.apply(b)),
            ),
            RvKind::Cast(a) => RvKind::Cast(Box::new(self.apply(a))),
            RvKind::MemRead { mem, addr } => {
                let a = self.apply(addr);
                // Forward same-cycle stores.
                let mut out = Rv {
                    kind: RvKind::MemRead {
                        mem: *mem,
                        addr: Box::new(a.clone()),
                    },
                    ty: rv.ty,
                };
                for (m, wa, wv) in &self.mem_writes {
                    if m == mem {
                        let hit = Rv {
                            kind: RvKind::Bin(
                                BinKind::Eq,
                                Box::new(wa.clone()),
                                Box::new(a.clone()),
                            ),
                            ty: u1(),
                        };
                        out = Rv {
                            kind: RvKind::Mux(Box::new(hit), Box::new(wv.clone()), Box::new(out)),
                            ty: rv.ty,
                        };
                    }
                }
                return out;
            }
        };
        Rv { kind, ty: rv.ty }
    }
}

fn push_action(actions: &mut Vec<Action>, subst: &mut Subst, d: Dst, v: Rv) {
    match d {
        Dst::Reg(r) => {
            actions.push(Action::set(r, v.clone()));
            subst.regs.insert(r, v);
        }
        Dst::Mem(m, addr) => {
            actions.push(Action::write(m, addr.clone(), v.clone()));
            subst.mem_writes.push((m, addr, v));
        }
    }
}

/// Lazy conjunction: `a ? b : 0`. Built as a mux so the simulator (and
/// synthesized priority logic) never evaluates `b`'s memory reads when
/// `a` is false — path conditions may contain speculative loads whose
/// addresses are only valid on the path.
fn and_opt(a: Option<Rv>, b: Option<Rv>) -> Option<Rv> {
    match (a, b) {
        (None, x) | (x, None) => x,
        (Some(x), Some(y)) => Some(Rv {
            kind: RvKind::Mux(Box::new(x), Box::new(y), Box::new(Rv::konst(0, u1()))),
            ty: u1(),
        }),
    }
}

fn cases_to_next(cases: Vec<(Rv, StateId)>, fallback: StateId) -> NextState {
    match cases.len() {
        0 => NextState::Goto(fallback),
        1 => NextState::Goto(cases[0].1),
        _ => {
            let default = cases.last().expect("nonempty").1;
            NextState::Cases {
                cases: cases[..cases.len() - 1].to_vec(),
                default,
            }
        }
    }
}

fn collect_leaves(cfg: &Cfg, out: &mut Vec<usize>) {
    match cfg {
        Cfg::Leaf(n) => out.push(*n),
        Cfg::Par { branches, .. } => {
            for b in branches {
                collect_leaves(b, out);
            }
        }
    }
}

fn hir_bin(op: BinOp) -> BinKind {
    match op {
        BinOp::Add => BinKind::Add,
        BinOp::Sub => BinKind::Sub,
        BinOp::Mul => BinKind::Mul,
        BinOp::Div => BinKind::Div,
        BinOp::Rem => BinKind::Rem,
        BinOp::Shl => BinKind::Shl,
        BinOp::Shr => BinKind::Shr,
        BinOp::BitAnd => BinKind::And,
        BinOp::BitOr => BinKind::Or,
        BinOp::BitXor => BinKind::Xor,
        BinOp::Eq => BinKind::Eq,
        BinOp::Ne => BinKind::Ne,
        BinOp::Lt => BinKind::Lt,
        BinOp::Le => BinKind::Le,
        BinOp::Gt => BinKind::Gt,
        BinOp::Ge => BinKind::Ge,
        BinOp::LogAnd | BinOp::LogOr => unreachable!("desugared"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chls_frontend::compile_to_hir;
    use chls_sim::fsmd_sim::simulate;
    use chls_sim::interp::ArgValue;

    fn synth(src: &str, entry: &str) -> Fsmd {
        let prog = compile_to_hir(src).expect("frontend ok");
        let d = HandelC
            .synthesize(&prog, entry, &SynthOptions::default())
            .expect("synthesis ok");
        match d {
            Design::Fsmd(f) => f,
            _ => panic!("handelc must produce an FSMD"),
        }
    }

    #[test]
    fn one_cycle_per_assignment() {
        // Three sequential assignments: 3 cycles + entry + done = 5.
        let f = synth(
            "int f(int a) { int x = a; x = x + 1; x = x * 2; return x; }",
            "f",
        );
        let r = simulate(&f, &[ArgValue::Scalar(5)], 100).unwrap();
        assert_eq!(r.ret, Some(12));
        // assignments: x=a, x=x+1, x=x*2, ret=x: 4 cycles + entry + done.
        assert_eq!(r.cycles, 6);
    }

    #[test]
    fn par_assignments_share_a_cycle() {
        let seq = synth(
            "int f(int a) { int x; int y; x = a + 1; y = a + 2; return x + y; }",
            "f",
        );
        let par = synth(
            "int f(int a) {
                int x;
                int y;
                par { x = a + 1; y = a + 2; }
                return x + y;
            }",
            "f",
        );
        let rs = simulate(&seq, &[ArgValue::Scalar(10)], 100).unwrap();
        let rp = simulate(&par, &[ArgValue::Scalar(10)], 100).unwrap();
        assert_eq!(rs.ret, Some(23));
        assert_eq!(rp.ret, Some(23));
        assert_eq!(rs.cycles - rp.cycles, 1, "par saves exactly one cycle");
    }

    #[test]
    fn par_swap_is_simultaneous() {
        let f = synth(
            "int f() {
                int a = 3;
                int b = 5;
                par { a = b; b = a; }
                return a * 10 + b;
            }",
            "f",
        );
        let r = simulate(&f, &[], 100).unwrap();
        assert_eq!(r.ret, Some(53));
    }

    #[test]
    fn while_loop_condition_is_free() {
        // Body has one assignment: n iterations cost n cycles.
        let f = synth(
            "int f(int n) {
                int i = 0;
                while (i < n) { i = i + 1; }
                return i;
            }",
            "f",
        );
        let r5 = simulate(&f, &[ArgValue::Scalar(5)], 1000).unwrap();
        let r9 = simulate(&f, &[ArgValue::Scalar(9)], 1000).unwrap();
        assert_eq!(r5.ret, Some(5));
        assert_eq!(r9.ret, Some(9));
        assert_eq!(r9.cycles - r5.cycles, 4);
    }

    #[test]
    fn zero_cycle_loop_rejected() {
        let prog = compile_to_hir("void f() { while (true) { } }").unwrap();
        let err = HandelC
            .synthesize(&prog, "f", &SynthOptions::default())
            .unwrap_err();
        assert!(matches!(err, SynthError::Loop(_)), "{err}");
    }

    #[test]
    fn delay_consumes_cycles() {
        let f = synth("int f() { delay; delay; delay; return 1; }", "f");
        let r = simulate(&f, &[], 100).unwrap();
        assert_eq!(r.ret, Some(1));
        assert_eq!(r.cycles, 6); // entry + 3 delays + ret + done
    }

    #[test]
    fn rendezvous_transfers_value() {
        let f = synth(
            "int f() {
                chan<int> c;
                int got = 0;
                par {
                    send(c, 42);
                    got = recv(c);
                }
                return got;
            }",
            "f",
        );
        let r = simulate(&f, &[], 100).unwrap();
        assert_eq!(r.ret, Some(42));
    }

    #[test]
    fn sender_stalls_until_receiver_ready() {
        // The receiver spends 3 cycles before receiving; the sender must
        // wait at the send.
        let f = synth(
            "int f() {
                chan<int> c;
                int got = 0;
                int prep = 0;
                par {
                    send(c, 7);
                    { prep = 1; prep = 2; prep = 3; got = recv(c); }
                }
                return got * 10 + prep;
            }",
            "f",
        );
        let r = simulate(&f, &[], 100).unwrap();
        assert_eq!(r.ret, Some(73));
    }

    #[test]
    fn producer_consumer_pipeline() {
        let f = synth(
            "int f() {
                chan<int> c;
                int sum = 0;
                par {
                    { for (int i = 1; i <= 4; i++) send(c, i * i); }
                    { for (int j = 0; j < 4; j++) sum = sum + recv(c); }
                }
                return sum;
            }",
            "f",
        );
        let r = simulate(&f, &[], 1000).unwrap();
        assert_eq!(r.ret, Some(30));
    }

    #[test]
    fn arrays_and_loops() {
        let f = synth(
            "int f(int a[4]) {
                int s = 0;
                for (int i = 0; i < 4; i++) s = s + a[i];
                return s;
            }",
            "f",
        );
        let r = simulate(&f, &[ArgValue::Array(vec![1, 2, 3, 4])], 1000).unwrap();
        assert_eq!(r.ret, Some(10));
    }

    #[test]
    fn fused_assignments_save_cycles() {
        // The paper: "Handel-C may require assignment statements to be
        // fused" to meet timing (cycle counts).
        let naive = synth(
            "int f(int a, int b) {
                int t1 = a + b;
                int t2 = t1 * 2;
                int t3 = t2 - a;
                return t3;
            }",
            "f",
        );
        let fused = synth(
            "int f(int a, int b) { return (a + b) * 2 - a; }",
            "f",
        );
        let args = [ArgValue::Scalar(3), ArgValue::Scalar(4)];
        let rn = simulate(&naive, &args, 100).unwrap();
        let rf = simulate(&fused, &args, 100).unwrap();
        assert_eq!(rn.ret, Some(11));
        assert_eq!(rf.ret, Some(11));
        assert!(rf.cycles < rn.cycles, "fused {} naive {}", rf.cycles, rn.cycles);
        // ... at the cost of a longer critical path.
        let m = chls_rtl::CostModel::new();
        assert!(fused.critical_path(&m) >= naive.critical_path(&m));
    }

    #[test]
    fn parallel_loops_overlap() {
        let f = synth(
            "int f(int a[8], int b[8]) {
                int s1 = 0;
                int s2 = 0;
                par {
                    { for (int i = 0; i < 8; i++) s1 = s1 + a[i]; }
                    { for (int j = 0; j < 8; j++) s2 = s2 + b[j]; }
                }
                return s1 + s2;
            }",
            "f",
        );
        let seq = synth(
            "int f(int a[8], int b[8]) {
                int s1 = 0;
                int s2 = 0;
                for (int i = 0; i < 8; i++) s1 = s1 + a[i];
                for (int j = 0; j < 8; j++) s2 = s2 + b[j];
                return s1 + s2;
            }",
            "f",
        );
        let args = [
            ArgValue::Array((1..=8).collect()),
            ArgValue::Array((11..=18).collect()),
        ];
        let rp = simulate(&f, &args, 1000).unwrap();
        let rs = simulate(&seq, &args, 1000).unwrap();
        assert_eq!(rp.ret, Some(36 + 116));
        assert_eq!(rs.ret, Some(36 + 116));
        assert!(
            rp.cycles * 3 < rs.cycles * 2,
            "par {} vs seq {}",
            rp.cycles,
            rs.cycles
        );
    }

    #[test]
    fn cross_branch_reads_see_cycle_boundaries() {
        // Unlike a threaded software model (where this would be a race),
        // Handel-C's cycle semantics makes cross-branch reads
        // deterministic: a read in cycle 2 sees the other branch's
        // cycle-1 commit.
        let f = synth(
            "int f(int a) {
                int x0 = 0;
                int x2 = 0;
                par {
                    { x0 = a + 1; x0 = x2 + 10; }
                    x2 = a + 100;
                }
                return x0 * 1000 + x2;
            }",
            "f",
        );
        let r = simulate(&f, &[ArgValue::Scalar(5)], 100).unwrap();
        // Cycle 1: x0 <= 6, x2 <= 105. Cycle 2: x0 <= x2(=105) + 10 = 115.
        assert_eq!(r.ret, Some(115 * 1000 + 105));
    }

    #[test]
    fn info_row() {
        let info = HandelC.info();
        assert_eq!(info.timing, TimingModel::RulePerAssignment);
        assert!(info.parallel_constructs);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use chls_frontend::compile_to_hir;
    use chls_sim::fsmd_sim::simulate;
    use chls_sim::interp::{run as interp_run, ArgValue, InterpOptions};
    use proptest::prelude::*;

    /// Generates a random assignment over variables x0..x3 and parameter a.
    fn arb_assign() -> impl Strategy<Value = String> {
        (
            0usize..4,
            prop_oneof![
                Just("a".to_string()),
                Just("x0".to_string()),
                Just("x1".to_string()),
                Just("x2".to_string()),
                Just("x3".to_string()),
                (1i64..20).prop_map(|v| v.to_string()),
            ],
            prop_oneof![Just("+"), Just("-"), Just("*"), Just("^")],
            prop_oneof![
                Just("x0".to_string()),
                Just("x1".to_string()),
                Just("x2".to_string()),
                Just("x3".to_string()),
                (1i64..20).prop_map(|v| v.to_string()),
            ],
        )
            .prop_map(|(dst, l, op, r)| format!("x{dst} = {l} {op} {r};"))
    }

    /// A random two-branch par where branch 1 owns {x0, x1} and branch 2
    /// owns {x2, x3} — reads and writes both stay within the owning
    /// branch, so there are no races and the threaded interpreter is a
    /// valid oracle. (Cross-branch *reads* are deterministic in Handel-C's
    /// cycle semantics but racy under threads, so they are excluded here;
    /// the directed tests cover them.)
    fn arb_par_program() -> impl Strategy<Value = String> {
        let b1 = proptest::collection::vec(
            (
                0usize..2,
                prop_oneof![Just("a"), Just("x0"), Just("x1")],
                prop_oneof![Just("+"), Just("*")],
                1i64..10,
            )
                .prop_map(|(d, l, op, r)| format!("x{d} = {l} {op} {r};")),
            1..4,
        );
        let b2 = proptest::collection::vec(
            (
                2usize..4,
                prop_oneof![Just("a"), Just("x2"), Just("x3")],
                prop_oneof![Just("+"), Just("*")],
                1i64..10,
            )
                .prop_map(|(d, l, op, r)| format!("x{d} = {l} {op} {r};")),
            1..4,
        );
        (b1, b2).prop_map(|(s1, s2)| {
            format!(
                "int f(int a) {{
                    int x0 = 1;
                    int x1 = 2;
                    int x2 = 3;
                    int x3 = 4;
                    par {{
                        {{ {} }}
                        {{ {} }}
                    }}
                    return x0 ^ (x1 << 1) ^ (x2 << 2) ^ (x3 << 3);
                }}",
                s1.join(" "),
                s2.join(" ")
            )
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

        /// Sequential random assignment runs: handelc == interpreter, and
        /// the cycle count equals assignments + bookkeeping exactly.
        #[test]
        fn random_sequences_match_interp(
            stmts in proptest::collection::vec(arb_assign(), 1..8),
            a in -50i64..50,
        ) {
            let src = format!(
                "int f(int a) {{
                    int x0 = 0;
                    int x1 = 0;
                    int x2 = 0;
                    int x3 = 0;
                    {}
                    return x0 ^ x1 ^ x2 ^ x3;
                }}",
                stmts.join("\n                    ")
            );
            let prog = compile_to_hir(&src).expect("parses");
            let golden = interp_run(&prog, "f", &[ArgValue::Scalar(a)], &InterpOptions::default())
                .expect("interprets");
            let d = HandelC
                .synthesize(&prog, "f", &SynthOptions::default())
                .expect("synthesizes");
            let Design::Fsmd(f) = d else { unreachable!() };
            let r = simulate(&f, &[ArgValue::Scalar(a)], 10_000).expect("simulates");
            prop_assert_eq!(r.ret, golden.ret);
            // 4 inits + N statements + return + entry + done.
            prop_assert_eq!(r.cycles, 4 + stmts.len() as u64 + 1 + 2);
        }

        /// Random race-free par compositions: the product machine matches
        /// the threaded interpreter, and the cycle count equals the longer
        /// branch (lockstep semantics), not the sum.
        #[test]
        fn random_par_matches_interp(src in arb_par_program(), a in -20i64..20) {
            let prog = compile_to_hir(&src).expect("parses");
            let golden = interp_run(&prog, "f", &[ArgValue::Scalar(a)], &InterpOptions::default())
                .expect("interprets");
            let d = HandelC
                .synthesize(&prog, "f", &SynthOptions::default())
                .expect("synthesizes");
            let Design::Fsmd(f) = d else { unreachable!() };
            let r = simulate(&f, &[ArgValue::Scalar(a)], 10_000).expect("simulates");
            prop_assert_eq!(r.ret, golden.ret, "source:\n{}", src);
        }
    }
}
