//! Offline stand-in for [criterion](https://crates.io/crates/criterion).
//!
//! The crates registry is unreachable in this environment, so the
//! workspace vendors the API subset its benches use: [`Criterion`],
//! [`criterion_group!`]/[`criterion_main!`], `bench_function`,
//! `benchmark_group`/`bench_with_input`/`finish`, [`BenchmarkId`],
//! [`Bencher::iter`]/[`Bencher::iter_batched`], [`BatchSize`], and
//! [`black_box`].
//!
//! Measurement is deliberately simple: each benchmark warms up briefly,
//! then runs timed batches until `measurement_time` elapses and reports
//! the mean iteration time to stdout. Good enough for trend tracking
//! without statistics machinery; the numbers that matter for the paper
//! live in the `cargo run` harnesses, not here.

use std::time::{Duration, Instant};

/// Re-export of the standard optimization barrier.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup (accepted for compatibility; the
/// shim times every batch the same way).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// A two-part benchmark identifier (`group/function/param`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id from a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    /// Total time spent in measured iterations.
    elapsed: Duration,
    /// Number of measured iterations.
    iters: u64,
    /// Measurement budget for this benchmark.
    budget: Duration,
}

impl Bencher {
    /// Times `routine` repeatedly until the measurement budget is spent.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: one untimed call.
        black_box(routine());
        let start = Instant::now();
        while start.elapsed() < self.budget {
            let t0 = Instant::now();
            black_box(routine());
            self.elapsed += t0.elapsed();
            self.iters += 1;
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let start = Instant::now();
        while start.elapsed() < self.budget {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.elapsed += t0.elapsed();
            self.iters += 1;
        }
    }

    fn report(&self, name: &str) {
        if self.iters == 0 {
            println!("{name:<40} (no measured iterations)");
            return;
        }
        let per = self.elapsed.as_nanos() as f64 / self.iters as f64;
        let (value, unit) = if per >= 1e9 {
            (per / 1e9, "s")
        } else if per >= 1e6 {
            (per / 1e6, "ms")
        } else if per >= 1e3 {
            (per / 1e3, "µs")
        } else {
            (per, "ns")
        };
        println!("{name:<40} {value:>10.3} {unit}/iter  ({} iters)", self.iters);
    }
}

/// Top-level benchmark runner.
pub struct Criterion {
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            // Short by default: the shim is for trend smoke, not stats.
            measurement_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Sets the per-benchmark measurement budget.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
            budget: self.measurement_time,
        };
        f(&mut b);
        b.report(name);
        self
    }

    /// Runs one named benchmark against a borrowed input (real
    /// Criterion has this directly on `Criterion`, not only on groups).
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
            budget: self.measurement_time,
        };
        f(&mut b, input);
        b.report(&id.to_string());
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    parent: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in the group against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
            budget: self.parent.measurement_time,
        };
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Ends the group (no-op; present for API compatibility).
    pub fn finish(self) {}
}

/// Declares a group-runner function over benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(5));
        let mut ran = 0u64;
        c.bench_function("smoke", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn groups_and_batched() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(5));
        let mut g = c.benchmark_group("g");
        g.bench_with_input(BenchmarkId::new("f", 3), &3u64, |b, &n| {
            b.iter_batched(|| vec![0u64; n as usize], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }
}
