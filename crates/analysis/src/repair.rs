//! Repairability classification for synthesizability rejections.
//!
//! The per-backend lint ([`crate::backend_lint`]) tells the user *what*
//! each paradigm rejects; this module adds *whether the toolchain can
//! mechanically fix it*. Classification is a dry run of the certified
//! repair pipeline (`chls_opt::rewrite`): the rewriter's own planning
//! logic — recursion-depth bounds from the interval engine, trip-count
//! proofs from branch-guard refinement, Andersen points-to for pointer
//! regions — is the single source of truth, so the lint can never claim
//! a repair the rewriter would refuse, or vice versa.

use chls_frontend::hir::HirProgram;
pub use chls_opt::rewrite::RewriteAction;
use chls_opt::rewrite::{rewrite_program, RewriteOptions};

/// Outcome of dry-running the repair pipeline against one entry point.
#[derive(Debug, Clone, Default)]
pub struct RepairAssessment {
    /// Every action the rewriter would take (or decline, with a reason).
    pub actions: Vec<RewriteAction>,
}

/// How one lint construct maps to a repair pass, and whether the dry run
/// proved that pass applicable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RepairVerdict {
    /// The rewriter can provably repair every instance of the construct.
    pub repairable: bool,
    /// Name of the `chls rewrite` pass that performs the repair, when
    /// one exists for this construct at all.
    pub rewrite: Option<&'static str>,
}

impl RepairVerdict {
    const NONE: RepairVerdict = RepairVerdict {
        repairable: false,
        rewrite: None,
    };
}

/// Dry-runs the repair pipeline. `entry` must name a function; callers
/// validate first (mirrors [`crate::lint_program`]'s contract).
pub fn assess_repairs(prog: &HirProgram, entry: &str) -> RepairAssessment {
    match rewrite_program(prog, entry, &RewriteOptions::default()) {
        Ok(res) => RepairAssessment {
            actions: res.actions,
        },
        Err(_) => RepairAssessment::default(),
    }
}

impl RepairAssessment {
    /// True when every action of `pass` either applied or was discharged
    /// as unreachable (dropped code needs no repair), and at least one
    /// action of that pass exists.
    fn pass_succeeds(&self, pass: &str) -> bool {
        let mut any = false;
        for a in self.actions.iter().filter(|a| a.pass == pass) {
            any = true;
            if !a.applied && !a.detail.starts_with("unreachable from the entry") {
                return false;
            }
        }
        any
    }

    /// Classifies one lint construct (the `construct` key of a
    /// [`crate::BackendFinding`]).
    pub fn verdict_for(&self, construct: &str) -> RepairVerdict {
        let pass = match construct {
            "recursion" => "recursion-to-stack",
            "pointers" | "multi_target_pointers" => "ptr-to-index",
            "data_dependent_loops" => "loop-bound",
            // `par`, `channels`, `delay`, `timing_constraints`: semantic
            // features, not accidents of style — nothing to rewrite to.
            _ => return RepairVerdict::NONE,
        };
        RepairVerdict {
            repairable: self.pass_succeeds(pass),
            rewrite: Some(pass),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chls_frontend::{compile_to_hir, compile_to_hir_relaxed};

    #[test]
    fn bounded_recursion_is_repairable() {
        let prog = compile_to_hir_relaxed(
            "uint<64> fact(uint<4> n) { if (n <= 1) return 1; return (uint<64>)n * fact(n - 1); }",
        )
        .unwrap();
        let a = assess_repairs(&prog, "fact");
        let v = a.verdict_for("recursion");
        assert!(v.repairable);
        assert_eq!(v.rewrite, Some("recursion-to-stack"));
    }

    #[test]
    fn gcd_loop_is_not_repairable() {
        let prog = compile_to_hir(
            "int gcd(int a, int b) { while (b != 0) { int t = a % b; a = b; b = t; } return a; }",
        )
        .unwrap();
        let a = assess_repairs(&prog, "gcd");
        let v = a.verdict_for("data_dependent_loops");
        assert!(!v.repairable);
        assert_eq!(v.rewrite, Some("loop-bound"));
    }

    #[test]
    fn bounded_loop_and_pointers_are_repairable() {
        let prog = compile_to_hir(
            "int f(int a[8], uint<3> n) {
                int *p = &a[0];
                uint<3> i = n;
                int s = 0;
                while (i != 0) { s = s + *p; p = p + 1; i = i - 1; }
                return s;
            }",
        )
        .unwrap();
        let a = assess_repairs(&prog, "f");
        assert!(a.verdict_for("pointers").repairable);
        assert!(a.verdict_for("data_dependent_loops").repairable);
        assert!(a.verdict_for("multi_target_pointers").repairable);
    }

    #[test]
    fn semantic_constructs_have_no_rewrite() {
        let prog = compile_to_hir("int f(int a) { par { { a = a + 1; } } return a; }").unwrap();
        let assess = assess_repairs(&prog, "f");
        let v = assess.verdict_for("par");
        assert!(!v.repairable);
        assert_eq!(v.rewrite, None);
    }
}
