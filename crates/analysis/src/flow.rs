//! Static process-network analysis (`chls flow`).
//!
//! The paper's deepest complaint about C-like hardware languages is that
//! concurrency and communication are bolted on without a semantics a
//! compiler can *reason* about: a Handel-C program with a pair of
//! misordered rendezvous deadlocks silently, a rate-mismatched pipeline
//! starves or accumulates, and nothing in the type system says so. This
//! module recovers the process-network view statically:
//!
//! 1. **Graph extraction** — every arm of a top-level `par` in the
//!    inlined entry function becomes a *process* node; every channel a
//!    shared edge, annotated with per-activation send/recv counts as
//!    [`Interval`]s (counted loops multiply exactly via the canonical
//!    trip-count recognizer, data-dependent loops widen to `[0, ∞)`).
//! 2. **Balance (SDF) checking** — per channel, total sends must be able
//!    to equal total recvs; a channel whose best-case production exceeds
//!    its worst-case consumption *accumulates* (the sender eventually
//!    blocks forever on a rendezvous nobody answers) and is a lint error.
//!    The converse *starves* the receivers.
//! 3. **Structural deadlock detection** — processes whose communication
//!    traces expand finitely play an abstract token game; a stuck
//!    configuration yields a wait-for graph whose cycle is reported
//!    span-anchored (`arm 0 → arm 1 → arm 0`), covering the classic
//!    send/send ordering deadlock. Traces that cannot be expanded
//!    (input-dependent communication) skip the game — the analysis never
//!    reports a deadlock it cannot prove.
//! 4. **Bounded-FIFO sizing** — for order-induced deadlocks on otherwise
//!    balanced networks, a greedy search finds minimal per-channel buffer
//!    capacities under which the token game completes: "channel `a`
//!    needs capacity ≥ 1" is the refactoring hint.
//! 5. **Timed-interface contracts** — a `@ii(n)` annotation on a channel
//!    declaration promises one service every `n` cycles; the achieved
//!    interval of the sender's innermost loop (Handel-C timing rule, see
//!    [`crate::cycles::handelc_block_interval`]) is checked against the
//!    promise via [`chls_sched::ii::check_contract`]. Over-promising is
//!    an error.
//!
//! Every deadlock verdict is differentially validated in `tests/flow.rs`:
//! a program this module flags must actually hang in the token simulator
//! (interpreter *and* FSMD product construction), and a clean program
//! must complete across backends.

use crate::cycles::{handelc_block_interval, Interval};
use crate::LintError;
use chls_frontend::diag::{Diagnostic, Severity};
use chls_frontend::hir::{HirBlock, HirFunc, HirProgram, HirStmt, LocalId};
use chls_frontend::Span;
use chls_opt::unroll::recognize;
use chls_sched::ii::{check_contract, ContractVerdict};
use std::collections::BTreeMap;
use std::fmt;

/// Direction of a channel endpoint operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Dir {
    /// A `send` — the writing end.
    Send,
    /// A `recv` — the reading end.
    Recv,
}

impl Dir {
    fn opposite(self) -> Dir {
        match self {
            Dir::Send => Dir::Recv,
            Dir::Recv => Dir::Send,
        }
    }
}

impl fmt::Display for Dir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Dir::Send => "send",
            Dir::Recv => "recv",
        })
    }
}

/// One channel operation in a process's expanded communication trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Op {
    chan: LocalId,
    dir: Dir,
    span: Span,
}

/// Per-channel send/recv counts for one process, per activation.
#[derive(Debug, Clone, Copy)]
pub struct Rate {
    /// How many sends the process performs on the channel.
    pub sends: Interval,
    /// How many recvs the process performs on the channel.
    pub recvs: Interval,
}

impl Rate {
    const ZERO: Rate = Rate {
        sends: Interval::ZERO,
        recvs: Interval::ZERO,
    };
}

type Rates = BTreeMap<LocalId, Rate>;

/// Verdict of the balance (SDF rate) equations for one channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Balance {
    /// Production provably equals consumption.
    Balanced,
    /// Best-case sends exceed worst-case recvs: tokens pile up, and on a
    /// rendezvous channel the sender eventually blocks forever.
    Accumulates,
    /// Best-case recvs exceed worst-case sends: a receiver blocks forever.
    Starves,
    /// The intervals overlap; no verdict either way.
    Unknown,
}

impl fmt::Display for Balance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Balance::Balanced => "balanced",
            Balance::Accumulates => "accumulates",
            Balance::Starves => "starves",
            Balance::Unknown => "unknown",
        })
    }
}

/// One channel of a process network, with its solved rates.
#[derive(Debug, Clone)]
pub struct ChannelReport {
    /// Source name of the channel local.
    pub name: String,
    /// Total sends per activation, over all processes.
    pub sends: Interval,
    /// Total recvs per activation, over all processes.
    pub recvs: Interval,
    /// How many processes send on the channel.
    pub senders: usize,
    /// How many processes receive on the channel.
    pub receivers: usize,
    /// Balance-equation verdict.
    pub balance: Balance,
}

/// One blocked endpoint in a stuck configuration.
#[derive(Debug, Clone)]
pub struct BlockedEndpoint {
    /// Process name (`arm N`, matching the simulators' labels).
    pub process: String,
    /// Channel name.
    pub channel: String,
    /// Direction the process is blocked in.
    pub dir: Dir,
    /// Source location of the blocked operation.
    pub span: Span,
}

/// A proved structural deadlock.
#[derive(Debug, Clone)]
pub struct DeadlockReport {
    /// Wait-for cycle as process names, first repeated last when a true
    /// cycle exists; empty for partner-exhaustion deadlocks (a process
    /// blocked with every potential partner already terminated).
    pub cycle: Vec<String>,
    /// Every blocked endpoint of the stuck configuration.
    pub blocked: Vec<BlockedEndpoint>,
}

/// A minimal buffer capacity that breaks an order-induced deadlock.
#[derive(Debug, Clone)]
pub struct CapacityNeed {
    /// Channel name.
    pub channel: String,
    /// Required capacity (tokens of slack).
    pub capacity: u64,
}

/// Verdict on one declared `@ii(n)` contract.
#[derive(Debug, Clone)]
pub struct ContractReport {
    /// Channel name.
    pub channel: String,
    /// Declared interval (the promise).
    pub declared: u32,
    /// Achieved service interval of the sending loop, Handel-C rule.
    pub achieved: Interval,
    /// Met / at risk / violated.
    pub verdict: ContractVerdict,
}

/// One `par` statement's process network, analyzed per activation.
#[derive(Debug, Clone)]
pub struct NetworkReport {
    /// Process names, in arm order.
    pub processes: Vec<String>,
    /// Channels at least one process touches.
    pub channels: Vec<ChannelReport>,
    /// Proved structural deadlock, if any.
    pub deadlock: Option<DeadlockReport>,
    /// Buffer capacities that would break the deadlock, when one exists
    /// and the network is otherwise balanced.
    pub capacities: Vec<CapacityNeed>,
    /// Why the token game was skipped, when it was (input-dependent
    /// communication somewhere in the network).
    pub skipped: Option<String>,
}

/// Everything `chls flow` found.
#[derive(Debug, Clone)]
pub struct FlowReport {
    /// Entry function analyzed.
    pub entry: String,
    /// One entry per top-level `par` statement, in program order.
    pub networks: Vec<NetworkReport>,
    /// Declared-contract verdicts, over all channels with `@ii(n)`.
    pub contracts: Vec<ContractReport>,
    /// Span-anchored diagnostics: rate mismatches, deadlocks, contract
    /// violations, and channel ops outside any `par`.
    pub diags: Vec<Diagnostic>,
}

impl FlowReport {
    /// Whether the program has findings that make the process network
    /// wrong: a proved deadlock, a definite rate mismatch, or a violated
    /// contract — anything serialized as an error-severity diagnostic.
    pub fn has_errors(&self) -> bool {
        self.diags.iter().any(|d| d.severity == Severity::Error)
            || self.networks.iter().any(|n| n.deadlock.is_some())
    }

    /// Renders the report as human-readable text, resolving spans
    /// against `src`.
    pub fn render(&self, src: &str) -> String {
        let mut out = String::new();
        for d in &self.diags {
            out.push_str(&d.render(src));
            out.push('\n');
        }
        for (i, n) in self.networks.iter().enumerate() {
            out.push_str(&format!(
                "process network {}: {} process{}, {} channel{}\n",
                i + 1,
                n.processes.len(),
                if n.processes.len() == 1 { "" } else { "es" },
                n.channels.len(),
                if n.channels.len() == 1 { "" } else { "s" },
            ));
            for c in &n.channels {
                out.push_str(&format!(
                    "  channel `{}`: {} send{} / {} recv{} per activation — {}\n",
                    c.name,
                    c.sends,
                    if c.sends == Interval::exact(1) { "" } else { "s" },
                    c.recvs,
                    if c.recvs == Interval::exact(1) { "" } else { "s" },
                    c.balance,
                ));
            }
            if let Some(d) = &n.deadlock {
                if d.cycle.is_empty() {
                    out.push_str("  deadlock: no partner remains for the blocked endpoint(s)\n");
                } else {
                    out.push_str(&format!("  deadlock cycle: {}\n", d.cycle.join(" → ")));
                }
                for b in &d.blocked {
                    out.push_str(&format!(
                        "    {} blocked on {}({})\n",
                        b.process, b.dir, b.channel
                    ));
                }
            }
            for c in &n.capacities {
                out.push_str(&format!(
                    "  fix: channel `{}` needs capacity ≥ {}\n",
                    c.channel, c.capacity
                ));
            }
            if let Some(why) = &n.skipped {
                out.push_str(&format!("  deadlock analysis skipped: {why}\n"));
            }
        }
        for c in &self.contracts {
            out.push_str(&format!(
                "contract `{}` @ii({}): achieves {} cycles per service — {}\n",
                c.channel, c.declared, c.achieved, c.verdict
            ));
        }
        let deadlocks = self
            .networks
            .iter()
            .filter(|n| n.deadlock.is_some())
            .count();
        let errors = self
            .diags
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count();
        out.push_str(&format!(
            "summary: {} network{}, {} deadlock{}, {} error{}, {} contract{}\n",
            self.networks.len(),
            if self.networks.len() == 1 { "" } else { "s" },
            deadlocks,
            if deadlocks == 1 { "" } else { "s" },
            errors,
            if errors == 1 { "" } else { "s" },
            self.contracts.len(),
            if self.contracts.len() == 1 { "" } else { "s" },
        ));
        out
    }

    /// Serializes the report to its documented JSON form.
    pub fn to_json(&self) -> String {
        use crate::json::{diag_json, escape};
        let interval = |i: Interval| {
            let max = i.max.map_or("null".to_string(), |m| m.to_string());
            format!(r#"{{"min":{},"max":{max}}}"#, i.min)
        };
        let networks = self
            .networks
            .iter()
            .map(|n| {
                let procs = n
                    .processes
                    .iter()
                    .map(|p| format!("\"{}\"", escape(p)))
                    .collect::<Vec<_>>()
                    .join(",");
                let chans = n
                    .channels
                    .iter()
                    .map(|c| {
                        format!(
                            r#"{{"name":"{}","sends":{},"recvs":{},"senders":{},"receivers":{},"balance":"{}"}}"#,
                            escape(&c.name),
                            interval(c.sends),
                            interval(c.recvs),
                            c.senders,
                            c.receivers,
                            c.balance
                        )
                    })
                    .collect::<Vec<_>>()
                    .join(",");
                let deadlock = match &n.deadlock {
                    None => "null".to_string(),
                    Some(d) => {
                        let cycle = d
                            .cycle
                            .iter()
                            .map(|p| format!("\"{}\"", escape(p)))
                            .collect::<Vec<_>>()
                            .join(",");
                        let blocked = d
                            .blocked
                            .iter()
                            .map(|b| {
                                format!(
                                    r#"{{"process":"{}","channel":"{}","dir":"{}","span":{{"start":{},"end":{}}}}}"#,
                                    escape(&b.process),
                                    escape(&b.channel),
                                    b.dir,
                                    b.span.start,
                                    b.span.end
                                )
                            })
                            .collect::<Vec<_>>()
                            .join(",");
                        format!(r#"{{"cycle":[{cycle}],"blocked":[{blocked}]}}"#)
                    }
                };
                let caps = n
                    .capacities
                    .iter()
                    .map(|c| {
                        format!(
                            r#"{{"channel":"{}","capacity":{}}}"#,
                            escape(&c.channel),
                            c.capacity
                        )
                    })
                    .collect::<Vec<_>>()
                    .join(",");
                let skipped = match &n.skipped {
                    Some(s) => format!("\"{}\"", escape(s)),
                    None => "null".to_string(),
                };
                format!(
                    r#"{{"processes":[{procs}],"channels":[{chans}],"deadlock":{deadlock},"capacities":[{caps}],"skipped":{skipped}}}"#
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        let contracts = self
            .contracts
            .iter()
            .map(|c| {
                format!(
                    r#"{{"channel":"{}","declared":{},"achieved":{},"verdict":"{}"}}"#,
                    escape(&c.channel),
                    c.declared,
                    interval(c.achieved),
                    c.verdict
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        let diags = self.diags.iter().map(diag_json).collect::<Vec<_>>().join(",");
        format!(
            r#"{{"entry":"{}","ok":{},"networks":[{networks}],"contracts":[{contracts}],"diags":[{diags}]}}"#,
            escape(&self.entry),
            !self.has_errors(),
        )
    }
}

/// Runs the process-network analysis over `prog`'s `entry` function.
///
/// Like [`crate::lint_program`], the analysis runs on the inlined entry
/// function so callee communication lands in the caller's `par` arms.
///
/// # Errors
///
/// [`LintError::NoSuchFunction`] when `entry` does not exist.
pub fn flow_program(prog: &HirProgram, entry: &str) -> Result<FlowReport, LintError> {
    let (entry_id, entry_func) = prog
        .func_by_name(entry)
        .ok_or_else(|| LintError::NoSuchFunction(entry.to_string()))?;
    let inlined = chls_opt::inline_program(prog, entry_id).ok();
    let func: &HirFunc = inlined.as_ref().map(|p| &p.funcs[0]).unwrap_or(entry_func);
    Ok(analyze(func, entry))
}

fn analyze(func: &HirFunc, entry: &str) -> FlowReport {
    let mut diags = Vec::new();
    let mut pars: Vec<&[HirBlock]> = Vec::new();
    let mut outside: Vec<Op> = Vec::new();
    collect_pars(&func.body, &mut pars, &mut outside);

    // A rendezvous outside any `par` has no concurrent partner: it can
    // never complete. One diagnostic per channel endpoint.
    let mut seen: Vec<(LocalId, Dir)> = Vec::new();
    for op in &outside {
        if seen.contains(&(op.chan, op.dir)) {
            continue;
        }
        seen.push((op.chan, op.dir));
        diags.push(Diagnostic::error(
            format!(
                "{}({}) outside `par` can never complete: a rendezvous needs a concurrent partner",
                op.dir,
                func.local(op.chan).name
            ),
            op.span,
        ));
    }

    let mut networks = Vec::new();
    let mut contracts = Vec::new();
    for arms in &pars {
        networks.push(analyze_network(arms, func, &mut diags));
        check_contracts(arms, func, &mut contracts, &mut diags);
    }

    FlowReport {
        entry: entry.to_string(),
        networks,
        contracts,
        diags,
    }
}

/// Finds every `par` not nested inside another `par` (nested `par`s are
/// analyzed as part of their enclosing arm), plus channel ops reachable
/// outside all of them.
fn collect_pars<'a>(block: &'a HirBlock, pars: &mut Vec<&'a [HirBlock]>, outside: &mut Vec<Op>) {
    for stmt in &block.stmts {
        match stmt {
            HirStmt::Par(arms) => pars.push(arms),
            HirStmt::Send { chan, span, .. } => outside.push(Op {
                chan: *chan,
                dir: Dir::Send,
                span: *span,
            }),
            HirStmt::Recv { chan, span, .. } => outside.push(Op {
                chan: *chan,
                dir: Dir::Recv,
                span: *span,
            }),
            HirStmt::If { then, els, .. } => {
                collect_pars(then, pars, outside);
                collect_pars(els, pars, outside);
            }
            HirStmt::While { body, .. } | HirStmt::DoWhile { body, .. } => {
                collect_pars(body, pars, outside)
            }
            HirStmt::For {
                init, step, body, ..
            } => {
                collect_pars(init, pars, outside);
                collect_pars(step, pars, outside);
                collect_pars(body, pars, outside);
            }
            HirStmt::Block(b) | HirStmt::Constraint { body: b, .. } => {
                collect_pars(b, pars, outside)
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------
// Rate counting
// ---------------------------------------------------------------------

fn single(chan: LocalId, dir: Dir) -> Rates {
    let mut m = Rates::new();
    let r = match dir {
        Dir::Send => Rate {
            sends: Interval::exact(1),
            recvs: Interval::ZERO,
        },
        Dir::Recv => Rate {
            sends: Interval::ZERO,
            recvs: Interval::exact(1),
        },
    };
    m.insert(chan, r);
    m
}

/// Sequential composition: counts add.
fn seq(mut a: Rates, b: Rates) -> Rates {
    for (k, r) in b {
        let e = a.entry(k).or_insert(Rate::ZERO);
        e.sends = e.sends + r.sends;
        e.recvs = e.recvs + r.recvs;
    }
    a
}

/// Branch merge: interval hull, with a missing side counting zero.
fn branch(a: Rates, b: Rates) -> Rates {
    let mut out = Rates::new();
    for k in a.keys().chain(b.keys()) {
        let ra = a.get(k).copied().unwrap_or(Rate::ZERO);
        let rb = b.get(k).copied().unwrap_or(Rate::ZERO);
        out.insert(
            *k,
            Rate {
                sends: ra.sends.hull(rb.sends),
                recvs: ra.recvs.hull(rb.recvs),
            },
        );
    }
    out
}

/// `t` exact repetitions.
fn scale(m: Rates, t: u64) -> Rates {
    m.into_iter()
        .map(|(k, r)| {
            (
                k,
                Rate {
                    sends: r.sends.times(t),
                    recvs: r.recvs.times(t),
                },
            )
        })
        .collect()
}

/// Unknown trip count: a nonzero per-iteration count widens to
/// `[0, ∞)` (or `[min, ∞)` when the loop runs at least once).
fn relax(m: Rates, at_least_once: bool) -> Rates {
    let widen = |i: Interval| {
        if i == Interval::ZERO {
            i
        } else {
            Interval {
                min: if at_least_once { i.min } else { 0 },
                max: None,
            }
        }
    };
    m.into_iter()
        .map(|(k, r)| {
            (
                k,
                Rate {
                    sends: widen(r.sends),
                    recvs: widen(r.recvs),
                },
            )
        })
        .collect()
}

fn count_block(block: &HirBlock) -> Rates {
    let mut acc = Rates::new();
    for stmt in &block.stmts {
        acc = seq(acc, count_stmt(stmt));
    }
    acc
}

fn count_stmt(stmt: &HirStmt) -> Rates {
    match stmt {
        HirStmt::Send { chan, .. } => single(*chan, Dir::Send),
        HirStmt::Recv { chan, .. } => single(*chan, Dir::Recv),
        HirStmt::If { then, els, .. } => branch(count_block(then), count_block(els)),
        HirStmt::For {
            init,
            cond,
            step,
            body,
            ..
        } => {
            let inner = seq(count_block(body), count_block(step));
            let head = count_block(init);
            match recognize(init, cond, step, body) {
                Ok(c) if !escapes(body) && !escapes(step) => {
                    seq(head, scale(inner, c.iterations.len() as u64))
                }
                _ => seq(head, relax(inner, false)),
            }
        }
        HirStmt::While { body, .. } => relax(count_block(body), false),
        HirStmt::DoWhile { body, .. } => relax(count_block(body), true),
        HirStmt::Par(arms) => arms
            .iter()
            .fold(Rates::new(), |acc, a| seq(acc, count_block(a))),
        HirStmt::Block(b) | HirStmt::Constraint { body: b, .. } => count_block(b),
        _ => Rates::new(),
    }
}

/// Whether control can leave the block early relative to its own loop:
/// a top-level `break`/`continue` (not swallowed by a nested loop) or a
/// `return` anywhere. Either invalidates exact trip-count scaling.
fn escapes(block: &HirBlock) -> bool {
    block.stmts.iter().any(|s| match s {
        HirStmt::Break | HirStmt::Continue | HirStmt::Return(_) => true,
        HirStmt::If { then, els, .. } => escapes(then) || escapes(els),
        HirStmt::Block(b) | HirStmt::Constraint { body: b, .. } => escapes(b),
        HirStmt::While { body, .. } | HirStmt::DoWhile { body, .. } => contains_return(body),
        HirStmt::For {
            init, step, body, ..
        } => contains_return(init) || contains_return(step) || contains_return(body),
        HirStmt::Par(arms) => arms.iter().any(escapes),
        _ => false,
    })
}

fn contains_return(block: &HirBlock) -> bool {
    block.stmts.iter().any(|s| match s {
        HirStmt::Return(_) => true,
        HirStmt::If { then, els, .. } => contains_return(then) || contains_return(els),
        HirStmt::While { body, .. } | HirStmt::DoWhile { body, .. } => contains_return(body),
        HirStmt::For {
            init, step, body, ..
        } => contains_return(init) || contains_return(step) || contains_return(body),
        HirStmt::Block(b) | HirStmt::Constraint { body: b, .. } => contains_return(b),
        HirStmt::Par(arms) => arms.iter().any(contains_return),
        _ => false,
    })
}

// ---------------------------------------------------------------------
// Trace expansion
// ---------------------------------------------------------------------

/// Expansion cap: a trace longer than this is treated as inexpandable
/// rather than ballooning analysis time.
const MAX_TRACE: usize = 4096;

fn expand_block(block: &HirBlock, out: &mut Vec<Op>) -> Result<(), String> {
    for stmt in &block.stmts {
        expand_stmt(stmt, out)?;
    }
    Ok(())
}

fn push_op(out: &mut Vec<Op>, op: Op) -> Result<(), String> {
    if out.len() >= MAX_TRACE {
        return Err(format!("communication trace exceeds {MAX_TRACE} operations"));
    }
    out.push(op);
    Ok(())
}

fn expand_stmt(stmt: &HirStmt, out: &mut Vec<Op>) -> Result<(), String> {
    match stmt {
        HirStmt::Send { chan, span, .. } => push_op(
            out,
            Op {
                chan: *chan,
                dir: Dir::Send,
                span: *span,
            },
        ),
        HirStmt::Recv { chan, span, .. } => push_op(
            out,
            Op {
                chan: *chan,
                dir: Dir::Recv,
                span: *span,
            },
        ),
        HirStmt::If { then, els, .. } => {
            let mut a = Vec::new();
            let mut b = Vec::new();
            expand_block(then, &mut a)?;
            expand_block(els, &mut b)?;
            let same = a.len() == b.len()
                && a.iter()
                    .zip(&b)
                    .all(|(x, y)| x.chan == y.chan && x.dir == y.dir);
            if !same {
                return Err("input-dependent communication in `if`".to_string());
            }
            for op in a {
                push_op(out, op)?;
            }
            Ok(())
        }
        HirStmt::For {
            init,
            cond,
            step,
            body,
            ..
        } => {
            expand_block(init, out)?;
            match recognize(init, cond, step, body) {
                Ok(c) if !escapes(body) && !escapes(step) => {
                    let mut once = Vec::new();
                    expand_block(body, &mut once)?;
                    expand_block(step, &mut once)?;
                    for _ in 0..c.iterations.len() {
                        for op in &once {
                            push_op(out, *op)?;
                        }
                    }
                    Ok(())
                }
                _ => {
                    if count_block(body).is_empty() && count_block(step).is_empty() {
                        Ok(())
                    } else {
                        Err("channel operations in a data-dependent loop".to_string())
                    }
                }
            }
        }
        HirStmt::While { body, .. } | HirStmt::DoWhile { body, .. } => {
            if count_block(body).is_empty() {
                Ok(())
            } else {
                Err("channel operations in a data-dependent loop".to_string())
            }
        }
        HirStmt::Par(arms) => {
            if arms.iter().any(|a| !count_block(a).is_empty()) {
                Err("channel operations in a nested `par`".to_string())
            } else {
                Ok(())
            }
        }
        HirStmt::Return(_) => Err("`return` inside a process arm".to_string()),
        HirStmt::Block(b) | HirStmt::Constraint { body: b, .. } => expand_block(b, out),
        _ => Ok(()),
    }
}

// ---------------------------------------------------------------------
// Token game
// ---------------------------------------------------------------------

enum GameResult {
    Completes,
    /// Blocked (process index, pc) pairs of the stuck configuration.
    Stuck(Vec<(usize, usize)>),
}

/// Plays the abstract token game: rendezvous fire when a send and a recv
/// on the same channel are both at the front of their traces; a channel
/// with capacity in `caps` additionally lets sends complete into (and
/// recvs drain from) its buffer.
fn play(procs: &[Vec<Op>], caps: &BTreeMap<LocalId, u64>) -> GameResult {
    let n = procs.len();
    let mut pc = vec![0usize; n];
    let mut buf: BTreeMap<LocalId, u64> = BTreeMap::new();
    loop {
        let mut progressed = false;
        // Buffered moves first: they never block anyone else.
        for p in 0..n {
            while pc[p] < procs[p].len() {
                let op = procs[p][pc[p]];
                let fired = match op.dir {
                    Dir::Send => {
                        let cap = caps.get(&op.chan).copied().unwrap_or(0);
                        let fill = buf.get(&op.chan).copied().unwrap_or(0);
                        if fill < cap {
                            *buf.entry(op.chan).or_insert(0) += 1;
                            true
                        } else {
                            false
                        }
                    }
                    Dir::Recv => {
                        let fill = buf.get(&op.chan).copied().unwrap_or(0);
                        if fill > 0 {
                            *buf.entry(op.chan).or_insert(0) -= 1;
                            true
                        } else {
                            false
                        }
                    }
                };
                if !fired {
                    break;
                }
                pc[p] += 1;
                progressed = true;
            }
        }
        // Rendezvous moves: one matched pair per scan.
        'pair: for p in 0..n {
            if pc[p] >= procs[p].len() {
                continue;
            }
            let a = procs[p][pc[p]];
            for q in 0..n {
                if q == p || pc[q] >= procs[q].len() {
                    continue;
                }
                let b = procs[q][pc[q]];
                if a.chan == b.chan && a.dir == b.dir.opposite() {
                    pc[p] += 1;
                    pc[q] += 1;
                    progressed = true;
                    break 'pair;
                }
            }
        }
        if !progressed {
            break;
        }
    }
    let blocked: Vec<(usize, usize)> = (0..n)
        .filter(|&p| pc[p] < procs[p].len())
        .map(|p| (p, pc[p]))
        .collect();
    if blocked.is_empty() {
        GameResult::Completes
    } else {
        GameResult::Stuck(blocked)
    }
}

/// Extracts a wait-for cycle from a stuck configuration: blocked process
/// `p` waits for every blocked process whose *remaining* trace contains
/// the complementary endpoint of `p`'s channel.
fn waitfor_cycle(procs: &[Vec<Op>], blocked: &[(usize, usize)]) -> Vec<usize> {
    let edges: BTreeMap<usize, Vec<usize>> = blocked
        .iter()
        .map(|&(p, at)| {
            let op = procs[p][at];
            let want = op.dir.opposite();
            let targets = blocked
                .iter()
                .filter(|&&(q, _)| q != p)
                .filter(|&&(q, qat)| {
                    procs[q][qat..]
                        .iter()
                        .any(|o| o.chan == op.chan && o.dir == want)
                })
                .map(|&(q, _)| q)
                .collect();
            (p, targets)
        })
        .collect();
    // DFS from each blocked node looking for a cycle back to itself.
    for &(start, _) in blocked {
        let mut path = Vec::new();
        let mut visited = Vec::new();
        if dfs_cycle(start, start, &edges, &mut path, &mut visited) {
            return path;
        }
    }
    Vec::new()
}

fn dfs_cycle(
    node: usize,
    target: usize,
    edges: &BTreeMap<usize, Vec<usize>>,
    path: &mut Vec<usize>,
    visited: &mut Vec<usize>,
) -> bool {
    if visited.contains(&node) {
        return false;
    }
    visited.push(node);
    path.push(node);
    for &next in edges.get(&node).map(Vec::as_slice).unwrap_or(&[]) {
        if next == target {
            return true;
        }
        if dfs_cycle(next, target, edges, path, visited) {
            return true;
        }
    }
    path.pop();
    false
}

// ---------------------------------------------------------------------
// Per-network analysis
// ---------------------------------------------------------------------

fn proc_name(i: usize) -> String {
    format!("arm {i}")
}

fn analyze_network(arms: &[HirBlock], func: &HirFunc, diags: &mut Vec<Diagnostic>) -> NetworkReport {
    let processes: Vec<String> = (0..arms.len()).map(proc_name).collect();
    let per_arm: Vec<Rates> = arms.iter().map(count_block).collect();

    // Channel totals + endpoint cardinality.
    let mut totals: BTreeMap<LocalId, (Interval, Interval, usize, usize)> = BTreeMap::new();
    for rates in &per_arm {
        for (chan, r) in rates {
            let e = totals
                .entry(*chan)
                .or_insert((Interval::ZERO, Interval::ZERO, 0, 0));
            e.0 = e.0 + r.sends;
            e.1 = e.1 + r.recvs;
            if r.sends != Interval::ZERO {
                e.2 += 1;
            }
            if r.recvs != Interval::ZERO {
                e.3 += 1;
            }
        }
    }

    let spans = op_spans(arms);
    let mut channels = Vec::new();
    let mut mismatched = false;
    for (chan, (sends, recvs, senders, receivers)) in &totals {
        let exact =
            |i: Interval| i.max == Some(i.min);
        let balance = if exact(*sends) && exact(*recvs) && sends.min == recvs.min {
            Balance::Balanced
        } else if recvs.max.is_some_and(|m| sends.min > m) {
            Balance::Accumulates
        } else if sends.max.is_some_and(|m| recvs.min > m) {
            Balance::Starves
        } else {
            Balance::Unknown
        };
        let name = func.local(*chan).name.clone();
        if matches!(balance, Balance::Accumulates | Balance::Starves) {
            mismatched = true;
            let (stuck_dir, verb) = match balance {
                Balance::Accumulates => (Dir::Send, "accumulates: a sender blocks forever"),
                _ => (Dir::Recv, "starves: a receiver blocks forever"),
            };
            let span = spans
                .get(&(*chan, stuck_dir))
                .or_else(|| spans.get(&(*chan, stuck_dir.opposite())))
                .copied()
                .unwrap_or_else(Span::dummy);
            diags.push(Diagnostic::error(
                format!(
                    "rate mismatch on channel `{name}`: {sends} sends vs {recvs} recvs per activation — channel {verb}"
                ),
                span,
            ));
        }
        channels.push(ChannelReport {
            name,
            sends: *sends,
            recvs: *recvs,
            senders: *senders,
            receivers: *receivers,
            balance,
        });
    }

    // Expand traces; any failure skips the token game for the network.
    let mut traces = Vec::new();
    let mut skipped = None;
    for (i, arm) in arms.iter().enumerate() {
        let mut t = Vec::new();
        match expand_block(arm, &mut t) {
            Ok(()) => traces.push(t),
            Err(why) => {
                skipped = Some(format!("{} in {}", why, proc_name(i)));
                break;
            }
        }
    }

    let mut deadlock = None;
    let mut capacities = Vec::new();
    if skipped.is_none() {
        if let GameResult::Stuck(blocked) = play(&traces, &BTreeMap::new()) {
            let cycle_idx = waitfor_cycle(&traces, &blocked);
            let blocked_eps: Vec<BlockedEndpoint> = blocked
                .iter()
                .map(|&(p, at)| {
                    let op = traces[p][at];
                    BlockedEndpoint {
                        process: proc_name(p),
                        channel: func.local(op.chan).name.clone(),
                        dir: op.dir,
                        span: op.span,
                    }
                })
                .collect();
            let mut cycle: Vec<String> = cycle_idx.iter().map(|&p| proc_name(p)).collect();
            if let Some(first) = cycle.first().cloned() {
                cycle.push(first);
            }
            let msg = if cycle.is_empty() {
                let parts: Vec<String> = blocked_eps
                    .iter()
                    .map(|b| format!("{} blocked on {}({})", b.process, b.dir, b.channel))
                    .collect();
                format!(
                    "structural deadlock: {} — no partner remains",
                    parts.join(", ")
                )
            } else {
                format!("structural deadlock cycle: {}", cycle.join(" → "))
            };
            let mut d = Diagnostic::error(
                msg,
                blocked_eps.first().map(|b| b.span).unwrap_or_else(Span::dummy),
            );
            for b in &blocked_eps {
                d = d.with_note(
                    format!("{} blocked on {}({}) here", b.process, b.dir, b.channel),
                    b.span,
                );
            }
            diags.push(d);

            // Buffer sizing only repairs *order-induced* deadlocks; an
            // unbalanced channel just fills any finite buffer too.
            if !mismatched && !cycle_idx.is_empty() {
                capacities = size_buffers(&traces, func);
            }
            deadlock = Some(DeadlockReport {
                cycle,
                blocked: blocked_eps,
            });
        }
    }

    NetworkReport {
        processes,
        channels,
        deadlock,
        capacities,
        skipped,
    }
}

/// Greedy minimal capacity search: bump the channel of a blocked send
/// until the game completes, then shrink each capacity to its minimum.
fn size_buffers(procs: &[Vec<Op>], func: &HirFunc) -> Vec<CapacityNeed> {
    const MAX_CAP: u64 = 16;
    let mut caps: BTreeMap<LocalId, u64> = BTreeMap::new();
    for _ in 0..64 {
        match play(procs, &caps) {
            GameResult::Completes => break,
            GameResult::Stuck(blocked) => {
                let Some(op) = blocked
                    .iter()
                    .map(|&(p, at)| procs[p][at])
                    .find(|op| op.dir == Dir::Send)
                else {
                    return Vec::new(); // only receivers blocked: buffering cannot help
                };
                let e = caps.entry(op.chan).or_insert(0);
                *e += 1;
                if *e > MAX_CAP {
                    return Vec::new();
                }
            }
        }
    }
    if !matches!(play(procs, &caps), GameResult::Completes) {
        return Vec::new();
    }
    // Shrink each capacity while the game still completes.
    let chans: Vec<LocalId> = caps.keys().copied().collect();
    for c in chans {
        while caps.get(&c).copied().unwrap_or(0) > 0 {
            *caps.get_mut(&c).unwrap() -= 1;
            if !matches!(play(procs, &caps), GameResult::Completes) {
                *caps.get_mut(&c).unwrap() += 1;
                break;
            }
        }
    }
    caps.into_iter()
        .filter(|(_, k)| *k > 0)
        .map(|(c, k)| CapacityNeed {
            channel: func.local(c).name.clone(),
            capacity: k,
        })
        .collect()
}

/// First source span per (channel, direction) across all arms.
fn op_spans(arms: &[HirBlock]) -> BTreeMap<(LocalId, Dir), Span> {
    fn walk(block: &HirBlock, out: &mut BTreeMap<(LocalId, Dir), Span>) {
        for stmt in &block.stmts {
            match stmt {
                HirStmt::Send { chan, span, .. } => {
                    out.entry((*chan, Dir::Send)).or_insert(*span);
                }
                HirStmt::Recv { chan, span, .. } => {
                    out.entry((*chan, Dir::Recv)).or_insert(*span);
                }
                HirStmt::If { then, els, .. } => {
                    walk(then, out);
                    walk(els, out);
                }
                HirStmt::While { body, .. } | HirStmt::DoWhile { body, .. } => walk(body, out),
                HirStmt::For {
                    init, step, body, ..
                } => {
                    walk(init, out);
                    walk(step, out);
                    walk(body, out);
                }
                HirStmt::Block(b) | HirStmt::Constraint { body: b, .. } => walk(b, out),
                HirStmt::Par(inner) => {
                    for a in inner {
                        walk(a, out);
                    }
                }
                _ => {}
            }
        }
    }
    let mut out = BTreeMap::new();
    for arm in arms {
        walk(arm, &mut out);
    }
    out
}

// ---------------------------------------------------------------------
// @ii(n) contracts
// ---------------------------------------------------------------------

fn check_contracts(
    arms: &[HirBlock],
    func: &HirFunc,
    contracts: &mut Vec<ContractReport>,
    diags: &mut Vec<Diagnostic>,
) {
    let spans = op_spans(arms);
    // Channels with a declared contract that some arm sends on.
    let mut declared: Vec<(LocalId, u32)> = Vec::new();
    for (key, _) in spans.iter() {
        let (chan, dir) = *key;
        if dir != Dir::Send {
            continue;
        }
        if let Some(n) = func.local(chan).ii {
            if !declared.iter().any(|(c, _)| *c == chan) {
                declared.push((chan, n));
            }
        }
    }
    for (chan, n) in declared {
        let mut achieved: Option<Interval> = None;
        for arm in arms {
            if !block_sends(arm, chan) {
                continue;
            }
            let i = sender_interval(arm, chan).unwrap_or_else(|| handelc_block_interval(arm));
            achieved = Some(match achieved {
                Some(a) => a.hull(i),
                None => i,
            });
        }
        let Some(achieved) = achieved else { continue };
        let verdict = check_contract(n, achieved.min, achieved.max);
        let name = func.local(chan).name.clone();
        let span = spans
            .get(&(chan, Dir::Send))
            .copied()
            .unwrap_or_else(Span::dummy);
        match verdict {
            ContractVerdict::Violated => diags.push(Diagnostic::error(
                format!(
                    "channel `{name}` declares @ii({n}) but its sender achieves {achieved} cycles per service — contract violated (over-promised)"
                ),
                span,
            )),
            ContractVerdict::AtRisk => diags.push(Diagnostic::warning(
                format!(
                    "channel `{name}` declares @ii({n}) but its sender's worst case is {achieved} cycles per service — contract at risk"
                ),
                span,
            )),
            ContractVerdict::Met => {}
        }
        contracts.push(ContractReport {
            channel: name,
            declared: n,
            achieved,
            verdict,
        });
    }
}

fn block_sends(block: &HirBlock, chan: LocalId) -> bool {
    count_block(block)
        .get(&chan)
        .is_some_and(|r| r.sends != Interval::ZERO)
}

/// Handel-C cycle interval of the innermost loop whose body sends on
/// `chan` — the steady-state service period of the sender.
fn sender_interval(block: &HirBlock, chan: LocalId) -> Option<Interval> {
    for stmt in &block.stmts {
        match stmt {
            HirStmt::For {
                init: _,
                step,
                body,
                ..
            } => {
                if let Some(i) = sender_interval(body, chan) {
                    return Some(i);
                }
                if block_sends(body, chan) {
                    return Some(handelc_block_interval(body) + handelc_block_interval(step));
                }
            }
            HirStmt::While { body, .. } | HirStmt::DoWhile { body, .. } => {
                if let Some(i) = sender_interval(body, chan) {
                    return Some(i);
                }
                if block_sends(body, chan) {
                    return Some(handelc_block_interval(body));
                }
            }
            HirStmt::If { then, els, .. } => {
                if let Some(i) = sender_interval(then, chan) {
                    return Some(i);
                }
                if let Some(i) = sender_interval(els, chan) {
                    return Some(i);
                }
            }
            HirStmt::Block(b) | HirStmt::Constraint { body: b, .. } => {
                if let Some(i) = sender_interval(b, chan) {
                    return Some(i);
                }
            }
            HirStmt::Par(arms) => {
                for a in arms {
                    if let Some(i) = sender_interval(a, chan) {
                        return Some(i);
                    }
                }
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use chls_frontend::compile_to_hir;

    fn flow(src: &str) -> FlowReport {
        let prog = compile_to_hir(src).expect("compile");
        flow_program(&prog, "main").expect("flow")
    }

    #[test]
    fn balanced_pipeline_is_clean() {
        let r = flow(
            "int main() { chan<int> c1; chan<int> c2; int out = 0; par { \
             { for (int i = 0; i < 8; i = i + 1) { send(c1, i); } } \
             { for (int j = 0; j < 8; j = j + 1) { send(c2, recv(c1) * 2); } } \
             { for (int k = 0; k < 8; k = k + 1) { out = out + recv(c2); } } } return out; }",
        );
        assert!(!r.has_errors(), "diags: {:?}", r.diags);
        let net = &r.networks[0];
        assert_eq!(net.processes.len(), 3);
        assert!(net.deadlock.is_none());
        assert!(net
            .channels
            .iter()
            .all(|c| c.balance == Balance::Balanced));
        assert_eq!(net.channels[0].sends, Interval::exact(8));
    }

    #[test]
    fn ordering_deadlock_has_cycle_and_capacity_fix() {
        let r = flow(
            "int main() { chan<int> a; chan<int> b; int x = 0; int y = 0; par { \
             { send(a, 1); x = recv(b); } \
             { send(b, 2); y = recv(a); } } return x + y; }",
        );
        assert!(r.has_errors());
        let net = &r.networks[0];
        let d = net.deadlock.as_ref().expect("deadlock proved");
        assert_eq!(d.blocked.len(), 2);
        assert!(d.cycle.len() >= 3, "cycle: {:?}", d.cycle);
        assert_eq!(d.cycle.first(), d.cycle.last());
        assert_eq!(net.capacities.len(), 1);
        assert_eq!(net.capacities[0].capacity, 1);
        // Diagnostics are span-anchored at the blocked sends.
        let diag = r.diags.iter().find(|d| d.message.contains("deadlock")).unwrap();
        assert_eq!(diag.notes.len(), 2);
    }

    #[test]
    fn rate_mismatch_accumulates() {
        let r = flow(
            "int main() { chan<int> c; int out = 0; par { \
             { for (int i = 0; i < 8; i = i + 1) { send(c, i); } } \
             { for (int j = 0; j < 4; j = j + 1) { out = out + recv(c); } } } return out; }",
        );
        assert!(r.has_errors());
        let net = &r.networks[0];
        assert_eq!(net.channels[0].balance, Balance::Accumulates);
        assert!(r
            .diags
            .iter()
            .any(|d| d.message.contains("rate mismatch on channel `c`")));
        // The sender really does block forever: the game proves it too.
        assert!(net.deadlock.is_some());
        // But no buffer fixes an unbalanced channel.
        assert!(net.capacities.is_empty());
    }

    #[test]
    fn starving_receiver_flagged() {
        let r = flow(
            "int main() { chan<int> c; int out = 0; par { \
             { send(c, 1); } \
             { out = recv(c); out = out + recv(c); } } return out; }",
        );
        let net = &r.networks[0];
        assert_eq!(net.channels[0].balance, Balance::Starves);
        assert!(r.has_errors());
    }

    #[test]
    fn channel_op_outside_par_is_flagged() {
        let r = flow("int main() { chan<int> c; send(c, 1); return 0; }");
        assert!(r.has_errors());
        assert!(r.diags[0].message.contains("outside `par`"));
    }

    #[test]
    fn data_dependent_communication_skips_the_game() {
        let r = flow(
            "int main(int n) { chan<int> c; int out = 0; par { \
             { int i = 0; while (i < n) { send(c, i); i = i + 1; } } \
             { int j = 0; while (j < n) { out = out + recv(c); j = j + 1; } } } return out; }",
        );
        let net = &r.networks[0];
        assert!(net.skipped.is_some());
        assert!(net.deadlock.is_none(), "never guess a deadlock");
        assert!(!r.has_errors());
        assert_eq!(net.channels[0].balance, Balance::Unknown);
    }

    #[test]
    fn met_contract_is_recorded_without_diags() {
        let r = flow(
            "int main() { chan<int> c @ii(3); int out = 0; par { \
             { for (int i = 0; i < 4; i = i + 1) { send(c, i); } } \
             { for (int j = 0; j < 4; j = j + 1) { out = out + recv(c); } } } return out; }",
        );
        assert!(!r.has_errors(), "diags: {:?}", r.diags);
        assert_eq!(r.contracts.len(), 1);
        assert_eq!(r.contracts[0].verdict, ContractVerdict::Met);
        assert_eq!(r.contracts[0].achieved, Interval::exact(2));
    }

    #[test]
    fn overpromised_contract_is_an_error() {
        // Loop body: recv(1) + 2 assigns + send(1) + step(1) = 5 cycles
        // per service, promised 2.
        let r = flow(
            "int main() { chan<int> cin; chan<int> cout @ii(2); int out = 0; par { \
             { for (int i = 0; i < 4; i = i + 1) { send(cin, i); } } \
             { for (int j = 0; j < 4; j = j + 1) { int v = recv(cin); v = v * 3; send(cout, v); } } \
             { for (int k = 0; k < 4; k = k + 1) { out = out + recv(cout); } } } return out; }",
        );
        assert!(r.has_errors());
        let c = r.contracts.iter().find(|c| c.channel == "cout").unwrap();
        assert_eq!(c.verdict, ContractVerdict::Violated);
        assert!(r
            .diags
            .iter()
            .any(|d| d.message.contains("@ii(2)") && d.message.contains("violated")));
    }

    #[test]
    fn ii_on_non_channel_is_rejected_in_sema() {
        let err = compile_to_hir("int main() { int x @ii(2); return x; }").unwrap_err();
        let msg = format!("{err:?}");
        assert!(msg.contains("channel declarations"), "{msg}");
    }

    #[test]
    fn json_shape_is_stable() {
        let r = flow(
            "int main() { chan<int> a; chan<int> b; int x = 0; int y = 0; par { \
             { send(a, 1); x = recv(b); } \
             { send(b, 2); y = recv(a); } } return x + y; }",
        );
        let j = r.to_json();
        assert!(j.starts_with(r#"{"entry":"main","ok":false"#), "{j}");
        assert!(j.contains(r#""deadlock":{"cycle":["#), "{j}");
        assert!(j.contains(r#""capacities":[{"channel":"a","capacity":1}]"#), "{j}");
        // Deterministic.
        assert_eq!(j, r.to_json());
    }

    #[test]
    fn trip_counted_multirate_is_exact() {
        // 2 recvs per producer send-pair: 16 in, 8 out, all balanced.
        let r = flow(
            "int main() { chan<int> c1; chan<int> c2; int out = 0; par { \
             { for (int i = 0; i < 16; i = i + 1) { send(c1, i); } } \
             { for (int j = 0; j < 8; j = j + 1) { int a = recv(c1); int b = recv(c1); send(c2, a + b); } } \
             { for (int k = 0; k < 8; k = k + 1) { out = out + recv(c2); } } } return out; }",
        );
        assert!(!r.has_errors(), "diags: {:?}", r.diags);
        let c1 = r.networks[0].channels.iter().find(|c| c.name == "c1").unwrap();
        assert_eq!(c1.sends, Interval::exact(16));
        assert_eq!(c1.recvs, Interval::exact(16));
        assert_eq!(c1.balance, Balance::Balanced);
    }
}
