//! Per-backend synthesizability lint.
//!
//! The paper's central observation is that "C" means nine different
//! things to nine different tools: the same program is fine under one
//! paradigm, slow under another, and rejected outright by a third. This
//! lint reports *before synthesis* which of a program's constructs each
//! backend rejects or penalizes, by detecting the constructs the program
//! actually exercises and looking them up in the construct-support
//! matrix ([`chls_backends::CONSTRUCT_MATRIX`]).

use chls_backends::{construct_support, ConstructSupport, Support, CONSTRUCT_MATRIX};
use chls_frontend::hir::*;
use chls_frontend::Type;
use chls_opt::PointsTo;

/// The synthesizability-relevant constructs a function exercises.
#[derive(Debug, Clone, Default)]
pub struct Features {
    /// Contains `par { ... }`.
    pub par: bool,
    /// Declares channels or performs `send`/`recv`.
    pub channels: bool,
    /// Contains `delay;`.
    pub delay: bool,
    /// Uses pointers at all (pointer-typed locals, `&`, or `*`).
    pub pointers: bool,
    /// Names of pointers whose points-to set has more than one target.
    pub multi_target_pointers: Vec<String>,
    /// Contains a loop whose trip count the canonical recognizer cannot
    /// pin down (`while`, `do`-`while`, or a non-canonical `for`).
    pub data_dependent_loops: bool,
    /// Contains `#pragma constraint` regions.
    pub timing_constraints: bool,
    /// A recursive call cycle is reachable from the entry. Program-level:
    /// [`detect_features`] leaves it `false`; [`crate::lint_program`]
    /// sets it from the call graph.
    pub recursion: bool,
}

/// Detects the features `func` exercises. `pts` must be the points-to
/// result for the same function.
pub fn detect_features(func: &HirFunc, pts: &PointsTo) -> Features {
    let mut f = Features {
        pointers: func
            .locals
            .iter()
            .any(|l| matches!(l.ty, Type::Ptr(_))),
        multi_target_pointers: pts
            .multi_target()
            .map(|id| func.local(id).name.clone())
            .collect(),
        ..Features::default()
    };
    scan_block(&func.body, &mut f);
    f
}

fn scan_block(block: &HirBlock, f: &mut Features) {
    for stmt in &block.stmts {
        match stmt {
            HirStmt::Par(arms) => {
                f.par = true;
                for arm in arms {
                    scan_block(arm, f);
                }
            }
            HirStmt::Send { .. } | HirStmt::Recv { .. } => f.channels = true,
            HirStmt::Delay => f.delay = true,
            HirStmt::Constraint { body, .. } => {
                f.timing_constraints = true;
                scan_block(body, f);
            }
            HirStmt::If { then, els, .. } => {
                scan_block(then, f);
                scan_block(els, f);
            }
            HirStmt::While { body, .. } | HirStmt::DoWhile { body, .. } => {
                // `while`/`do-while` keep no canonical induction form;
                // their trip counts are data-dependent by construction.
                f.data_dependent_loops = true;
                scan_block(body, f);
            }
            HirStmt::For {
                init,
                cond,
                step,
                body,
                ..
            } => {
                if chls_opt::unroll::recognize(init, cond, step, body).is_err() {
                    f.data_dependent_loops = true;
                }
                scan_block(init, f);
                scan_block(step, f);
                scan_block(body, f);
            }
            HirStmt::Block(b) => scan_block(b, f),
            _ => {}
        }
    }
}

/// One backend's complaint about one construct the program uses.
#[derive(Debug, Clone)]
pub struct BackendFinding {
    /// Backend (paradigm) name.
    pub backend: &'static str,
    /// Construct key: `par`, `channels`, `delay`, `pointers`,
    /// `multi_target_pointers`, `data_dependent_loops`,
    /// `timing_constraints`.
    pub construct: &'static str,
    /// `rejected` or `penalized`.
    pub status: &'static str,
    /// Why, in the paradigm's own terms.
    pub reason: String,
    /// What in the program triggered it, when nameable (e.g. the
    /// multi-target pointer names).
    pub detail: Option<String>,
    /// `chls rewrite` can provably repair every instance of this
    /// construct (classification is a dry run of the actual rewriter;
    /// see [`crate::repair`]).
    pub repairable: bool,
    /// Name of the repair pass, when one exists for this construct.
    pub rewrite: Option<&'static str>,
}

impl BackendFinding {
    /// Whether this finding means synthesis will fail outright.
    pub fn is_rejection(&self) -> bool {
        self.status == "rejected"
    }
}

/// Checks `features` against one backend's support row, or against every
/// row in the matrix when `backend` is `None`. Unknown backend names
/// yield an empty result; the driver validates names first.
pub fn check_backends(features: &Features, backend: Option<&str>) -> Vec<BackendFinding> {
    let rows: Vec<&'static ConstructSupport> = match backend {
        Some(name) => construct_support(name).into_iter().collect(),
        None => CONSTRUCT_MATRIX.iter().collect(),
    };
    let mut out = Vec::new();
    for row in rows {
        check_row(features, row, &mut out);
    }
    out
}

fn check_row(f: &Features, row: &ConstructSupport, out: &mut Vec<BackendFinding>) {
    let mut push = |used: bool, construct: &'static str, sup: &Support, detail: Option<String>| {
        if !used {
            return;
        }
        if let Some(reason) = sup.reason() {
            out.push(BackendFinding {
                backend: row.backend,
                construct,
                status: sup.tag(),
                reason: reason.to_string(),
                detail,
                repairable: false,
                rewrite: None,
            });
        }
    };
    push(f.par, "par", &row.par, None);
    push(f.channels, "channels", &row.channels, None);
    push(f.delay, "delay", &row.delay, None);
    push(f.pointers, "pointers", &row.pointers, None);
    push(
        !f.multi_target_pointers.is_empty(),
        "multi_target_pointers",
        &row.multi_target_pointers,
        Some(format!("`{}`", f.multi_target_pointers.join("`, `"))),
    );
    push(
        f.data_dependent_loops,
        "data_dependent_loops",
        &row.data_dependent_loops,
        None,
    );
    push(
        f.timing_constraints,
        "timing_constraints",
        &row.timing_constraints,
        None,
    );
    if f.recursion {
        // Not a column of the construct matrix: the paper's surveyed
        // tools reject recursion unconditionally (no static elaboration
        // of an unbounded call stack), so every paradigm gets the row.
        out.push(BackendFinding {
            backend: row.backend,
            construct: "recursion",
            status: "rejected",
            reason: "recursive calls cannot be elaborated to static hardware; \
                     an acyclic call graph is required"
                .to_string(),
            detail: None,
            repairable: false,
            rewrite: None,
        });
    }
}
