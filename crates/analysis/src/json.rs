//! Hand-rolled JSON serialization of a [`crate::LintReport`].
//!
//! No serde in this tree (the container has no registry access), and the
//! report shape is small and fixed, so the emitter is written out by
//! hand. Field order is stable and documented in the README; spans are
//! byte offsets into the analyzed source file, so output is independent
//! of how a consumer counts lines.

use crate::LintReport;
use chls_frontend::diag::{Diagnostic, Severity};

/// Escapes a string for inclusion in a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

pub(crate) fn diag_json(d: &Diagnostic) -> String {
    let sev = match d.severity {
        Severity::Error => "error",
        Severity::Warning => "warning",
    };
    let notes = d
        .notes
        .iter()
        .map(|n| {
            format!(
                r#"{{"message":"{}","span":{{"start":{},"end":{}}}}}"#,
                escape(&n.message),
                n.span.start,
                n.span.end
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    format!(
        r#"{{"severity":"{sev}","message":"{}","span":{{"start":{},"end":{}}},"notes":[{notes}]}}"#,
        escape(&d.message),
        d.span.start,
        d.span.end
    )
}

fn opt_str(s: &Option<String>) -> String {
    match s {
        Some(s) => format!("\"{}\"", escape(s)),
        None => "null".to_string(),
    }
}

/// Serializes the whole report. Stable field order:
/// `entry`, `backend`, `races`, `warnings`, `features`, `backends`,
/// `cycles`, `memory`, `dead_branches`.
pub fn report_to_json(r: &LintReport) -> String {
    let races = r.races.iter().map(diag_json).collect::<Vec<_>>().join(",");
    let warnings = r
        .warnings
        .iter()
        .map(diag_json)
        .collect::<Vec<_>>()
        .join(",");
    let f = &r.features;
    let multi = f
        .multi_target_pointers
        .iter()
        .map(|n| format!("\"{}\"", escape(n)))
        .collect::<Vec<_>>()
        .join(",");
    let features = format!(
        r#"{{"par":{},"channels":{},"delay":{},"pointers":{},"multi_target_pointers":[{multi}],"data_dependent_loops":{},"timing_constraints":{},"recursion":{}}}"#,
        f.par,
        f.channels,
        f.delay,
        f.pointers,
        f.data_dependent_loops,
        f.timing_constraints,
        f.recursion
    );
    let backends = r
        .backend_findings
        .iter()
        .map(|b| {
            let rewrite = match b.rewrite {
                Some(p) => format!("\"{p}\""),
                None => "null".to_string(),
            };
            format!(
                r#"{{"backend":"{}","construct":"{}","status":"{}","reason":"{}","detail":{},"repairable":{},"rewrite":{rewrite}}}"#,
                b.backend,
                b.construct,
                b.status,
                escape(&b.reason),
                opt_str(&b.detail),
                b.repairable
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    let cycles = r
        .cycle_bounds
        .iter()
        .map(|c| {
            let max = match c.interval.max {
                Some(m) => m.to_string(),
                None => "null".to_string(),
            };
            format!(
                r#"{{"backend":"{}","min":{},"max":{max}}}"#,
                c.backend, c.interval.min
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    let memory = r.memory.iter().map(diag_json).collect::<Vec<_>>().join(",");
    let dead = r
        .dead_branches
        .iter()
        .map(diag_json)
        .collect::<Vec<_>>()
        .join(",");
    format!(
        r#"{{"entry":"{}","backend":{},"races":[{races}],"warnings":[{warnings}],"features":{features},"backends":[{backends}],"cycles":[{cycles}],"memory":[{memory}],"dead_branches":[{dead}]}}"#,
        escape(&r.entry),
        opt_str(&r.backend),
    )
}
