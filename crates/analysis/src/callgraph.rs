//! Call-graph queries over a whole [`HirProgram`].
//!
//! Semantic analysis already records per-function callee lists; this
//! module gives the lint and repair passes the program-level views they
//! need: reachability from an entry point and the recursive components
//! (Tarjan SCCs, computed by [`chls_frontend::recursion_cycles`])
//! restricted to what the entry can actually reach.

use chls_frontend::hir::{FuncId, HirProgram};
use std::collections::HashSet;

/// The program's call graph, edges taken from `HirFunc::callees`.
#[derive(Debug, Clone)]
pub struct CallGraph {
    /// `callees[f]` = functions `f` calls directly (deduplicated).
    pub callees: Vec<Vec<FuncId>>,
}

impl CallGraph {
    /// Builds the graph from the analyzed program.
    pub fn build(prog: &HirProgram) -> Self {
        let callees = prog
            .funcs
            .iter()
            .map(|f| {
                let mut cs = f.callees.clone();
                cs.sort_by_key(|c| c.0);
                cs.dedup();
                cs
            })
            .collect();
        CallGraph { callees }
    }

    /// Every function reachable from `entry`, including `entry` itself.
    pub fn reachable(&self, entry: FuncId) -> HashSet<FuncId> {
        let mut seen = HashSet::from([entry]);
        let mut work = vec![entry];
        while let Some(f) = work.pop() {
            for &c in &self.callees[f.0 as usize] {
                if seen.insert(c) {
                    work.push(c);
                }
            }
        }
        seen
    }

    /// The recursive components (self loops and mutual-recursion cycles)
    /// that `entry` can reach, in Tarjan discovery order.
    pub fn reachable_cycles(&self, prog: &HirProgram, entry: FuncId) -> Vec<Vec<FuncId>> {
        let reach = self.reachable(entry);
        chls_frontend::recursion_cycles(prog)
            .into_iter()
            .filter(|cycle| cycle.iter().any(|f| reach.contains(f)))
            .collect()
    }

    /// Whether any recursion is reachable from `entry`.
    pub fn has_reachable_recursion(&self, prog: &HirProgram, entry: FuncId) -> bool {
        !self.reachable_cycles(prog, entry).is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chls_frontend::compile_to_hir_relaxed;

    #[test]
    fn reachability_and_cycles() {
        let prog = compile_to_hir_relaxed(
            "int dead(int x) { return dead(x - 1); }
             uint<8> f(uint<4> n) { if (n < 2) return (uint<8>)n; return f(n - 1); }
             uint<8> main(uint<4> n) { return f(n); }",
        )
        .expect("relaxed frontend accepts recursion");
        let cg = CallGraph::build(&prog);
        let (main_id, _) = prog.func_by_name("main").unwrap();
        let (dead_id, _) = prog.func_by_name("dead").unwrap();
        let reach = cg.reachable(main_id);
        assert_eq!(reach.len(), 2);
        assert!(!reach.contains(&dead_id));
        let cycles = cg.reachable_cycles(&prog, main_id);
        assert_eq!(cycles.len(), 1, "only `f` recurses reachably");
        assert!(cg.has_reachable_recursion(&prog, main_id));
        assert!(!cg
            .reachable_cycles(&prog, dead_id)
            .iter()
            .any(|c| c.contains(&main_id)));
    }
}
