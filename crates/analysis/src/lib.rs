//! # chls-analysis
//!
//! Static analysis over HIR: everything `chls lint` knows how to say
//! about a program *before* any backend runs.
//!
//! Three analyses, each motivated by a failure mode the paper attributes
//! to C-like hardware languages:
//!
//! * **Par-race detection** ([`race`]) — `par` makes arm interleaving a
//!   hardware artifact; unsynchronized shared access is nondeterminism.
//!   The detector computes may-read/may-write effects ([`effects`]) per
//!   arm, resolving pointer accesses through the Andersen points-to
//!   query ([`chls_opt::points_to`]), and reports conflicting pairs with
//!   both source locations.
//! * **Per-backend synthesizability** ([`backend_lint`]) — the same
//!   program means nine different things to the nine paradigms; the lint
//!   reports pre-synthesis what each one rejects or penalizes.
//! * **Static cycle bounds** ([`cycles`]) — for the two backends whose
//!   timing rule is a sentence (Handel-C, Transmogrifier C), evaluate
//!   the rule statically to a `[min, max]` latency interval.
//! * **Process-network analysis** ([`flow`]) — the `chls flow` verb:
//!   SDF balance equations, structural deadlock detection via an
//!   abstract token game, minimal bounded-FIFO sizing, and `@ii(n)`
//!   timed-interface contract checking.
//! * **Dataflow lint clients** ([`memlint`]) — the abstract-interpretation
//!   engine in [`chls_ir::dataflow`] drives three definite-only checks
//!   over the prepared sequential IR: out-of-bounds accesses,
//!   uninitialized reads (of memories at the IR level and of scalars via
//!   a HIR must-init walk), and provably dead branches.
//!
//! The entry point is [`lint_program`]; `chls-core` wires it to the
//! `chls lint` CLI verb and [`json`] serializes the result.

pub mod backend_lint;
pub mod callgraph;
pub mod cycles;
pub mod effects;
pub mod flow;
pub mod json;
pub mod memlint;
pub mod race;
pub mod repair;

pub use backend_lint::{check_backends, detect_features, BackendFinding, Features};
pub use callgraph::CallGraph;
pub use repair::{assess_repairs, RepairAssessment, RepairVerdict};
pub use cycles::{handelc_block_interval, handelc_interval, transmogrifier_interval, Interval};
pub use effects::{block_effects, Access, AccessKind, Loc};
pub use flow::{flow_program, Balance, FlowReport};
pub use memlint::{check_dead_branches, check_memory, check_uninit_scalars};
pub use race::find_races;

use chls_backends::{construct_support, prepare_structured};
use chls_frontend::diag::Diagnostic;
use chls_frontend::hir::{HirFunc, HirProgram};
use chls_opt::points_to;
use std::fmt;

/// A static latency interval under one backend's timing rule.
#[derive(Debug, Clone, Copy)]
pub struct CycleBound {
    /// Backend whose rule was evaluated.
    pub backend: &'static str,
    /// The bound.
    pub interval: Interval,
}

/// Everything the lint pass found.
#[derive(Debug, Clone)]
pub struct LintReport {
    /// Entry function analyzed.
    pub entry: String,
    /// Backend filter the caller requested, if any.
    pub backend: Option<String>,
    /// Par-race diagnostics (error severity).
    pub races: Vec<Diagnostic>,
    /// Warnings carried over from semantic analysis (e.g. unused locals).
    pub warnings: Vec<Diagnostic>,
    /// Memory-safety diagnostics from the dataflow engine: definite
    /// out-of-bounds accesses (errors) and definite uninitialized reads
    /// (warnings), both at the IR level and for scalars at the HIR level.
    pub memory: Vec<Diagnostic>,
    /// Branches whose condition the interval analysis proves constant
    /// (warning severity).
    pub dead_branches: Vec<Diagnostic>,
    /// Constructs the (inlined) entry function exercises.
    pub features: Features,
    /// Per-backend rejections and penalties for those constructs.
    pub backend_findings: Vec<BackendFinding>,
    /// Static cycle bounds, for the timing-rule backends that apply.
    pub cycle_bounds: Vec<CycleBound>,
}

impl LintReport {
    /// Whether the program has findings that make synthesis fail or
    /// behave nondeterministically: any error-severity race (memory
    /// conflicts; channel-endpoint merges are warnings), any definite
    /// memory error (out of bounds), or (when a backend filter was
    /// given) any outright rejection by that backend.
    pub fn has_errors(&self) -> bool {
        self.races
            .iter()
            .any(|d| d.severity == chls_frontend::diag::Severity::Error)
            || self
                .memory
                .iter()
                .any(|d| d.severity == chls_frontend::diag::Severity::Error)
            || (self.backend.is_some() && self.backend_findings.iter().any(|f| f.is_rejection()))
    }

    /// Serializes the report to its documented JSON form.
    pub fn to_json(&self) -> String {
        json::report_to_json(self)
    }

    /// Renders the report as human-readable text, resolving spans
    /// against `src`.
    pub fn render(&self, src: &str) -> String {
        let mut out = String::new();
        for w in &self.warnings {
            out.push_str(&w.render(src));
            out.push('\n');
        }
        for r in &self.races {
            out.push_str(&r.render(src));
            out.push('\n');
        }
        for d in self.memory.iter().chain(&self.dead_branches) {
            out.push_str(&d.render(src));
            out.push('\n');
        }
        let used = self.used_constructs();
        if used.is_empty() {
            out.push_str("constructs: (none beyond plain sequential C)\n");
        } else {
            out.push_str(&format!("constructs: {}\n", used.join(", ")));
        }
        if !self.backend_findings.is_empty() {
            out.push_str("backend support:\n");
            for f in &self.backend_findings {
                let detail = f
                    .detail
                    .as_ref()
                    .map(|d| format!(" ({d})"))
                    .unwrap_or_default();
                let repair = match (f.repairable, f.rewrite) {
                    (true, Some(pass)) => {
                        format!(" [repairable: `chls rewrite` pass {pass}]")
                    }
                    (false, Some(_)) => " [not provably repairable]".to_string(),
                    _ => String::new(),
                };
                out.push_str(&format!(
                    "  {:<15} {:<9} {}{}: {}{}\n",
                    f.backend, f.status, f.construct, detail, f.reason, repair
                ));
            }
        }
        if !self.cycle_bounds.is_empty() {
            out.push_str("cycle bounds:\n");
            for c in &self.cycle_bounds {
                out.push_str(&format!("  {:<15} {} cycles\n", c.backend, c.interval));
            }
        }
        let rejections = self
            .backend_findings
            .iter()
            .filter(|f| f.is_rejection())
            .count();
        let penalties = self.backend_findings.len() - rejections;
        out.push_str(&format!(
            "summary: {} race{}, {} memory finding{}, {} dead branch{}, {} rejection{}, {} penalt{}\n",
            self.races.len(),
            if self.races.len() == 1 { "" } else { "s" },
            self.memory.len(),
            if self.memory.len() == 1 { "" } else { "s" },
            self.dead_branches.len(),
            if self.dead_branches.len() == 1 { "" } else { "es" },
            rejections,
            if rejections == 1 { "" } else { "s" },
            penalties,
            if penalties == 1 { "y" } else { "ies" },
        ));
        out
    }

    fn used_constructs(&self) -> Vec<String> {
        let f = &self.features;
        let mut v = Vec::new();
        if f.par {
            v.push("par".to_string());
        }
        if f.channels {
            v.push("channels".to_string());
        }
        if f.delay {
            v.push("delay".to_string());
        }
        if f.pointers {
            v.push("pointers".to_string());
        }
        if !f.multi_target_pointers.is_empty() {
            v.push(format!(
                "multi-target pointers (`{}`)",
                f.multi_target_pointers.join("`, `")
            ));
        }
        if f.data_dependent_loops {
            v.push("data-dependent loops".to_string());
        }
        if f.timing_constraints {
            v.push("timing constraints".to_string());
        }
        if f.recursion {
            v.push("recursion".to_string());
        }
        v
    }
}

/// Lint failure: the request itself was malformed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LintError {
    /// The entry function does not exist.
    NoSuchFunction(String),
    /// The backend filter names no known paradigm.
    UnknownBackend(String),
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LintError::NoSuchFunction(n) => write!(f, "no function named `{n}`"),
            LintError::UnknownBackend(b) => write!(f, "unknown backend `{b}`"),
        }
    }
}

impl std::error::Error for LintError {}

/// Runs every analysis over `prog`'s `entry` function.
///
/// Race detection and feature detection run on the *inlined* entry
/// function with pointers intact, so pointer accesses resolve through
/// points-to facts rather than being rewritten away first. Cycle bounds
/// run on the fully prepared form (`prepare_structured`) — the same HIR
/// the structured backends execute — and are omitted when preparation
/// fails (e.g. recursion) or when the timing-rule backend would reject
/// the program anyway.
pub fn lint_program(
    prog: &HirProgram,
    entry: &str,
    backend: Option<&str>,
) -> Result<LintReport, LintError> {
    if let Some(b) = backend {
        if construct_support(b).is_none() {
            return Err(LintError::UnknownBackend(b.to_string()));
        }
    }
    let (entry_id, entry_func) = prog
        .func_by_name(entry)
        .ok_or_else(|| LintError::NoSuchFunction(entry.to_string()))?;

    // Inline so effects of callees land in the caller's `par` arms; fall
    // back to the bare entry function when inlining fails (recursion),
    // which still lints the entry body itself.
    let inlined = chls_opt::inline_program(prog, entry_id).ok();
    let func: &HirFunc = inlined
        .as_ref()
        .map(|p| &p.funcs[0])
        .unwrap_or(entry_func);

    let pts = points_to(func);
    let races = find_races(func, &pts);
    let mut features = detect_features(func, &pts);
    // Recursion is a property of the call graph, not of any one body;
    // the relaxed frontend lets recursive programs reach the lint, and
    // here they become findings instead of parse-time death.
    let cg = callgraph::CallGraph::build(prog);
    features.recursion = cg.has_reachable_recursion(prog, entry_id);
    let mut backend_findings = check_backends(&features, backend);

    // Classify each rejection as mechanically repairable or not by
    // dry-running the certified rewriter (`chls rewrite`).
    if backend_findings.iter().any(|f| {
        matches!(
            f.construct,
            "recursion" | "pointers" | "multi_target_pointers" | "data_dependent_loops"
        )
    }) {
        let assessment = repair::assess_repairs(prog, entry);
        for f in &mut backend_findings {
            let v = assessment.verdict_for(f.construct);
            f.repairable = v.repairable;
            f.rewrite = v.rewrite;
        }
    }

    // Dataflow clients. Scalar use-before-init walks the inlined HIR
    // (SSA construction would erase the distinction); the memory and
    // dead-branch checks run on the prepared sequential IR, so they are
    // skipped when preparation fails (concurrency constructs,
    // recursion) — exactly the programs with no sequential lowering to
    // check.
    let mut memory = memlint::check_uninit_scalars(func);
    let mut dead_branches = Vec::new();
    if let Ok(prepared) = chls_backends::prepare_sequential(prog, entry, false) {
        memory.extend(memlint::check_memory(&prepared.func));
        dead_branches = memlint::check_dead_branches(&prepared.func);
    }

    let mut cycle_bounds = Vec::new();
    if let Ok(prepared) = prepare_structured(prog, entry) {
        let pf = &prepared.funcs[0];
        let wants = |b: &str| backend.is_none_or(|sel| sel == b);
        if wants("handelc") {
            cycle_bounds.push(CycleBound {
                backend: "handelc",
                interval: handelc_interval(pf),
            });
        }
        // The sequential pipeline (and hence Transmogrifier) refuses
        // concurrency constructs; no rule to evaluate then.
        if wants("transmogrifier") && !features.par && !features.channels && !features.delay {
            cycle_bounds.push(CycleBound {
                backend: "transmogrifier",
                interval: transmogrifier_interval(pf),
            });
        }
    }

    Ok(LintReport {
        entry: entry.to_string(),
        backend: backend.map(str::to_string),
        races,
        warnings: prog.warnings.clone(),
        memory,
        dead_branches,
        features,
        backend_findings,
        cycle_bounds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use chls_frontend::compile_to_hir;

    fn hir(src: &str) -> HirProgram {
        compile_to_hir(src).expect("compile")
    }

    #[test]
    fn clean_program_has_no_races() {
        let prog = hir("int main(int a) { int x = 0; int y = 0; par { { x = a; } { y = a + 1; } } return x + y; }");
        let r = lint_program(&prog, "main", None).unwrap();
        assert!(r.races.is_empty(), "races: {:?}", r.races);
        assert!(!r.has_errors());
        assert!(r.features.par);
    }

    #[test]
    fn direct_write_write_race_is_detected() {
        let prog = hir("int main() { int x = 0; par { { x = 1; } { x = 2; } } return x; }");
        let r = lint_program(&prog, "main", None).unwrap();
        assert_eq!(r.races.len(), 1);
        assert!(r.races[0].message.contains("write/write race on `x`"));
        assert_eq!(r.races[0].notes.len(), 2, "both accesses must be anchored");
        assert!(r.has_errors());
    }

    #[test]
    fn pointer_alias_race_is_detected_via_points_to() {
        // The acceptance-criterion program: the second arm writes through
        // `p`, which aliases `x` only per the points-to analysis.
        let prog =
            hir("int main() { int x = 0; int *p = &x; par { { x = 1; } { *p = 2; } } return x; }");
        let r = lint_program(&prog, "main", None).unwrap();
        assert_eq!(r.races.len(), 1, "races: {:?}", r.races);
        let d = &r.races[0];
        assert!(
            d.message.contains("race on `x`") && d.message.contains("`p`"),
            "message should name both the location and the pointer: {}",
            d.message
        );
    }

    #[test]
    fn read_write_race_is_detected() {
        let prog = hir("int main() { int x = 0; int y = 0; par { { x = 1; } { y = x; } } return y; }");
        let r = lint_program(&prog, "main", None).unwrap();
        assert_eq!(r.races.len(), 1);
        assert!(r.races[0].message.contains("read/write race on `x`"));
    }

    #[test]
    fn send_recv_pair_is_not_a_race() {
        let prog = hir(
            "int main(int a) { chan<int> c; int got = 0; par { { send(c, a); } { got = recv(c); } } return got; }",
        );
        let r = lint_program(&prog, "main", None).unwrap();
        assert!(r.races.is_empty(), "rendezvous is not a race: {:?}", r.races);
    }

    #[test]
    fn competing_senders_are_a_nondeterministic_merge_warning() {
        let prog = hir(
            "int main(int a) { chan<int> c; int got = 0; par { { send(c, a); } { send(c, a + 1); } { got = recv(c); got = got + recv(c); } } return got; }",
        );
        let r = lint_program(&prog, "main", None).unwrap();
        let d = r
            .races
            .iter()
            .find(|d| d.message.contains("send/send"))
            .expect("merge reported");
        assert!(
            d.message.contains("nondeterministic merge"),
            "message: {}",
            d.message
        );
        assert_eq!(d.severity, chls_frontend::diag::Severity::Warning);
        // A merge alone is not an error — the program still completes.
        assert!(!r.has_errors());
    }

    #[test]
    fn competing_receivers_are_warned_too() {
        let prog = hir(
            "int main(int a) { chan<int> c; int x = 0; int y = 0; par { { send(c, a); send(c, a + 1); } { x = recv(c); } { y = recv(c); } } return x + y; }",
        );
        let r = lint_program(&prog, "main", None).unwrap();
        assert!(
            r.races.iter().any(|d| d.message.contains("recv/recv")
                && d.message.contains("nondeterministic merge")),
            "races: {:?}",
            r.races
        );
        assert!(!r.has_errors());
    }

    #[test]
    fn race_through_inlined_callee() {
        // The write hides inside a callee; inlining exposes it.
        let prog = hir(
            "void bump(int *q) { *q = 7; } int main() { int x = 0; par { { x = 1; } { bump(&x); } } return x; }",
        );
        let r = lint_program(&prog, "main", None).unwrap();
        assert_eq!(r.races.len(), 1, "races: {:?}", r.races);
    }

    #[test]
    fn disjoint_arms_are_clean_even_with_pointers() {
        let prog = hir(
            "int main() { int x = 0; int y = 0; int *p = &y; par { { x = 1; } { *p = 2; } } return x + y; }",
        );
        let r = lint_program(&prog, "main", None).unwrap();
        assert!(r.races.is_empty(), "p targets only y: {:?}", r.races);
    }

    #[test]
    fn backend_findings_flag_rejections() {
        let prog = hir("int main() { int x = 0; par { { x = 1; } { delay; } } return x; }");
        let r = lint_program(&prog, "main", None).unwrap();
        // Every sequential-pipeline backend must reject `par`.
        for b in ["transmogrifier", "c2v", "cash", "cones", "cyber"] {
            assert!(
                r.backend_findings
                    .iter()
                    .any(|f| f.backend == b && f.construct == "par" && f.is_rejection()),
                "{b} should reject par"
            );
        }
        // Handel-C is the paradigm built for this program.
        assert!(!r
            .backend_findings
            .iter()
            .any(|f| f.backend == "handelc" && f.is_rejection()));
    }

    #[test]
    fn backend_filter_limits_findings_and_flags_errors() {
        let prog = hir("int main() { chan<int> c; int x = 0; par { { send(c, 3); } { x = recv(c); } } return x; }");
        let all = lint_program(&prog, "main", None).unwrap();
        assert!(!all.has_errors(), "no filter: rejections are informative");
        let one = lint_program(&prog, "main", Some("cones")).unwrap();
        assert!(one.backend_findings.iter().all(|f| f.backend == "cones"));
        assert!(one.has_errors(), "cones rejects this program");
    }

    #[test]
    fn unknown_backend_is_an_error() {
        let prog = hir("int main() { return 0; }");
        assert_eq!(
            lint_program(&prog, "main", Some("vhdl")).err(),
            Some(LintError::UnknownBackend("vhdl".to_string()))
        );
        assert_eq!(
            lint_program(&prog, "nope", None).err(),
            Some(LintError::NoSuchFunction("nope".to_string()))
        );
    }

    #[test]
    fn handelc_bound_is_exact_for_straight_line() {
        // entry + 3 assignments (x=a, x=x+1, ret) + done... the return
        // carries its own cycle: entry(1) + x=a(1) + x=x+1(1) + ret(1)
        // + done(1) = 5.
        let prog = hir("int main(int a) { int x = a; x = x + 1; return x; }");
        let r = lint_program(&prog, "main", Some("handelc")).unwrap();
        let b = &r.cycle_bounds[0];
        assert_eq!(b.backend, "handelc");
        assert_eq!(b.interval, Interval::exact(5), "got {}", b.interval);
    }

    #[test]
    fn transmogrifier_bound_is_two_for_straight_line() {
        let prog = hir("int main(int a) { int x = a; x = x + 1; return x; }");
        let r = lint_program(&prog, "main", Some("transmogrifier")).unwrap();
        assert_eq!(r.cycle_bounds[0].interval, Interval::exact(2));
    }

    #[test]
    fn counted_loop_bounds_are_finite() {
        let prog = hir(
            "int main(int a) { int acc = 0; for (int i = 0; i < 4; i = i + 1) { acc = acc + a; } return acc; }",
        );
        let r = lint_program(&prog, "main", None).unwrap();
        for b in &r.cycle_bounds {
            assert!(b.interval.max.is_some(), "{}: {}", b.backend, b.interval);
        }
    }

    #[test]
    fn data_dependent_loop_is_unbounded_above() {
        let prog = hir("int main(int a) { int x = a; while (x > 1) { x = x - 2; } return x; }");
        let r = lint_program(&prog, "main", Some("handelc")).unwrap();
        let b = &r.cycle_bounds[0];
        assert!(b.interval.max.is_none());
        assert!(r.features.data_dependent_loops);
    }

    #[test]
    fn unused_local_warning_is_carried() {
        let prog = hir("int main(int a) { int dead = a; int x = a + 1; return x; }");
        let r = lint_program(&prog, "main", None).unwrap();
        assert!(
            r.warnings.iter().any(|w| w.message.contains("dead")),
            "warnings: {:?}",
            r.warnings
        );
    }

    #[test]
    fn json_is_stable_and_escaped() {
        let prog = hir("int main() { int x = 0; par { { x = 1; } { x = 2; } } return x; }");
        let r = lint_program(&prog, "main", None).unwrap();
        let j = r.to_json();
        assert!(j.starts_with(r#"{"entry":"main","backend":null,"races":["#));
        assert!(j.contains(r#""features":{"par":true"#));
        assert!(j.contains(r#""cycles":["#));
        // Same input, same output.
        assert_eq!(j, lint_program(&prog, "main", None).unwrap().to_json());
    }
}
