//! Dataflow-backed lint clients: out-of-bounds accesses, uninitialized
//! reads, and provably dead branches.
//!
//! The memory and branch checks run on the *prepared sequential* IR —
//! the same inlined, unrolled, pointer-free SSA the compiler-scheduled
//! backends consume — so pointer accesses have already been resolved to
//! concrete memory indices by the Andersen-based pointer lowering, and
//! the interval facts from [`chls_ir::dataflow`] apply directly to every
//! load and store address.
//!
//! All three checks are **definite-only**: a diagnostic is emitted only
//! when the analysis proves the bad behavior on every execution that
//! reaches the access (out of bounds: the whole address interval lies
//! outside the extent; uninitialized: the may-written interval is
//! provably disjoint from the read). Possible-but-unproven badness stays
//! silent, so a lint-clean corpus has zero false positives by
//! construction.
//!
//! The scalar uninitialized-read check works on the inlined HIR instead:
//! SSA construction erases the distinction between "never assigned" and
//! "assigned zero", so the walk happens before lowering, tracking the
//! must-initialized set across structured control flow.

use chls_frontend::diag::Diagnostic;
use chls_frontend::hir::{HirArg, HirBlock, HirExpr, HirExprKind, HirFunc, HirPlace, HirStmt};
use chls_frontend::span::Span;
use chls_frontend::types::Type;
use chls_ir::dataflow::{may_written_on_entry, value_ranges, Range};
use chls_ir::{Function, InstKind, MemSource};

/// Checks every load and store of `f` (prepared sequential IR) against
/// the interval facts: definite out-of-bounds accesses (error) and
/// definite reads of never-written local memories (warning).
pub fn check_memory(f: &Function) -> Vec<Diagnostic> {
    let ranges = value_ranges(f);
    let written = may_written_on_entry(f, &ranges);
    let mut out = Vec::new();
    // Walk blocks in RPO so diagnostics come out in a stable,
    // execution-plausible order, and only reachable code is checked.
    for b in f.reverse_postorder() {
        // Per-memory may-written facts, advanced store by store so a
        // read later in the same block sees the stores before it.
        let mut wr = written[b.0 as usize].clone();
        for &v in &f.block(b).insts {
            match f.inst(v).kind {
                InstKind::Load { mem, addr } => {
                    let r = ranges[addr.0 as usize];
                    let m = f.mem(mem);
                    if let Some(d) = check_bounds("read", &m.name, m.len, r, f.span_of(v)) {
                        out.push(d);
                        continue;
                    }
                    // ROMs and caller-supplied arrays arrive initialized;
                    // only locally-declared read/write memories can be
                    // read before any store.
                    if m.rom.is_some() || !matches!(m.source, MemSource::Local) {
                        continue;
                    }
                    let detail = match wr[mem.0 as usize] {
                        None => "no store reaches this read".to_string(),
                        Some(w) if w.intersect(r).is_none() => format!(
                            "the read hits {} but stores cover only {}",
                            describe_indices(r),
                            describe_indices(w),
                        ),
                        Some(_) => continue,
                    };
                    out.push(Diagnostic::warning(
                        format!("read of uninitialized memory `{}`: {detail}", m.name),
                        f.span_of(v),
                    ));
                }
                InstKind::Store { mem, addr, .. } => {
                    let r = ranges[addr.0 as usize];
                    let m = f.mem(mem);
                    if let Some(d) = check_bounds("write", &m.name, m.len, r, f.span_of(v)) {
                        out.push(d);
                    }
                    let slot = &mut wr[mem.0 as usize];
                    *slot = Some(match *slot {
                        None => r,
                        Some(w) => w.union(r),
                    });
                }
                _ => {}
            }
        }
    }
    out
}

/// A definite out-of-bounds diagnostic, when the whole address interval
/// misses `[0, len)`.
fn check_bounds(what: &str, name: &str, len: usize, r: Range, span: Span) -> Option<Diagnostic> {
    if r.lo >= len as i128 || r.hi < 0 {
        Some(Diagnostic::error(
            format!(
                "out-of-bounds {what} of `{name}`: {} but the extent is {len}",
                describe_indices(r),
            ),
            span,
        ))
    } else {
        None
    }
}

fn describe_indices(r: Range) -> String {
    if r.is_const() {
        format!("index {}", r.lo)
    } else if r.hi - r.lo >= (1 << 31) {
        // A fully-unknown index reads better than an astronomically
        // wide interval.
        "an unknown index".to_string()
    } else {
        format!("indices [{}, {}]", r.lo, r.hi)
    }
}

/// Reports branches whose condition the interval analysis proves
/// constant: the other side is dead.
pub fn check_dead_branches(f: &Function) -> Vec<Diagnostic> {
    chls_opt::narrow::dead_branches(f)
        .into_iter()
        .map(|(_, cond, taken)| {
            Diagnostic::warning(
                format!(
                    "branch condition is always {}; the {} branch is unreachable",
                    taken,
                    if taken { "false" } else { "true" },
                ),
                f.span_of(cond),
            )
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Scalar use-before-initialization (HIR walk)
// ---------------------------------------------------------------------------

struct UninitWalk<'a> {
    func: &'a HirFunc,
    /// Must-initialized bit per local.
    init: Vec<bool>,
    /// Already reported (one diagnostic per local).
    reported: Vec<bool>,
    /// Span of the nearest enclosing span-carrying statement, used for
    /// reads inside conditions (which carry no span of their own).
    cur_span: Span,
    out: Vec<Diagnostic>,
}

/// Walks the (inlined) entry function and warns on scalar and pointer
/// locals that may be read before any assignment.
///
/// The walk tracks the must-initialized set: both arms of an `if` must
/// initialize a local for it to count afterwards, loop bodies may run
/// zero times, and `par` arms all complete before the join. A local
/// whose address is taken is conservatively treated as initialized from
/// that point on (writes through the pointer are invisible here).
pub fn check_uninit_scalars(func: &HirFunc) -> Vec<Diagnostic> {
    let n = func.locals.len();
    let mut init = vec![false; n];
    for (i, l) in func.locals.iter().enumerate() {
        // Parameters arrive initialized; arrays are covered by the
        // IR-level memory check; channels have no "value" to read.
        if l.is_param || !matches!(l.ty, Type::Bool | Type::Int(_) | Type::Ptr(_)) {
            init[i] = true;
        }
    }
    let mut w = UninitWalk {
        func,
        init,
        reported: vec![false; n],
        cur_span: Span::dummy(),
        out: Vec::new(),
    };
    w.block(&func.body);
    w.out
}

impl UninitWalk<'_> {
    fn block(&mut self, b: &HirBlock) {
        for s in &b.stmts {
            self.stmt(s);
        }
    }

    fn stmt(&mut self, s: &HirStmt) {
        match s {
            HirStmt::Assign { place, value, span } => {
                self.cur_span = *span;
                self.expr(value);
                self.place_writes(place);
            }
            HirStmt::Call {
                dst, args, span, ..
            } => {
                self.cur_span = *span;
                for a in args {
                    match a {
                        HirArg::Value(e) => self.expr(e),
                        HirArg::Array(_) => {}
                    }
                }
                if let Some(p) = dst {
                    self.place_writes(p);
                }
            }
            HirStmt::Recv { dst, span, .. } => {
                self.cur_span = *span;
                self.place_writes(dst);
            }
            HirStmt::Send { value, span, .. } => {
                self.cur_span = *span;
                self.expr(value);
            }
            HirStmt::If { cond, then, els } => {
                self.expr(cond);
                let before = self.init.clone();
                self.block(then);
                let after_then = std::mem::replace(&mut self.init, before);
                self.block(els);
                for (a, t) in self.init.iter_mut().zip(&after_then) {
                    *a = *a && *t;
                }
            }
            HirStmt::While { cond, body, .. } => {
                self.expr(cond);
                let before = self.init.clone();
                self.block(body);
                // Zero iterations are possible: body assignments don't
                // survive the loop.
                self.init = before;
            }
            HirStmt::DoWhile { body, cond } => {
                // The body runs at least once, so its assignments count.
                self.block(body);
                self.expr(cond);
            }
            HirStmt::For {
                init: ini,
                cond,
                step,
                body,
                ..
            } => {
                self.block(ini);
                self.expr(cond);
                let before = self.init.clone();
                self.block(body);
                self.block(step);
                self.init = before;
            }
            HirStmt::Return(e) => {
                if let Some(e) = e {
                    self.expr(e);
                }
            }
            HirStmt::Break | HirStmt::Continue | HirStmt::Delay => {}
            HirStmt::Block(b) => self.block(b),
            HirStmt::Par(arms) => {
                // Every arm runs to completion before the join, so the
                // post-par set is the union of all arms' assignments.
                let before = self.init.clone();
                let mut after = before.clone();
                for arm in arms {
                    self.init = before.clone();
                    self.block(arm);
                    for (a, x) in after.iter_mut().zip(&self.init) {
                        *a = *a || *x;
                    }
                }
                self.init = after;
            }
            HirStmt::Constraint { body, .. } => self.block(body),
        }
    }

    fn place_writes(&mut self, p: &HirPlace) {
        match p {
            HirPlace::Local(id) => self.init[id.0 as usize] = true,
            HirPlace::Global(_) => {}
            HirPlace::Index { base, index } => {
                self.expr(index);
                // Writing one element initializes neither the array (the
                // IR check tracks that) nor its root as a scalar.
                let _ = base;
            }
            HirPlace::Deref(e) => self.expr(e),
        }
    }

    fn place_reads(&mut self, p: &HirPlace) {
        match p {
            HirPlace::Local(id) => {
                let i = id.0 as usize;
                if !self.init[i] && !self.reported[i] {
                    self.reported[i] = true;
                    self.out.push(Diagnostic::warning(
                        format!(
                            "`{}` may be read before it is initialized",
                            self.func.local(*id).name
                        ),
                        self.cur_span,
                    ));
                }
            }
            HirPlace::Global(_) => {}
            HirPlace::Index { base, index } => {
                self.expr(index);
                // Array-element reads are the IR check's job; only the
                // index expression needs scalar tracking.
                let _ = base;
            }
            HirPlace::Deref(e) => self.expr(e),
        }
    }

    fn expr(&mut self, e: &HirExpr) {
        match &e.kind {
            HirExprKind::Const(_) => {}
            HirExprKind::Load(p) => self.place_reads(p),
            HirExprKind::AddrOf(p) => {
                // Taking the address lets writes escape the walk; treat
                // the local as initialized from here on rather than risk
                // a false positive on `*p = ...; use(x);`.
                if let HirPlace::Local(id) = &**p {
                    self.init[id.0 as usize] = true;
                }
                if let HirPlace::Index { index, .. } = &**p {
                    self.expr(index);
                }
            }
            HirExprKind::Unary(_, a) | HirExprKind::Cast(a) => self.expr(a),
            HirExprKind::Binary(_, a, b) => {
                self.expr(a);
                self.expr(b);
            }
            HirExprKind::Select(c, t, f) => {
                self.expr(c);
                self.expr(t);
                self.expr(f);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chls_backends::prepare_sequential;
    use chls_frontend::compile_to_hir;

    fn prepared(src: &str) -> Function {
        let prog = compile_to_hir(src).expect("compile");
        prepare_sequential(&prog, "main", false).expect("prepare").func
    }

    fn uninit(src: &str) -> Vec<Diagnostic> {
        let prog = compile_to_hir(src).expect("compile");
        let (_, f) = prog.func_by_name("main").expect("main");
        check_uninit_scalars(f)
    }

    #[test]
    fn constant_index_out_of_bounds_is_an_error() {
        let f = prepared("int main() { int a[8]; a[0] = 1; return a[9]; }");
        let ds = check_memory(&f);
        assert!(
            ds.iter().any(|d| d.message.contains("out-of-bounds read")
                && d.message.contains("index 9")
                && d.message.contains("extent is 8")),
            "diags: {ds:?}"
        );
    }

    #[test]
    fn interval_entirely_outside_is_an_error() {
        // The loop writes a[8..12) of an 8-element array: every store
        // in the range is out of bounds.
        let f = prepared(
            "int main() { int a[8]; a[0] = 1;
               for (int i = 8; i < 12; i++) { a[i] = i; }
               return a[0]; }",
        );
        let ds = check_memory(&f);
        assert!(
            ds.iter()
                .any(|d| d.message.contains("out-of-bounds write") && d.message.contains("`a`")),
            "diags: {ds:?}"
        );
    }

    #[test]
    fn partially_out_of_bounds_is_not_flagged() {
        // i in [0, 11] overlaps [0, 8): not *definitely* wrong, so the
        // definite-only lint stays silent.
        let f = prepared(
            "int main(int n) { int a[8];
               for (int i = 0; i < 12; i++) { a[i & 7] = i; }
               return a[n & 7]; }",
        );
        let ds = check_memory(&f);
        assert!(ds.is_empty(), "diags: {ds:?}");
    }

    #[test]
    fn read_of_never_written_local_array_warns() {
        let f = prepared("int main(int i) { int a[4]; return a[i & 3]; }");
        let ds = check_memory(&f);
        assert!(
            ds.iter()
                .any(|d| d.message.contains("uninitialized memory `a`")),
            "diags: {ds:?}"
        );
    }

    #[test]
    fn read_disjoint_from_all_writes_warns() {
        let f = prepared(
            "int main() { int a[8];
               for (int i = 0; i < 4; i++) { a[i] = i; }
               return a[6]; }",
        );
        let ds = check_memory(&f);
        assert!(
            ds.iter()
                .any(|d| d.message.contains("uninitialized memory `a`")
                    && d.message.contains("index 6")),
            "diags: {ds:?}"
        );
    }

    #[test]
    fn write_then_read_is_clean() {
        let f = prepared(
            "int main(int x) { int a[8];
               for (int i = 0; i < 8; i++) { a[i] = x + i; }
               int s = 0;
               for (int j = 0; j < 8; j++) { s = s + a[j]; }
               return s; }",
        );
        let ds = check_memory(&f);
        assert!(ds.is_empty(), "diags: {ds:?}");
    }

    #[test]
    fn rom_and_param_arrays_are_initialized() {
        let f = prepared(
            "const int t[4] = {1, 2, 3, 4};
             int main(int x[4], int i) { return t[i & 3] + x[i & 3]; }",
        );
        let ds = check_memory(&f);
        assert!(ds.is_empty(), "diags: {ds:?}");
    }

    #[test]
    fn dead_branch_is_reported() {
        let f = prepared(
            "int main(int x) { int m = x & 15; if (m < 100) { return m; } return 0; }",
        );
        let ds = check_dead_branches(&f);
        assert_eq!(ds.len(), 1, "diags: {ds:?}");
        assert!(ds[0].message.contains("always true"), "{}", ds[0].message);
    }

    #[test]
    fn scalar_read_before_init_warns_once() {
        let ds = uninit("int main() { int x; int y = x + x; return y; }");
        assert_eq!(ds.len(), 1, "diags: {ds:?}");
        assert!(ds[0].message.contains("`x`"), "{}", ds[0].message);
    }

    #[test]
    fn one_armed_if_does_not_initialize() {
        let ds = uninit(
            "int main(int a) { int x; if (a > 0) { x = 1; } return x; }",
        );
        assert_eq!(ds.len(), 1, "diags: {ds:?}");
    }

    #[test]
    fn both_arms_initialize() {
        let ds = uninit(
            "int main(int a) { int x; if (a > 0) { x = 1; } else { x = 2; } return x; }",
        );
        assert!(ds.is_empty(), "diags: {ds:?}");
    }

    #[test]
    fn loop_body_may_not_run() {
        let ds = uninit(
            "int main(int a) { int x; while (a > 0) { x = a; a = a - 1; } return x; }",
        );
        assert_eq!(ds.len(), 1, "diags: {ds:?}");
    }

    #[test]
    fn do_while_body_always_runs() {
        let ds = uninit(
            "int main(int a) { int x; do { x = a; a = a - 1; } while (a > 0); return x; }",
        );
        assert!(ds.is_empty(), "diags: {ds:?}");
    }

    #[test]
    fn address_taken_local_is_not_flagged() {
        let ds = uninit("int main() { int x; int *p = &x; *p = 5; return x; }");
        assert!(ds.is_empty(), "diags: {ds:?}");
    }

    #[test]
    fn params_and_plain_initializers_are_clean() {
        let ds = uninit("int main(int a) { int x = a * 2; return x; }");
        assert!(ds.is_empty(), "diags: {ds:?}");
    }
}
