//! May-read/may-write effect analysis over HIR statements.
//!
//! The effect lattice is deliberately coarse: each access touches one
//! abstract location — a whole local (scalar or array, index-insensitive),
//! a global ROM, or a channel endpoint. Pointer dereferences resolve
//! through the Andersen points-to query ([`chls_opt::ptr::points_to`]),
//! so `*p` contributes one access per local `p` may target. Coarseness
//! errs toward reporting: a `par` arm writing `a[0]` while a sibling
//! writes `a[1]` is flagged even though the cells differ, exactly as
//! Handel-C's own rule ("no two arms may touch the same variable in the
//! same cycle") would have it.

use chls_frontend::hir::*;
use chls_frontend::Span;
use chls_opt::PointsTo;

/// An abstract storage location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Loc {
    /// A scalar or whole-array local.
    Local(LocalId),
    /// A global constant table.
    Global(GlobalId),
    /// A channel endpoint (the channel-typed local).
    Chan(LocalId),
}

/// Read or write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// The location is read (for channels: a `recv`).
    Read,
    /// The location is written (for channels: a `send`).
    Write,
}

/// One access to one abstract location.
#[derive(Debug, Clone)]
pub struct Access {
    /// What is touched.
    pub loc: Loc,
    /// How.
    pub kind: AccessKind,
    /// Statement the access occurs in, when the statement carries one
    /// (condition reads of `if`/`while` do not).
    pub span: Option<Span>,
    /// The pointer local the access went through, for `*p` accesses.
    pub via: Option<LocalId>,
}

/// Collects every access a block may perform, resolving `Deref` places
/// through `pts`.
pub fn block_effects(block: &HirBlock, pts: &PointsTo, out: &mut Vec<Access>) {
    for stmt in &block.stmts {
        stmt_effects(stmt, pts, out);
    }
}

fn stmt_effects(stmt: &HirStmt, pts: &PointsTo, out: &mut Vec<Access>) {
    match stmt {
        HirStmt::Assign { place, value, span } => {
            place_effects(place, AccessKind::Write, Some(*span), pts, out);
            expr_effects(value, Some(*span), pts, out);
        }
        HirStmt::Call {
            dst, args, span, ..
        } => {
            // Calls survive only when the caller skipped inlining; be
            // conservative: arguments are read, by-reference arrays are
            // both read and written, the destination is written.
            if let Some(p) = dst {
                place_effects(p, AccessKind::Write, Some(*span), pts, out);
            }
            for a in args {
                match a {
                    HirArg::Value(e) => expr_effects(e, Some(*span), pts, out),
                    HirArg::Array(p) => {
                        place_effects(p, AccessKind::Read, Some(*span), pts, out);
                        place_effects(p, AccessKind::Write, Some(*span), pts, out);
                    }
                }
            }
        }
        HirStmt::Recv { dst, chan, span } => {
            out.push(Access {
                loc: Loc::Chan(*chan),
                kind: AccessKind::Read,
                span: Some(*span),
                via: None,
            });
            place_effects(dst, AccessKind::Write, Some(*span), pts, out);
        }
        HirStmt::Send { chan, value, span } => {
            out.push(Access {
                loc: Loc::Chan(*chan),
                kind: AccessKind::Write,
                span: Some(*span),
                via: None,
            });
            expr_effects(value, Some(*span), pts, out);
        }
        HirStmt::If { cond, then, els } => {
            expr_effects(cond, None, pts, out);
            block_effects(then, pts, out);
            block_effects(els, pts, out);
        }
        HirStmt::While { cond, body, .. } => {
            expr_effects(cond, None, pts, out);
            block_effects(body, pts, out);
        }
        HirStmt::DoWhile { body, cond } => {
            block_effects(body, pts, out);
            expr_effects(cond, None, pts, out);
        }
        HirStmt::For {
            init,
            cond,
            step,
            body,
            ..
        } => {
            block_effects(init, pts, out);
            expr_effects(cond, None, pts, out);
            block_effects(step, pts, out);
            block_effects(body, pts, out);
        }
        HirStmt::Return(v) => {
            if let Some(e) = v {
                expr_effects(e, None, pts, out);
            }
        }
        HirStmt::Break | HirStmt::Continue | HirStmt::Delay => {}
        HirStmt::Block(b) => block_effects(b, pts, out),
        HirStmt::Par(arms) => {
            for arm in arms {
                block_effects(arm, pts, out);
            }
        }
        HirStmt::Constraint { body, .. } => block_effects(body, pts, out),
    }
}

/// Accesses performed by evaluating `e` (reads only; expressions are
/// side-effect free in HIR).
fn expr_effects(e: &HirExpr, span: Option<Span>, pts: &PointsTo, out: &mut Vec<Access>) {
    match &e.kind {
        HirExprKind::Const(_) => {}
        HirExprKind::Load(p) => place_effects(p, AccessKind::Read, span, pts, out),
        HirExprKind::Unary(_, a) | HirExprKind::Cast(a) => expr_effects(a, span, pts, out),
        HirExprKind::Binary(_, a, b) => {
            expr_effects(a, span, pts, out);
            expr_effects(b, span, pts, out);
        }
        HirExprKind::Select(c, t, f) => {
            expr_effects(c, span, pts, out);
            expr_effects(t, span, pts, out);
            expr_effects(f, span, pts, out);
        }
        // Taking an address reads nothing by itself.
        HirExprKind::AddrOf(p) => {
            // But computing an element address reads the index.
            if let HirPlace::Index { index, .. } = &**p {
                expr_effects(index, span, pts, out);
            }
        }
    }
}

/// Accesses for touching a place with the given kind.
fn place_effects(
    place: &HirPlace,
    kind: AccessKind,
    span: Option<Span>,
    pts: &PointsTo,
    out: &mut Vec<Access>,
) {
    match place {
        HirPlace::Local(id) => out.push(Access {
            loc: Loc::Local(*id),
            kind,
            span,
            via: None,
        }),
        HirPlace::Global(g) => out.push(Access {
            loc: Loc::Global(*g),
            kind,
            span,
            via: None,
        }),
        HirPlace::Index { base, index } => {
            expr_effects(index, span, pts, out);
            place_effects(base, kind, span, pts, out);
        }
        HirPlace::Deref(ptr) => {
            expr_effects(ptr, span, pts, out);
            // The access lands on everything the pointer may target.
            let (pointers, direct) = deref_sources(ptr);
            for p in pointers {
                for target in pts.targets(p) {
                    out.push(Access {
                        loc: Loc::Local(target),
                        kind,
                        span,
                        via: Some(p),
                    });
                }
            }
            // `*(&x + i)`-style derefs hit the addressed object directly.
            for target in direct {
                out.push(Access {
                    loc: Loc::Local(target),
                    kind,
                    span,
                    via: None,
                });
            }
        }
    }
}

/// The locals a dereferenced expression may route through: pointer-typed
/// locals (to resolve via points-to) and locals addressed inline with
/// `&x` (hit directly).
fn deref_sources(e: &HirExpr) -> (Vec<LocalId>, Vec<LocalId>) {
    let mut pointers = Vec::new();
    let mut direct = Vec::new();
    gather_sources(e, &mut pointers, &mut direct);
    (pointers, direct)
}

fn gather_sources(e: &HirExpr, pointers: &mut Vec<LocalId>, direct: &mut Vec<LocalId>) {
    match &e.kind {
        HirExprKind::Load(p) => {
            if let HirPlace::Local(id) = &**p {
                pointers.push(*id);
            }
        }
        HirExprKind::AddrOf(p) => {
            if let Some(id) = p.root_local() {
                direct.push(id);
            }
        }
        HirExprKind::Const(_) => {}
        HirExprKind::Unary(_, a) | HirExprKind::Cast(a) => gather_sources(a, pointers, direct),
        HirExprKind::Binary(_, a, b) => {
            gather_sources(a, pointers, direct);
            gather_sources(b, pointers, direct);
        }
        HirExprKind::Select(c, t, f) => {
            gather_sources(c, pointers, direct);
            gather_sources(t, pointers, direct);
            gather_sources(f, pointers, direct);
        }
    }
}
