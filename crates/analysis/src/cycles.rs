//! Static cycle bounds under published timing rules.
//!
//! For the two backends whose timing rule is simple enough to state in a
//! sentence — Handel-C ("each assignment statement runs in one cycle")
//! and Transmogrifier C ("only loop iterations take a cycle") — the rule
//! is also simple enough to *evaluate statically*. This module computes a
//! sound interval `[min, max]` of clock-cycle counts per entry function,
//! so a designer can read the latency off the source before synthesis.
//!
//! Bounds cover terminating runs: a loop whose trip count the canonical
//! recognizer ([`chls_opt::unroll::recognize`]) cannot pin down yields an
//! unbounded maximum (`max = None`), never a wrong finite one.
//!
//! ### Handel-C accounting (matches `chls_backends::handelc`)
//!
//! * assignment, `delay`, `send`, `recv`: one cycle each;
//! * decisions, `break`, `continue`: free;
//! * `return`: one cycle, even bare;
//! * `par`: lockstep — without channels, the join costs the element-wise
//!   max of the arms; with channels, arms may stall for each other, so
//!   the max degrades to the *sum* of arm maxima (each cycle some arm
//!   commits a cycle node, else the program is deadlocked and diverges);
//! * plus one entry cycle (parameter latch) and one `Done` cycle.
//!
//! ### Transmogrifier accounting (matches `chls_backends::transmogrifier`)
//!
//! Cycles are *region visits*: one region per natural-loop header plus
//! the entry region, straight-line code is free. A counted loop of `t`
//! trips visits its header `t + 1` times (the last visit carries the
//! fall-through code, which lives in the header's region); an `if` with a
//! loop in either branch forces the join block into a region of its own
//! (+1). Plus the entry-region visit and one `Done` cycle.

use chls_frontend::hir::*;
use chls_opt::unroll::recognize;

/// An inclusive interval of cycle counts; `max = None` means unbounded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Fewest cycles any terminating run can take.
    pub min: u64,
    /// Most cycles any terminating run can take, when statically bounded.
    pub max: Option<u64>,
}

impl Interval {
    /// The zero-cost interval.
    pub const ZERO: Interval = Interval {
        min: 0,
        max: Some(0),
    };

    /// An exact count.
    pub fn exact(n: u64) -> Interval {
        Interval {
            min: n,
            max: Some(n),
        }
    }

    /// `[min, ∞)`.
    pub fn at_least(min: u64) -> Interval {
        Interval { min, max: None }
    }

    /// Union hull of two alternatives.
    pub fn hull(self, other: Interval) -> Interval {
        Interval {
            min: self.min.min(other.min),
            max: match (self.max, other.max) {
                (Some(a), Some(b)) => Some(a.max(b)),
                _ => None,
            },
        }
    }

    /// `n` back-to-back repetitions.
    pub fn times(self, n: u64) -> Interval {
        Interval {
            min: self.min * n,
            max: self.max.map(|m| m * n),
        }
    }

    /// Whether a measured cycle count lies inside the interval.
    pub fn contains(&self, cycles: u64) -> bool {
        self.min <= cycles && self.max.is_none_or(|m| cycles <= m)
    }
}

/// Sequential composition.
impl std::ops::Add for Interval {
    type Output = Interval;

    fn add(self, other: Interval) -> Interval {
        Interval {
            min: self.min + other.min,
            max: match (self.max, other.max) {
                (Some(a), Some(b)) => Some(a + b),
                _ => None,
            },
        }
    }
}

impl std::fmt::Display for Interval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.max {
            Some(m) if m == self.min => write!(f, "{}", self.min),
            Some(m) => write!(f, "[{}, {}]", self.min, m),
            None => write!(f, "[{}, ∞)", self.min),
        }
    }
}

/// Per-exit-kind cost of a statement sequence. Each field is the cost
/// interval of the paths leaving the sequence that way, or `None` when no
/// path does.
#[derive(Debug, Clone, Copy, Default)]
struct Paths {
    /// Paths that run to the end of the sequence.
    fall: Option<Interval>,
    /// Paths ending at a `return` (cost includes the return's own price).
    ret: Option<Interval>,
    /// Paths ending at a `break` out of the nearest loop.
    brk: Option<Interval>,
    /// Paths ending at a `continue` of the nearest loop.
    cont: Option<Interval>,
}

fn hull_opt(a: Option<Interval>, b: Option<Interval>) -> Option<Interval> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.hull(y)),
        (x, None) => x,
        (None, y) => y,
    }
}

impl Paths {
    fn fall(cost: Interval) -> Paths {
        Paths {
            fall: Some(cost),
            ..Paths::default()
        }
    }

    /// Merge of two alternative branches.
    fn either(self, other: Paths) -> Paths {
        Paths {
            fall: hull_opt(self.fall, other.fall),
            ret: hull_opt(self.ret, other.ret),
            brk: hull_opt(self.brk, other.brk),
            cont: hull_opt(self.cont, other.cont),
        }
    }

    /// Sequence `next` after the falling paths of `self`.
    fn then(self, next: Paths) -> Paths {
        let Some(pre) = self.fall else {
            // Nothing falls through; `next` is dead.
            return self;
        };
        Paths {
            fall: next.fall.map(|f| pre + f),
            ret: hull_opt(self.ret, next.ret.map(|r| pre + r)),
            brk: hull_opt(self.brk, next.brk.map(|b| pre + b)),
            cont: hull_opt(self.cont, next.cont.map(|c| pre + c)),
        }
    }

    /// The cost of reaching *any* exit of a loop body once (fall-through
    /// to the backedge, `continue`, or `break`), used for do-while minima.
    fn one_trip_min(&self) -> u64 {
        [self.fall, self.brk, self.cont]
            .into_iter()
            .flatten()
            .map(|i| i.min)
            .min()
            .unwrap_or(0)
    }
}

/// Which timing rule to evaluate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Rule {
    HandelC,
    Transmogrifier,
}

/// Cycle interval for `func` under the Handel-C timing rule. `func` must
/// already be prepared (inlined, unrolled, pointers lowered), i.e. what
/// `chls_backends::common::prepare_structured` returns.
pub fn handelc_interval(func: &HirFunc) -> Interval {
    function_interval(func, Rule::HandelC)
}

/// Cycle interval for `func` under the Transmogrifier timing rule, on the
/// same prepared form. Meaningless (and not computed by the driver) for
/// programs the sequential pipeline rejects (`par`, channels, `delay`).
pub fn transmogrifier_interval(func: &HirFunc) -> Interval {
    function_interval(func, Rule::Transmogrifier)
}

/// Cycle interval of one block under the Handel-C rule, with no
/// entry/done overhead: the per-iteration *service cost* `chls flow`
/// charges when checking a declared `@ii(n)` contract against the rate a
/// sender's loop can actually sustain.
pub fn handelc_block_interval(block: &HirBlock) -> Interval {
    let p = block_paths(block, Rule::HandelC);
    hull_opt(p.fall, p.ret).unwrap_or(Interval::ZERO)
}

fn function_interval(func: &HirFunc, rule: Rule) -> Interval {
    let body = block_paths(&func.body, rule);
    // Every terminating run either returns or falls off the end.
    let inner = hull_opt(body.fall, body.ret).unwrap_or(Interval::ZERO);
    // Entry cycle (Handel-C parameter latch / Transmogrifier entry-region
    // visit) + the Done state both simulators count.
    Interval::exact(2) + inner
}

fn block_paths(block: &HirBlock, rule: Rule) -> Paths {
    let mut acc = Paths::fall(Interval::ZERO);
    for stmt in &block.stmts {
        acc = acc.then(stmt_paths(stmt, rule));
        if acc.fall.is_none() {
            break; // everything after is dead
        }
    }
    acc
}

fn stmt_paths(stmt: &HirStmt, rule: Rule) -> Paths {
    match stmt {
        HirStmt::Assign { .. } => Paths::fall(match rule {
            Rule::HandelC => Interval::exact(1),
            Rule::Transmogrifier => Interval::ZERO,
        }),
        // A send/recv commits in one cycle. It also blocks until its
        // partner is ready, but the stall is charged at the enclosing
        // `par` (sum-of-maxima rule in `par_paths`); outside any `par`
        // there is no partner, the rendezvous deadlocks, and there is no
        // terminating run to bound.
        HirStmt::Send { .. } | HirStmt::Recv { .. } => Paths::fall(match rule {
            Rule::HandelC => Interval::exact(1),
            Rule::Transmogrifier => Interval::ZERO, // rejected anyway
        }),
        HirStmt::Delay => Paths::fall(match rule {
            Rule::HandelC => Interval::exact(1),
            Rule::Transmogrifier => Interval::ZERO, // rejected anyway
        }),
        // Calls only survive when inlining was skipped; no bound.
        HirStmt::Call { .. } => Paths::fall(Interval::at_least(0)),
        HirStmt::Return(_) => Paths {
            ret: Some(match rule {
                // "A bare return still consumes its cycle."
                Rule::HandelC => Interval::exact(1),
                // A `Term::Return` ends its region's visit; no extra cost.
                Rule::Transmogrifier => Interval::ZERO,
            }),
            ..Paths::default()
        },
        HirStmt::Break => Paths {
            brk: Some(Interval::ZERO),
            ..Paths::default()
        },
        HirStmt::Continue => Paths {
            cont: Some(Interval::ZERO),
            ..Paths::default()
        },
        HirStmt::If { then, els, .. } => {
            let mut p = block_paths(then, rule).either(block_paths(els, rule));
            // Transmogrifier: a loop inside either branch puts the branch
            // tail in the loop's region, so the join block is entered from
            // two *different* regions and becomes a region head of its own.
            if rule == Rule::Transmogrifier
                && (contains_loop(then) || contains_loop(els))
            {
                if let Some(f) = p.fall {
                    p.fall = Some(f + Interval::exact(1));
                }
            }
            p
        }
        HirStmt::While { body, .. } => loop_paths(None, body, None, rule, false),
        HirStmt::DoWhile { body, .. } => loop_paths(None, body, None, rule, true),
        HirStmt::For {
            init,
            cond,
            step,
            body,
            ..
        } => {
            let init_p = block_paths(init, rule);
            let trips = recognize(init, cond, step, body)
                .ok()
                .map(|c| c.iterations.len() as u64);
            init_p.then(loop_paths(trips, body, Some(step), rule, false))
        }
        HirStmt::Block(b) => block_paths(b, rule),
        // Both rules ignore the cycle budget: Handel-C has no constraint
        // construct and Transmogrifier schedules by its own rule. The
        // budget is checked by the HardwareC backend, not here.
        HirStmt::Constraint { body, .. } => block_paths(body, rule),
        HirStmt::Par(arms) => par_paths(arms, rule),
    }
}

/// Cost of a loop.
///
/// `trips` is the exact trip count when the canonical recognizer pinned
/// it down (`for` loops only), `step` the for-step block, `at_least_once`
/// true for do-while.
fn loop_paths(
    trips: Option<u64>,
    body: &HirBlock,
    step: Option<&HirBlock>,
    rule: Rule,
    at_least_once: bool,
) -> Paths {
    let b = block_paths(body, rule);
    let s = step.map(|s| block_paths(s, rule));
    // `return` inside the body leaves the loop altogether; any iteration
    // may be the one that returns, so only its minimum survives.
    let ret = b.ret.map(|r| Interval::at_least(r.min));

    // The exact case: known trip count, body and step all fall through
    // (no break/continue/return to cut iterations short).
    let straight = b.brk.is_none() && b.cont.is_none() && b.ret.is_none();
    let step_straight = s.is_none_or(|p| p.brk.is_none() && p.cont.is_none() && p.ret.is_none());
    if let (Some(t), true, true) = (trips, straight, step_straight) {
        let per_trip = b
            .fall
            .unwrap_or(Interval::ZERO)
            + s.and_then(|p| p.fall).unwrap_or(Interval::ZERO);
        let fall = match rule {
            // t executions of body + step; conditions are free.
            Rule::HandelC => per_trip.times(t),
            // t + 1 header visits, each trip additionally paying for
            // regions inside the body (nested loops, post-loop joins).
            Rule::Transmogrifier => Interval::exact(t + 1) + per_trip.times(t),
        };
        return Paths {
            fall: Some(fall),
            ret,
            ..Paths::default()
        };
    }

    // The conservative case: trip count unknown or iterations can be cut
    // short. Minimum = cheapest way out; maximum unbounded.
    let min = match rule {
        Rule::HandelC => {
            if at_least_once {
                b.one_trip_min()
            } else {
                0 // condition may be false on entry
            }
        }
        Rule::Transmogrifier => {
            // Even a zero-trip while pays one header visit (the visit
            // whose condition comes up false); a do-while pays for its
            // first trip too.
            if at_least_once {
                1 + b.one_trip_min()
            } else {
                1
            }
        }
    };
    Paths {
        fall: Some(Interval::at_least(min)),
        ret,
        ..Paths::default()
    }
}

/// Cost of a `par` join under lockstep semantics.
fn par_paths(arms: &[HirBlock], rule: Rule) -> Paths {
    // Transmogrifier never sees `par` (sequential pipeline rejects it);
    // return something harmless rather than panic.
    if rule == Rule::Transmogrifier {
        return Paths::fall(Interval::at_least(0));
    }
    let mut costs = Vec::with_capacity(arms.len());
    for arm in arms {
        let p = block_paths(arm, rule);
        if p.ret.is_some() || p.brk.is_some() || p.cont.is_some() {
            // Non-local exit from a par arm: give up on a finite bound.
            return Paths::fall(Interval::at_least(0));
        }
        costs.push(p.fall.unwrap_or(Interval::ZERO));
    }
    let rendezvous = arms.iter().any(contains_channel_op);
    // The join waits for the slowest arm, so min is the max of minima
    // either way. Without channels arms run independently in lockstep
    // and max is the max of maxima; with channels an arm can stall for a
    // sibling, but every cycle some arm commits a cycle node (else the
    // program deadlocks), so the sum of maxima still bounds the join.
    let min = costs.iter().map(|c| c.min).max().unwrap_or(0);
    let max = if costs.iter().any(|c| c.max.is_none()) {
        None
    } else if rendezvous {
        Some(costs.iter().map(|c| c.max.unwrap()).sum())
    } else {
        costs.iter().map(|c| c.max.unwrap()).max()
    };
    Paths::fall(Interval { min, max })
}

/// Whether a block contains a loop at any depth (region-head inducing,
/// for the Transmogrifier if-join rule).
fn contains_loop(block: &HirBlock) -> bool {
    block.stmts.iter().any(|s| match s {
        HirStmt::While { .. } | HirStmt::DoWhile { .. } | HirStmt::For { .. } => true,
        HirStmt::If { then, els, .. } => contains_loop(then) || contains_loop(els),
        HirStmt::Block(b) | HirStmt::Constraint { body: b, .. } => contains_loop(b),
        HirStmt::Par(arms) => arms.iter().any(contains_loop),
        _ => false,
    })
}

/// Whether a block performs a send or recv at any depth.
fn contains_channel_op(block: &HirBlock) -> bool {
    block.stmts.iter().any(|s| match s {
        HirStmt::Send { .. } | HirStmt::Recv { .. } => true,
        HirStmt::If { then, els, .. } => contains_channel_op(then) || contains_channel_op(els),
        HirStmt::While { body, .. } | HirStmt::DoWhile { body, .. } => contains_channel_op(body),
        HirStmt::For {
            init, step, body, ..
        } => contains_channel_op(init) || contains_channel_op(step) || contains_channel_op(body),
        HirStmt::Block(b) | HirStmt::Constraint { body: b, .. } => contains_channel_op(b),
        HirStmt::Par(arms) => arms.iter().any(contains_channel_op),
        _ => false,
    })
}
