//! Par-race detection.
//!
//! Handel-C's rule: no two `par` arms may touch the same variable in the
//! same clock cycle. We enforce a stronger, schedule-independent version
//! of it — no two arms of one `par` may conflict on any abstract location
//! at all — because whether two accesses land in the same cycle depends
//! on the backend's timing rule, and a program whose correctness depends
//! on that is exactly the nondeterminism the paper warns about.
//!
//! Conflicts:
//! * memory (locals): write/write and read/write between sibling arms —
//!   *errors*, since the result depends on scheduling;
//! * channels: N>1 senders (or receivers) on one channel across sibling
//!   arms — a *nondeterministic merge*, reported as a warning: the
//!   rendezvous pairing is still well-defined per exchange, but which
//!   sender wins each exchange is a hardware artifact. A matched
//!   send/recv pair is the *intended* use and does not conflict.

use crate::effects::{block_effects, Access, AccessKind, Loc};
use chls_frontend::diag::Diagnostic;
use chls_frontend::hir::*;
use chls_frontend::Span;
use chls_opt::PointsTo;

/// Walks `func` and reports every conflict between sibling `par` arms.
pub fn find_races(func: &HirFunc, pts: &PointsTo) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    walk_block(&func.body, func, pts, &mut out);
    out
}

fn walk_block(block: &HirBlock, func: &HirFunc, pts: &PointsTo, out: &mut Vec<Diagnostic>) {
    for stmt in &block.stmts {
        match stmt {
            HirStmt::Par(arms) => {
                check_par(arms, func, pts, out);
                // Nested `par` inside an arm gets its own pass.
                for arm in arms {
                    walk_block(arm, func, pts, out);
                }
            }
            HirStmt::If { then, els, .. } => {
                walk_block(then, func, pts, out);
                walk_block(els, func, pts, out);
            }
            HirStmt::While { body, .. } | HirStmt::DoWhile { body, .. } => {
                walk_block(body, func, pts, out);
            }
            HirStmt::For {
                init, step, body, ..
            } => {
                walk_block(init, func, pts, out);
                walk_block(step, func, pts, out);
                walk_block(body, func, pts, out);
            }
            HirStmt::Block(b) | HirStmt::Constraint { body: b, .. } => {
                walk_block(b, func, pts, out)
            }
            _ => {}
        }
    }
}

fn check_par(arms: &[HirBlock], func: &HirFunc, pts: &PointsTo, out: &mut Vec<Diagnostic>) {
    let effects: Vec<Vec<Access>> = arms
        .iter()
        .map(|arm| {
            let mut e = Vec::new();
            block_effects(arm, pts, &mut e);
            e
        })
        .collect();
    // One diagnostic per (location, arm pair), not per access pair —
    // a loop touching `x` a hundred times is still one race.
    let mut reported: Vec<(Loc, usize, usize)> = Vec::new();
    for i in 0..effects.len() {
        for j in (i + 1)..effects.len() {
            for a in &effects[i] {
                for b in &effects[j] {
                    if a.loc != b.loc {
                        continue;
                    }
                    let Some(flavor) = conflict(a, b) else {
                        continue;
                    };
                    if reported.contains(&(a.loc, i, j)) {
                        continue;
                    }
                    reported.push((a.loc, i, j));
                    out.push(diagnose(flavor, a, b, i, j, func));
                }
            }
        }
    }
}

/// Returns the conflict flavor, if `a` and `b` conflict.
fn conflict(a: &Access, b: &Access) -> Option<&'static str> {
    match a.loc {
        Loc::Chan(_) => match (a.kind, b.kind) {
            (AccessKind::Write, AccessKind::Write) => Some("send/send"),
            (AccessKind::Read, AccessKind::Read) => Some("recv/recv"),
            // A matched send/recv pair is a rendezvous, not a race.
            _ => None,
        },
        Loc::Local(_) | Loc::Global(_) => match (a.kind, b.kind) {
            (AccessKind::Write, AccessKind::Write) => Some("write/write"),
            (AccessKind::Write, AccessKind::Read) | (AccessKind::Read, AccessKind::Write) => {
                Some("read/write")
            }
            (AccessKind::Read, AccessKind::Read) => None,
        },
    }
}

fn diagnose(
    flavor: &'static str,
    a: &Access,
    b: &Access,
    arm_a: usize,
    arm_b: usize,
    func: &HirFunc,
) -> Diagnostic {
    let what = loc_name(a.loc, func);
    let via = match (a.via, b.via) {
        (Some(p), _) | (_, Some(p)) => {
            format!(" (through pointer `{}`)", func.local(p).name)
        }
        _ => String::new(),
    };
    let primary = a.span.or(b.span).unwrap_or_else(Span::dummy);
    // Competing endpoints on one channel merge nondeterministically but
    // each exchange is still a well-formed rendezvous: warning. Memory
    // conflicts make the result schedule-dependent: error.
    let mut d = if matches!(a.loc, Loc::Chan(_)) {
        Diagnostic::warning(
            format!(
                "{flavor} nondeterministic merge on channel `{what}`: `par` arms {} and {} compete for the same endpoint",
                arm_a + 1,
                arm_b + 1
            ),
            primary,
        )
    } else {
        Diagnostic::error(
            format!(
                "{flavor} race on `{what}`{via} between `par` arms {} and {}",
                arm_a + 1,
                arm_b + 1
            ),
            primary,
        )
    };
    let describe = |acc: &Access| match acc.kind {
        AccessKind::Write if matches!(acc.loc, Loc::Chan(_)) => "send",
        AccessKind::Read if matches!(acc.loc, Loc::Chan(_)) => "recv",
        AccessKind::Write => "write",
        AccessKind::Read => "read",
    };
    if let Some(s) = a.span {
        d = d.with_note(
            format!("first {} in arm {} here", describe(a), arm_a + 1),
            s,
        );
    }
    if let Some(s) = b.span {
        d = d.with_note(
            format!("second {} in arm {} here", describe(b), arm_b + 1),
            s,
        );
    }
    d
}

/// Human name for a location.
pub fn loc_name(loc: Loc, func: &HirFunc) -> String {
    match loc {
        Loc::Local(id) | Loc::Chan(id) => func.local(id).name.clone(),
        Loc::Global(g) => format!("global #{}", g.0),
    }
}
