//! Cross-validation of the symbolic bit-blaster against the concrete
//! netlist simulator.
//!
//! The equivalence checker is only sound if `blast::SymMachine` encodes
//! *exactly* the arithmetic the simulator executes — including wrapping,
//! shift saturation, signed division corners, and divide-by-zero. These
//! tests drive both engines over random netlists covering every
//! operator at mixed widths and signedness, and over a hand-written
//! sequential machine with RAM traffic, and demand bit-identical
//! results.

use chls_frontend::IntType;
use chls_ir::{BinKind, UnKind};
use chls_logic::{Aig, RamSpec, SymEnv, SymMachine};
use chls_rtl::netlist::{CellId, CellKind, Netlist, Ram};
use chls_sim::netlist_sim::NetlistSim;
use proptest::prelude::*;
use std::collections::HashMap;

const TYPES: &[(u16, bool)] = &[
    (1, false),
    (4, false),
    (8, true),
    (8, false),
    (13, true),
    (16, false),
    (16, true),
    (32, true),
    (63, false),
    (64, true),
];

const BINS: &[BinKind] = &[
    BinKind::Add,
    BinKind::Sub,
    BinKind::Mul,
    BinKind::Div,
    BinKind::Rem,
    BinKind::Shl,
    BinKind::Shr,
    BinKind::And,
    BinKind::Or,
    BinKind::Xor,
    BinKind::Eq,
    BinKind::Ne,
    BinKind::Lt,
    BinKind::Le,
    BinKind::Gt,
    BinKind::Ge,
];

/// Deterministic xorshift for structure generation.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn pick<T: Copy>(&mut self, xs: &[T]) -> T {
        xs[(self.next() as usize) % xs.len()]
    }
}

/// A random layered combinational netlist over three typed inputs,
/// exercising every operator kind.
fn random_netlist(n: usize, seed: u64) -> (Netlist, Vec<(String, IntType)>) {
    let mut rng = Rng(seed | 1);
    let mut nl = Netlist::new("rand");
    let mut inputs = Vec::new();
    let mut nets: Vec<CellId> = Vec::new();
    for name in ["a", "b", "c"] {
        let (w, s) = rng.pick(TYPES);
        let ty = IntType::new(w, s);
        nets.push(nl.add(CellKind::Input { name: name.into() }, ty));
        inputs.push((name.to_string(), ty));
    }
    for _ in 0..n {
        let x = nets[(rng.next() as usize) % nets.len()];
        let y = nets[(rng.next() as usize) % nets.len()];
        let (w, s) = rng.pick(TYPES);
        let ty = IntType::new(w, s);
        let id = match rng.next() % 10 {
            0 => {
                let v = rng.next() as i64;
                nl.add(CellKind::Const(ty.canonicalize(v)), ty)
            }
            1 => {
                let op = if rng.next().is_multiple_of(2) { UnKind::Neg } else { UnKind::Not };
                nl.add(CellKind::Un(op, x), ty)
            }
            2 => {
                let from = nl.cell(x).ty;
                nl.add(CellKind::Cast { from, val: x }, ty)
            }
            3 => nl.add(CellKind::Mux { sel: x, a: y, b: x }, ty),
            _ => {
                let op = rng.pick(BINS);
                // Comparisons drive 1-bit nets, like the frontends emit.
                let ty = if op.is_comparison() { IntType::new(1, false) } else { ty };
                nl.add(CellKind::Bin(op, x, y), ty)
            }
        };
        nets.push(id);
    }
    // Observe a spread of nets, not just the last one, so shallow
    // cells stay live too.
    for (i, &net) in nets.iter().rev().take(4).enumerate() {
        nl.set_output(format!("o{i}"), net);
    }
    (nl, inputs)
}

/// Blasts `nl`, assigns the given concrete input values to the AIG
/// variables, and returns the decoded outputs.
fn symbolic_outputs(nl: &Netlist, values: &[(String, i64)]) -> Vec<(String, i64)> {
    let mut g = Aig::new();
    let mut env = SymEnv::new();
    let machine = SymMachine::new(&mut g, &mut env, nl, &[]).expect("blasts");
    let vals = machine.eval(&mut g, &mut env).expect("evaluates");
    let outs = machine.outputs(&vals);
    let mut assign = HashMap::new();
    for (name, word) in &env.inputs {
        let v = values
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
            .unwrap_or(0);
        for (i, bit) in word.bits.iter().enumerate() {
            assign.insert(bit.var(), (v >> i) & 1 != 0);
        }
    }
    let bitvals = g.eval(&assign);
    outs.into_iter().map(|(n, w)| (n, w.decode(&bitvals))).collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// The symbolic machine and the concrete simulator agree on every
    /// output of a random combinational netlist, for every operator.
    #[test]
    fn blast_matches_netlist_sim(
        n in 4usize..40,
        seed in any::<u64>(),
        ra in any::<i64>(),
        rb in any::<i64>(),
        rc in any::<i64>(),
    ) {
        let (nl, inputs) = random_netlist(n, seed);
        let raw = [ra, rb, rc];
        let values: Vec<(String, i64)> = inputs
            .iter()
            .zip(raw.iter())
            .map(|((name, ty), &r)| (name.clone(), ty.canonicalize(r)))
            .collect();

        let mut sim = NetlistSim::new(&nl).expect("builds");
        for (name, v) in &values {
            sim.set_input(name.clone(), *v);
        }
        let symbolic = symbolic_outputs(&nl, &values);
        for (name, sv) in symbolic {
            let cv = sim.output(&name).expect("evaluates");
            prop_assert_eq!(
                sv, cv,
                "output {} differs: symbolic {} vs simulator {} (seed {})",
                name, sv, cv, seed
            );
        }
    }
}

/// A small sequential machine — accumulator over a RAM that it also
/// writes back into — stepped in lockstep with the simulator.
#[test]
fn blast_matches_sequential_sim() {
    let u8t = IntType::new(8, false);
    let u2t = IntType::new(2, false);
    let mut nl = Netlist::new("seq");
    let ram = nl.add_ram(Ram {
        name: "m".into(),
        elem: u8t,
        len: 4,
        init: Some(vec![7, 250, 3]),
    });
    // Placeholder next-state nets patched below.
    let zero = nl.add(CellKind::Const(0), u8t);
    let acc = nl.add(CellKind::Reg { next: zero, init: 0, en: None }, u8t);
    let idx = nl.add(CellKind::Reg { next: zero, init: 0, en: None }, u2t);
    let read = nl.add(CellKind::RamRead { ram, addr: idx }, u8t);
    let acc_next = nl.add(CellKind::Bin(BinKind::Add, acc, read), u8t);
    let one = nl.add(CellKind::Const(1), u2t);
    let idx_next = nl.add(CellKind::Bin(BinKind::Add, idx, one), u2t);
    let wen = nl.add(CellKind::Const(1), IntType::new(1, false));
    nl.add(CellKind::RamWrite { ram, addr: idx, data: acc_next, en: wen }, u8t);
    nl.cells[acc.0 as usize].kind = CellKind::Reg { next: acc_next, init: 0, en: None };
    nl.cells[idx.0 as usize].kind = CellKind::Reg { next: idx_next, init: 0, en: None };
    nl.set_output("acc", acc);

    let mut sim = NetlistSim::new(&nl).expect("builds");
    let mut g = Aig::new();
    let mut env = SymEnv::new();
    let mut machine =
        SymMachine::new(&mut g, &mut env, &nl, &[RamSpec::Concrete]).expect("blasts");
    let no_inputs = HashMap::new();
    for cycle in 0..6 {
        let cv = sim.output("acc").expect("evaluates");
        let vals = machine.eval(&mut g, &mut env).expect("evaluates");
        let sv = machine.outputs(&vals)[0].1.decode(&g.eval(&no_inputs));
        assert_eq!(sv, cv, "acc differs at cycle {cycle}");
        sim.step().expect("steps");
        machine.step(&mut g, &mut env).expect("steps");
    }
    // Final RAM contents must also agree word for word.
    let bitvals = g.eval(&no_inputs);
    let concrete_ram = sim.ram(0);
    for (j, w) in machine.ram(0).iter().enumerate() {
        assert_eq!(w.decode(&bitvals), concrete_ram[j], "ram word {j} differs");
    }
}
