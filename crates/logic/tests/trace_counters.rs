//! The logic subsystem reports its work through the shared trace
//! collector: AIG sizes and SAT effort from the equivalence checker,
//! rewrite counts from the optimizer. This file pins that the counters
//! are actually recorded when tracing is on (it owns the process-global
//! collector, so it stays a single test).

use chls_frontend::IntType;
use chls_ir::BinKind;
use chls_logic::{check_comb_equiv, optimize, EquivOptions, Verdict};
use chls_rtl::netlist::{CellKind, Netlist};

#[test]
fn equiv_and_optimize_record_trace_counters() {
    // 16-bit inputs: 32 input bits total, past the BDD rung's 20-bit
    // limit, so the Differ check below exercises the SAT path and its
    // conflict counter.
    let ty = IntType::new(16, false);
    let build = |op: BinKind| {
        let mut nl = Netlist::new("t");
        let a = nl.add(CellKind::Input { name: "a".into() }, ty);
        let b = nl.add(CellKind::Input { name: "b".into() }, ty);
        let s = nl.add(CellKind::Bin(op, a, b), ty);
        nl.set_output("s", s);
        nl
    };

    chls_trace::set_enabled(true);
    chls_trace::reset();

    let good = build(BinKind::Add);
    let opt = optimize(&good);
    let report = check_comb_equiv(&good, &opt, &EquivOptions::default()).expect("check runs");
    assert!(matches!(report.verdict, Verdict::Equivalent));
    let differ = check_comb_equiv(&good, &build(BinKind::Or), &EquivOptions::default())
        .expect("check runs");
    assert!(matches!(differ.verdict, Verdict::Differ(_)));

    let snap = chls_trace::snapshot();
    chls_trace::set_enabled(false);

    let nodes = snap.counter("logic.aig_nodes").expect("aig_nodes recorded");
    assert!(nodes > 0, "equivalence checks must report AIG sizes");
    assert!(
        snap.counter("logic.rewrites").is_some(),
        "the optimizer must register its rewrite counter"
    );
    assert!(
        snap.counter("logic.sat_conflicts").is_some(),
        "SAT-decided checks must report solver effort"
    );
}
