//! Gate-level logic optimization and formal equivalence checking.
//!
//! This crate adds the "back end of the back end" the paper's survey
//! keeps pointing at: once a C-like front end has committed to *some*
//! hardware (a combinational cone or an FSMD), the remaining questions
//! are (a) can the logic be made smaller without changing behaviour,
//! and (b) do two different synthesis strategies actually implement the
//! same function? Both are answered over an And-Inverter Graph:
//!
//! * [`aig`] — the AIG core: structural hashing, constant folding,
//!   one- and two-level rewrite rules, complemented edges, and an
//!   exporter back to `rtl::netlist`.
//! * [`blast`] — word-level bit-blasting of netlists into the AIG with
//!   exactly the simulator's arithmetic semantics, including symbolic
//!   RAM and a cycle-unrolling symbolic machine.
//! * [`sat`] — Tseitin CNF emission and a small self-contained CDCL
//!   solver (two watched literals, first-UIP learning, VSIDS, restarts).
//! * [`equiv`] — miter construction and the strash → BDD → SAT
//!   decision ladder, with counterexample replay through the concrete
//!   simulator as an independent soundness check.
//! * [`opt`] — word-level netlist and FSMD optimizers used by
//!   `--opt-netlist` and the `opt_area` QoR column; every rewrite is
//!   area-monotone under the standard cost model.

pub mod aig;
pub mod blast;
pub mod equiv;
pub mod interchange;
pub mod opt;
pub mod sat;

pub use aig::{Aig, Lit};
pub use blast::{RamSpec, SymEnv, SymError, SymMachine, Word};
pub use equiv::{
    check_comb_equiv, check_seq_equiv, Counterexample, EquivError, EquivOptions, EquivReport,
    Method, Verdict,
};
pub use opt::{optimize, optimize_fsmd};
pub use sat::{Cnf, Outcome, Solver};
